"""Tests for the observability layer (repro.telemetry).

The contract under test, in order of importance:

* **inert** — telemetry on vs off produces bit-identical token
  streams, in both dense and SpAtten modes, single-engine and
  cluster;
* **deterministic** — two identical runs write byte-identical trace
  and metrics files (simulated-clock timestamps only);
* **valid** — the trace export is well-formed Chrome trace-event JSON
  (checked by the same validator ``repro trace-report`` uses);
* **complete** — the request lifecycle (queued -> prefill -> decode),
  pool events, router decisions, ledger transitions, preemptions, and
  the pruning-savings counter all actually appear in the trace.
"""

import json
import math

import pytest

from repro.cluster import ClusterEngine, ShardedKVPool
from repro.config import GPT2_SMALL, PruningConfig
from repro.serving import KVMemoryPool, ServingEngine
from repro.serving.stats import STATS_SCHEMA_VERSION
from repro.telemetry import (
    NULL_TELEMETRY,
    HotPathProfiler,
    MetricsRegistry,
    Telemetry,
    TraceOverlapError,
    Tracer,
    chrome_trace,
    chrome_trace_json,
    metrics_jsonl,
    prometheus_text,
    trace_report,
    validate_chrome_trace,
)
from repro.workloads import (
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    make_lm_corpus,
    synthetic_request_trace,
)

PROMPT_LEN = 24
PRUNING = PruningConfig(token_keep_final=0.4, head_keep_final=0.75,
                        value_keep=0.9)


@pytest.fixture(scope="module")
def serving_setup():
    vocab = build_vocabulary(size=512, n_classes=4, seed=0)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=4, d_model=64, n_heads=4,
        max_seq_len=160,
    )
    model, _ = build_task_model(config, vocab, "lm", seed=0)
    corpus = make_lm_corpus(vocab, n_tokens=2048, seed=2)
    return config, model, corpus


def make_pool(config, pages=64, page_tokens=8):
    return KVMemoryPool(
        config,
        budget_bytes=pages * page_tokens * 2 * config.n_heads
        * config.head_dim * config.bytes_per_element,
        page_tokens=page_tokens,
    )


def make_sharded(config, total_pages=128, n_replicas=2, page_tokens=8):
    per_token = 2 * config.n_heads * config.head_dim * config.bytes_per_element
    return ShardedKVPool(
        config,
        total_budget_bytes=total_pages * page_tokens * per_token,
        n_replicas=n_replicas,
        page_tokens=page_tokens,
    )


def trace(corpus, n=8, rate=2000.0, max_new=(6, 12), seed=3):
    return synthetic_request_trace(
        corpus, n_requests=n, rate_per_s=rate, prompt_len=PROMPT_LEN,
        max_new_tokens=max_new, seed=seed,
    )


def tokens_by_id(stats):
    return {r.request.request_id: list(r.token_ids) for r in stats.records}


def run_engine(setup, requests, telemetry=None, pruning=PRUNING, pages=64,
               **kwargs):
    config, model, _ = setup
    pool = make_pool(config, pages=pages)
    engine = ServingEngine(
        model, pool, pruning=pruning, prefill_chunk=8,
        telemetry=telemetry, **kwargs,
    )
    return engine.run(requests), engine


# ----------------------------------------------------------------------
# Unit: tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_events_and_lookup(self):
        tr = Tracer()
        tr.instant("hit", t=1.0, process="engine", track="pool", pages=3)
        tr.span("work", start=0.5, end=2.0, process="engine",
                track="req 0", outcome="ok")
        tr.counter("kv", t=1.5, process="engine", allocated=7)
        assert len(tr) == 3
        assert [e.name for e in tr.named("hit")] == ["hit"]
        span = tr.named("work")[0]
        assert span.kind == "span"
        assert span.dur == pytest.approx(1.5)
        assert span.args_dict == {"outcome": "ok"}
        assert tr.processes == ["engine"]

    def test_span_rejects_negative_duration(self):
        tr = Tracer()
        with pytest.raises(ValueError, match="end"):
            tr.span("bad", start=2.0, end=1.0, process="p", track="t")

    def test_process_order_is_first_appearance(self):
        tr = Tracer()
        tr.instant("a", t=0.0, process="fleet", track="x")
        tr.instant("b", t=1.0, process="replica0", track="x")
        tr.instant("c", t=2.0, process="fleet", track="x")
        assert tr.processes == ["fleet", "replica0"]


# ----------------------------------------------------------------------
# Unit: metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_tokens_total", engine="e0")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)
        g = reg.gauge("repro_live", engine="e0")
        g.set(3)
        g.set(1)
        assert g.value == 1
        h = reg.histogram("repro_lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)

    def test_labels_key_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("c", mode="dense").inc()
        reg.counter("c", mode="spatten").inc(2)
        # Same name+labels returns the same instrument.
        assert reg.counter("c", mode="dense").value == 1
        assert reg.counter("c", mode="spatten").value == 2

    def test_prometheus_text_shape(self):
        reg = MetricsRegistry()
        reg.counter("repro_tokens_total", engine="e0").inc(3)
        reg.histogram("repro_step_seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = reg.prometheus_text()
        assert "# TYPE repro_tokens_total counter" in text
        assert 'repro_tokens_total{engine="e0"} 3' in text
        # le buckets are cumulative and end at +Inf.
        assert 'le="+Inf"' in text
        assert "repro_step_seconds_count 1" in text
        assert "repro_step_seconds_sum 0.5" in text

    def test_histogram_quantile_interpolates(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat", buckets=(0.1, 0.5, 1.0))
        for v in (0.05, 0.2, 0.3, 0.6):
            h.observe(v)
        # Rank 2 of 4 lands mid-bucket (0.1, 0.5]: linear interpolation
        # across the two observations stored there.
        assert h.quantile(0.5) == pytest.approx(0.3)
        assert h.quantile(0.25) == pytest.approx(0.1)
        # The estimate is deterministic: same histogram, same answer.
        assert h.quantile(0.5) == h.quantile(0.5)

    def test_histogram_quantile_empty_is_nan(self):
        from repro.serving.stats import _null_if_nan, format_quantiles

        reg = MetricsRegistry()
        h = reg.histogram("repro_lat", buckets=(0.1, 1.0))
        value = h.quantile(0.95)
        assert math.isnan(value)
        # The standard renderers show the unknown quantile as n/a (text)
        # and null (JSON) — never as a fake zero.
        assert "n/a" in format_quantiles([value])
        assert _null_if_nan(value) is None
        assert json.dumps({"p95": _null_if_nan(value)}) == '{"p95": null}'

    def test_histogram_quantile_inf_bucket_reports_last_bound(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat", buckets=(0.1, 1.0))
        h.observe(50.0)  # lands in +Inf: no finite edge to interpolate
        assert h.quantile(0.99) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_samples_require_timestamp_and_export_jsonl(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="t"):
            reg.record_sample({"live": 3})
        reg.record_sample({"t": 0.25, "live": 3})
        lines = reg.to_jsonl().strip().splitlines()
        assert json.loads(lines[0]) == {"t": 0.25, "live": 3}


# ----------------------------------------------------------------------
# Unit: telemetry bundle / null sink
# ----------------------------------------------------------------------
class TestTelemetryBundle:
    def test_null_telemetry_is_inactive(self):
        assert not NULL_TELEMETRY.active
        assert NULL_TELEMETRY.tracer is None
        assert NULL_TELEMETRY.metrics is None
        assert NULL_TELEMETRY.profiler is None

    def test_profile_alone_is_not_active(self):
        # The profiler times wall clock, not the simulated run; it must
        # not drag the (allocation-heavy) trace/metrics path in.
        tel = Telemetry(trace=False, metrics=False, profile=True)
        assert not tel.active
        assert isinstance(tel.profiler, HotPathProfiler)

    def test_default_is_trace_and_metrics(self):
        tel = Telemetry()
        assert tel.active
        assert tel.tracer is not None and tel.metrics is not None
        assert tel.profiler is None


# ----------------------------------------------------------------------
# Inertness: telemetry must never change the computation
# ----------------------------------------------------------------------
class TestInertness:
    @pytest.mark.parametrize("pruning", [None, PRUNING],
                             ids=["dense", "spatten"])
    def test_engine_tokens_identical_on_off(self, serving_setup, pruning):
        requests = trace(serving_setup[2])
        off, _ = run_engine(serving_setup, requests, telemetry=None,
                            pruning=pruning)
        on, _ = run_engine(serving_setup, requests, telemetry=Telemetry(),
                           pruning=pruning)
        assert tokens_by_id(on) == tokens_by_id(off)
        assert on.to_dict() == off.to_dict()

    def test_cluster_tokens_identical_on_off(self, serving_setup):
        config, model, corpus = serving_setup
        requests = trace(corpus, n=10)

        def run(telemetry):
            cluster = ClusterEngine(
                model, make_sharded(config), policy="pruning_aware",
                pruning=PRUNING, prefill_chunk=8, telemetry=telemetry,
                drain_events=[(0.015, 1)],
            )
            return cluster.run(requests)

        off = run(None)
        on = run(Telemetry())
        assert tokens_by_id(on.fleet) == tokens_by_id(off.fleet)


# ----------------------------------------------------------------------
# Determinism: identical runs -> byte-identical artifacts
# ----------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize("pruning", [None, PRUNING],
                             ids=["dense", "spatten"])
    def test_engine_artifacts_byte_identical(self, serving_setup, pruning):
        requests = trace(serving_setup[2])

        def artifacts():
            tel = Telemetry()
            run_engine(serving_setup, requests, telemetry=tel,
                       pruning=pruning, audit_every=2)
            return (chrome_trace_json(tel.tracer),
                    metrics_jsonl(tel.metrics),
                    prometheus_text(tel.metrics))

        assert artifacts() == artifacts()

    def test_cluster_artifacts_byte_identical(self, serving_setup):
        config, model, corpus = serving_setup
        requests = trace(corpus, n=10)

        def artifacts():
            tel = Telemetry()
            cluster = ClusterEngine(
                model, make_sharded(config), policy="pruning_aware",
                pruning=PRUNING, prefill_chunk=8, telemetry=tel,
                audit_every=3, drain_events=[(0.015, 1)],
            )
            cluster.run(requests)
            return chrome_trace_json(tel.tracer), metrics_jsonl(tel.metrics)

        assert artifacts() == artifacts()


# ----------------------------------------------------------------------
# Trace content + Chrome format validity
# ----------------------------------------------------------------------
class TestTraceContent:
    @pytest.fixture(scope="class")
    def traced_run(self, serving_setup):
        tel = Telemetry()
        requests = trace(serving_setup[2])
        stats, engine = run_engine(serving_setup, requests, telemetry=tel,
                                   audit_every=2)
        return tel, stats, engine

    def test_chrome_trace_is_valid(self, traced_run):
        tel, _, _ = traced_run
        doc = json.loads(chrome_trace_json(tel.tracer))
        events = validate_chrome_trace(doc)
        phases = {e["ph"] for e in events}
        # Metadata, complete spans, instants, and counters all present.
        assert {"M", "X", "i", "C"} <= phases
        # Spans carry microsecond timestamps on the simulated clock.
        for e in events:
            if e["ph"] == "X":
                assert e["dur"] >= 0
                assert math.isfinite(e["ts"])

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError, match="ph"):
            validate_chrome_trace({"traceEvents": [{"name": "x"}]})

    def test_request_lifecycle_spans(self, traced_run):
        tel, stats, _ = traced_run
        n = len(stats.records)
        for phase in ("queued", "prefill", "decode"):
            spans = tel.tracer.named(phase)
            assert len(spans) == n
            assert all(s.kind == "span" for s in spans)
        outcomes = {s.args_dict["outcome"]
                    for s in tel.tracer.named("decode")}
        assert outcomes == {"finished"}
        # Every request got its own track.
        tracks = {s.track for s in tel.tracer.named("decode")}
        assert tracks == {f"req {r.request.request_id}"
                          for r in stats.records}

    def test_pool_events_and_counters(self, traced_run):
        tel, stats, engine = traced_run
        assert tel.tracer.named("pool_admit")
        assert tel.tracer.named("pool_release")
        kv = tel.tracer.named("kv_pool")
        assert kv and all(e.kind == "counter" for e in kv)
        # The savings counter ends at the pool's final reclaim total.
        assert kv[-1].args_dict["reclaimed_pages"] == stats.reclaimed_pages
        # Audits ran and were counted.
        audits = tel.metrics.counter("repro_pool_audits_total",
                                     engine=engine.name)
        assert audits.value >= 1

    def test_pruning_savings_nonzero_under_spatten(self, traced_run):
        tel, _, _ = traced_run
        saved = [e.args_dict["saved_pages"]
                 for e in tel.tracer.named("kv_pool")]
        # Worst-case reservations exceed live pruned usage at least
        # once in a SpAtten run — that gap *is* the savings series.
        assert max(saved) > 0

    def test_preemption_events(self, serving_setup):
        tel = Telemetry()
        requests = trace(serving_setup[2], n=16, max_new=(12, 24), seed=11)
        stats, _ = run_engine(
            serving_setup, requests, telemetry=tel, pages=36,
            admission="optimistic",
        )
        assert stats.n_preemptions > 0
        preempted = tel.tracer.named("preempted")
        assert len(preempted) == stats.n_preemptions
        assert len(tel.tracer.named("requeued")) == stats.n_preemptions
        assert all(e.args_dict["pages_freed"] >= 0 for e in preempted)

    def test_cluster_router_and_ledger_events(self, serving_setup):
        config, model, corpus = serving_setup
        tel = Telemetry()
        requests = trace(corpus, n=10)
        cluster = ClusterEngine(
            model, make_sharded(config), policy="pruning_aware",
            pruning=PRUNING, prefill_chunk=8, telemetry=tel,
            drain_events=[(0.015, 1)],
        )
        stats = cluster.run(requests)
        routed = tel.tracer.named("routed")
        # Every placement (including requeues) was recorded with
        # per-candidate scores.
        assert len(routed) == sum(stats.routed_counts)
        first = routed[0].args_dict
        assert first["policy"] == "pruning_aware"
        assert "replica0" in first and isinstance(first["replica0"], float)
        assert tel.tracer.named("replica_drain")
        assert tel.tracer.named("ledger_drain")
        assert "fleet" in tel.tracer.processes
        # The fleet-global audit counter is separate from per-replica.
        fleet_pool = tel.tracer.named("fleet_pool")
        assert fleet_pool and fleet_pool[-1].process == "fleet"


# ----------------------------------------------------------------------
# audit-every cadence
# ----------------------------------------------------------------------
class TestAuditEvery:
    def test_rejects_nonpositive(self, serving_setup):
        config, model, _ = serving_setup
        with pytest.raises(ValueError, match="audit_every"):
            ServingEngine(model, make_pool(config), audit_every=0)

    def test_runs_without_telemetry(self, serving_setup):
        # The audit cadence must not require telemetry: auditing every
        # step with the sink off still validates every invariant.
        requests = trace(serving_setup[2])
        stats, _ = run_engine(serving_setup, requests, telemetry=None,
                              audit_every=1)
        assert stats.n_requests == len(requests)


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_packed_backend_stages_recorded(self, serving_setup):
        tel = Telemetry(profile=True)
        requests = trace(serving_setup[2], n=6)
        run_engine(serving_setup, requests, telemetry=tel,
                   attention_backend="packed")
        prof = tel.profiler
        assert prof.calls("decode_qkv_proj") > 0
        assert prof.total_seconds > 0
        assert "decode_qkv_proj" in str(prof.table())

    def test_unit_timing(self):
        prof = HotPathProfiler()
        t0 = prof.start()
        prof.stop("stage_a", t0)
        assert prof.calls("stage_a") == 1
        assert prof.seconds("stage_a") >= 0


# ----------------------------------------------------------------------
# trace-report rendering
# ----------------------------------------------------------------------
class TestTraceReport:
    def test_report_sections(self, serving_setup, tmp_path):
        tel = Telemetry()
        requests = trace(serving_setup[2])
        stats, _ = run_engine(serving_setup, requests, telemetry=tel)
        path = tmp_path / "trace.json"
        path.write_text(chrome_trace_json(tel.tracer))
        text = trace_report(str(path))
        assert "per-phase time breakdown" in text
        for phase in ("queued", "prefill", "decode"):
            assert phase in text
        assert "pruning savings" in text
        assert f"final pages reclaimed  {stats.reclaimed_pages}" in text

    def test_report_shows_storms(self, serving_setup, tmp_path):
        tel = Telemetry()
        requests = trace(serving_setup[2], n=16, max_new=(12, 24), seed=11)
        run_engine(serving_setup, requests, telemetry=tel, pages=36,
                   admission="optimistic")
        path = tmp_path / "trace.json"
        path.write_text(chrome_trace_json(tel.tracer))
        text = trace_report(str(path))
        assert "preempted" in text
        assert "requeued" in text

    def test_report_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": "nope"}')
        with pytest.raises(ValueError):
            trace_report(str(path))

    def test_cli_renders_cluster_fault_trace(self, serving_setup, tmp_path,
                                             capsys):
        from repro.cli import main

        config, model, corpus = serving_setup
        tel = Telemetry()
        cluster = ClusterEngine(
            model, make_sharded(config), pruning=PRUNING, prefill_chunk=8,
            fail_events=[(0.004, 0)], recover_events=[(0.02, 0)],
            telemetry=tel,
        )
        cluster.run(trace(corpus, n=10))
        path = tmp_path / "cluster_trace.json"
        path.write_text(chrome_trace_json(tel.tracer))
        assert main(["trace-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "per-phase time breakdown" in out
        assert "replica" in out

    def test_cli_handles_empty_trace_cleanly(self, tmp_path, capsys):
        # An empty-but-valid trace renders as "nothing to report", not a
        # stack trace: exit 0 with every section present.
        from repro.cli import main

        path = tmp_path / "empty.json"
        path.write_text('{"traceEvents": []}')
        assert main(["trace-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no phase spans" in out
        assert "Traceback" not in out

    def test_cli_rejects_garbage_with_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": "nope"}')
        assert main(["trace-report", str(path)]) == 2
        err = capsys.readouterr().err
        assert "trace-report:" in err
        assert "Traceback" not in err


# ----------------------------------------------------------------------
# Trace validator: overlapping spans on one track (satellite)
# ----------------------------------------------------------------------
class TestTraceValidator:
    def overlap_doc(self, start2=1.0):
        """Two spans on one track; overlapping when start2 < 2.0."""
        return {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "name": "prefill",
             "ts": 0.0, "dur": 2.0, "args": {}},
            {"ph": "X", "pid": 1, "tid": 1, "name": "decode",
             "ts": start2, "dur": 2.0, "args": {}},
            {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name",
             "args": {"name": "req 0"}},
        ]}

    def test_rejects_overlapping_spans_naming_both(self):
        with pytest.raises(TraceOverlapError) as excinfo:
            validate_chrome_trace(self.overlap_doc())
        message = str(excinfo.value)
        assert "'prefill'" in message and "'decode'" in message
        assert "req 0" in message
        # It is also a ValueError, so existing catch-sites keep working.
        assert isinstance(excinfo.value, ValueError)

    def test_accepts_back_to_back_spans(self):
        assert validate_chrome_trace(self.overlap_doc(start2=2.0))

    def test_accepts_overlap_across_distinct_tracks(self):
        doc = self.overlap_doc()
        doc["traceEvents"][1]["tid"] = 2  # same times, different track
        assert validate_chrome_trace(doc)

    def test_real_traces_have_no_overlaps(self, serving_setup):
        # The engines' lifecycle emission keeps every track's spans
        # disjoint; the validator must stay silent on a real run.
        tel = Telemetry()
        requests = trace(serving_setup[2], n=16, max_new=(12, 24), seed=11)
        run_engine(serving_setup, requests, telemetry=tel, pages=36,
                   admission="optimistic")
        assert validate_chrome_trace(json.loads(chrome_trace_json(tel.tracer)))


# ----------------------------------------------------------------------
# Stats schema version (satellite)
# ----------------------------------------------------------------------
class TestSchemaVersion:
    def test_serving_stats_round_trip(self, serving_setup):
        requests = trace(serving_setup[2], n=4)
        stats, _ = run_engine(serving_setup, requests)
        doc = json.loads(stats.to_json())
        assert doc["schema_version"] == STATS_SCHEMA_VERSION
        assert doc["n_requests"] == stats.n_requests
        # Strict JSON round trip: no NaN leaks.
        assert json.loads(json.dumps(doc)) == doc

    def test_cluster_stats_round_trip(self, serving_setup):
        config, model, corpus = serving_setup
        cluster = ClusterEngine(
            model, make_sharded(config), policy="round_robin",
            pruning=PRUNING, prefill_chunk=8,
        )
        stats = cluster.run(trace(corpus, n=6))
        doc = json.loads(stats.to_json())
        assert doc["schema_version"] == STATS_SCHEMA_VERSION
        assert doc["fleet"]["schema_version"] == STATS_SCHEMA_VERSION
        for replica in doc["replicas"]:
            assert replica["schema_version"] == STATS_SCHEMA_VERSION


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCLI:
    BASE = ["--requests", "4", "--layers", "2", "--max-new", "3", "6"]
    SERVE = ["serve", "--mode", "spatten"] + BASE
    SERVE_BOTH = ["serve", "--mode", "both"] + BASE

    def test_stats_json_stdout(self, capsys):
        from repro.cli import main
        assert main(self.SERVE + ["--stats-json", "-"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["spatten"]["schema_version"] == STATS_SCHEMA_VERSION

    def test_trace_stdout_single_mode(self, capsys):
        from repro.cli import main
        assert main(self.SERVE + ["--trace-out", "-"]) == 0
        out = capsys.readouterr().out
        # The trace document is the single compact-JSON line at the end.
        doc = json.loads(out.strip().splitlines()[-1])
        assert validate_chrome_trace(doc)

    def test_stdout_rejected_for_both_modes(self, capsys):
        from repro.cli import main
        assert main(self.SERVE_BOTH + ["--trace-out", "-"]) == 2
        assert "single mode" in capsys.readouterr().err

    def test_both_modes_suffix_filenames(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "trace.json"
        assert main(self.SERVE_BOTH + ["--trace-out", str(out)]) == 0
        for mode in ("dense", "spatten"):
            written = tmp_path / f"trace.{mode}.json"
            assert validate_chrome_trace(json.loads(written.read_text()))

    def test_trace_report_subcommand(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "trace.json"
        assert main(self.SERVE + ["--trace-out", str(out),
                                  "--audit-every", "2"]) == 0
        capsys.readouterr()
        assert main(["trace-report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "per-phase time breakdown" in text

    def test_trace_report_missing_file(self, capsys):
        from repro.cli import main
        assert main(["trace-report", "/nonexistent/trace.json"]) == 2
        assert "trace-report" in capsys.readouterr().err
