"""Unit and property tests for the tensor primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.functional import (
    cross_entropy,
    gelu,
    kl_divergence,
    layer_norm,
    linear,
    log_softmax,
    relu,
    softmax,
)

finite_rows = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 6), st.integers(2, 20)),
    elements=st.floats(-50, 50),
)


class TestSoftmax:
    @given(finite_rows)
    @settings(max_examples=50, deadline=None)
    def test_rows_sum_to_one(self, x):
        probs = softmax(x)
        assert np.allclose(probs.sum(axis=-1), 1.0)
        assert np.all(probs >= 0)

    @given(finite_rows)
    @settings(max_examples=50, deadline=None)
    def test_shift_invariance(self, x):
        assert np.allclose(softmax(x), softmax(x + 123.0))

    def test_extreme_values_stable(self):
        probs = softmax(np.array([1e4, 0.0, -1e4]))
        assert np.isfinite(probs).all()
        assert probs[0] == pytest.approx(1.0)

    def test_matches_log_softmax(self):
        x = np.random.default_rng(0).normal(size=(4, 9))
        assert np.allclose(np.log(softmax(x)), log_softmax(x))

    def test_axis_argument(self):
        x = np.random.default_rng(1).normal(size=(3, 5))
        assert np.allclose(softmax(x, axis=0).sum(axis=0), 1.0)


class TestLayerNorm:
    def test_zero_mean_unit_var(self):
        x = np.random.default_rng(2).normal(3.0, 5.0, size=(7, 16))
        y = layer_norm(x, np.ones(16), np.zeros(16))
        assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(y.var(axis=-1), 1.0, atol=1e-3)

    def test_gamma_beta_applied(self):
        x = np.random.default_rng(3).normal(size=(2, 8))
        gamma, beta = 2.0 * np.ones(8), 3.0 * np.ones(8)
        y = layer_norm(x, gamma, beta)
        assert np.allclose(y.mean(axis=-1), 3.0, atol=1e-9)

    def test_constant_row_is_safe(self):
        y = layer_norm(np.full((1, 8), 5.0), np.ones(8), np.zeros(8))
        assert np.isfinite(y).all()


class TestActivations:
    def test_gelu_limits(self):
        assert gelu(np.array([100.0]))[0] == pytest.approx(100.0)
        assert gelu(np.array([-100.0]))[0] == pytest.approx(0.0, abs=1e-6)
        assert gelu(np.array([0.0]))[0] == 0.0

    def test_gelu_monotone_above_dip(self):
        # GELU has a local minimum near x = -0.75; it is monotone above.
        x = np.linspace(-0.7, 5, 200)
        assert np.all(np.diff(gelu(x)) > -1e-9)

    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_linear_with_and_without_bias(self):
        x = np.ones((2, 3))
        w = np.eye(3)
        assert np.allclose(linear(x, w), x)
        assert np.allclose(linear(x, w, np.ones(3)), x + 1)


class TestLosses:
    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert cross_entropy(logits, np.array([0, 1])) == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_uniform(self):
        logits = np.zeros((1, 4))
        assert cross_entropy(logits, np.array([2])) == pytest.approx(np.log(4))

    def test_kl_zero_for_identical(self):
        p = softmax(np.random.default_rng(4).normal(size=(3, 6)))
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    @given(finite_rows)
    @settings(max_examples=30, deadline=None)
    def test_kl_nonnegative(self, x):
        rng = np.random.default_rng(5)
        p = softmax(x)
        q = softmax(x + rng.normal(0, 1.0, size=x.shape))
        assert kl_divergence(p, q) >= -1e-12
