"""Unit tests for the multi-head attention layer."""

import numpy as np
import pytest

from repro.nn import softmax
from repro.nn.attention import (
    AttentionWeights,
    MultiHeadAttention,
    causal_mask,
    expand_pruned_heads,
    merge_heads,
    scaled_dot_attention,
    split_heads,
)


@pytest.fixture
def mha(rng):
    weights = AttentionWeights.random(32, np.random.default_rng(3))
    return MultiHeadAttention(weights, n_heads=4)


class TestHeadReshaping:
    def test_split_merge_roundtrip(self, rng):
        x = rng.normal(size=(10, 32))
        assert np.array_equal(merge_heads(split_heads(x, 4)), x)

    def test_split_shape(self, rng):
        heads = split_heads(rng.normal(size=(5, 32)), 8)
        assert heads.shape == (8, 5, 4)

    def test_split_rejects_indivisible(self, rng):
        with pytest.raises(ValueError):
            split_heads(rng.normal(size=(5, 30)), 4)

    def test_head_content_is_contiguous_chunk(self, rng):
        x = rng.normal(size=(3, 8))
        heads = split_heads(x, 2)
        assert np.array_equal(heads[0], x[:, :4])
        assert np.array_equal(heads[1], x[:, 4:])


class TestCausalMask:
    def test_square_lower_triangular(self):
        mask = causal_mask(4, 4)
        assert np.array_equal(mask, np.tril(np.ones((4, 4), dtype=bool)))

    def test_offset_for_generation(self):
        # A single query at absolute position 5 sees all six keys.
        mask = causal_mask(1, 6, query_offset=5)
        assert mask.all()

    def test_offset_blocks_future(self):
        mask = causal_mask(2, 6, query_offset=3)
        assert mask[0, :4].all() and not mask[0, 4:].any()
        assert mask[1, :5].all() and not mask[1, 5:].any()


class TestScaledDotAttention:
    def test_probs_rows_normalised(self, rng):
        q = rng.normal(size=(2, 5, 8))
        k = rng.normal(size=(2, 7, 8))
        v = rng.normal(size=(2, 7, 8))
        out, probs = scaled_dot_attention(q, k, v)
        assert out.shape == (2, 5, 8)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_masked_positions_get_zero_probability(self, rng):
        q = rng.normal(size=(1, 3, 8))
        k = rng.normal(size=(1, 3, 8))
        v = rng.normal(size=(1, 3, 8))
        _, probs = scaled_dot_attention(q, k, v, mask=causal_mask(3, 3))
        assert probs[0, 0, 1] == pytest.approx(0.0, abs=1e-12)
        assert probs[0, 0, 2] == pytest.approx(0.0, abs=1e-12)

    def test_all_true_mask_matches_no_mask(self, rng):
        """An all-True mask excludes nothing; the fast path that skips
        the np.where copy must be bit-identical to masking (and to no
        mask at all)."""
        q = rng.normal(size=(2, 4, 8))
        k = rng.normal(size=(2, 6, 8))
        v = rng.normal(size=(2, 6, 8))
        out_none, probs_none = scaled_dot_attention(q, k, v, mask=None)
        mask = np.ones((4, 6), dtype=bool)
        out_mask, probs_mask = scaled_dot_attention(q, k, v, mask=mask)
        assert np.array_equal(out_none, out_mask)
        assert np.array_equal(probs_none, probs_mask)

    def test_partial_mask_still_masks(self, rng):
        q = rng.normal(size=(1, 2, 8))
        k = rng.normal(size=(1, 2, 8))
        v = rng.normal(size=(1, 2, 8))
        mask = np.array([[True, False], [True, True]])
        _, probs = scaled_dot_attention(q, k, v, mask=mask)
        assert probs[0, 0, 1] == pytest.approx(0.0, abs=1e-12)
        assert probs[0, 1, 1] > 0.0

    def test_uniform_when_keys_identical(self, rng):
        q = rng.normal(size=(1, 2, 8))
        k = np.tile(rng.normal(size=(1, 1, 8)), (1, 5, 1))
        v = rng.normal(size=(1, 5, 8))
        _, probs = scaled_dot_attention(q, k, v)
        assert np.allclose(probs, 0.2)

    def test_matches_manual_computation(self, rng):
        q = rng.normal(size=(1, 2, 4))
        k = rng.normal(size=(1, 3, 4))
        v = rng.normal(size=(1, 3, 4))
        out, probs = scaled_dot_attention(q, k, v)
        manual = softmax(q[0] @ k[0].T / 2.0) @ v[0]
        assert np.allclose(out[0], manual)


class TestMultiHeadAttention:
    def test_forward_shapes_and_record(self, mha, rng):
        x = rng.normal(size=(6, 32))
        out, record = mha.forward(x)
        assert out.shape == (6, 32)
        assert record.probs.shape == (4, 6, 6)
        assert record.head_outputs.shape == (4, 6, 8)
        assert np.array_equal(record.key_token_ids, np.arange(6))
        assert np.array_equal(record.head_ids, np.arange(4))

    def test_causal_forward(self, mha, rng):
        x = rng.normal(size=(5, 32))
        _, record = mha.forward(x, causal=True)
        upper = np.triu_indices(5, k=1)
        assert np.allclose(record.probs[:, upper[0], upper[1]], 0.0, atol=1e-12)

    def test_kv_override_for_generation(self, mha, rng):
        x = rng.normal(size=(1, 32))
        k = rng.normal(size=(4, 9, 8))
        v = rng.normal(size=(4, 9, 8))
        out, record = mha.forward(x, kv=(k, v))
        assert out.shape == (1, 32)
        assert record.n_keys == 9

    def test_weight_shape_validation(self):
        with pytest.raises(ValueError):
            AttentionWeights(
                wq=np.zeros((4, 4)), wk=np.zeros((4, 4)),
                wv=np.zeros((4, 4)), wo=np.zeros((4, 3)),
                bq=np.zeros(4), bk=np.zeros(4), bv=np.zeros(4), bo=np.zeros(4),
            )

    def test_head_count_must_divide(self):
        weights = AttentionWeights.random(32, np.random.default_rng(0))
        with pytest.raises(ValueError):
            MultiHeadAttention(weights, n_heads=5)


class TestExpandPrunedHeads:
    def test_scatter_and_zero_fill(self, rng):
        kept = rng.normal(size=(2, 3, 4))
        full = expand_pruned_heads(kept, np.array([0, 3]), 4)
        assert full.shape == (4, 3, 4)
        assert np.array_equal(full[0], kept[0])
        assert np.array_equal(full[3], kept[1])
        assert np.all(full[1] == 0) and np.all(full[2] == 0)

    def test_mismatched_ids_rejected(self, rng):
        with pytest.raises(ValueError):
            expand_pruned_heads(rng.normal(size=(2, 3, 4)), np.array([0]), 4)

    def test_output_projection_consistency(self, mha, rng):
        """Pruning no heads and expanding is identical to the dense path."""
        x = rng.normal(size=(4, 32))
        out_dense, record = mha.forward(x)
        expanded = expand_pruned_heads(
            record.head_outputs, np.arange(4), 4
        )
        assert np.allclose(mha.output_projection(expanded), out_dense)
