"""Tests for the ASCII chart renderer."""

import pytest

from repro.eval.charts import bar_chart, line_chart


class TestLineChart:
    def test_renders_all_points(self):
        chart = line_chart([1, 2, 4, 8], [10, 20, 25, 26], title="t")
        assert chart.count("*") >= 4
        assert "t" in chart

    def test_monotone_series_shape(self):
        chart = line_chart([0, 1, 2, 3], [0, 1, 2, 3], height=4, width=8)
        rows = [line for line in chart.splitlines() if "|" in line]
        first_star_rows = [i for i, r in enumerate(rows) if "*" in r]
        # Increasing series: stars appear from top-right to bottom-left.
        assert first_star_rows[0] < first_star_rows[-1] or len(first_star_rows) == 1

    def test_axis_labels_present(self):
        chart = line_chart([1, 10], [5, 50], x_label="ratio", y_label="acc")
        assert "ratio" in chart and "acc" in chart

    def test_log_x(self):
        chart = line_chart([1, 10, 100], [1, 2, 3], log_x=True)
        assert "*" in chart

    def test_constant_series_safe(self):
        chart = line_chart([0, 1], [5, 5])
        assert "*" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([1], [1])
        with pytest.raises(ValueError):
            line_chart([1, 2], [1])


class TestBarChart:
    def test_bars_scale(self):
        chart = bar_chart({"a": 1.0, "b": 2.0}, width=20)
        rows = chart.splitlines()
        assert rows[0].count("#") < rows[1].count("#")

    def test_log_scale(self):
        chart = bar_chart({"x": 10.0, "y": 1000.0}, log_scale=True, width=30)
        rows = chart.splitlines()
        assert 0 < rows[0].count("#") < rows[1].count("#")

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0}, log_scale=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_unit_suffix(self):
        assert "5.00x" in bar_chart({"a": 5.0}, unit="x")
