"""Integration tests for the SpAttenExecutor (the full algorithm stack)."""

import numpy as np
import pytest

from repro.config import PruningConfig, QuantConfig
from repro.core import SpAttenExecutor, spatten_trace
from repro.nn import DenseExecutor


@pytest.fixture
def full_stack_executor(moderate_pruning, progressive_quant):
    return SpAttenExecutor(pruning=moderate_pruning, quant=progressive_quant)


class TestEncoderPath:
    def test_identity_when_disabled(self, tiny_encoder, sample_tokens):
        """With pruning and quantization off the executor must reproduce
        dense attention bit-for-bit."""
        dense = tiny_encoder.encode(sample_tokens, executor=DenseExecutor())
        spatten = tiny_encoder.encode(sample_tokens, executor=SpAttenExecutor())
        assert np.allclose(dense.hidden, spatten.hidden, atol=1e-10)
        assert np.array_equal(dense.positions, spatten.positions)

    def test_measured_trace_matches_analytic(
        self, tiny_encoder, sample_tokens, moderate_pruning, progressive_quant
    ):
        executor = SpAttenExecutor(moderate_pruning, progressive_quant)
        tiny_encoder.encode(sample_tokens, executor=executor)
        analytic = spatten_trace(
            tiny_encoder.config, moderate_pruning, progressive_quant,
            len(sample_tokens),
        )
        assert executor.trace.count_signature() == analytic.count_signature()

    def test_cls_always_survives(self, tiny_encoder, sample_tokens):
        executor = SpAttenExecutor(PruningConfig(token_keep_final=0.15))
        result = tiny_encoder.encode(sample_tokens, executor=executor)
        assert 0 in result.positions
        result.pooled("cls")  # must not raise

    def test_cascade_monotonicity(self, tiny_encoder, sample_tokens):
        """Once pruned, a token never reappears: the live sets across
        layers form a decreasing chain."""
        executor = SpAttenExecutor(PruningConfig(token_keep_final=0.3))
        result = tiny_encoder.encode(sample_tokens, executor=executor)
        previous = set(range(len(sample_tokens)))
        for record in result.records:
            current = set(int(t) for t in record.key_token_ids)
            assert current.issubset(previous)
            previous = current

    def test_head_cascade_monotonicity(self, tiny_encoder, sample_tokens):
        executor = SpAttenExecutor(PruningConfig(head_keep_final=0.5))
        result = tiny_encoder.encode(sample_tokens, executor=executor)
        previous = set(range(4))
        for record in result.records:
            current = set(int(h) for h in record.head_ids)
            assert current.issubset(previous)
            previous = current
        assert len(previous) == 2

    def test_moderate_pruning_output_close_to_dense(
        self, tiny_encoder, sample_tokens
    ):
        """Pruning the least-attended half of tokens perturbs the CLS
        feature, but far less than the feature scale."""
        dense = tiny_encoder.encode(sample_tokens).pooled("cls")
        executor = SpAttenExecutor(PruningConfig(token_keep_final=0.6))
        pruned = tiny_encoder.encode(
            sample_tokens, executor=executor
        ).pooled("cls")
        rel_err = np.linalg.norm(pruned - dense) / np.linalg.norm(dense)
        assert rel_err < 0.8

    def test_quantization_only_perturbs_slightly(self, tiny_encoder, sample_tokens):
        dense = tiny_encoder.encode(sample_tokens).hidden
        executor = SpAttenExecutor(
            quant=QuantConfig(msb_bits=12, lsb_bits=4, progressive=False)
        )
        quantized = tiny_encoder.encode(sample_tokens, executor=executor).hidden
        rel = np.abs(quantized - dense).mean() / np.abs(dense).mean()
        assert rel < 0.15

    def test_aggressive_msb_hurts_more_than_full(self, tiny_encoder, sample_tokens):
        dense = tiny_encoder.encode(sample_tokens).hidden

        def error(quant):
            out = tiny_encoder.encode(
                sample_tokens, executor=SpAttenExecutor(quant=quant)
            ).hidden
            return np.abs(out - dense).mean()

        err4 = error(QuantConfig(msb_bits=4, lsb_bits=4, progressive=False))
        err12 = error(QuantConfig(msb_bits=12, lsb_bits=4, progressive=False))
        assert err4 > err12

    def test_progressive_at_least_as_accurate_as_static(
        self, tiny_encoder, sample_tokens
    ):
        dense = tiny_encoder.encode(sample_tokens).hidden

        def error(progressive):
            quant = QuantConfig(
                msb_bits=4, lsb_bits=4, progressive=progressive, threshold=0.5
            )
            out = tiny_encoder.encode(
                sample_tokens, executor=SpAttenExecutor(quant=quant)
            ).hidden
            return np.abs(out - dense).mean()

        assert error(True) <= error(False) + 1e-12

    def test_value_pruning_reported_in_records(self, tiny_encoder, sample_tokens):
        executor = SpAttenExecutor(PruningConfig(value_keep=0.5))
        result = tiny_encoder.encode(sample_tokens, executor=executor)
        for record in result.records:
            assert record.value_kept is not None
            assert np.all(record.value_kept == int(np.ceil(0.5 * record.n_keys)))


class TestDecoderPath:
    def test_identity_when_disabled(self, tiny_decoder, sample_tokens):
        dense = tiny_decoder.generate(sample_tokens, 4)
        spatten = tiny_decoder.generate(
            sample_tokens, 4, executor=SpAttenExecutor()
        )
        assert dense.token_ids == spatten.token_ids
        assert np.allclose(dense.logits[-1], spatten.logits[-1], atol=1e-9)

    def test_measured_trace_matches_analytic(
        self, tiny_decoder, sample_tokens, moderate_pruning, progressive_quant
    ):
        executor = SpAttenExecutor(moderate_pruning, progressive_quant)
        tiny_decoder.generate(sample_tokens, 5, executor=executor)
        analytic = spatten_trace(
            tiny_decoder.config, moderate_pruning, progressive_quant,
            len(sample_tokens), n_generate=5,
        )
        assert executor.trace.count_signature() == analytic.count_signature()

    def test_kv_cache_evicted_on_prune(self, tiny_decoder, sample_tokens):
        pruning = PruningConfig(token_keep_final=0.3)
        executor = SpAttenExecutor(pruning)
        tiny_decoder.generate(sample_tokens, 3, executor=executor)
        total = len(sample_tokens) + 3
        for layer_cache in executor._cache.layers:
            assert len(layer_cache) <= max(round(0.3 * total), 2) + 1

    def test_current_token_protected_in_decode(self, tiny_decoder, sample_tokens):
        pruning = PruningConfig(token_keep_final=0.2)
        executor = SpAttenExecutor(pruning)
        gen = tiny_decoder.generate(
            sample_tokens, 3, executor=executor, collect_records=True
        )
        for step_idx, records in enumerate(gen.step_records):
            current_position = len(sample_tokens) + step_idx
            for record in records:
                assert current_position in record.key_token_ids

    def test_generation_with_full_stack_runs(
        self, tiny_decoder, sample_tokens, full_stack_executor
    ):
        result = tiny_decoder.generate(
            sample_tokens, 6, executor=full_stack_executor
        )
        assert result.n_generated == 6
        trace = full_stack_executor.trace
        assert trace.n_generated == 6
        assert len(trace.decode_steps) == 6 * 4

    def test_decode_before_summarize_rejected(self, tiny_decoder):
        executor = SpAttenExecutor()
        executor.begin_sequence(tiny_decoder)
        with pytest.raises(RuntimeError):
            executor.run_layer(
                0, tiny_decoder, np.zeros((1, 32)), np.array([0]), "decode"
            )

    def test_unknown_stage_rejected(self, tiny_decoder):
        executor = SpAttenExecutor()
        executor.begin_sequence(tiny_decoder)
        with pytest.raises(ValueError):
            executor.run_layer(
                0, tiny_decoder, np.zeros((1, 32)), np.array([0]), "train"
            )


class TestImportanceSemantics:
    def test_attended_token_survives_next_layer(self, tiny_encoder, rng):
        """Cascade semantics: pruning at layer l+1 uses the scores
        accumulated through layer l, so the token with the largest
        layer-0 column mass must survive layer 1's pruning."""
        tokens = rng.integers(0, 64, size=16).tolist()
        probe = SpAttenExecutor()
        result = tiny_encoder.encode(tokens, executor=probe)
        layer0_mass = result.records[0].probs.sum(axis=(0, 1))
        favourite = int(np.argmax(layer0_mass[1:]) + 1)  # skip CLS slot

        executor = SpAttenExecutor(PruningConfig(token_keep_final=0.25))
        pruned = tiny_encoder.encode(tokens, executor=executor)
        assert favourite in pruned.records[1].key_token_ids

    def test_weak_head_pruned_first(self, tiny_encoder, sample_tokens):
        """Cascade semantics: the head pruned at layer l is the one with
        the smallest magnitude accumulated through layer l-1."""
        probe = SpAttenExecutor()
        result_probe = tiny_encoder.encode(sample_tokens, executor=probe)
        executor = SpAttenExecutor(PruningConfig(head_keep_final=0.75))
        result = tiny_encoder.encode(sample_tokens, executor=executor)
        # Find the layer where the head count first drops.
        counts = [len(r.head_ids) for r in result.records]
        drop_layer = next(
            i for i in range(1, len(counts)) if counts[i] < counts[i - 1]
        )
        magnitudes = np.zeros(4)
        for record in result_probe.records[:drop_layer]:
            magnitudes += np.abs(record.head_outputs).sum(axis=(1, 2))
        weakest = int(np.argmin(magnitudes))
        assert weakest not in result.records[drop_layer].head_ids
