"""Tests for the HAT co-design search (Fig. 16/17)."""

import numpy as np
import pytest

from repro.codesign import hat


class TestDesignAccounting:
    def test_transformer_base_anchors(self):
        """FLOPs accounting must match the paper's Fig. 17 for vanilla
        Transformer-Base: ~2.7 GFLOPs FC, ~28.9 MFLOPs attention."""
        attn, fc = hat.design_flops(hat.TRANSFORMER_BASE)
        assert fc / 1e9 == pytest.approx(2.7, rel=0.1)
        assert attn / 1e6 == pytest.approx(28.9, rel=0.15)

    def test_parameter_counts(self):
        base = hat.design_parameters(hat.TRANSFORMER_BASE)
        big = hat.design_parameters(hat.TRANSFORMER_BIG)
        assert base / 1e6 == pytest.approx(44.0, rel=0.05)
        assert big / base == pytest.approx(4.0, rel=0.05)

    def test_bleu_anchors(self):
        assert hat.bleu_surrogate(hat.TRANSFORMER_BASE) == pytest.approx(27.6, abs=0.15)
        assert hat.bleu_surrogate(hat.TRANSFORMER_BIG) == pytest.approx(28.4, abs=0.15)

    def test_bleu_monotone_in_depth(self):
        shallow = hat.TransformerDesign(512, 2048, 1)
        deep = hat.TransformerDesign(512, 2048, 6)
        assert hat.bleu_surrogate(deep) > hat.bleu_surrogate(shallow)

    def test_latency_monotone_in_ffn(self):
        small = hat.TransformerDesign(512, 512, 4)
        big = hat.TransformerDesign(512, 3072, 4)
        assert hat.spatten_e2e_latency(big) > hat.spatten_e2e_latency(small)

    def test_fc_bits_scale_latency(self):
        design = hat.TRANSFORMER_BASE
        assert hat.spatten_e2e_latency(design, fc_bits=12) > (
            hat.spatten_e2e_latency(design, fc_bits=8)
        )

    def test_arbitrary_attn_increases_attention_flops(self):
        narrow = hat.TransformerDesign(512, 2048, 6, arbitrary_attn=(1, 1, 1))
        wide = hat.TransformerDesign(512, 2048, 6, arbitrary_attn=(3, 3, 3))
        attn_narrow, _ = hat.design_flops(narrow)
        attn_wide, _ = hat.design_flops(wide)
        assert attn_wide > attn_narrow

    def test_design_validation(self):
        with pytest.raises(ValueError):
            hat.TransformerDesign(510, 2048, 6)  # not divisible by heads
        with pytest.raises(ValueError):
            hat.TransformerDesign(512, 2048, 6, arbitrary_attn=(1, 1))


class TestEvolutionarySearch:
    def test_respects_latency_constraint(self):
        big = hat.evaluate_design(hat.TRANSFORMER_BIG)
        constraint = big.latency_s * 0.3
        best = hat.evolutionary_search(constraint, seed=0, population=24,
                                       generations=10)
        assert best.latency_s <= constraint

    def test_bleu_increases_with_budget(self):
        big = hat.evaluate_design(hat.TRANSFORMER_BIG)
        tight = hat.evolutionary_search(big.latency_s * 0.1, seed=0,
                                        population=24, generations=10)
        loose = hat.evolutionary_search(big.latency_s * 0.5, seed=0,
                                        population=24, generations=10)
        assert loose.bleu >= tight.bleu

    def test_beats_vanilla_scaling_at_matched_latency(self):
        """The co-design headline: at a vanilla design's latency the
        searched design reaches at least its BLEU (usually more)."""
        vanilla = hat.evaluate_design(hat.TransformerDesign(512, 2048, 4))
        best = hat.evolutionary_search(vanilla.latency_s, seed=1,
                                       population=32, generations=15)
        assert best.bleu >= vanilla.bleu - 0.05

    def test_deterministic_given_seed(self):
        constraint = 2e-3
        a = hat.evolutionary_search(constraint, seed=5, population=16,
                                    generations=5)
        b = hat.evolutionary_search(constraint, seed=5, population=16,
                                    generations=5)
        assert a.design == b.design

    def test_invalid_constraint(self):
        with pytest.raises(ValueError):
            hat.evolutionary_search(0.0)


class TestVanillaScalingCurves:
    def test_layer_scaling_monotone_latency(self):
        points = hat.vanilla_layer_scaling()
        latencies = [p.latency_s for p in points]
        assert latencies == sorted(latencies)
        assert len(points) == 6

    def test_dim_scaling_reaches_big(self):
        points = hat.vanilla_dim_scaling()
        assert points[-1].design == hat.TRANSFORMER_BIG
        bleus = [p.bleu for p in points]
        assert bleus == sorted(bleus)
