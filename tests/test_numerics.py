"""Tests for the numerics ladder (:mod:`repro.nn.numerics`).

The ladder's contract has three parts, each tested here:

* **Resolution** — tier names, policy pass-through, and the default all
  resolve deterministically; unknown tiers fail loudly.
* **Exact stays exact** — ``numerics="exact"`` changes *nothing*: the
  packed backend and executors remain bit-identical to the looped fp64
  oracle across dense, SpAtten (pruning + progressive quantization),
  and fallback rows, exactly as the pre-ladder identity suite asserts.
* **Non-exact tiers are correct, not just fast** — fp32/int8 logits
  track the oracle within tier-appropriate tolerance; the arena's
  steady-state incremental updates agree bit-for-bit with a full
  rebuild from cache truth (exercised via mid-run executor cloning);
  the int8 hot path's inlined quantization matches
  :func:`repro.core.quantization.quantize_rows` code-for-code and
  scale-for-scale; and the serving engine refuses tier/backend
  combinations it cannot honour.
"""

import copy

import numpy as np
import pytest

from repro.config import GPT2_SMALL, ModelConfig, PruningConfig, QuantConfig
from repro.core.pipeline import SpAttenExecutor
from repro.nn import PackedDecodeBackend, TransformerModel, random_model
from repro.nn.numerics import (
    EXACT,
    FP32,
    INT8,
    NUMERICS_LADDER,
    NumericsPolicy,
    resolve_numerics,
)
from repro.nn.transformer import DenseExecutor
from repro.serving import KVMemoryPool, ServingEngine
from repro.workloads import (
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
)

PRUNING = PruningConfig(
    token_keep_final=0.4, head_keep_final=0.5, value_keep=0.9
)
QUANT = QuantConfig(msb_bits=6, lsb_bits=4, progressive=True, threshold=0.1)


@pytest.fixture(scope="module")
def decoder():
    config = ModelConfig(
        "numerics-decoder", n_layers=3, n_heads=4, d_model=32, d_ff=64,
        vocab_size=96, max_seq_len=160, causal=True,
    )
    return TransformerModel(config, random_model(config, seed=33))


def _prefilled(model, spec, seed, numerics=None):
    """Executors from ``[(kind, prompt_len), ...]`` at one ladder tier."""
    rng = np.random.default_rng(seed)
    executors = []
    for kind, prompt_len in spec:
        if kind == "dense":
            executor = DenseExecutor(numerics=numerics)
        elif kind == "spatten":
            executor = SpAttenExecutor(PRUNING, numerics=numerics)
        elif kind == "quant":
            executor = SpAttenExecutor(PRUNING, QUANT, numerics=numerics)
        else:  # pragma: no cover - spec typo guard
            raise ValueError(kind)
        prompt = rng.integers(0, model.config.vocab_size, size=prompt_len)
        model.prefill(prompt.tolist(), executor)
        executors.append(executor)
    return executors


class TestResolution:
    def test_ladder_names_resolve_to_singletons(self):
        assert resolve_numerics("exact") is EXACT
        assert resolve_numerics("fp32") is FP32
        assert resolve_numerics("int8") is INT8

    def test_none_defaults_to_exact(self):
        assert resolve_numerics(None) is EXACT

    def test_policy_passes_through(self):
        assert resolve_numerics(INT8) is INT8

    def test_unknown_tier_raises_with_choices(self):
        with pytest.raises(ValueError, match="fp32"):
            resolve_numerics("bf16")

    def test_ladder_order_and_flags(self):
        assert NUMERICS_LADDER == ("exact", "fp32", "int8")
        assert EXACT.is_exact and not FP32.is_exact and not INT8.is_exact
        assert INT8.quantized_gemm and not FP32.quantized_gemm

    def test_storage_bytes_fall_back_to_model_width(self):
        assert EXACT.storage_bytes_per_element(2) == 2
        assert FP32.storage_bytes_per_element(2) == 4
        assert INT8.storage_bytes_per_element(2) == 1

    def test_policies_are_frozen(self):
        with pytest.raises(AttributeError):
            EXACT.name = "renamed"

    def test_budgets_tighten_down_the_ladder(self):
        assert EXACT.kl_budget == 0.0 and EXACT.argmax_budget == 1.0
        assert 0.0 < FP32.kl_budget < INT8.kl_budget
        assert 1.0 > FP32.argmax_budget > INT8.argmax_budget

    def test_custom_policy_is_accepted(self):
        custom = NumericsPolicy(
            name="fp32-wide", compute_dtype=np.float32,
            kv_dtype=np.float32, kv_bytes_per_element=4,
            quantized_gemm=False, kl_budget=1e-3, argmax_budget=0.99,
        )
        assert resolve_numerics(custom) is custom
        assert not custom.is_exact


class TestExactTierBitIdentity:
    """``numerics="exact"`` must change nothing, anywhere."""

    @pytest.mark.smoke
    def test_mixed_batch_matches_looped_oracle(self, decoder):
        spec = [("dense", 5), ("spatten", 30), ("quant", 12), ("dense", 23)]
        backend = PackedDecodeBackend(decoder, numerics="exact")
        looped = _prefilled(decoder, spec, seed=3)
        packed = _prefilled(decoder, spec, seed=3, numerics="exact")
        tokens = [7] * len(spec)
        positions = [length for _, length in spec]
        for step in range(6):
            ll = decoder.decode_step_batch(tokens, positions, looped)
            pl = decoder.decode_step_batch(
                tokens, positions, packed, backend=backend
            )
            assert np.array_equal(ll, pl), f"step {step} diverged"
            tokens = [int(np.argmax(row)) for row in ll]
            positions = [p + 1 for p in positions]

    def test_exact_executor_stores_fp64(self, decoder):
        executor = _prefilled(decoder, [("dense", 6)], seed=1,
                              numerics="exact")[0]
        assert executor._cache[0].dtype == np.dtype(np.float64)
        assert executor.numerics.is_exact


class TestNonExactTiers:
    """fp32/int8 are allowed to drift — within tier-sized bounds."""

    def _oracle_and_tier(self, model, spec, tier, n_steps, seed=9):
        policy = resolve_numerics(tier)
        backend = PackedDecodeBackend(model, numerics=policy)
        oracle_execs = _prefilled(model, spec, seed)
        tier_execs = _prefilled(model, spec, seed, numerics=policy)
        tokens = [5] * len(spec)
        positions = [length for _, length in spec]
        pairs = []
        for _ in range(n_steps):
            ol = model.decode_step_batch(tokens, positions, oracle_execs)
            tl = model.decode_step_batch(
                tokens, positions, tier_execs, backend=backend
            )
            pairs.append((ol, np.asarray(tl, dtype=np.float64)))
            # Teacher-force the oracle's choice so inputs stay aligned.
            tokens = [int(np.argmax(row)) for row in ol]
            positions = [p + 1 for p in positions]
        return pairs

    @pytest.mark.smoke
    def test_fp32_tracks_oracle_tightly(self, decoder):
        spec = [("dense", 5), ("dense", 23), ("dense", 11)]
        for ol, tl in self._oracle_and_tier(decoder, spec, "fp32", 6):
            assert np.allclose(tl, ol, rtol=1e-4, atol=1e-4)

    @pytest.mark.smoke
    def test_int8_tracks_oracle_within_budget_scale(self, decoder):
        spec = [("dense", 5), ("dense", 23), ("dense", 11)]
        for ol, tl in self._oracle_and_tier(decoder, spec, "int8", 6):
            rel = np.linalg.norm(tl - ol) / np.linalg.norm(ol)
            assert rel < 0.05, f"int8 logits drifted {rel:.3f} in L2"

    def test_non_exact_spatten_rows_still_prune(self, decoder):
        spec = [("spatten", 48), ("spatten", 36)]
        policy = resolve_numerics("int8")
        backend = PackedDecodeBackend(decoder, numerics=policy)
        execs = _prefilled(decoder, spec, seed=5, numerics=policy)
        tokens, positions = [1, 2], [48, 36]
        for _ in range(10):
            logits = decoder.decode_step_batch(
                tokens, positions, execs, backend=backend
            )
            assert np.isfinite(logits).all()
            tokens = [int(np.argmax(row)) for row in logits]
            positions = [p + 1 for p in positions]
        assert execs[0].evicted_kv_tokens > 0, "schedule never evicted"
        assert execs[0]._cache[0].dtype == np.dtype(np.int8)

    @pytest.mark.parametrize("tier", ["fp32", "int8"])
    def test_arena_incremental_matches_rebuild_from_truth(
        self, decoder, tier
    ):
        """Steady-state tail writes == full rebuild from cache truth.

        Cloned executors are not arena owners (ownership is by object
        identity), so continuing a cloned batch forces every row through
        the rebuild path; the original batch keeps its incremental
        arena.  Both must produce bit-identical logits — otherwise the
        arena is drifting from the caches it mirrors.
        """
        spec = [("dense", 5), ("dense", 23), ("dense", 11)]
        policy = resolve_numerics(tier)
        backend = PackedDecodeBackend(decoder, numerics=policy)
        execs = _prefilled(decoder, spec, seed=7, numerics=policy)
        tokens = [3] * len(spec)
        positions = [length for _, length in spec]
        for _ in range(4):  # populate arena steady state
            logits = decoder.decode_step_batch(
                tokens, positions, execs, backend=backend
            )
            tokens = [int(np.argmax(row)) for row in logits]
            positions = [p + 1 for p in positions]
        cloned = copy.deepcopy(execs)
        fresh_backend = PackedDecodeBackend(decoder, numerics=policy)
        for _ in range(3):
            incremental = decoder.decode_step_batch(
                tokens, positions, execs, backend=backend
            )
            rebuilt = decoder.decode_step_batch(
                tokens, positions, cloned, backend=fresh_backend
            )
            assert np.array_equal(incremental, rebuilt)
            tokens = [int(np.argmax(row)) for row in incremental]
            positions = [p + 1 for p in positions]


class TestHotPathQuantization:
    """The int8 decode hot path inlines ``quantize_rows`` — prove it."""

    def test_inline_decode_quantization_matches_quantize_rows(self, decoder):
        from repro.core.quantization import quantize_rows

        spec = [("dense", 9), ("dense", 14)]
        fp32_execs = _prefilled(decoder, spec, seed=11, numerics="fp32")
        int8_execs = _prefilled(decoder, spec, seed=11, numerics="int8")
        fp32_backend = PackedDecodeBackend(decoder, numerics="fp32")
        int8_backend = PackedDecodeBackend(decoder, numerics="int8")
        tokens, positions = [4, 8], [9, 14]
        decoder.decode_step_batch(
            tokens, positions, fp32_execs, backend=fp32_backend
        )
        decoder.decode_step_batch(
            tokens, positions, int8_execs, backend=int8_backend
        )
        # Layer 0 consumes identical fp32 inputs on both tiers (drift
        # only compounds *after* the first attention), so the fp32
        # cache's appended layer-0 column is exactly what the int8 hot
        # path quantized.  Its stored codes and scales must equal a
        # from-scratch quantize_rows of that column, bit for bit.
        for ex32, ex8 in zip(fp32_execs, int8_execs):
            ref_cache = ex32._cache[0]
            hot_cache = ex8._cache[0]
            pos = len(ref_cache) - 1
            for ref_plane, codes_plane, scales_plane in (
                (ref_cache.keys, hot_cache._keys, hot_cache._kscales),
                (ref_cache.values, hot_cache._values, hot_cache._vscales),
            ):
                ref_col = ref_plane[:, pos, :]  # [h, D] fp32
                want_codes, want_scales = quantize_rows(ref_col, bits=8)
                assert np.array_equal(codes_plane[:, pos], want_codes)
                assert np.array_equal(scales_plane[:, pos],
                                      want_scales[:, 0])


class TestServingEngineNumerics:
    @pytest.fixture(scope="class")
    def small_world(self):
        vocab = build_vocabulary(size=512, n_classes=4, seed=0)
        config = accuracy_scale_config(
            GPT2_SMALL, len(vocab), n_layers=2, d_model=64, n_heads=4,
            max_seq_len=160,
        )
        model, _ = build_task_model(config, vocab, "lm", seed=0)
        pool = KVMemoryPool(
            config,
            budget_bytes=64 * 8 * 2 * config.n_heads * config.head_dim
            * config.bytes_per_element,
            page_tokens=8,
        )
        return config, model, pool

    def test_non_exact_requires_packed_backend(self, small_world):
        _, model, pool = small_world
        with pytest.raises(ValueError, match="packed"):
            ServingEngine(
                model, pool, numerics="fp32", attention_backend="looped"
            )

    def test_unknown_tier_rejected(self, small_world):
        _, model, pool = small_world
        with pytest.raises(ValueError, match="numerics"):
            ServingEngine(model, pool, numerics="fp8")

    def test_engine_threads_policy_into_executors(self, small_world):
        _, model, pool = small_world
        engine = ServingEngine(model, pool, numerics="int8")
        assert engine.numerics is INT8
        executor = engine._make_executor(None)
        assert executor.numerics is INT8

    def test_exact_default_unchanged(self, small_world):
        _, model, pool = small_world
        engine = ServingEngine(model, pool)
        assert engine.numerics.is_exact
