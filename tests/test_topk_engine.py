"""Unit and property tests for the hardware top-k engine, the zero
eliminator, and the Batcher sorter baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.topk import topk_indices
from repro.hardware.sorter import BatcherSorter, batcher_network, sort_with_network
from repro.hardware.topk_engine import TopKEngine
from repro.hardware.zero_eliminator import ZeroEliminator, shift_network_eliminate

value_arrays = hnp.arrays(
    np.float64,
    st.integers(1, 128),
    elements=st.floats(-100, 100, allow_nan=False),
)


class TestZeroEliminator:
    @given(hnp.arrays(np.float64, st.integers(1, 64),
                      elements=st.sampled_from([0.0, 1.0, 2.5, -3.0, 7.0])))
    @settings(max_examples=80, deadline=None)
    def test_shift_network_equals_boolean_compaction(self, values):
        compacted = shift_network_eliminate(values)
        expected = values[values != 0.0]
        assert np.array_equal(compacted, expected)

    def test_paper_example(self):
        # Fig. 10: a0b0cd0e -> abcde
        values = np.array([1.0, 0.0, 2.0, 0.0, 3.0, 4.0, 0.0, 5.0])
        assert np.array_equal(
            shift_network_eliminate(values), [1.0, 2.0, 3.0, 4.0, 5.0]
        )

    def test_all_zeros(self):
        assert len(shift_network_eliminate(np.zeros(8))) == 0

    def test_no_zeros(self):
        values = np.arange(1.0, 9.0)
        assert np.array_equal(shift_network_eliminate(values), values)

    def test_cycle_model(self):
        eliminator = ZeroEliminator(parallelism=16)
        _, cycles = eliminator.eliminate(np.ones(64))
        assert cycles == 64 / 16 + 6  # throughput + log2(64) latency
        assert eliminator.stats.elements == 64

    def test_parallelism_validation(self):
        with pytest.raises(ValueError):
            ZeroEliminator(parallelism=0)


class TestTopKEngine:
    @given(value_arrays, st.integers(1, 128), st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_selection_matches_reference(self, values, k, seed):
        k = min(k, len(values))
        engine = TopKEngine(parallelism=16, seed=seed)
        result = engine.select(values, k)
        assert np.array_equal(result.indices, topk_indices(values, k))

    def test_empty_selection(self):
        engine = TopKEngine()
        result = engine.select(np.array([1.0, 2.0]), 0)
        assert len(result.indices) == 0 and result.cycles == 0

    def test_pass_through_when_k_equals_n(self):
        engine = TopKEngine(parallelism=16)
        result = engine.select(np.arange(32.0), 32)
        assert result.n_rounds == 0
        assert result.cycles == 2  # one streaming pass

    def test_cycles_decrease_with_parallelism(self, rng):
        values = rng.random(1024)
        cycles = {}
        for parallelism in (1, 4, 16):
            engine = TopKEngine(parallelism=parallelism, seed=0)
            cycles[parallelism] = engine.select(values, 512).cycles
        assert cycles[1] > cycles[4] > cycles[16]

    def test_linear_work_on_average(self, rng):
        """Average comparator work is O(n): growing n by 8x grows work
        by roughly 8x, nothing like the n log n of a full sort."""
        engine = TopKEngine(seed=1)
        ops = {}
        for n in (128, 1024):
            totals = [
                engine.select(rng.random(n), n // 2).comparator_ops
                for _ in range(20)
            ]
            ops[n] = np.mean(totals)
        assert ops[1024] / ops[128] < 12.0

    def test_stats_accumulate(self, rng):
        engine = TopKEngine(seed=2)
        engine.select(rng.random(64), 10)
        engine.select(rng.random(64), 10)
        assert engine.stats.selections == 2
        engine.reset()
        assert engine.stats.selections == 0

    def test_expected_cycles_positive_and_monotone(self):
        engine = TopKEngine(parallelism=16)
        assert engine.expected_cycles(0) == 0
        assert 0 < engine.expected_cycles(64) < engine.expected_cycles(1024)

    def test_deterministic_given_seed(self, rng):
        values = rng.random(256)
        a = TopKEngine(seed=5).select(values, 77)
        b = TopKEngine(seed=5).select(values, 77)
        assert a.cycles == b.cycles
        assert np.array_equal(a.indices, b.indices)


class TestBatcherSorter:
    @given(hnp.arrays(np.float64, st.integers(1, 64),
                      elements=st.floats(-50, 50, allow_nan=False)))
    @settings(max_examples=40, deadline=None)
    def test_network_sorts(self, values):
        assert np.array_equal(sort_with_network(values), np.sort(values))

    def test_network_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            batcher_network(12)

    def test_comparator_count_n_log2(self):
        """Odd-even merge sort uses ~n/4 log2(n)(log2(n)+1) comparators."""
        n = 1024
        total = sum(len(stage) for stage in batcher_network(n))
        expected = n / 4 * 10 * 11
        assert total == pytest.approx(expected, rel=0.15)

    def test_topk_via_sort_matches_reference(self, rng):
        values = rng.random(100)
        sorter = BatcherSorter()
        indices, _ = sorter.topk_indices(values, 17)
        assert np.array_equal(indices, topk_indices(values, 17))

    def test_engine_beats_sorter_on_throughput(self):
        """The paper's Section IV-B claim: quick-select top-k has higher
        *average* throughput and lower energy than a full sorting unit.
        (Quick-select is randomised — individual runs can draw unlucky
        pivots — so the claim is statistical, averaged over inputs.)"""
        local_rng = np.random.default_rng(42)
        engine = TopKEngine(parallelism=16, seed=0)
        sorter = BatcherSorter()
        engine_cycles, sorter_cycles, engine_pj, sorter_pj = [], [], [], []
        for _ in range(12):
            values = local_rng.random(1024)
            engine_result = engine.select(values, 512)
            sort_result = sorter.sort(values)
            engine_cycles.append(engine_result.cycles)
            # The sorter additionally streams out the selected indices.
            sorter_cycles.append(sort_result.cycles + 1024 / 16)
            engine_pj.append(
                engine_result.comparator_ops * engine.energy_per_compare_pj
            )
            sorter_pj.append(sort_result.energy_pj)
        assert np.mean(sorter_cycles) > np.mean(engine_cycles)
        assert np.mean(sorter_pj) > np.mean(engine_pj)
