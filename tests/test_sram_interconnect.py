"""Unit tests for SRAM, FIFOs, crossbar, and the bitwidth converter."""

import numpy as np
import pytest

from repro.core.quantization import LinearQuantizer
from repro.hardware.bitwidth_converter import BitwidthConverter
from repro.hardware.crossbar import Crossbar
from repro.hardware.sram import SRAM, Fifo


class TestSRAM:
    def test_capacity_paper_sizing(self):
        """196KB double-buffered holds one 1024-token head at 12 bits."""
        sram = SRAM("key", 196 * 1024)
        working_set = 1024 * 64 * 12 / 8
        assert sram.fits(working_set)
        assert not sram.fits(working_set * 2.1)

    def test_energy_accounting(self):
        sram = SRAM("key", 1024, read_energy_pj_per_bit=1.0,
                    write_energy_pj_per_bit=2.0)
        sram.read(10)
        sram.write(10)
        assert sram.stats.energy_pj == pytest.approx(10 * 8 * 1.0 + 10 * 8 * 2.0)
        assert sram.stats.reads == 1 and sram.stats.writes == 1

    def test_reset(self):
        sram = SRAM("key", 1024)
        sram.read(100)
        sram.reset()
        assert sram.stats.bytes_read == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SRAM("bad", 0)
        sram = SRAM("key", 1024)
        with pytest.raises(ValueError):
            sram.read(-1)


class TestFifo:
    def test_fifo_ordering(self):
        fifo = Fifo(depth=4)
        for item in "abc":
            fifo.push(item)
        assert [fifo.pop() for _ in range(3)] == ["a", "b", "c"]

    def test_overflow_raises(self):
        fifo = Fifo(depth=2)
        fifo.push(1)
        fifo.push(2)
        with pytest.raises(OverflowError):
            fifo.push(3)

    def test_underflow_raises(self):
        with pytest.raises(IndexError):
            Fifo(depth=2).pop()

    def test_occupancy_tracking(self):
        fifo = Fifo(depth=8)
        for i in range(5):
            fifo.push(i)
        fifo.pop()
        assert fifo.max_occupancy == 5
        assert fifo.total_pushes == 5
        assert len(fifo) == 4

    def test_drain(self):
        fifo = Fifo(depth=4)
        fifo.push(1)
        fifo.push(2)
        assert fifo.drain() == [1, 2]
        assert fifo.empty


class TestCrossbar:
    def test_throughput_one_per_slave(self):
        xbar = Crossbar(32, 16)
        assert xbar.route(16) == 1.0
        assert xbar.route(17) == 2.0
        assert xbar.route(0) == 0.0

    def test_channel_request_bottleneck(self):
        xbar = Crossbar(32, 16)
        per_channel = [1] * 15 + [5]
        assert xbar.route_channel_requests(per_channel) == 5.0

    def test_energy_per_request(self):
        xbar = Crossbar(32, 16, energy_per_request_pj=2.0)
        xbar.route(10)
        assert xbar.stats.energy_pj == pytest.approx(20.0)

    def test_validation(self):
        xbar = Crossbar(32, 16)
        with pytest.raises(ValueError):
            xbar.route(-1)
        with pytest.raises(ValueError):
            xbar.route_channel_requests([1] * 17)


class TestBitwidthConverter:
    def test_msb_alignment_preserves_weight(self):
        converter = BitwidthConverter(onchip_bits=12)
        codes = np.array([3, -5, 0])
        aligned = converter.align_msb(codes, msb_bits=8)
        assert np.array_equal(aligned, codes << 4)

    def test_recompose_matches_quantizer_split(self):
        """Hardware recomposition == software split inversion."""
        rng = np.random.default_rng(0)
        x = rng.normal(0, 2.0, size=256)
        quantizer = LinearQuantizer(8, 4)
        q = quantizer.quantize(x)
        msb, lsb = quantizer.split(q)
        converter = BitwidthConverter(onchip_bits=12)
        onchip = converter.recompose(msb, lsb, 8, 4)
        # On-chip word = full code aligned to 12 bits (shift 0 here).
        assert np.array_equal(onchip, q.codes)

    def test_width_validation(self):
        converter = BitwidthConverter(onchip_bits=12)
        with pytest.raises(ValueError):
            converter.align_msb(np.array([1]), msb_bits=16)
        with pytest.raises(ValueError):
            converter.recompose(np.array([1]), np.array([1]), 10, 4)

    def test_accounting(self):
        converter = BitwidthConverter()
        converter.account_elements(100)
        assert converter.stats.elements_converted == 100
        with pytest.raises(ValueError):
            converter.account_elements(-1)
