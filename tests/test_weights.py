"""Tests for the constructed semantic models — the reproduction's
stand-in for trained BERT/GPT-2 (see DESIGN.md substitution table).

These assertions are the licence for every accuracy experiment: the
constructed attention must exhibit the structure the paper's pruning
exploits (salience concentration, head redundancy, local heads).
"""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.nn import (
    SemanticSpec,
    TransformerModel,
    build_semantic_model,
)
from repro.workloads import build_vocabulary
from repro.workloads.model_zoo import build_task_model, accuracy_scale_config
from repro.config import BERT_BASE, GPT2_SMALL


@pytest.fixture(scope="module")
def world():
    vocab = build_vocabulary(size=512, n_classes=2, seed=0)
    config = accuracy_scale_config(BERT_BASE, len(vocab), n_layers=4,
                                   d_model=128, n_heads=8, max_seq_len=128)
    model, info = build_task_model(config, vocab, "classification", seed=0)
    return vocab, model, info


class TestSemanticSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SemanticSpec(salience=np.array([0.5, 1.5]), evidence=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            SemanticSpec(salience=np.array([0.5]), evidence=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            SemanticSpec(salience=np.ones((2, 2)), evidence=np.zeros((2, 2)))

    def test_properties(self):
        spec = SemanticSpec(salience=np.array([0.1, 0.9]),
                            evidence=np.zeros((2, 3)))
        assert spec.vocab_size == 2
        assert spec.evidence_dim == 3


class TestConstructionValidation:
    def test_vocab_size_must_match(self):
        spec = SemanticSpec(np.ones(10) * 0.5, np.zeros((10, 2)))
        config = ModelConfig("m", 2, 2, 32, 64, vocab_size=11)
        with pytest.raises(ValueError):
            build_semantic_model(config, spec)

    def test_d_model_must_fit_features(self):
        spec = SemanticSpec(np.ones(10) * 0.5, np.zeros((10, 30)))
        config = ModelConfig("m", 2, 2, 32, 64, vocab_size=10)
        with pytest.raises(ValueError):
            build_semantic_model(config, spec)

    def test_deterministic_given_seed(self):
        spec = SemanticSpec(np.ones(16) * 0.5, np.zeros((16, 2)))
        config = ModelConfig("m", 2, 2, 32, 64, vocab_size=16)
        params_a, _ = build_semantic_model(config, spec, seed=3)
        params_b, _ = build_semantic_model(config, spec, seed=3)
        assert np.array_equal(params_a.token_embedding, params_b.token_embedding)
        assert np.array_equal(params_a.blocks[0].attn.wq, params_b.blocks[0].attn.wq)


class TestAttentionStructure:
    def test_strong_content_heads_concentrate_on_salient_tokens(self, world, rng):
        vocab, model, info = world
        tokens = rng.integers(3, 512, size=24)
        result = model.encode(tokens)
        salient = vocab.salience[tokens] > 0.3
        record = result.records[0]
        strong_content = [
            h for h in range(8)
            if info.head_strengths[0][h] > 0.7 and not info.head_is_local[0][h]
        ]
        for head in strong_content:
            mass = record.probs[head][:, salient].sum(axis=1).mean()
            assert mass > 0.75, f"head {head} salient mass only {mass:.2f}"

    def test_weak_heads_are_diffuse(self, world, rng):
        vocab, model, info = world
        tokens = rng.integers(3, 512, size=24)
        result = model.encode(tokens)
        record = result.records[0]
        weak = np.argmin(info.head_strengths[0])
        strong = np.argmax(info.head_strengths[0])
        # Entropy of the weak head's rows is higher (closer to uniform).
        def mean_entropy(head):
            probs = record.probs[head]
            return float(-(probs * np.log(probs + 1e-12)).sum(axis=1).mean())
        assert mean_entropy(weak) > mean_entropy(strong)

    def test_local_heads_attend_nearby(self, world, rng):
        vocab, model, info = world
        tokens = rng.integers(3, 512, size=32)
        result = model.encode(tokens)
        record = result.records[0]
        local_heads = np.flatnonzero(info.head_is_local[0])
        assert len(local_heads) > 0
        positions = np.arange(32)
        for head in local_heads:
            probs = record.probs[head]
            expected_distance = np.abs(
                positions[:, None] - positions[None, :]
            )
            mean_dist = (probs * expected_distance).sum(axis=1).mean()
            uniform_dist = expected_distance.mean()
            assert mean_dist < 0.6 * uniform_dist

    def test_weak_heads_write_small_outputs(self, world, rng):
        vocab, model, info = world
        tokens = rng.integers(3, 512, size=16)
        result = model.encode(tokens)
        record = result.records[0]
        magnitudes = np.abs(record.head_outputs).sum(axis=(1, 2))
        weak = np.argmin(info.head_strengths[0])
        assert magnitudes[weak] < np.median(magnitudes)

    def test_head_strengths_consistent_across_layers(self, world):
        _, _, info = world
        correlations = [
            np.corrcoef(info.head_strengths[0], info.head_strengths[layer])[0, 1]
            for layer in range(1, info.head_strengths.shape[0])
        ]
        assert min(correlations) > 0.95


class TestLmConstruction:
    def test_next_token_prefers_live_topic(self):
        vocab = build_vocabulary(size=512, n_classes=4, seed=0)
        config = accuracy_scale_config(GPT2_SMALL, len(vocab), n_layers=4,
                                       d_model=128, n_heads=8, max_seq_len=128)
        model, _ = build_task_model(config, vocab, "lm", seed=0)
        topic = 2
        topic_tokens = vocab.content_ids_of_class(topic)
        rng = np.random.default_rng(1)
        fn = vocab.function_ids
        prompt = []
        for _ in range(30):
            if rng.random() < 0.4:
                prompt.append(int(rng.choice(topic_tokens)))
            else:
                prompt.append(int(rng.choice(fn)))
        dist = model.next_token_distribution(np.array(prompt))
        per_class_mass = [
            dist[vocab.content_ids_of_class(c)].sum() for c in range(4)
        ]
        assert int(np.argmax(per_class_mass)) == topic
