"""Unit and integration tests for the transformer models."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.nn import (
    DenseExecutor,
    TransformerModel,
    random_model,
    softmax,
)
from repro.nn.attention import causal_mask, scaled_dot_attention


class TestEmbedding:
    def test_embed_shape(self, tiny_encoder):
        x = tiny_encoder.embed([1, 2, 3])
        assert x.shape == (3, 32)

    def test_embed_includes_positions(self, tiny_encoder):
        a = tiny_encoder.embed([5])
        b = tiny_encoder.embed([5], position_offset=3)
        assert not np.allclose(a, b)

    def test_embed_validates_vocab(self, tiny_encoder):
        with pytest.raises(ValueError):
            tiny_encoder.embed([999])

    def test_embed_validates_length(self, tiny_encoder):
        with pytest.raises(ValueError):
            tiny_encoder.embed([0] * 1000)

    def test_embed_rejects_2d(self, tiny_encoder):
        with pytest.raises(ValueError):
            tiny_encoder.embed(np.zeros((2, 2), dtype=int))

    def test_embed_rejects_empty_sequence(self, tiny_encoder):
        """An empty prompt used to die with an opaque IndexError on
        ``positions[-1]``; it must raise a named ValueError instead."""
        with pytest.raises(ValueError, match="empty token sequence"):
            tiny_encoder.embed([])
        with pytest.raises(ValueError, match="empty token sequence"):
            tiny_encoder.embed(np.zeros(0, dtype=np.int64))


class TestEncode:
    def test_output_shape(self, tiny_encoder, sample_tokens):
        result = tiny_encoder.encode(sample_tokens)
        assert result.hidden.shape == (len(sample_tokens), 32)
        assert len(result.records) == 4
        assert np.array_equal(result.positions, np.arange(len(sample_tokens)))

    def test_deterministic(self, tiny_encoder, sample_tokens):
        a = tiny_encoder.encode(sample_tokens).hidden
        b = tiny_encoder.encode(sample_tokens).hidden
        assert np.array_equal(a, b)

    def test_pooling_strategies(self, tiny_encoder, sample_tokens):
        result = tiny_encoder.encode(sample_tokens)
        assert result.pooled("cls").shape == (32,)
        assert result.pooled("mean").shape == (32,)
        with pytest.raises(ValueError):
            result.pooled("max")

    def test_config_param_mismatch_rejected(self, tiny_encoder_config):
        params = random_model(tiny_encoder_config, seed=0)
        bad = tiny_encoder_config.with_overrides(n_layers=5)
        with pytest.raises(ValueError):
            TransformerModel(bad, params)


class TestGenerate:
    def test_generates_requested_tokens(self, tiny_decoder, sample_tokens):
        result = tiny_decoder.generate(sample_tokens, n_new_tokens=6)
        assert result.n_generated == 6
        assert all(0 <= t < 64 for t in result.token_ids)

    def test_generate_requires_causal(self, tiny_encoder, sample_tokens):
        with pytest.raises(ValueError):
            tiny_encoder.generate(sample_tokens, 2)

    def test_greedy_is_deterministic(self, tiny_decoder, sample_tokens):
        a = tiny_decoder.generate(sample_tokens, 5).token_ids
        b = tiny_decoder.generate(sample_tokens, 5).token_ids
        assert a == b

    def test_custom_sampler_used(self, tiny_decoder, sample_tokens):
        result = tiny_decoder.generate(
            sample_tokens, 3, sampler=lambda logits: 7
        )
        assert result.token_ids == [7, 7, 7]

    def test_collect_records(self, tiny_decoder, sample_tokens):
        result = tiny_decoder.generate(
            sample_tokens, 2, collect_records=True
        )
        assert len(result.step_records) == 2
        assert len(result.step_records[0]) == 4  # one per layer

    def test_incremental_decode_matches_batch_attention(self, tiny_decoder, rng):
        """KV-cache decoding must equal full causal recomputation.

        Run the summarization over ``prompt + generated`` in one batch
        and check the final next-token distribution matches the one the
        incremental path produced.
        """
        prompt = rng.integers(0, 64, size=10).tolist()
        gen = tiny_decoder.generate(prompt, n_new_tokens=3)
        full_sequence = prompt + gen.token_ids[:2]
        batch_dist = tiny_decoder.next_token_distribution(full_sequence)
        incremental_logits = gen.logits[2]
        assert np.allclose(softmax(incremental_logits), batch_dist, atol=1e-9)


class TestNextTokenDistribution:
    def test_is_distribution(self, tiny_decoder, sample_tokens):
        dist = tiny_decoder.next_token_distribution(sample_tokens)
        assert dist.shape == (64,)
        assert dist.sum() == pytest.approx(1.0)
        assert np.all(dist >= 0)

    def test_requires_causal(self, tiny_encoder, sample_tokens):
        with pytest.raises(ValueError):
            tiny_encoder.next_token_distribution(sample_tokens)


class TestDenseExecutorEquivalence:
    def test_encoder_attention_matches_direct_computation(self, tiny_encoder, rng):
        """The executor path must equal plain scaled-dot attention."""
        tokens = rng.integers(0, 64, size=8).tolist()
        result = tiny_encoder.encode(tokens, executor=DenseExecutor())
        x = tiny_encoder.embed(tokens)
        attn = tiny_encoder.attention(0)
        q = attn.project_q(x)
        k, v = attn.project_kv(x)
        _, probs = scaled_dot_attention(q, k, v)
        assert np.allclose(result.records[0].probs, probs)

    def test_causal_records_have_growing_keys(self, tiny_decoder, sample_tokens):
        gen = tiny_decoder.generate(sample_tokens, 3, collect_records=True)
        n_keys = [records[0].n_keys for records in gen.step_records]
        assert n_keys == [len(sample_tokens) + 1 + i for i in range(3)]


class TestChunkedPrefill:
    """Resumable prefill (prefill_begin / prefill_chunk) bit-equivalence."""

    @pytest.mark.parametrize("chunk", [1, 2, 3, 8, 64])
    def test_dense_chunked_logits_bit_identical(
        self, tiny_decoder, sample_tokens, chunk
    ):
        mono_executor = DenseExecutor()
        mono = tiny_decoder.prefill(sample_tokens, mono_executor)
        executor = DenseExecutor()
        state = tiny_decoder.prefill_begin(sample_tokens, executor)
        logits = None
        while not state.done:
            logits = tiny_decoder.prefill_chunk(state, chunk)
        assert np.array_equal(logits, mono)
        assert np.array_equal(state.logits, mono)
        # The KV caches are byte-for-byte the monolithic ones too.
        for layer in range(tiny_decoder.config.n_layers):
            assert np.array_equal(
                executor._cache[layer].keys, mono_executor._cache[layer].keys
            )
            assert np.array_equal(
                executor._cache[layer].values,
                mono_executor._cache[layer].values,
            )

    def test_single_token_prompt(self, tiny_decoder):
        mono = tiny_decoder.prefill([5], DenseExecutor())
        state = tiny_decoder.prefill_begin([5], DenseExecutor())
        assert np.array_equal(tiny_decoder.prefill_chunk(state, 4), mono)

    def test_batch_mixes_prompt_lengths(self, tiny_decoder, rng):
        prompts = [
            rng.integers(0, 64, size=n).tolist() for n in (5, 11, 20)
        ]
        states = [tiny_decoder.prefill_begin(p) for p in prompts]
        done = {}
        remaining = list(states)
        while remaining:
            for state, logits in zip(
                remaining, tiny_decoder.prefill_chunk_batch(remaining, 4)
            ):
                if logits is not None:
                    done[id(state)] = logits
            remaining = [s for s in remaining if not s.done]
        for prompt, state in zip(prompts, states):
            mono = tiny_decoder.prefill(prompt, DenseExecutor())
            assert np.array_equal(done[id(state)], mono)

    def test_chunked_then_decode_matches_generate(
        self, tiny_decoder, sample_tokens
    ):
        reference = tiny_decoder.generate(sample_tokens, 5).token_ids
        state = tiny_decoder.prefill_begin(sample_tokens)
        logits = None
        while not state.done:
            logits = tiny_decoder.prefill_chunk(state, 7)
        tokens = [int(np.argmax(logits))]
        position = len(sample_tokens)
        for _ in range(4):
            step = tiny_decoder.decode_step_batch(
                [tokens[-1]], [position], [state.executor]
            )
            tokens.append(int(np.argmax(step[0])))
            position += 1
        assert tokens == reference

    def test_spans_never_leave_single_row_chunks(self, tiny_decoder):
        state = tiny_decoder.prefill_begin(list(range(9)))
        spans = []
        while not state.done:
            start, end = state.next_span(4)
            spans.append((start, end))
            tiny_decoder.prefill_chunk(state, 4)
        assert spans == [(0, 4), (4, 9)]  # 1-token orphan absorbed
        # And a chunk size of 1 is silently widened to 2 rows.
        state = tiny_decoder.prefill_begin(list(range(4)))
        assert state.next_span(1) == (0, 2)

    def test_validation(self, tiny_encoder, tiny_decoder, sample_tokens):
        with pytest.raises(ValueError, match="causal"):
            tiny_encoder.prefill_begin(sample_tokens)
        with pytest.raises(ValueError):
            tiny_decoder.prefill_begin([])
        state = tiny_decoder.prefill_begin(sample_tokens)
        with pytest.raises(ValueError, match="max_tokens"):
            tiny_decoder.prefill_chunk(state, 0)
        while not state.done:
            tiny_decoder.prefill_chunk(state, 64)
        with pytest.raises(ValueError, match="complete"):
            tiny_decoder.prefill_chunk(state, 4)
