"""Bit-identity property suite: packed vs looped decode and prefill.

The packed backend (:mod:`repro.nn.batched_attention`) batches the
serving decode hot path; its whole contract is that every batched
regrouping is *exactly* float-preserving.  These tests drive two clones
of the same batch — one through the looped oracle, one through the
packed backend — and assert bit-identical logits **and** bit-identical
executor state (KV buffers, alive sets, traces) across:

* dense and SpAtten executors (including progressive quantization),
* ragged sequence lengths within one batch,
* cascade-pruned head sets that differ per sequence,
* mid-generation ``keep()`` evictions from cascade token pruning,
* mixed executor types in one batch, plus the ``run_layer`` fallback,
* chunked prefill with fused chunk projections (single-token prompts
  included).

Fast representative cases are ``smoke``-marked for tier-1.
"""

import numpy as np
import pytest

from repro.config import ModelConfig, PruningConfig, QuantConfig
from repro.core.pipeline import SpAttenExecutor
from repro.nn import PackedDecodeBackend, TransformerModel, random_model
from repro.nn.transformer import DenseExecutor


@pytest.fixture(scope="module")
def decoder():
    config = ModelConfig(
        "packed-decoder", n_layers=3, n_heads=4, d_model=32, d_ff=64,
        vocab_size=96, max_seq_len=160, causal=True,
    )
    return TransformerModel(config, random_model(config, seed=21))


@pytest.fixture(scope="module")
def backend(decoder):
    return PackedDecodeBackend(decoder)


PRUNING = PruningConfig(
    token_keep_final=0.4, head_keep_final=0.5, value_keep=0.9
)
QUANT = QuantConfig(msb_bits=6, lsb_bits=4, progressive=True, threshold=0.1)


class _FallbackExecutor(DenseExecutor):
    """Dense math but opted out of packed decode: exercises the
    per-sequence ``run_layer`` fallback inside the backend."""

    @property
    def packed_decode_style(self) -> str:
        return "none"


def _make_batch(model, spec, seed):
    """Build prefilled executors from ``[(kind, prompt_len), ...]``."""
    rng = np.random.default_rng(seed)
    executors = []
    for kind, prompt_len in spec:
        if kind == "dense":
            executor = DenseExecutor()
        elif kind == "fallback":
            executor = _FallbackExecutor()
        elif kind == "spatten":
            executor = SpAttenExecutor(PRUNING)
        elif kind == "quant":
            executor = SpAttenExecutor(PRUNING, QUANT)
        else:  # pragma: no cover - spec typo guard
            raise ValueError(kind)
        prompt = rng.integers(0, model.config.vocab_size, size=prompt_len)
        model.prefill(prompt.tolist(), executor)
        executors.append(executor)
    return executors


def _assert_same_state(looped, packed):
    for i, (le, pe) in enumerate(zip(looped, packed)):
        lc, pc = le._cache, pe._cache
        assert lc.lengths() == pc.lengths(), f"seq {i}: KV lengths diverged"
        for li in range(len(lc)):
            assert np.array_equal(lc[li].keys, pc[li].keys), (i, li)
            assert np.array_equal(lc[li].values, pc[li].values), (i, li)
            assert np.array_equal(lc[li].token_ids, pc[li].token_ids), (i, li)
        if isinstance(le, SpAttenExecutor):
            assert np.array_equal(le._alive_heads, pe._alive_heads), i
            assert np.array_equal(le._alive_tokens, pe._alive_tokens), i
            assert le.trace.n_generated == pe.trace.n_generated, i
            assert le.evicted_kv_tokens == pe.evicted_kv_tokens, i


def _run_twin_decode(model, backend, spec, n_steps, seed=3):
    looped = _make_batch(model, spec, seed)
    packed = _make_batch(model, spec, seed)
    tokens = [7] * len(spec)
    positions = [length for _, length in spec]
    for step in range(n_steps):
        looped_logits = model.decode_step_batch(tokens, positions, looped)
        packed_logits = model.decode_step_batch(
            tokens, positions, packed, backend=backend
        )
        assert np.array_equal(looped_logits, packed_logits), (
            f"step {step}: packed logits diverged from the looped oracle"
        )
        _assert_same_state(looped, packed)
        tokens = [int(np.argmax(row)) for row in looped_logits]
        positions = [p + 1 for p in positions]


@pytest.mark.smoke
def test_dense_ragged_batch_bit_identical(decoder, backend):
    """Dense batch with ragged lengths: the central packed core."""
    spec = [("dense", 5), ("dense", 23), ("dense", 11), ("dense", 2)]
    _run_twin_decode(decoder, backend, spec, n_steps=6)


@pytest.mark.smoke
def test_spatten_pruned_batch_bit_identical(decoder, backend):
    """SpAtten batch: pruned head sets + mid-generation evictions."""
    spec = [("spatten", 24), ("spatten", 40), ("spatten", 12)]
    _run_twin_decode(decoder, backend, spec, n_steps=6)


def test_mixed_executor_batch_bit_identical(decoder, backend):
    """Dense + SpAtten + quantized + fallback sharing one batch."""
    spec = [
        ("dense", 17), ("spatten", 30), ("quant", 12),
        ("fallback", 9), ("dense", 44), ("spatten", 6),
    ]
    _run_twin_decode(decoder, backend, spec, n_steps=8)


def test_spatten_evictions_happen_and_match(decoder, backend):
    """The pruning schedule must actually evict during the run (so the
    in-place compaction path is exercised), and evictions must agree."""
    spec = [("spatten", 48), ("spatten", 36)]
    looped = _make_batch(decoder, spec, seed=5)
    packed = _make_batch(decoder, spec, seed=5)
    tokens, positions = [1, 2], [48, 36]
    for _ in range(10):
        ll = decoder.decode_step_batch(tokens, positions, looped)
        pl = decoder.decode_step_batch(tokens, positions, packed,
                                       backend=backend)
        assert np.array_equal(ll, pl)
        tokens = [int(np.argmax(row)) for row in ll]
        positions = [p + 1 for p in positions]
    assert looped[0].evicted_kv_tokens > 0, "schedule never evicted"
    _assert_same_state(looped, packed)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_batches_bit_identical(decoder, backend, seed):
    """Property-style sweep: random composition, lengths, and horizon."""
    rng = np.random.default_rng(100 + seed)
    kinds = ["dense", "spatten", "quant", "fallback"]
    spec = [
        (kinds[int(rng.integers(0, len(kinds)))],
         int(rng.integers(2, 60)))
        for _ in range(int(rng.integers(2, 7)))
    ]
    _run_twin_decode(
        decoder, backend, spec, n_steps=int(rng.integers(3, 9)),
        seed=200 + seed,
    )


def test_single_sequence_batch_bit_identical(decoder, backend):
    _run_twin_decode(decoder, backend, [("dense", 9)], n_steps=4)
    _run_twin_decode(decoder, backend, [("spatten", 21)], n_steps=4)


@pytest.mark.smoke
@pytest.mark.parametrize("chunk", [2, 5, 32])
def test_chunked_prefill_packed_bit_identical(decoder, backend, chunk):
    """Fused chunk projections commit bit-identical prefills."""
    rng = np.random.default_rng(31)
    prompt_lens = [1, 2, 9, 33]  # includes the single-row solo-GEMM edge
    prompts = [
        rng.integers(0, decoder.config.vocab_size, size=n).tolist()
        for n in prompt_lens
    ]
    looped = [decoder.prefill_begin(p, DenseExecutor()) for p in prompts]
    packed = [decoder.prefill_begin(p, DenseExecutor()) for p in prompts]
    while not all(s.done for s in looped):
        ll = decoder.prefill_chunk_batch(
            [s for s in looped if not s.done], chunk
        )
        pl = decoder.prefill_chunk_batch(
            [s for s in packed if not s.done], chunk, backend=backend
        )
        for a, b in zip(ll, pl):
            assert (a is None) == (b is None)
            if a is not None:
                assert np.array_equal(a, b)
    _assert_same_state(
        [s.executor for s in looped], [s.executor for s in packed]
    )


def test_prefill_then_packed_decode_roundtrip(decoder, backend):
    """Chunked-packed prefill feeding packed decode stays on the oracle."""
    rng = np.random.default_rng(77)
    prompts = [
        rng.integers(0, decoder.config.vocab_size, size=n).tolist()
        for n in (13, 28, 4)
    ]
    looped_states = [decoder.prefill_begin(p, DenseExecutor()) for p in prompts]
    packed_states = [decoder.prefill_begin(p, DenseExecutor()) for p in prompts]
    while not all(s.done for s in looped_states):
        decoder.prefill_chunk_batch(
            [s for s in looped_states if not s.done], 8
        )
        decoder.prefill_chunk_batch(
            [s for s in packed_states if not s.done], 8, backend=backend
        )
    tokens = [int(np.argmax(s.logits)) for s in looped_states]
    positions = [len(p) for p in prompts]
    looped = [s.executor for s in looped_states]
    packed = [s.executor for s in packed_states]
    for _ in range(5):
        ll = decoder.decode_step_batch(tokens, positions, looped)
        pl = decoder.decode_step_batch(tokens, positions, packed,
                                       backend=backend)
        assert np.array_equal(ll, pl)
        tokens = [int(np.argmax(row)) for row in ll]
        positions = [p + 1 for p in positions]


def test_backend_rejects_foreign_model(decoder, backend):
    config = ModelConfig(
        "other", n_layers=3, n_heads=4, d_model=32, d_ff=64,
        vocab_size=96, max_seq_len=160, causal=True,
    )
    other = TransformerModel(config, random_model(config, seed=99))
    executor = DenseExecutor()
    other.prefill([1, 2, 3], executor)
    with pytest.raises(ValueError, match="different model"):
        other.decode_step_batch([4], [3], [executor], backend=backend)


def test_spatten_rejects_precomputed_projections(decoder):
    executor = SpAttenExecutor(PRUNING)
    decoder.prefill([1, 2, 3, 4], executor)
    with pytest.raises(ValueError, match="decode_attend_packed"):
        executor.run_layer(
            0, decoder, np.zeros((1, 32)), np.array([4]), "decode",
            projected=(None, None, None),
        )
