"""Tests for the continuous-batching serving subsystem (repro.serving)."""

import numpy as np
import pytest

from repro.config import GPT2_SMALL, PruningConfig, QuantConfig
from repro.core import SpAttenExecutor
from repro.core import schedule as sched
from repro.core.trace import dense_trace, spatten_trace
from repro.nn.kv_cache import LayerKVCache
from repro.serving import (
    CostModel,
    KVMemoryPool,
    PoolExhausted,
    Request,
    RequestQueue,
    RequestRecord,
    ServingEngine,
    ServingStats,
    SimulatedClock,
    prefill_kv_lengths,
    pruned_kv_bounds,
)
from repro.workloads import (
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    lm_prompts,
    make_lm_corpus,
    synthetic_request_trace,
)

PROMPT_LEN = 24
PRUNING = PruningConfig(token_keep_final=0.4, head_keep_final=0.75, value_keep=0.9)


@pytest.fixture(scope="module")
def serving_setup():
    vocab = build_vocabulary(size=512, n_classes=4, seed=0)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=4, d_model=64, n_heads=4,
        max_seq_len=160,
    )
    model, _ = build_task_model(config, vocab, "lm", seed=0)
    corpus = make_lm_corpus(vocab, n_tokens=1024, seed=2)
    return config, model, corpus


def make_pool(config, pages=64, page_tokens=8):
    pool = KVMemoryPool(
        config,
        budget_bytes=pages * page_tokens * 2 * config.n_heads
        * config.head_dim * config.bytes_per_element,
        page_tokens=page_tokens,
    )
    assert pool.n_pages == pages
    return pool


class TestRequestAndQueue:
    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(0, [], max_new_tokens=1)
        with pytest.raises(ValueError):
            Request(0, [1, 2], max_new_tokens=0)
        with pytest.raises(ValueError):
            Request(0, [1, 2], max_new_tokens=1, arrival_time=-1.0)

    def test_queue_orders_by_priority_then_arrival(self):
        queue = RequestQueue()
        queue.push(Request(0, [1], 1, arrival_time=0.0, priority=5))
        queue.push(Request(1, [1], 1, arrival_time=1.0, priority=0))
        queue.push(Request(2, [1], 1, arrival_time=0.5, priority=0))
        order = [r.request_id for r in queue.as_ordered_list()]
        assert order == [2, 1, 0]
        assert queue.pop().request_id == 2
        assert queue.peek().request_id == 1
        assert len(queue) == 2

    def test_empty_queue_raises(self):
        queue = RequestQueue()
        with pytest.raises(IndexError):
            queue.peek()
        with pytest.raises(IndexError):
            queue.pop()

    def test_equal_priority_equal_arrival_pops_in_push_order(self):
        """Ties on (priority, arrival) break on the monotonic push
        counter — never on request ids and never by comparing request
        payloads (regression: the heap used to carry the id as the
        tiebreaker, so requeued requests could jump the line)."""
        queue = RequestQueue()
        for rid in (5, 2, 9):  # deliberately not in id order
            queue.push(Request(rid, [1], 1, arrival_time=1.0, priority=3))
        assert [r.request_id for r in queue.as_ordered_list()] == [5, 2, 9]
        assert [queue.pop().request_id for _ in range(3)] == [5, 2, 9]

    def test_queue_drain_returns_admission_order_and_empties(self):
        queue = RequestQueue()
        queue.push(Request(0, [1], 1, arrival_time=0.2, priority=1))
        queue.push(Request(1, [1], 1, arrival_time=0.1, priority=0))
        queue.push(Request(2, [1], 1, arrival_time=0.1, priority=0))
        assert [r.request_id for r in queue.drain()] == [1, 2, 0]
        assert len(queue) == 0


class TestKVBounds:
    def test_dense_bounds_are_full_length(self):
        assert pruned_kv_bounds(None, 3, 10, 5) == [15, 15, 15]

    def test_pruned_bounds_replay_the_schedule(self):
        n_layers, prompt, max_new = 6, 40, 10
        bounds = pruned_kv_bounds(PRUNING, n_layers, prompt, max_new)
        counts = sched.token_keep_counts(PRUNING, n_layers, prompt)
        fracs = sched.token_keep_fractions(PRUNING, n_layers, prompt)
        for layer in range(n_layers):
            expected = max(
                int(counts[layer]),
                sched.decode_token_target(
                    PRUNING, float(fracs[layer]), prompt + max_new
                ),
            )
            assert bounds[layer] == expected
        assert all(b <= prompt + max_new for b in bounds)
        assert bounds[-1] < prompt + max_new  # deep layers genuinely shrink

    def test_executor_cache_never_exceeds_bounds(self, serving_setup):
        config, model, corpus = serving_setup
        prompt = lm_prompts(corpus, PROMPT_LEN, 1, seed=9)[0]
        max_new = 8
        bounds = pruned_kv_bounds(
            PRUNING, config.n_layers, PROMPT_LEN, max_new
        )
        executor = SpAttenExecutor(PRUNING)
        logits = model.prefill(prompt, executor)
        assert all(
            length <= bound
            for length, bound in zip(executor.kv_lengths(), bounds)
        )
        token = int(np.argmax(logits))
        position = PROMPT_LEN
        for _ in range(max_new - 1):
            logits = model.decode_step_batch([token], [position], [executor])
            assert all(
                length <= bound
                for length, bound in zip(executor.kv_lengths(), bounds)
            )
            token = int(np.argmax(logits[0]))
            position += 1


class TestKVMemoryPool:
    def test_page_bytes_match_layer_cache_accounting(self, serving_setup):
        config, _, _ = serving_setup
        pool = make_pool(config)
        cache = LayerKVCache(
            config.n_heads, config.head_dim,
            bytes_per_element=config.bytes_per_element,
        )
        k = np.zeros((config.n_heads, pool.page_tokens, config.head_dim))
        cache.append(k, k, np.arange(pool.page_tokens))
        assert cache.nbytes == pool.page_bytes

    def test_budget_too_small_rejected(self, serving_setup):
        config, _, _ = serving_setup
        with pytest.raises(ValueError):
            KVMemoryPool(config, budget_bytes=1, page_tokens=8)

    def test_admission_accounting(self, serving_setup):
        config, _, _ = serving_setup
        pool = make_pool(config, pages=20, page_tokens=8)
        need = pool.reservation_pages(PROMPT_LEN, 8, None)
        assert need == config.n_layers * 4  # ceil(32 / 8) pages per layer
        assert pool.can_admit(PROMPT_LEN, 8, None)
        pool.admit(0, PROMPT_LEN, 8, None)
        assert pool.reserved_pages == need
        assert not pool.can_admit(PROMPT_LEN, 8, None)
        with pytest.raises(PoolExhausted):
            pool.admit(1, PROMPT_LEN, 8, None)
        with pytest.raises(ValueError):
            pool.admit(0, PROMPT_LEN, 8, None)  # duplicate id
        pool.release(0)
        assert pool.reserved_pages == 0
        assert pool.can_admit(PROMPT_LEN, 8, None)

    def test_pruned_reservation_is_smaller(self, serving_setup):
        config, _, _ = serving_setup
        pool = make_pool(config)
        dense = pool.reservation_pages(PROMPT_LEN, 8, None)
        pruned = pool.reservation_pages(PROMPT_LEN, 8, PRUNING)
        assert pruned < dense

    def test_sync_allocates_and_reclaims(self, serving_setup):
        config, _, _ = serving_setup
        pool = make_pool(config, pages=32, page_tokens=8)
        pool.admit(0, PROMPT_LEN, 8, None)
        grown = pool.sync(0, [24, 24, 24, 24])
        assert grown == 0
        assert pool.allocated_pages == 4 * 3
        freed = pool.sync(0, [24, 8, 8, 8])
        assert freed == 3 * 2  # three layers dropped from 3 pages to 1
        assert pool.reclaimed_pages == 6
        assert pool.occupancy == pytest.approx((3 + 3) / 32)
        with pytest.raises(ValueError):
            pool.sync(0, [24, 24])  # must cover every layer

    def test_unknown_sequence_raises_clear_value_error(self, serving_setup):
        config, _, _ = serving_setup
        pool = make_pool(config)
        with pytest.raises(ValueError, match="unknown sequence 7"):
            pool.sync(7, [0] * config.n_layers)
        with pytest.raises(ValueError, match="unknown sequence 9"):
            pool.release(9)
        pool.admit(1, PROMPT_LEN, 4, None)
        pool.release(1)
        with pytest.raises(ValueError, match="unknown sequence 1"):
            pool.release(1)  # double release
        with pytest.raises(ValueError, match="unknown sequence 1"):
            pool.sync(1, [0] * config.n_layers)


class TestPrefillKVLengths:
    def test_dense_tracks_committed_prefix(self):
        assert prefill_kv_lengths(None, 3, 24, 0) == [0, 0, 0]
        assert prefill_kv_lengths(None, 3, 24, 9) == [9, 9, 9]
        assert prefill_kv_lengths(None, 3, 24, 99) == [24, 24, 24]

    def test_pruned_caps_at_summarize_keep_targets(self):
        n_layers, prompt = 6, 40
        counts = sched.token_keep_counts(PRUNING, n_layers, prompt)
        mid = prefill_kv_lengths(PRUNING, n_layers, prompt, 16)
        assert mid == [min(16, int(c)) for c in counts]
        # At full commit, the model matches the executor's real
        # post-summarize cache lengths exactly (= the keep counts).
        full = prefill_kv_lengths(PRUNING, n_layers, prompt, prompt)
        assert full == [int(c) for c in counts]


class TestBatchedDecodeEquivalence:
    @pytest.mark.parametrize(
        "pruning,quant",
        [
            (None, None),
            (PRUNING, None),
            (PRUNING, QuantConfig(msb_bits=6, lsb_bits=4, progressive=True)),
        ],
        ids=["dense", "pruned", "pruned+quant"],
    )
    def test_matches_single_sequence_generate(
        self, serving_setup, pruning, quant
    ):
        config, model, corpus = serving_setup
        prompts = lm_prompts(corpus, PROMPT_LEN, 3, seed=11)
        max_new = 6
        sequential = []
        for prompt in prompts:
            executor = (
                SpAttenExecutor(pruning, quant) if pruning or quant else None
            )
            sequential.append(
                model.generate(prompt, max_new, executor=executor).token_ids
            )
        requests = [
            Request(i, prompt, max_new, arrival_time=0.0)
            for i, prompt in enumerate(prompts)
        ]
        pool = make_pool(config, pages=256, page_tokens=8)
        engine = ServingEngine(model, pool, pruning=pruning, quant=quant)
        stats = engine.run(requests)
        batched = [record.token_ids for record in stats.records]
        assert batched == sequential
        # The three requests genuinely shared decode steps.
        assert stats.mean_batch_size == pytest.approx(3.0)

    def test_decode_step_batch_validates_inputs(self, serving_setup):
        _, model, corpus = serving_setup
        with pytest.raises(ValueError):
            model.decode_step_batch([1, 2], [0], [None])
        with pytest.raises(ValueError):
            model.decode_step_batch([], [], [])


class TestAttentionBackend:
    """The packed backend is a pure optimization: identical serving."""

    def run_backend(self, serving_setup, backend, pruning=None,
                    prefill_chunk=8):
        config, model, corpus = serving_setup
        requests = synthetic_request_trace(
            corpus, n_requests=8, rate_per_s=800.0, prompt_len=PROMPT_LEN,
            max_new_tokens=(4, 8), seed=23,
        )
        pool = make_pool(config, pages=96, page_tokens=8)
        engine = ServingEngine(
            model, pool, pruning=pruning, prefill_chunk=prefill_chunk,
            attention_backend=backend,
        )
        return engine.run(requests)

    @pytest.mark.parametrize("pruning", [None, PRUNING],
                             ids=["dense", "spatten"])
    def test_packed_and_looped_serve_identically(self, serving_setup, pruning):
        looped = self.run_backend(serving_setup, "looped", pruning)
        packed = self.run_backend(serving_setup, "packed", pruning)
        assert (
            [r.token_ids for r in looped.records]
            == [r.token_ids for r in packed.records]
        ), "packed backend changed the served token streams"
        # The simulated clock charges identical work either way, so the
        # whole latency report must match, not just the tokens.
        assert looped.makespan_s == packed.makespan_s
        assert looped.ttft_p95 == packed.ttft_p95
        assert looped.decode_latency_p95 == packed.decode_latency_p95
        assert looped.reclaimed_pages == packed.reclaimed_pages

    def test_packed_is_the_default(self, serving_setup):
        config, model, _ = serving_setup
        pool = make_pool(config, pages=16, page_tokens=8)
        engine = ServingEngine(model, pool)
        assert engine.attention_backend == "packed"
        assert engine._backend is not None

    def test_pool_page_size_threads_into_kv_caches(self, serving_setup):
        config, model, _ = serving_setup
        pool = make_pool(config, pages=24, page_tokens=32)
        dense = ServingEngine(model, pool)._make_executor(None)
        model.prefill([1, 2, 3], dense)
        assert dense._cache[0].page_tokens == pool.page_tokens
        spatten = ServingEngine(
            model, pool, pruning=PRUNING
        )._make_executor(PRUNING)
        model.prefill([1, 2, 3], spatten)
        assert spatten._cache[0].page_tokens == pool.page_tokens

    def test_unknown_backend_rejected(self, serving_setup):
        config, model, _ = serving_setup
        pool = make_pool(config, pages=16, page_tokens=8)
        with pytest.raises(ValueError, match="attention_backend"):
            ServingEngine(model, pool, attention_backend="einsum")

    def test_monolithic_prefill_with_packed_backend(self, serving_setup):
        looped = self.run_backend(serving_setup, "looped", prefill_chunk=None)
        packed = self.run_backend(serving_setup, "packed", prefill_chunk=None)
        assert (
            [r.token_ids for r in looped.records]
            == [r.token_ids for r in packed.records]
        )


class TestServingEngine:
    def run_trace(self, serving_setup, pruning, pages=40, rate=500.0,
                  n_requests=8):
        config, model, corpus = serving_setup
        requests = synthetic_request_trace(
            corpus, n_requests=n_requests, rate_per_s=rate,
            prompt_len=PROMPT_LEN, max_new_tokens=(4, 8), seed=3,
        )
        pool = make_pool(config, pages=pages, page_tokens=8)
        engine = ServingEngine(model, pool, pruning=pruning)
        return engine.run(requests), requests

    def test_end_to_end_dense(self, serving_setup):
        stats, requests = self.run_trace(serving_setup, pruning=None)
        assert stats.n_requests == len(requests)
        assert stats.n_tokens == sum(
            len(r.token_ids) for r in stats.records
        )
        for record, request in zip(stats.records, requests):
            assert record.n_generated == request.max_new_tokens
            assert record.admit_time >= request.arrival_time
            assert record.finish_time >= record.first_token_time
        assert stats.throughput_tps > 0
        assert stats.queue_wait_p95 >= stats.queue_wait_p50 >= 0
        assert stats.decode_latency_p95 >= stats.decode_latency_p50 > 0
        assert 0 < stats.occupancy_peak <= 1.0
        assert stats.reclaimed_pages == 0
        assert stats.reclaimed_tokens == 0

    def test_pruned_serving_reclaims_pages(self, serving_setup):
        stats, _ = self.run_trace(serving_setup, pruning=PRUNING)
        assert stats.reclaimed_tokens > 0
        assert stats.reclaimed_pages > 0
        assert stats.occupancy_peak < 1.0

    def test_admission_blocks_when_pool_exhausted(self, serving_setup):
        config, model, corpus = serving_setup
        prompts = lm_prompts(corpus, PROMPT_LEN, 2, seed=13)
        requests = [
            Request(i, prompt, 8, arrival_time=0.0)
            for i, prompt in enumerate(prompts)
        ]
        # Exactly one dense reservation fits: ceil(32/8)=4 pages x 4 layers.
        pool = make_pool(config, pages=16, page_tokens=8)
        engine = ServingEngine(model, pool)
        stats = engine.run(requests)
        first, second = stats.records
        assert first.queue_wait == pytest.approx(0.0)
        assert second.queue_wait > 0
        assert second.admit_time >= first.finish_time
        assert stats.mean_batch_size == pytest.approx(1.0)

    def test_priority_overrides_arrival_order(self, serving_setup):
        config, model, corpus = serving_setup
        prompts = lm_prompts(corpus, PROMPT_LEN, 2, seed=17)
        requests = [
            Request(0, prompts[0], 6, arrival_time=0.0, priority=5),
            Request(1, prompts[1], 6, arrival_time=0.0, priority=0),
        ]
        pool = make_pool(config, pages=16, page_tokens=8)  # one at a time
        stats = ServingEngine(model, pool).run(requests)
        low, high = stats.records
        assert high.admit_time < low.admit_time

    def test_request_longer_than_context_rejected_up_front(self, serving_setup):
        config, model, corpus = serving_setup
        prompt = lm_prompts(corpus, PROMPT_LEN, 1, seed=29)[0]
        pool = make_pool(config, pages=512, page_tokens=8)
        engine = ServingEngine(model, pool)
        too_long = config.max_seq_len - PROMPT_LEN + 1
        with pytest.raises(ValueError, match="max_seq_len"):
            engine.run([Request(0, prompt, too_long, arrival_time=0.0)])

    def test_infeasible_request_rejected_up_front(self, serving_setup):
        config, model, corpus = serving_setup
        prompt = lm_prompts(corpus, PROMPT_LEN, 1, seed=19)[0]
        pool = make_pool(config, pages=8, page_tokens=8)
        engine = ServingEngine(model, pool)
        with pytest.raises(PoolExhausted):
            engine.run([Request(0, prompt, 64, arrival_time=0.0)])

    def test_duplicate_request_ids_rejected(self, serving_setup):
        config, model, corpus = serving_setup
        prompt = lm_prompts(corpus, PROMPT_LEN, 1, seed=23)[0]
        pool = make_pool(config)
        with pytest.raises(ValueError):
            ServingEngine(model, pool).run(
                [Request(0, prompt, 2), Request(0, prompt, 2)]
            )

    def test_run_validates_before_mutating_state(self, serving_setup):
        """A bad request anywhere in the trace fails fast and leaves
        the engine reusable (regression: per-submit validation used to
        poison the engine with already-submitted requests)."""
        config, model, corpus = serving_setup
        prompts = lm_prompts(corpus, PROMPT_LEN, 2, seed=59)
        good = Request(0, prompts[0], 4, arrival_time=0.0)
        too_long = Request(
            1, prompts[1], config.max_seq_len, arrival_time=0.0
        )
        pool = make_pool(config, pages=64, page_tokens=8)
        engine = ServingEngine(model, pool)
        with pytest.raises(ValueError, match="max_seq_len"):
            engine.run([good, too_long])
        assert not engine.has_work  # nothing was half-submitted
        stats = engine.run([good])
        assert stats.records[0].n_generated == good.max_new_tokens


class TestChunkedServing:
    """The three-phase mixed-step scheduler (prefill_chunk != None)."""

    @pytest.mark.parametrize(
        "pruning,quant",
        [
            (None, None),
            (PRUNING, None),
            (PRUNING, QuantConfig(msb_bits=6, lsb_bits=4, progressive=True)),
        ],
        ids=["dense", "pruned", "pruned+quant"],
    )
    @pytest.mark.parametrize("chunk", [2, 8, 64])
    def test_token_streams_bit_identical_to_monolithic(
        self, serving_setup, pruning, quant, chunk
    ):
        config, model, corpus = serving_setup
        requests = synthetic_request_trace(
            corpus, n_requests=6, rate_per_s=400.0, prompt_len=PROMPT_LEN,
            max_new_tokens=(3, 6), seed=37,
        )
        streams = {}
        for label, prefill_chunk in (("mono", None), ("chunked", chunk)):
            pool = make_pool(config, pages=256, page_tokens=8)
            engine = ServingEngine(
                model, pool, pruning=pruning, quant=quant,
                prefill_chunk=prefill_chunk,
            )
            stats = engine.run(requests)
            streams[label] = [r.token_ids for r in stats.records]
            assert all(
                r.n_generated == r.request.max_new_tokens
                for r in stats.records
            )
        assert streams["chunked"] == streams["mono"]

    def test_priority_order_admission_under_pool_contention(
        self, serving_setup
    ):
        config, model, corpus = serving_setup
        prompts = lm_prompts(corpus, PROMPT_LEN, 3, seed=41)
        requests = [
            Request(0, prompts[0], 4, arrival_time=0.0, priority=2),
            Request(1, prompts[1], 4, arrival_time=0.0, priority=1),
            Request(2, prompts[2], 4, arrival_time=0.0, priority=0),
        ]
        # Exactly one dense reservation fits at a time.
        pool = make_pool(config, pages=16, page_tokens=8)
        stats = ServingEngine(model, pool, prefill_chunk=8).run(requests)
        by_id = {r.request.request_id: r for r in stats.records}
        # Admission strictly follows priority, not request id / push order.
        assert (
            by_id[2].admit_time < by_id[1].admit_time < by_id[0].admit_time
        )
        # Later admissions wait for the pool, i.e. the predecessor retired.
        assert by_id[1].admit_time >= by_id[2].finish_time
        assert by_id[0].admit_time >= by_id[1].finish_time

    def test_pool_pages_grow_chunk_by_chunk_dense(self, serving_setup):
        config, model, corpus = serving_setup
        prompt = lm_prompts(corpus, PROMPT_LEN, 1, seed=43)[0]
        request = Request(0, prompt, 4, arrival_time=0.0)
        pool = make_pool(config, pages=64, page_tokens=8)
        engine = ServingEngine(model, pool, prefill_chunk=8)
        clock = SimulatedClock()
        engine._reserve(request, clock, RequestRecord(request))
        assert pool.allocated_pages == 0  # reservation allocates nothing
        for committed in (8, 16, 24):  # PROMPT_LEN == 24
            engine._mixed_step(clock)
            want = config.n_layers * -(-committed // pool.page_tokens)
            assert pool.allocated_pages == want
        assert not engine.prefilling
        assert len(engine.live) == 1  # promoted on the final chunk
        assert engine.live[0].record.first_token_time == clock.now

    def test_pool_pages_grow_chunk_by_chunk_spatten(self, serving_setup):
        config, model, corpus = serving_setup
        prompt = lm_prompts(corpus, PROMPT_LEN, 1, seed=47)[0]
        request = Request(0, prompt, 4, arrival_time=0.0)
        pool = make_pool(config, pages=64, page_tokens=8)
        engine = ServingEngine(model, pool, pruning=PRUNING, prefill_chunk=8)
        clock = SimulatedClock()
        engine._reserve(request, clock, RequestRecord(request))
        assert pool.allocated_pages == 0
        for committed in (8, 16, 24):
            engine._mixed_step(clock)
            lengths = prefill_kv_lengths(
                PRUNING, config.n_layers, PROMPT_LEN, committed
            )
            want = sum(pool.pages_for_tokens(n) for n in lengths)
            assert pool.allocated_pages == want
        # The modeled growth converged onto the executor's real pruned
        # cache lengths — nothing was spuriously "reclaimed" mid-prefill.
        assert pool.reclaimed_pages == 0
        assert len(engine.live) == 1

    def test_prefill_never_stalls_live_decode(self, serving_setup):
        """The head-of-line fix, observed directly on inter-token gaps.

        Request 1 arrives while request 0 decodes.  Monolithically its
        whole prompt lands inside one clock advance, so request 0's
        next inter-token gap swallows the full prefill; chunked, every
        gap stays bounded by a mixed step that carries at most one
        chunk of the new prompt.
        """
        config, model, corpus = serving_setup
        prompts = lm_prompts(corpus, PROMPT_LEN, 2, seed=53)
        worst = {}
        for label, chunk in (("mono", None), ("chunked", 4)):
            requests = [
                Request(0, prompts[0], 12, arrival_time=0.0),
                Request(1, prompts[1], 4, arrival_time=1e-4),
            ]
            pool = make_pool(config, pages=64, page_tokens=8)
            stats = ServingEngine(model, pool, prefill_chunk=chunk).run(
                requests
            )
            worst[label] = max(stats.records[0].token_latencies)
        prefill_s = CostModel().prefill_time(config, PROMPT_LEN)
        assert worst["mono"] > prefill_s  # the stall is visible...
        assert worst["chunked"] < worst["mono"]  # ...and chunking removes it

    def test_invalid_prefill_chunk_rejected(self, serving_setup):
        config, model, _ = serving_setup
        pool = make_pool(config)
        with pytest.raises(ValueError, match="prefill_chunk"):
            ServingEngine(model, pool, prefill_chunk=0)


class TestStatsPartialRuns:
    def test_from_run_skips_and_counts_unadmitted_records(self):
        served = RequestRecord(Request(0, [1, 2], 2, arrival_time=0.1))
        served.admit_time = 0.5
        served.first_token_time = 0.7
        served.token_ids = [3, 4]
        served.token_latencies = [0.1]
        stranded = RequestRecord(Request(1, [1, 2], 2, arrival_time=0.2))
        stats = ServingStats.from_run(
            mode="dense", records=[served, stranded], makespan_s=1.0,
            batch_sizes=[1], occupancy_samples=[0.5], pool_pages=4,
            pool_page_tokens=8, occupancy_peak=0.5, reclaimed_pages=0,
            reclaimed_tokens=0,
        )
        assert stats.n_unadmitted == 1
        assert stats.n_requests == 2
        assert stats.queue_wait_p50 == pytest.approx(0.4)
        assert stats.ttft_p95 == pytest.approx(0.6)
        assert "never admitted" in str(stats.table())

    def test_fully_served_runs_report_no_unadmitted(self):
        record = RequestRecord(Request(0, [1], 1, arrival_time=0.0))
        record.admit_time = 0.0
        record.first_token_time = 0.1
        record.token_ids = [5]
        stats = ServingStats.from_run(
            mode="dense", records=[record], makespan_s=0.2, batch_sizes=[1],
            occupancy_samples=[0.1], pool_pages=4, pool_page_tokens=8,
            occupancy_peak=0.1, reclaimed_pages=0, reclaimed_tokens=0,
        )
        assert stats.n_unadmitted == 0
        assert "never admitted" not in str(stats.table())


class TestStatsPercentilesAndJson:
    def run_stats(self, serving_setup):
        config, model, corpus = serving_setup
        requests = synthetic_request_trace(
            corpus, n_requests=8, rate_per_s=800.0, prompt_len=PROMPT_LEN,
            max_new_tokens=(4, 8), seed=61,
        )
        pool = make_pool(config, pages=64, page_tokens=8)
        return ServingEngine(model, pool, prefill_chunk=8).run(requests)

    def test_p99_reported_alongside_p50_p95(self, serving_setup):
        stats = self.run_stats(serving_setup)
        assert stats.queue_wait_p99 >= stats.queue_wait_p95
        assert stats.ttft_p99 >= stats.ttft_p95 >= stats.ttft_p50 > 0
        assert (
            stats.decode_latency_p99
            >= stats.decode_latency_p95
            >= stats.decode_latency_p50
            > 0
        )
        assert "p50/p95/p99" in str(stats.table())

    def test_to_json_roundtrips_scalars_without_records(self, serving_setup):
        import json

        stats = self.run_stats(serving_setup)
        payload = json.loads(stats.to_json())
        assert payload == stats.to_dict()
        assert "records" not in payload
        assert payload["n_requests"] == stats.n_requests
        assert payload["ttft_p99"] == stats.ttft_p99
        assert payload["throughput_tps"] == pytest.approx(
            stats.throughput_tps
        )

    def empty_run_stats(self):
        """A run where nothing completed: zero records, zero samples."""
        return ServingStats.from_run(
            mode="dense", records=[], makespan_s=0.0, batch_sizes=[],
            occupancy_samples=[], pool_pages=8, pool_page_tokens=8,
            occupancy_peak=0.0, reclaimed_pages=0, reclaimed_tokens=0,
        )

    def test_empty_samples_report_nan_not_zero(self):
        """Regression: _percentile returned 0.0 for empty samples, so a
        run where nothing completed reported *perfect* p50/p95/p99
        latency.  The honest answer is unknown — NaN."""
        stats = self.empty_run_stats()
        for name in (
            "queue_wait_p50", "queue_wait_p95", "queue_wait_p99",
            "ttft_p50", "ttft_p95", "ttft_p99",
            "decode_latency_p50", "decode_latency_p95",
            "decode_latency_p99",
        ):
            assert np.isnan(getattr(stats, name)), name

    def test_nan_percentiles_render_as_null_and_na(self):
        import json
        import math

        stats = self.empty_run_stats()
        payload = stats.to_dict()
        assert payload["ttft_p95"] is None
        assert payload["queue_wait_p99"] is None
        # Strict JSON: null, never a bare NaN token.
        decoded = json.loads(stats.to_json())
        assert decoded["decode_latency_p50"] is None
        rendered = str(stats.table())
        assert "n/a / n/a / n/a" in rendered
        assert "nan" not in rendered
        # A run *with* samples keeps real numbers end to end.
        full = ServingStats.from_run(
            mode="dense",
            records=[],
            makespan_s=1.0,
            batch_sizes=[2],
            occupancy_samples=[0.5],
            pool_pages=8,
            pool_page_tokens=8,
            occupancy_peak=0.5,
            reclaimed_pages=0,
            reclaimed_tokens=0,
        )
        assert not math.isnan(full.occupancy_mean)


class TestCostModelAndClock:
    def test_clock_is_monotone(self):
        clock = SimulatedClock()
        clock.advance(1.0)
        clock.advance_to(0.5)
        assert clock.now == 1.0
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_pruning_reduces_decode_flops(self, serving_setup):
        config, _, _ = serving_setup
        cost = CostModel()
        dense = cost.decode_seq_flops(config, [64] * config.n_layers,
                                      config.n_heads)
        pruned = cost.decode_seq_flops(config, [24] * config.n_layers,
                                       config.n_heads - 1)
        assert pruned < dense

    def test_step_overhead_amortises_across_batch(self):
        cost = CostModel()
        one = cost.step_time(1e6, 1)
        eight = cost.step_time(8e6, 8)
        assert eight < 8 * one  # batching amortises the fixed overhead

    def test_prefill_flops_are_schedule_aware(self, serving_setup):
        config, _, _ = serving_setup
        cost = CostModel()
        dense = cost.prefill_flops(config, 48)
        pruned = cost.prefill_flops(config, 48, PRUNING)
        assert pruned < dense
        assert cost.prefill_time(config, 48, PRUNING) < cost.prefill_time(
            config, 48
        )

    def test_chunk_flops_sum_below_monolithic_square(self, serving_setup):
        """Chunks charge causal chunk x prefix rectangles, not L x L."""
        config, _, _ = serving_setup
        cost = CostModel()
        for pruning in (None, PRUNING):
            whole = cost.prefill_flops(config, 48, pruning)
            chunked = sum(
                cost.prefill_chunk_flops(config, 48, s, s + 16, pruning)
                for s in (0, 16, 32)
            )
            assert chunked < whole
            # A single full-width chunk is exactly the monolithic charge.
            assert cost.prefill_chunk_flops(
                config, 48, 0, 48, pruning
            ) == pytest.approx(whole)

    def test_chunk_flops_validate_span(self, serving_setup):
        config, _, _ = serving_setup
        cost = CostModel()
        for start, end in ((-1, 8), (8, 8), (40, 56)):
            with pytest.raises(ValueError):
                cost.prefill_chunk_flops(config, 48, start, end)

    def test_mixed_step_degenerates_to_decode_step(self):
        cost = CostModel()
        assert cost.mixed_step_time(0.0, 5e6, 0, 4) == pytest.approx(
            cost.step_time(5e6, 4)
        )
        # Prefill chunks riding along only add their arithmetic + per-seq
        # bookkeeping — no second fixed step overhead.
        mixed = cost.mixed_step_time(2e6, 5e6, 2, 4)
        assert mixed == pytest.approx(
            cost.step_time(5e6, 4) + 2e6 / cost.flops_per_second
            + 2 * cost.seq_overhead_s
        )


class TestTraceKVBytes:
    def test_dense_trace_bytes(self, tiny_decoder_config):
        cfg = tiny_decoder_config
        trace = dense_trace(cfg, seq_len=10, n_generate=2)
        per_token = 2 * cfg.n_heads * cfg.head_dim * cfg.bytes_per_element
        first = trace.steps[0]
        assert trace.kv_bytes_of_step(first) == 10 * per_token
        assert trace.peak_kv_bytes == 12 * per_token
        assert trace.cumulative_kv_bytes == sum(trace.kv_bytes_per_step)

    def test_pruned_trace_holds_fewer_kv_bytes(self, tiny_decoder_config):
        cfg = tiny_decoder_config
        dense = dense_trace(cfg, seq_len=32, n_generate=8)
        pruned = spatten_trace(
            cfg, PRUNING, None, seq_len=32, n_generate=8
        )
        assert pruned.cumulative_kv_bytes < dense.cumulative_kv_bytes
        assert pruned.peak_kv_bytes <= dense.peak_kv_bytes


@pytest.mark.smoke
def test_serving_smoke(serving_setup):
    """Fast end-to-end smoke: pruned serving beats dense at a tight budget."""
    config, model, corpus = serving_setup
    requests = synthetic_request_trace(
        corpus, n_requests=6, rate_per_s=1000.0, prompt_len=PROMPT_LEN,
        max_new_tokens=(4, 6), seed=5,
    )
    results = {}
    for mode, pruning in (("dense", None), ("spatten", PRUNING)):
        pool = make_pool(config, pages=20, page_tokens=8)
        results[mode] = ServingEngine(model, pool, pruning=pruning).run(requests)
    assert results["spatten"].throughput_tps > results["dense"].throughput_tps
