"""Unit and property tests for progressive quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.config import QuantConfig
from repro.core.quantization import (
    LinearQuantizer,
    QuantizationRangeError,
    attention_prob_error,
    dequantize_rows,
    needs_lsb,
    quantize_attention_inputs,
    quantize_rows,
    softmax_error_bound,
)
from repro.nn.functional import softmax

value_arrays = hnp.arrays(
    np.float64,
    st.integers(1, 40),
    elements=st.floats(-1000, 1000, allow_nan=False),
)

row_arrays = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 6), st.integers(1, 12)),
    elements=st.floats(-1000, 1000, allow_nan=False),
)


class TestLinearQuantizer:
    def test_roundtrip_error_bounded_by_step(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 3.0, size=1000)
        quantizer = LinearQuantizer(8, 4)
        q = quantizer.quantize(x)
        recovered = quantizer.dequantize_full(q)
        step = q.scale
        assert np.max(np.abs(recovered - x)) <= step / 2 + 1e-12

    @given(value_arrays)
    @settings(max_examples=60, deadline=None)
    def test_split_recompose_identity(self, x):
        quantizer = LinearQuantizer(8, 4)
        q = quantizer.quantize(x)
        msb, lsb = quantizer.split(q)
        recomposed = quantizer.recompose(msb, lsb, q.scale)
        assert np.allclose(recomposed, quantizer.dequantize_full(q))

    @given(value_arrays)
    @settings(max_examples=60, deadline=None)
    def test_lsb_chunk_in_range(self, x):
        quantizer = LinearQuantizer(6, 4)
        msb, lsb = quantizer.split(quantizer.quantize(x))
        assert np.all(lsb >= 0) and np.all(lsb < 16)

    def test_msb_only_is_coarser(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=500)
        quantizer = LinearQuantizer(6, 4)
        q = quantizer.quantize(x)
        full_err = np.abs(quantizer.dequantize_full(q) - x).mean()
        msb_err = np.abs(quantizer.dequantize_msb(q) - x).mean()
        assert msb_err > full_err

    def test_msb_error_bounded_by_coarse_step(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=500)
        quantizer = LinearQuantizer(6, 4)
        q = quantizer.quantize(x)
        coarse_step = q.scale * 16
        assert np.max(np.abs(quantizer.dequantize_msb(q) - x)) <= coarse_step

    def test_zero_lsb_degenerates_gracefully(self):
        quantizer = LinearQuantizer(8, 0)
        x = np.array([1.0, -2.0, 0.5])
        q = quantizer.quantize(x)
        msb, lsb = quantizer.split(q)
        assert np.array_equal(msb, q.codes)
        assert np.all(lsb == 0)
        assert np.allclose(quantizer.dequantize_msb(q), quantizer.dequantize_full(q))

    def test_all_zero_input(self):
        quantizer = LinearQuantizer(8, 4)
        q = quantizer.quantize(np.zeros(5))
        assert np.allclose(quantizer.dequantize_full(q), 0.0)

    def test_dram_footprint(self):
        q = LinearQuantizer(8, 4).quantize(np.ones(16))
        assert q.nbytes_dram == pytest.approx(16 * 12 / 8)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            LinearQuantizer(1, 4)
        with pytest.raises(ValueError):
            LinearQuantizer(8, -1)


class TestQuantizerEdgeCases:
    """The edge-case contract of the module docstring, audited when
    the quantizers went on the serving hot path (int8 numerics tier)."""

    def test_zero_range_round_trip_is_exact(self):
        q = LinearQuantizer(8, 0).quantize(np.zeros(7))
        assert q.scale == 1.0
        assert np.array_equal(q.codes, np.zeros(7, dtype=np.int32))

    def test_non_finite_raises_named_error(self):
        for bad in (np.nan, np.inf, -np.inf):
            with pytest.raises(QuantizationRangeError):
                LinearQuantizer(8, 4).quantize(np.array([1.0, bad]))

    def test_range_error_is_a_value_error(self):
        # Call sites that catch ValueError must keep working.
        assert issubclass(QuantizationRangeError, ValueError)

    @given(value_arrays)
    @settings(max_examples=60, deadline=None)
    def test_most_negative_code_never_produced(self, x):
        # Symmetric grid: -128 would dequantize outside the declared
        # range and break the negation symmetry below.
        q = LinearQuantizer(8, 0).quantize(x)
        assert q.codes.min(initial=0) >= -127
        assert q.codes.max(initial=0) <= 127

    @given(value_arrays)
    @settings(max_examples=60, deadline=None)
    def test_negation_commutes_with_quantization(self, x):
        quantizer = LinearQuantizer(8, 0)
        q_pos = quantizer.quantize(x)
        q_neg = quantizer.quantize(-x)
        assert q_neg.scale == q_pos.scale
        assert np.array_equal(q_neg.codes, -q_pos.codes)


class TestQuantizeRows:
    """Per-row quantization (the KV cache's int8 storage tier)."""

    @given(row_arrays)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_error_bounded_by_half_step(self, x):
        codes, scales = quantize_rows(x, bits=8)
        recovered = dequantize_rows(codes, scales, dtype=np.float64)
        # scale/2 rounding plus the fp32-scale representation slack.
        bound = scales.astype(np.float64) * (0.5 + 1e-5)
        assert np.all(np.abs(recovered - x) <= bound + 1e-12)

    @given(row_arrays)
    @settings(max_examples=60, deadline=None)
    def test_codes_symmetric_and_negation_commutes(self, x):
        codes, scales = quantize_rows(x, bits=8)
        assert codes.dtype == np.int8
        assert codes.min(initial=0) >= -127 and codes.max(initial=0) <= 127
        neg_codes, neg_scales = quantize_rows(-x, bits=8)
        assert np.array_equal(neg_scales, scales)
        assert np.array_equal(neg_codes, -codes)

    def test_zero_range_rows_round_trip_exactly(self):
        x = np.array([[0.0, 0.0, 0.0], [1.0, -2.0, 0.5]])
        codes, scales = quantize_rows(x, bits=8)
        assert scales[0, 0] == 1.0
        assert np.array_equal(codes[0], np.zeros(3, dtype=np.int8))
        assert np.array_equal(dequantize_rows(codes, scales)[0], x[0])

    def test_subnormal_row_does_not_divide_by_zero(self):
        # max_abs/127 underflows to 0.0 in the fp32 scale cast; the
        # guard pins such rows to scale 1.0 / all-zero codes.
        x = np.full((1, 4), 1e-300)
        codes, scales = quantize_rows(x, bits=8)
        assert scales[0, 0] == 1.0
        assert np.array_equal(codes, np.zeros((1, 4), dtype=np.int8))
        assert np.isfinite(dequantize_rows(codes, scales)).all()

    def test_non_finite_raises_named_error(self):
        for bad in (np.nan, np.inf, -np.inf):
            with pytest.raises(QuantizationRangeError):
                quantize_rows(np.array([[1.0, bad]]), bits=8)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_rows(np.ones((2, 2)), bits=1)

    def test_empty_input_keeps_keepdims_shape(self):
        codes, scales = quantize_rows(np.empty((0, 5)), bits=8)
        assert codes.shape == (0, 5)
        assert scales.shape == (0, 1)

    def test_wide_bits_use_int32_codes(self):
        codes, _ = quantize_rows(np.ones((2, 3)), bits=12)
        assert codes.dtype == np.int32


class TestProgressiveDecision:
    def test_dominated_row_skips_lsb(self):
        probs = np.array([[0.9, 0.05, 0.05], [0.34, 0.33, 0.33]])
        decision = needs_lsb(probs, threshold=0.5)
        assert not decision[0] and decision[1]

    def test_threshold_edges(self):
        probs = np.array([[0.5, 0.5]])
        assert not needs_lsb(probs, threshold=0.5)[0]  # max == threshold
        assert needs_lsb(probs, threshold=0.51)[0]

    def test_multihead_shape(self):
        probs = np.full((2, 3, 4), 0.25)
        assert needs_lsb(probs, 0.3).shape == (2, 3)

    def test_quantize_attention_inputs_shapes(self):
        rng = np.random.default_rng(3)
        q = rng.normal(size=(2, 3, 8))
        k = rng.normal(size=(2, 5, 8))
        config = QuantConfig(msb_bits=6, lsb_bits=4, progressive=True)
        q_msb, k_msb, q_full, k_full = quantize_attention_inputs(q, k, config)
        assert q_msb.shape == q.shape and k_full.shape == k.shape
        assert np.abs(q_full - q).mean() < np.abs(q_msb - q).mean()


class TestSoftmaxErrorBound:
    """Eq. 2: softmax attenuates score perturbations (error < delta_s)."""

    @given(
        hnp.arrays(np.float64, st.integers(2, 24), elements=st.floats(-5, 5)),
        st.floats(0.001, 0.5),
        st.integers(0, 23),
    )
    @settings(max_examples=100, deadline=None)
    def test_empirical_error_below_bound(self, scores, delta, idx):
        idx = idx % len(scores)
        probs = softmax(scores)
        perturbed = scores.copy()
        perturbed[idx] += delta
        empirical = np.abs(softmax(perturbed) - probs).sum()
        # First-order bound with a curvature allowance for finite delta.
        bound = softmax_error_bound(probs, delta)
        assert empirical <= bound + 0.6 * delta**2
        assert bound < delta  # the paper's strict inequality

    def test_bound_is_tight_at_half(self):
        probs = np.array([0.5, 0.5])
        assert softmax_error_bound(probs, 1.0) == pytest.approx(0.5)


class TestAttentionProbError:
    def test_dominated_rows_have_smaller_error(self):
        rng = np.random.default_rng(4)
        flat = rng.normal(0, 0.5, size=(200, 16))
        sharp = flat.copy()
        sharp[:, 0] += 8.0
        quantizer = LinearQuantizer(4, 0)

        def mean_err(rows):
            q = quantizer.quantize(rows)
            _, errs = attention_prob_error(rows, quantizer.dequantize_full(q))
            return errs.mean()

        assert mean_err(sharp) < mean_err(flat)

    def test_zero_error_for_identical_scores(self):
        scores = np.random.default_rng(5).normal(size=(3, 8))
        max_probs, errors = attention_prob_error(scores, scores)
        assert np.allclose(errors, 0.0)
        assert max_probs.shape == (3,)
