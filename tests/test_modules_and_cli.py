"""Direct tests for the datapath modules and the CLI entry point."""

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, main
from repro.hardware.energy import DEFAULT_ENERGY
from repro.hardware.modules import ProbVModule, QKModule, SoftmaxUnit


class TestQKModule:
    def test_keys_per_cycle_packing(self):
        qk = QKModule(512, DEFAULT_ENERGY)
        assert qk.keys_per_cycle(64) == 8  # the paper's 512/D packing
        assert qk.keys_per_cycle(128) == 4

    def test_wide_head_multi_cycle(self):
        qk = QKModule(64, DEFAULT_ENERGY)
        assert qk.keys_per_cycle(128) == 0.5
        assert qk.query_cycles(4, 128) == 8

    def test_query_cycles(self):
        qk = QKModule(512, DEFAULT_ENERGY)
        assert qk.query_cycles(64, 64) == 8
        assert qk.query_cycles(0, 64) == 0

    def test_accounting(self):
        qk = QKModule(512, DEFAULT_ENERGY)
        qk.account(n_queries=2, n_keys=64, head_dim=64)
        assert qk.stats.operations == 2 * 64 * 64
        assert qk.stats.energy_pj == pytest.approx(
            2 * 64 * 64 * DEFAULT_ENERGY.mac_pj
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            QKModule(0, DEFAULT_ENERGY)


class TestSoftmaxUnit:
    def test_parallelism(self):
        unit = SoftmaxUnit(8, DEFAULT_ENERGY)
        assert unit.query_cycles(64) == 8
        assert unit.query_cycles(65) == 9

    def test_energy(self):
        unit = SoftmaxUnit(8, DEFAULT_ENERGY)
        unit.account(n_rows=3, n_keys=10)
        assert unit.stats.operations == 30


class TestProbVModule:
    def test_value_pruning_shrinks_cycles(self):
        pv = ProbVModule(512, DEFAULT_ENERGY)
        assert pv.query_cycles(32, 64) < pv.query_cycles(64, 64)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out and "table4" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_single(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Architectural setup" in out

    def test_run_chart_experiment(self, capsys):
        assert main(["run", "fig19"]) == 0
        out = capsys.readouterr().out
        assert "GFLOPS" in out and "*" in out  # table + chart

    def test_serve_attention_backend_flags(self, capsys):
        base = ["serve", "--requests", "3", "--rate", "500", "--mode",
                "dense", "--prompt-len", "12", "--max-new", "2", "4",
                "--layers", "2", "--pool-kib", "256"]
        assert main(base + ["--attention-backend", "looped"]) == 0
        looped_out = capsys.readouterr().out
        assert main(base + ["--attention-backend", "packed"]) == 0
        packed_out = capsys.readouterr().out
        # A pure optimization: identical serving report either way.
        assert looped_out == packed_out
        with pytest.raises(SystemExit):
            main(base + ["--attention-backend", "einsum"])

    def test_serve_stats_json_flag(self, capsys, tmp_path):
        import json

        path = tmp_path / "serve.json"
        assert main([
            "serve", "--requests", "3", "--rate", "500", "--mode", "dense",
            "--prompt-len", "12", "--max-new", "2", "4", "--layers", "2",
            "--pool-kib", "256", "--stats-json", str(path),
        ]) == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"dense"}
        assert payload["dense"]["n_requests"] == 3
        assert "ttft_p99" in payload["dense"]

    def test_serve_cluster_end_to_end(self, capsys, tmp_path):
        import json

        path = tmp_path / "cluster.json"
        base = [
            "serve-cluster", "--replicas", "2", "--requests", "6",
            "--rate", "800", "--prompt-len", "12", "--max-new", "2", "4",
            "--layers", "2", "--pool-kib", "1024",
        ]
        assert main(base + [
            "--policy", "pruning_aware", "--drain-at", "0.01:0",
            "--stats-json", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "cluster report" in out
        assert "pruning_aware" in out
        payload = json.loads(path.read_text())
        assert payload["n_replicas"] == 2
        assert payload["n_drained"] == 1
        assert payload["fleet"]["n_requests"] == 6

    def test_serve_cluster_rejects_bad_flags(self, capsys):
        base = ["serve-cluster", "--requests", "2", "--layers", "2"]
        assert main(base + ["--drain-at", "banana"]) == 2
        assert "TIME:REPLICA" in capsys.readouterr().err
        assert main(base + ["--replicas", "0"]) == 2
        assert "--replicas" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(base + ["--policy", "fastest"])

    def test_serve_cluster_single_replica_matches_serve(self, capsys,
                                                        tmp_path):
        """CLI-level acceptance: serve-cluster x1 == plain serve."""
        import json

        serve_json = tmp_path / "serve.json"
        cluster_json = tmp_path / "cluster.json"
        common = [
            "--requests", "4", "--rate", "600", "--prompt-len", "12",
            "--max-new", "2", "4", "--layers", "2", "--pool-kib", "256",
        ]
        assert main(["serve", "--mode", "spatten", "--stats-json",
                     str(serve_json)] + common) == 0
        assert main(
            ["serve-cluster", "--replicas", "1", "--traffic", "uniform",
             "--mode", "spatten", "--policy", "round_robin",
             "--stats-json", str(cluster_json)] + common
        ) == 0
        capsys.readouterr()
        plain = json.loads(serve_json.read_text())["spatten"]
        replica = json.loads(cluster_json.read_text())["replicas"][0]
        assert replica == plain

    def test_registry_covers_all_figures(self):
        expected = {
            "headline", "fig01", "fig02", "fig07", "table1", "table2",
            "fig13", "fig14", "table3", "table4", "fig15", "fig16",
            "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
            "topk", "ablation", "gpu-pruning",
        }
        assert set(EXPERIMENTS) == expected
