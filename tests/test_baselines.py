"""Tests for platform cost models and prior-art accelerators."""

import numpy as np
import pytest

from repro.baselines import (
    ALL_PLATFORMS,
    JETSON_NANO,
    RASPBERRY_PI,
    TITAN_XP,
    XEON,
    A3CostModel,
    MNNFastCostModel,
    Roofline,
    RooflinePoint,
    a3_attention,
    attainable,
    attention_cost,
    fc_cost,
    mnnfast_attention,
)
from repro.baselines.roofline import classify
from repro.config import BERT_BASE, GPT2_SMALL
from repro.core.trace import dense_trace
from repro.nn.attention import scaled_dot_attention


@pytest.fixture(scope="module")
def bert_trace():
    return dense_trace(BERT_BASE, 64)


@pytest.fixture(scope="module")
def gpt2_trace():
    return dense_trace(GPT2_SMALL, 256, n_generate=8)


class TestPlatformModels:
    def test_platform_ordering(self, bert_trace):
        """GPU < CPU < Nano < Pi latency, matching Fig. 14's ordering."""
        latencies = [
            attention_cost(spec, bert_trace).latency_s
            for spec in (TITAN_XP, XEON, JETSON_NANO, RASPBERRY_PI)
        ]
        assert latencies == sorted(latencies)

    def test_overhead_dominates_short_sentences(self):
        """CoLA-length inputs are overhead-bound on the GPU — the reason
        Fig. 14 shows ~1000x speedups on the shortest tasks."""
        short = dense_trace(BERT_BASE, 11)
        report = attention_cost(TITAN_XP, short)
        overhead = BERT_BASE.n_layers * TITAN_XP.layer_overhead_summarize_s
        assert report.latency_s < 2 * overhead

    def test_flops_dominate_long_sentences(self):
        long = dense_trace(BERT_BASE, 170)
        report = attention_cost(TITAN_XP, long)
        flops_time = report.flops / TITAN_XP.attn_eff_summarize
        assert flops_time > 0.5 * report.latency_s

    def test_decode_uses_decode_efficiency(self, gpt2_trace):
        summarize = attention_cost(TITAN_XP, gpt2_trace, include_decode=False)
        decode = attention_cost(TITAN_XP, gpt2_trace, include_summarize=False)
        assert summarize.flops > 0 and decode.flops > 0

    def test_energy_is_power_times_latency(self, bert_trace):
        report = attention_cost(XEON, bert_trace)
        assert report.energy_j == pytest.approx(
            report.latency_s * XEON.dynamic_power_w
        )

    def test_fc_cost_positive_and_weight_bound(self, gpt2_trace):
        report = fc_cost(RASPBERRY_PI, gpt2_trace, include_summarize=False)
        assert report.latency_s > 0
        assert report.dram_bytes > 0

    def test_gather_overhead_multiplies(self, bert_trace):
        plain = attention_cost(TITAN_XP, bert_trace).latency_s
        with_gather = attention_cost(
            TITAN_XP, bert_trace, gather_overhead=1.2
        ).latency_s
        assert with_gather > plain


class TestA3:
    def test_approximates_dense_attention(self, rng):
        k = rng.normal(size=(32, 16))
        v = rng.normal(size=(32, 16))
        q = rng.normal(size=16)
        exact, _ = scaled_dot_attention(q[None, None, :], k[None], v[None])
        approx, stats = a3_attention(q, k, v, n_components=12, score_margin=3.0)
        rel_err = np.linalg.norm(approx - exact[0, 0]) / np.linalg.norm(exact)
        assert rel_err < 0.5
        assert 0 < stats.keys_kept <= 32

    def test_prunes_locally(self, rng):
        k = rng.normal(size=(64, 8))
        v = rng.normal(size=(64, 8))
        q = rng.normal(size=8) * 3
        _, stats = a3_attention(q, k, v, n_components=4, score_margin=1.0)
        assert stats.keep_fraction < 1.0

    def test_preprocessing_overhead_counted(self, rng):
        _, stats = a3_attention(
            rng.normal(size=8), rng.normal(size=(16, 8)), rng.normal(size=(16, 8))
        )
        assert stats.preprocessing_ops > 0

    def test_cost_model_no_dram_saving(self):
        """A3 fetches everything: latency floor is the dense fetch."""
        model = A3CostModel(dram_bandwidth=64e9)
        dense_bytes = 64e9  # one second of fetch
        latency = model.attention_latency(1e9, dense_bytes)
        assert latency >= 1.0

    def test_energy_model(self):
        model = A3CostModel()
        assert model.energy(269e9) == pytest.approx(1.0)


class TestMNNFast:
    def test_drops_low_probability_values(self, rng):
        k = rng.normal(size=(32, 8)) * 2
        v = rng.normal(size=(32, 8))
        q = rng.normal(size=8) * 2
        out, stats = mnnfast_attention(q, k, v, prob_threshold=0.02)
        assert stats.values_kept < 32
        exact, _ = scaled_dot_attention(q[None, None, :], k[None], v[None])
        rel_err = np.linalg.norm(out - exact[0, 0]) / np.linalg.norm(exact)
        assert rel_err < 0.3

    def test_threshold_zero_keeps_all(self, rng):
        k = rng.normal(size=(8, 4))
        v = rng.normal(size=(8, 4))
        q = rng.normal(size=4)
        _, stats = mnnfast_attention(q, k, v, prob_threshold=0.0)
        assert stats.values_kept == 8

    def test_cost_model_slower_than_a3(self):
        flops, dense_bytes = 1e9, 1e6
        a3_latency = A3CostModel().attention_latency(flops, dense_bytes)
        mnn_latency = MNNFastCostModel().attention_latency(flops, dense_bytes)
        assert mnn_latency > a3_latency


class TestRoofline:
    def test_attainable(self):
        roof = Roofline("m", 2e12, 512e9)
        assert attainable(roof, 100.0) == 2e12  # compute-bound
        assert attainable(roof, 1.0) == 512e9  # memory-bound
        with pytest.raises(ValueError):
            attainable(roof, -1)

    def test_ridge_point(self):
        roof = Roofline("m", 2e12, 512e9)
        assert roof.ridge_intensity == pytest.approx(3.90625)

    def test_classification(self):
        roof = Roofline("m", 2e12, 512e9)
        memory = RooflinePoint("gpt", "m", 1.0, 0.4e12)
        compute = RooflinePoint("bert", "m", 50.0, 1.6e12)
        assert classify(roof, memory) == "memory-bound"
        assert classify(roof, compute) == "compute-bound"
        assert 0 < memory.utilisation(roof) <= 1.0
