"""Tests for the repro.analysis static lint pass.

Every rule family gets at least one positive fixture (the rule fires on
a minimal violation) and a negative fixture (the rule stays silent on
the fixed version); plus suppression-comment handling, JSON reporter
byte-stability, the golden stats-schema round trip, the CLI surface,
and the repo-clean gate the acceptance criteria require.
"""

import json
from dataclasses import fields

import pytest

from repro.analysis import (
    LintEngine,
    domain_of,
    render_json,
    render_text,
)
from repro.cli import main as cli_main
from repro.cluster.stats import ClusterStats
from repro.serving.stats import STATS_SCHEMA_VERSION, ServingStats


def make_repo(tmp_path, files):
    """Materialize a fixture repo ({relpath: source}) under tmp_path."""
    (tmp_path / "src" / "repro").mkdir(parents=True, exist_ok=True)
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return tmp_path


def lint(tmp_path, files, rules=None, paths=None):
    root = make_repo(tmp_path, files)
    engine = LintEngine(root=root, rules=rules)
    return engine.run(paths)


def rule_ids(result):
    return [f.rule for f in result.unsuppressed]


# ----------------------------------------------------------------------
# Determinism family
# ----------------------------------------------------------------------
class TestWallClockRule:
    def test_fires_on_wall_clock_reads(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/bad.py": (
                "import time\n"
                "from datetime import datetime\n"
                "def stamp():\n"
                "    return time.time(), time.perf_counter(), "
                "datetime.now()\n"
            ),
        }, rules=["det-wallclock"])
        assert rule_ids(result).count("det-wallclock") == 3
        assert result.exit_code == 1

    def test_silent_on_simulated_clock(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/good.py": (
                "class Clock:\n"
                "    def __init__(self):\n"
                "        self.now = 0.0\n"
                "    def advance(self, dt):\n"
                "        self.now += dt\n"
            ),
        }, rules=["det-wallclock"])
        assert result.unsuppressed == []
        assert result.exit_code == 0

    def test_manifest_sanctions_the_profiler(self, tmp_path):
        # Same wall-clock read, but in the module the clock-domain
        # manifest declares 'wall': no finding.
        result = lint(tmp_path, {
            "src/repro/telemetry/profiler.py": (
                "import time\n"
                "def t0():\n"
                "    return time.perf_counter()\n"
            ),
        }, rules=["det-wallclock"])
        assert result.unsuppressed == []

    def test_resolves_import_aliases(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/alias.py": (
                "from time import perf_counter as pc\n"
                "def t():\n"
                "    return pc()\n"
            ),
        }, rules=["det-wallclock"])
        assert rule_ids(result) == ["det-wallclock"]


class TestGlobalRngRule:
    def test_fires_on_numpy_legacy_and_stdlib_random(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/bad.py": (
                "import random\n"
                "import numpy as np\n"
                "def draw():\n"
                "    return np.random.rand(3) + random.random()\n"
            ),
        }, rules=["det-global-rng"])
        ids = rule_ids(result)
        assert len(ids) == 3  # the import, np.random.rand, random.random
        assert set(ids) == {"det-global-rng"}

    def test_silent_on_seeded_generator(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/good.py": (
                "import numpy as np\n"
                "def draw(seed):\n"
                "    rng = np.random.default_rng(seed)\n"
                "    ss = np.random.SeedSequence(seed)\n"
                "    return rng.random(), ss\n"
            ),
        }, rules=["det-global-rng"])
        assert result.unsuppressed == []


class TestEnvReadRule:
    def test_fires_on_environ_and_getenv(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/bad.py": (
                "import os\n"
                "def conf():\n"
                "    a = os.environ['THREADS']\n"
                "    b = os.environ.get('DEBUG')\n"
                "    c = os.getenv('SEED')\n"
                "    return a, b, c\n"
            ),
        }, rules=["det-env-read"])
        assert rule_ids(result) == ["det-env-read"] * 3
        assert result.exit_code == 1

    def test_silent_on_explicit_config(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/good.py": (
                "def conf(threads, debug, seed):\n"
                "    return threads, debug, seed\n"
            ),
        }, rules=["det-env-read"])
        assert result.unsuppressed == []


class TestSetOrderRule:
    def test_fires_on_set_iteration_shapes(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/bad.py": (
                "def shapes(xs):\n"
                "    a = [x for x in set(xs)]\n"
                "    b = list({1, 2, 3})\n"
                "    c = ','.join({'x', 'y'})\n"
                "    for item in set(xs) - {0}:\n"
                "        a.append(item)\n"
                "    return a, b, c\n"
            ),
        }, rules=["det-set-order"])
        assert rule_ids(result) == ["det-set-order"] * 4

    def test_silent_on_sorted_sets(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/good.py": (
                "def shapes(xs):\n"
                "    a = [x for x in sorted(set(xs))]\n"
                "    b = sorted({1, 2, 3})\n"
                "    c = ','.join(sorted({'x', 'y'}))\n"
                "    for item in sorted(set(xs) - {0}):\n"
                "        a.append(item)\n"
                "    return a, b, c\n"
            ),
        }, rules=["det-set-order"])
        assert result.unsuppressed == []


class TestDtypeLiteralRule:
    def test_fires_in_governed_module(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/nn/kv_cache.py": (
                "import numpy as np\n"
                "def store(x):\n"
                "    a = np.asarray(x, dtype=np.float64)\n"
                "    b = np.zeros(3, dtype=float)\n"
                "    return a, b\n"
            ),
        }, rules=["det-dtype-literal"])
        assert rule_ids(result) == ["det-dtype-literal"] * 2
        assert result.exit_code == 1

    def test_silent_outside_governed_modules(self, tmp_path):
        # Same code in a non-hot-path module: the oracle baselines and
        # eval helpers are *supposed* to be fp64.
        result = lint(tmp_path, {
            "src/repro/eval/accuracy.py": (
                "import numpy as np\n"
                "def score(x):\n"
                "    return np.asarray(x, dtype=np.float64)\n"
            ),
        }, rules=["det-dtype-literal"])
        assert result.unsuppressed == []

    def test_silent_on_policy_threaded_dtype(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/nn/kv_cache.py": (
                "import numpy as np\n"
                "def store(x, policy):\n"
                "    return np.asarray(x, dtype=policy.kv_dtype)\n"
            ),
        }, rules=["det-dtype-literal"])
        assert result.unsuppressed == []

    def test_suppression_with_reason(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/nn/functional.py": (
                "import numpy as np\n"
                "def softmax(x):\n"
                "    # repro: allow[det-dtype-literal] -- fp64 oracle\n"
                "    return np.asarray(x, dtype=np.float64)\n"
            ),
        }, rules=["det-dtype-literal"])
        assert result.unsuppressed == []
        assert len(result.suppressed) == 1


# ----------------------------------------------------------------------
# Clock-domain family
# ----------------------------------------------------------------------
class TestClockDomainRule:
    def test_manifest_domains(self):
        assert domain_of("repro.serving.engine") == "simulated"
        assert domain_of("repro.telemetry.profiler") == "wall"
        assert domain_of("repro.telemetry") == "neutral"
        assert domain_of("repro.core.schedule") == "neutral"

    def test_fires_on_simulated_importing_wall(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/bad.py": (
                "from repro.telemetry.profiler import HotPathProfiler\n"
                "profiler = HotPathProfiler()\n"
            ),
        }, rules=["clock-domain-import"])
        assert rule_ids(result) == ["clock-domain-import"]

    def test_fires_on_from_pkg_import_submodule(self, tmp_path):
        # `from repro.telemetry import profiler` binds to the more
        # specific manifest entry, not the neutral package.
        result = lint(tmp_path, {
            "src/repro/cluster/bad.py": (
                "from repro.telemetry import profiler\n"
            ),
        }, rules=["clock-domain-import"])
        assert rule_ids(result) == ["clock-domain-import"]

    def test_fires_on_wall_importing_simulated(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/telemetry/profiler.py": (
                "from repro.serving.stats import SimulatedClock\n"
            ),
        }, rules=["clock-domain-import"])
        assert rule_ids(result) == ["clock-domain-import"]

    def test_silent_on_neutral_bridge(self, tmp_path):
        # The fixed version: simulated code imports the neutral bundle
        # package, which is allowed to aggregate both sides.
        result = lint(tmp_path, {
            "src/repro/serving/good.py": (
                "from repro.telemetry import Telemetry\n"
            ),
            "src/repro/telemetry/__init__.py": (
                "from .profiler import HotPathProfiler\n"
                "class Telemetry:\n"
                "    pass\n"
            ),
        }, rules=["clock-domain-import"])
        assert result.unsuppressed == []

    def test_relative_imports_resolve(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/bad.py": (
                "from ..telemetry.profiler import HotPathProfiler\n"
            ),
        }, rules=["clock-domain-import"])
        assert rule_ids(result) == ["clock-domain-import"]


# ----------------------------------------------------------------------
# Accounting family
# ----------------------------------------------------------------------
_POOL_SILENT = """\
class KVMemoryPool:
    def __init__(self):
        self._accounts = {}
        self.observer = None

    def _notify(self, kind, seq_id, **info):
        if self.observer is not None:
            self.observer.pool_event(kind, seq_id, **info)

    def admit(self, seq_id, pages):
        self._accounts[seq_id] = pages

    def release(self, seq_id):
        self._accounts.pop(seq_id)
        self._notify("release", seq_id)

    def audit(self):
        pass
"""

_POOL_NOTIFYING = _POOL_SILENT.replace(
    "        self._accounts[seq_id] = pages\n",
    "        self._accounts[seq_id] = pages\n"
    "        self._notify(\"admit\", seq_id, pages=pages)\n",
)

_AUDIT_TEST = """\
from repro.serving.memory_pool import KVMemoryPool

def test_pool_ledger():
    pool = KVMemoryPool()
    pool.admit(1, 4)
    pool.release(1)
    pool.audit()
"""


class TestObserverNotifyRule:
    def test_fires_on_silent_mutation(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/memory_pool.py": _POOL_SILENT,
        }, rules=["acct-observer-notify"])
        ids = rule_ids(result)
        assert ids == ["acct-observer-notify"]
        assert "admit" in result.unsuppressed[0].message

    def test_silent_when_every_mutation_notifies(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/memory_pool.py": _POOL_NOTIFYING,
        }, rules=["acct-observer-notify"])
        assert result.unsuppressed == []

    def test_transitive_notification_counts(self, tmp_path):
        # try_grow-style delegation: the mutation notifies through the
        # same-class method it calls.
        source = _POOL_NOTIFYING + (
            "\n"
            "    def try_grow(self, seq_id, pages):\n"
            "        self.admit(seq_id, pages)\n"
            "        return True\n"
        )
        result = lint(tmp_path, {
            "src/repro/serving/memory_pool.py": source,
        }, rules=["acct-observer-notify"])
        assert result.unsuppressed == []

    def test_real_pool_classes_pass(self):
        result = LintEngine(rules=["acct-observer-notify"]).run()
        assert result.unsuppressed == []


class TestAuditTestRule:
    def test_fires_without_audit_covered_test(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/memory_pool.py": _POOL_NOTIFYING,
        }, rules=["acct-audit-test"])
        assert rule_ids(result) == ["acct-audit-test"] * 2  # admit, release

    def test_silent_when_audit_test_exercises_methods(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/memory_pool.py": _POOL_NOTIFYING,
            "tests/test_pool.py": _AUDIT_TEST,
        }, rules=["acct-audit-test"])
        assert result.unsuppressed == []

    def test_test_without_audit_does_not_count(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/memory_pool.py": _POOL_NOTIFYING,
            "tests/test_pool.py": _AUDIT_TEST.replace(
                "    pool.audit()\n", ""
            ),
        }, rules=["acct-audit-test"])
        assert rule_ids(result) == ["acct-audit-test"] * 2


# ----------------------------------------------------------------------
# Drift family
# ----------------------------------------------------------------------
_CLI_DRIFTED = '''\
"""Usage: repro serve --ghost-flag 3 --requests 8."""
import argparse

def build():
    p = argparse.ArgumentParser()
    p.add_argument("--requests", type=int)
    p.add_argument("--rate", type=float)
    return p
'''

_CLI_SYNCED = '''\
"""Usage: repro serve --requests 8 --rate 100."""
import argparse

def build():
    p = argparse.ArgumentParser()
    p.add_argument("--requests", type=int)
    p.add_argument("--rate", type=float)
    return p
'''


class TestCliDocDriftRule:
    def test_fires_both_directions(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/cli.py": _CLI_DRIFTED,
        }, rules=["drift-cli-doc"])
        messages = [f.message for f in result.unsuppressed]
        assert len(messages) == 2
        assert any("--ghost-flag" in m and "stale" in m for m in messages)
        assert any("--rate" in m and "neither" in m for m in messages)

    def test_silent_when_synced(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/cli.py": _CLI_SYNCED,
        }, rules=["drift-cli-doc"])
        assert result.unsuppressed == []

    def test_section_underlines_are_not_flags(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/cli.py": (
                '"""Guide\n'
                "-----\n"
                "\n"
                "No flags here, just a reST underline.\n"
                '"""\n'
            ),
        }, rules=["drift-cli-doc"])
        assert result.unsuppressed == []


_STATS_FIXTURE = '''\
from dataclasses import dataclass

STATS_SCHEMA_VERSION = 1

@dataclass
class ServingStats:
    mode: str
    n_tokens: int
    records: list

    def to_dict(self):
        return {"mode": self.mode, "n_tokens": self.n_tokens,
                "schema_version": STATS_SCHEMA_VERSION}
'''

_CLUSTER_STATS_FIXTURE = '''\
class ClusterStats:
    def to_dict(self):
        return {
            "schema_version": 1,
            "policy": self.policy,
            "fleet": self.fleet.to_dict(),
        }
'''


def _golden(serving, cluster, version=1):
    return json.dumps({
        "schema_version": version,
        "serving_stats": serving,
        "cluster_stats": cluster,
    })


class TestStatsSchemaDriftRule:
    FILES = {
        "src/repro/serving/stats.py": _STATS_FIXTURE,
        "src/repro/cluster/stats.py": _CLUSTER_STATS_FIXTURE,
    }

    def test_fires_on_missing_golden(self, tmp_path):
        result = lint(tmp_path, dict(self.FILES),
                      rules=["drift-stats-schema"])
        assert rule_ids(result) == ["drift-stats-schema"]
        assert "missing" in result.unsuppressed[0].message

    def test_fires_on_key_drift(self, tmp_path):
        files = dict(self.FILES)
        files["benchmarks/results/stats_schema_v2.json"] = _golden(
            ["mode", "schema_version", "stale_key"],
            ["fleet", "policy", "schema_version"],
        )
        result = lint(tmp_path, files, rules=["drift-stats-schema"])
        assert rule_ids(result) == ["drift-stats-schema"]
        msg = result.unsuppressed[0].message
        assert "n_tokens" in msg and "stale_key" in msg

    def test_fires_on_version_mismatch(self, tmp_path):
        files = dict(self.FILES)
        files["benchmarks/results/stats_schema_v2.json"] = _golden(
            ["mode", "n_tokens", "schema_version"],
            ["fleet", "policy", "schema_version"],
            version=2,
        )
        result = lint(tmp_path, files, rules=["drift-stats-schema"])
        assert any("STATS_SCHEMA_VERSION" in f.message
                   for f in result.unsuppressed)

    def test_silent_when_golden_matches(self, tmp_path):
        files = dict(self.FILES)
        files["benchmarks/results/stats_schema_v2.json"] = _golden(
            ["mode", "n_tokens", "schema_version"],
            ["fleet", "policy", "schema_version"],
        )
        result = lint(tmp_path, files, rules=["drift-stats-schema"])
        assert result.unsuppressed == []


# ----------------------------------------------------------------------
# Observability family
# ----------------------------------------------------------------------
class TestSpanBalanceRule:
    def test_fires_on_spanless_terminal_transition(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/bad.py": (
                "class Engine:\n"
                "    def fail(self, record):\n"
                "        record.status = RequestStatus.FAILED\n"
            ),
        }, rules=["obs-span-balance"])
        assert rule_ids(result) == ["obs-span-balance"]
        finding = result.unsuppressed[0]
        assert finding.line == 3  # anchored at the mutating line
        assert "Engine.fail()" in finding.message

    def test_fires_on_spanless_requeue(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/cluster/bad.py": (
                "class Fleet:\n"
                "    def evict(self, record):\n"
                "        record.reset_for_preempt()\n"
            ),
        }, rules=["obs-span-balance"])
        assert rule_ids(result) == ["obs-span-balance"]

    def test_silent_when_span_emitted_directly(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/good.py": (
                "class Engine:\n"
                "    def fail(self, record, now):\n"
                "        self.tel.tracer.span(\n"
                "            'decode', record.entered, now)\n"
                "        record.status = RequestStatus.FAILED\n"
            ),
        }, rules=["obs-span-balance"])
        assert result.unsuppressed == []

    def test_silent_when_span_emitted_via_helper(self, tmp_path):
        # Transitive: the transition method calls a same-class helper
        # that emits the span.
        result = lint(tmp_path, {
            "src/repro/serving/good.py": (
                "class Engine:\n"
                "    def _close(self, record, now):\n"
                "        self.tel.tracer.span('decode', 0.0, now)\n"
                "    def preempt(self, record, now):\n"
                "        self._close(record, now)\n"
                "        record.reset_for_preempt()\n"
            ),
        }, rules=["obs-span-balance"])
        assert result.unsuppressed == []

    def test_record_reset_methods_are_exempt(self, tmp_path):
        # The record's own reset_for_* methods are the transition, not
        # the scheduler path that owes the span.
        result = lint(tmp_path, {
            "src/repro/serving/record.py": (
                "class RequestRecord:\n"
                "    def reset_for_requeue(self):\n"
                "        self.status = RequestStatus.QUEUED\n"
                "    def reset_for_corruption(self):\n"
                "        self.reset_for_requeue()\n"
            ),
        }, rules=["obs-span-balance"])
        assert result.unsuppressed == []

    def test_out_of_scope_paths_are_ignored(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/eval/bad.py": (
                "class Harness:\n"
                "    def fail(self, record):\n"
                "        record.status = RequestStatus.FAILED\n"
            ),
        }, rules=["obs-span-balance"])
        assert result.unsuppressed == []

    def test_suppression_on_mutating_line(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/bad.py": (
                "class Engine:\n"
                "    def fail(self, record):\n"
                "        # repro: allow[obs-span-balance] -- no span open\n"
                "        record.status = RequestStatus.FAILED\n"
            ),
        }, rules=["obs-span-balance"])
        assert result.unsuppressed == []
        assert [f.rule for f in result.suppressed] == ["obs-span-balance"]
        assert result.suppressed[0].reason == "no span open"


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_same_line_suppression(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/mod.py": (
                "import time\n"
                "t = time.time()  "
                "# repro: allow[det-wallclock] -- fixture reason\n"
            ),
        }, rules=["det-wallclock", "lint-suppression"])
        assert result.unsuppressed == []
        assert len(result.suppressed) == 1
        assert result.suppressed[0].reason == "fixture reason"

    def test_standalone_suppression_covers_next_code_line(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/mod.py": (
                "import time\n"
                "# repro: allow[det-wallclock] -- reason spans a block\n"
                "# and continues on a plain comment line.\n"
                "t = time.time()\n"
            ),
        }, rules=["det-wallclock", "lint-suppression"])
        assert result.unsuppressed == []
        assert len(result.suppressed) == 1

    def test_file_level_suppression(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/mod.py": (
                "# repro: allow-file[det-wallclock] -- whole-module fixture\n"
                "import time\n"
                "a = time.time()\n"
                "b = time.time()\n"
            ),
        }, rules=["det-wallclock", "lint-suppression"])
        assert result.unsuppressed == []
        assert len(result.suppressed) == 2

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/mod.py": (
                "import time\n"
                "t = time.time()  # repro: allow[det-env-read] -- wrong id\n"
            ),
        }, rules=["det-wallclock", "lint-suppression"])
        assert rule_ids(result) == ["det-wallclock"]

    def test_reasonless_suppression_is_a_finding(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/mod.py": (
                "import time\n"
                "t = time.time()  # repro: allow[det-wallclock]\n"
            ),
        }, rules=["det-wallclock", "lint-suppression"])
        # The target finding is silenced, but the missing reason fails
        # the lint — every suppression must carry its justification.
        assert rule_ids(result) == ["lint-suppression"]
        assert "no reason" in result.unsuppressed[0].message

    def test_malformed_repro_comment_is_a_finding(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/mod.py": (
                "# repro: allowed[det-wallclock] -- typoed directive\n"
                "x = 1\n"
            ),
        }, rules=["lint-suppression"])
        assert rule_ids(result) == ["lint-suppression"]


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
class TestReporters:
    FILES = {
        "src/repro/serving/mod.py": (
            "import time\n"
            "a = time.time()\n"
            "b = time.time()  # repro: allow[det-wallclock] -- fixture\n"
        ),
    }

    def test_json_report_is_byte_identical_across_runs(self, tmp_path):
        root = make_repo(tmp_path, self.FILES)
        runs = [
            render_json(LintEngine(root=root).run()).encode()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_json_report_shape(self, tmp_path):
        result = lint(tmp_path, dict(self.FILES))
        doc = json.loads(render_json(result))
        assert doc["tool"] == "repro.analysis"
        assert doc["summary"]["findings"] == 1
        assert doc["summary"]["suppressed"] == 1
        (finding,) = doc["findings"]
        assert finding["rule"] == "det-wallclock"
        assert finding["path"] == "src/repro/serving/mod.py"
        assert finding["line"] == 2
        (suppressed,) = doc["suppressed"]
        assert suppressed["reason"] == "fixture"

    def test_text_report_names_rule_and_location(self, tmp_path):
        result = lint(tmp_path, dict(self.FILES))
        text = render_text(result)
        assert "src/repro/serving/mod.py:2: [det-wallclock]" in text
        assert "1 finding(s)" in text


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
class TestEngine:
    def test_unknown_rule_id_raises(self, tmp_path):
        make_repo(tmp_path, {})
        with pytest.raises(ValueError, match="unknown rule"):
            LintEngine(root=tmp_path, rules=["no-such-rule"])

    def test_bad_path_raises(self, tmp_path):
        make_repo(tmp_path, {})
        engine = LintEngine(root=tmp_path)
        with pytest.raises(ValueError, match="lint path"):
            engine.run(["does/not/exist"])

    def test_syntax_error_is_reported_not_crashed(self, tmp_path):
        result = lint(tmp_path, {
            "src/repro/serving/broken.py": "def broken(:\n",
        })
        assert result.unsuppressed == []
        assert [f.rule for f in result.parse_errors] == ["lint-parse"]
        assert result.exit_code == 1

    def test_path_restriction_limits_scan(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/serving/bad.py": "import time\nt = time.time()\n",
            "src/repro/other/bad.py": "import time\nt = time.time()\n",
        })
        result = LintEngine(root=root, rules=["det-wallclock"]).run(
            ["src/repro/other"]
        )
        assert [f.path for f in result.unsuppressed] == [
            "src/repro/other/bad.py"
        ]


# ----------------------------------------------------------------------
# Golden schema round trip (runtime counterpart of drift-stats-schema)
# ----------------------------------------------------------------------
class TestGoldenSchemaRoundTrip:
    @pytest.fixture(scope="class")
    def golden(self):
        from repro.analysis.rules_drift import GOLDEN_SCHEMA_PATH
        from repro.analysis import find_repo_root

        with open(find_repo_root() / GOLDEN_SCHEMA_PATH) as fh:
            return json.load(fh)

    @pytest.fixture(scope="class")
    def serving_stats(self):
        return ServingStats.from_run(
            mode="dense", records=[], makespan_s=1.0, batch_sizes=[2],
            occupancy_samples=[0.5], pool_pages=8, pool_page_tokens=16,
            occupancy_peak=0.75, reclaimed_pages=1, reclaimed_tokens=16,
        )

    def test_schema_version_matches(self, golden):
        assert golden["schema_version"] == STATS_SCHEMA_VERSION

    def test_serving_stats_round_trip(self, golden, serving_stats):
        assert sorted(serving_stats.to_dict()) == golden["serving_stats"]

    def test_cluster_stats_round_trip(self, golden, serving_stats):
        stats = ClusterStats.from_run(
            policy="round_robin", records=[],
            replica_stats=[serving_stats], makespan_s=1.0,
            global_occupancy_samples=[0.5], global_occupancy_peak=0.75,
            total_pages=8, page_tokens=16, reclaimed_pages=1,
            reclaimed_tokens=16, n_active_replicas=1, n_drained=0,
            n_failed=0, n_requeued=0, routed_counts=[0],
        )
        assert sorted(stats.to_dict()) == golden["cluster_stats"]
        assert sorted(stats.to_dict()["fleet"]) == golden["serving_stats"]

    def test_dataclass_fields_match_golden(self, golden):
        expected = sorted(
            ({f.name for f in fields(ServingStats)} - {"records"})
            | {"schema_version"}
        )
        assert expected == golden["serving_stats"]


# ----------------------------------------------------------------------
# The repo itself is clean — the acceptance gate
# ----------------------------------------------------------------------
@pytest.mark.smoke
class TestRepoIsClean:
    def test_repo_lints_clean(self):
        result = LintEngine().run()
        assert result.parse_errors == []
        assert result.unsuppressed == [], render_text(result)

    def test_every_suppression_carries_a_reason(self):
        result = LintEngine().run()
        for finding in result.suppressed:
            assert finding.reason, (
                f"{finding.path}:{finding.line} suppresses {finding.rule} "
                f"without a reason"
            )

    def test_each_rule_family_is_registered(self):
        from repro.analysis import all_rule_classes

        families = {cls.family for cls in all_rule_classes().values()}
        assert {"determinism", "clock-domain", "accounting",
                "drift", "observability"} <= families


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestLintCli:
    def test_lint_exits_zero_on_clean_repo(self, capsys):
        assert cli_main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_json_format(self, capsys):
        assert cli_main(["lint", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "repro.analysis"
        assert doc["summary"]["findings"] == 0

    def test_out_writes_json_report(self, tmp_path, capsys):
        out_path = tmp_path / "lint_report.json"
        assert cli_main(["lint", "--out", str(out_path)]) == 0
        capsys.readouterr()
        doc = json.loads(out_path.read_text())
        assert doc["summary"]["findings"] == 0

    def test_rules_filter(self, capsys):
        assert cli_main(["lint", "--rules", "det-wallclock"]) == 0
        capsys.readouterr()

    def test_unknown_rule_exits_2(self, capsys):
        assert cli_main(["lint", "--rules", "bogus"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("det-wallclock", "clock-domain-import",
                        "acct-observer-notify", "drift-cli-doc"):
            assert rule_id in out

    def test_nonzero_exit_on_findings(self, tmp_path, capsys, monkeypatch):
        # The CLI lints the repo the operator is standing in: chdir to a
        # violating fixture tree and the gate must fail.
        make_repo(tmp_path, {
            "src/repro/serving/bad.py": "import time\nt = time.time()\n",
        })
        monkeypatch.chdir(tmp_path)
        rc = cli_main(["lint"])
        assert rc == 1
        assert "det-wallclock" in capsys.readouterr().out
