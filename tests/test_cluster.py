"""Tests for multi-replica serving (repro.cluster)."""

import json

import numpy as np
import pytest

from repro.cluster import (
    ROUTING_POLICIES,
    ClusterEngine,
    ClusterRouter,
    Replica,
    ShardedKVPool,
)
from repro.config import GPT2_SMALL, PruningConfig
from repro.serving import (
    KVMemoryPool,
    PoolExhausted,
    Request,
    RequestStatus,
    ServingEngine,
)
from repro.workloads import (
    TrafficClass,
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    heterogeneous_request_trace,
    lm_prompts,
    make_lm_corpus,
    synthetic_request_trace,
)

PROMPT_LEN = 24
PRUNING = PruningConfig(token_keep_final=0.4, head_keep_final=0.75,
                        value_keep=0.9)
AGGRESSIVE = PruningConfig(token_keep_final=0.3, head_keep_final=0.625,
                           value_keep=0.9)


@pytest.fixture(scope="module")
def cluster_setup():
    vocab = build_vocabulary(size=512, n_classes=4, seed=0)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=4, d_model=64, n_heads=4,
        max_seq_len=160,
    )
    model, _ = build_task_model(config, vocab, "lm", seed=0)
    corpus = make_lm_corpus(vocab, n_tokens=2048, seed=2)
    return config, model, corpus


def page_budget(config, pages, page_tokens=8):
    per_token = 2 * config.n_heads * config.head_dim * config.bytes_per_element
    return pages * page_tokens * per_token


def make_sharded(config, total_pages=128, n_replicas=2, page_tokens=8):
    pool = ShardedKVPool(
        config,
        total_budget_bytes=page_budget(config, total_pages, page_tokens),
        n_replicas=n_replicas,
        page_tokens=page_tokens,
    )
    assert pool.total_pages == total_pages
    return pool


def skewed_requests(config, corpus, n=12, rate=800.0, seed=31):
    classes = [
        TrafficClass("pruned-short", weight=0.7, prompt_len=16,
                     max_new_tokens=(3, 6), pruning=AGGRESSIVE),
        TrafficClass("dense-long", weight=0.3, prompt_len=48,
                     max_new_tokens=(3, 6), pruning=None),
    ]
    return heterogeneous_request_trace(
        corpus, classes, n_requests=n, rate_per_s=rate, seed=seed
    )


class TestHeterogeneousTraffic:
    def classes(self):
        return [
            TrafficClass("cheap", weight=3.0, prompt_len=16,
                         max_new_tokens=(2, 4), pruning=AGGRESSIVE),
            TrafficClass("dense", weight=1.0, prompt_len=48,
                         max_new_tokens=(4, 8), pruning=None, priority=1),
        ]

    def test_trace_mixes_classes_with_their_schedules(self, cluster_setup):
        _, _, corpus = cluster_setup
        requests = heterogeneous_request_trace(
            corpus, self.classes(), n_requests=40, rate_per_s=100.0, seed=9
        )
        assert len(requests) == 40
        assert [r.request_id for r in requests] == list(range(40))
        cheap = [r for r in requests if r.prompt_len == 16]
        dense = [r for r in requests if r.prompt_len == 48]
        assert len(cheap) + len(dense) == 40
        # The 3:1 weighting shows up in the mix (loose bound, fixed seed).
        assert len(cheap) > len(dense)
        assert all(r.pruning is AGGRESSIVE for r in cheap)
        assert all(r.pruning is None for r in dense)
        assert all(r.priority == 1 for r in dense)
        assert all(2 <= r.max_new_tokens <= 4 for r in cheap)
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == sorted(arrivals)

    def test_trace_is_reproducible(self, cluster_setup):
        _, _, corpus = cluster_setup
        a = heterogeneous_request_trace(
            corpus, self.classes(), n_requests=12, rate_per_s=50.0, seed=4
        )
        b = heterogeneous_request_trace(
            corpus, self.classes(), n_requests=12, rate_per_s=50.0, seed=4
        )
        assert [(r.arrival_time, r.max_new_tokens, list(r.prompt_ids))
                for r in a] == \
               [(r.arrival_time, r.max_new_tokens, list(r.prompt_ids))
                for r in b]

    def test_validation(self, cluster_setup):
        _, _, corpus = cluster_setup
        with pytest.raises(ValueError, match="TrafficClass"):
            heterogeneous_request_trace(corpus, [], 4, 10.0)
        with pytest.raises(ValueError, match="weight"):
            TrafficClass("x", weight=0.0, prompt_len=8, max_new_tokens=(1, 2))
        with pytest.raises(ValueError, match="max_new_tokens"):
            TrafficClass("x", weight=1.0, prompt_len=8, max_new_tokens=(4, 2))
        with pytest.raises(ValueError, match="n_requests"):
            heterogeneous_request_trace(corpus, self.classes(), 0, 10.0)


class TestShardedKVPool:
    def test_even_split_and_per_replica_budgets(self, cluster_setup):
        config, _, _ = cluster_setup
        pool = make_sharded(config, total_pages=96, n_replicas=3)
        assert [s.n_pages for s in pool.shards] == [32, 32, 32]
        hetero = ShardedKVPool(
            config,
            replica_budgets_bytes=[
                page_budget(config, 16), page_budget(config, 48),
            ],
            page_tokens=8,
        )
        assert [s.n_pages for s in hetero.shards] == [16, 48]
        assert hetero.total_pages == 64

    def test_constructor_validation(self, cluster_setup):
        config, _, _ = cluster_setup
        with pytest.raises(ValueError, match="n_replicas"):
            ShardedKVPool(config, total_budget_bytes=1 << 20)
        with pytest.raises(ValueError, match="n_replicas"):
            ShardedKVPool(config, total_budget_bytes=1 << 20, n_replicas=0)
        with pytest.raises(ValueError, match="disagrees"):
            ShardedKVPool(
                config, n_replicas=3,
                replica_budgets_bytes=[1 << 20, 1 << 20],
            )

    def test_global_ledger_views(self, cluster_setup):
        config, _, _ = cluster_setup
        pool = make_sharded(config, total_pages=64, n_replicas=2)
        pool.shard(0).admit(1, PROMPT_LEN, 8, None)
        pool.shard(1).admit(2, PROMPT_LEN, 8, PRUNING)
        assert pool.n_sequences == 2
        assert pool.reserved_pages == (
            pool.shard(0).reserved_pages + pool.shard(1).reserved_pages
        )
        pool.shard(0).sync(1, [8] * config.n_layers)
        assert pool.allocated_pages == pool.shard(0).allocated_pages
        assert 0 < pool.global_occupancy < 1
        pool.audit()  # both live sequences billed exactly once

    def test_audit_catches_double_billing(self, cluster_setup):
        config, _, _ = cluster_setup
        pool = make_sharded(config)
        pool.shard(0).admit(7, PROMPT_LEN, 4, None)
        pool.shard(1).admit(7, PROMPT_LEN, 4, None)  # same id on two shards
        with pytest.raises(PoolExhausted, match="billed by replica 0 and"):
            pool.audit()

    def test_audit_catches_nonempty_retired_shard(self, cluster_setup):
        config, _, _ = cluster_setup
        pool = make_sharded(config)
        pool.shard(0).admit(3, PROMPT_LEN, 4, None)
        pool.drain(0)
        with pytest.raises(PoolExhausted, match="retired replica 0"):
            pool.audit()
        pool.shard(0).release(3)
        pool.audit()

    def test_drain_and_fail_lifecycle(self, cluster_setup):
        config, _, _ = cluster_setup
        pool = make_sharded(config, n_replicas=3, total_pages=96)
        before = pool.free_reservation_pages
        pool.drain(1)
        assert pool.active_indices == [0, 2]
        assert not pool.is_active(1) and not pool.is_failed(1)
        # A retired shard's pages are stranded, not placeable.
        assert pool.free_reservation_pages == before - pool.shard(1).n_pages
        pool.fail(2)
        assert pool.is_failed(2)
        assert pool.n_active == 1
        with pytest.raises(ValueError, match="already drained"):
            pool.drain(1)
        with pytest.raises(IndexError):
            pool.drain(5)


class TestClusterRouter:
    def make_replicas(self, cluster_setup, pages=(32, 32)):
        config, model, _ = cluster_setup
        replicas = []
        for i, n_pages in enumerate(pages):
            shard = KVMemoryPool(
                config, page_budget(config, n_pages), page_tokens=8
            )
            engine = ServingEngine(model, shard, prefill_chunk=8)
            engine.start()
            replicas.append(Replica(index=i, engine=engine, shard=shard))
        return config, replicas

    def request(self, config, rid=0, prompt_len=PROMPT_LEN, max_new=4,
                pruning=None):
        return Request(rid, np.arange(1, prompt_len + 1), max_new,
                       pruning=pruning)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="routing policy"):
            ClusterRouter("fastest")
        assert set(ROUTING_POLICIES) == {
            "round_robin", "least_loaded", "pruning_aware"
        }

    def test_round_robin_cycles(self, cluster_setup):
        config, replicas = self.make_replicas(cluster_setup)
        router = ClusterRouter("round_robin")
        picks = [
            router.choose(self.request(config, rid), replicas).index
            for rid in range(4)
        ]
        assert picks == [0, 1, 0, 1]
        assert router.routed_counts == {0: 2, 1: 2}

    def test_least_loaded_prefers_free_pages(self, cluster_setup):
        config, replicas = self.make_replicas(cluster_setup, pages=(32, 32))
        replicas[0].shard.admit(99, PROMPT_LEN, 8, None)
        router = ClusterRouter("least_loaded")
        assert router.choose(self.request(config), replicas).index == 1

    def test_oversized_request_skips_small_shard(self, cluster_setup):
        config, replicas = self.make_replicas(cluster_setup, pages=(8, 64))
        # Needs more pages than shard 0 will ever hold.
        big = self.request(config, prompt_len=40, max_new=24)
        for policy in ROUTING_POLICIES:
            assert ClusterRouter(policy).choose(big, replicas).index == 1

    def test_no_feasible_replica_raises(self, cluster_setup):
        config, replicas = self.make_replicas(cluster_setup, pages=(8, 8))
        big = self.request(config, prompt_len=40, max_new=24)
        with pytest.raises(PoolExhausted, match="fits no active replica"):
            ClusterRouter("round_robin").choose(big, replicas)

    def test_pruning_aware_prefers_lighter_backlog(self, cluster_setup):
        config, replicas = self.make_replicas(cluster_setup, pages=(64, 64))
        # Replica 0 already owes a big dense request; replica 1 is idle.
        replicas[0].engine.submit(
            self.request(config, rid=90, prompt_len=40, max_new=40)
        )
        router = ClusterRouter("pruning_aware")
        cheap = self.request(config, rid=1, prompt_len=8, max_new=2,
                             pruning=AGGRESSIVE)
        assert router.choose(cheap, replicas).index == 1

    def test_pruning_aware_key_is_schedule_bound(self, cluster_setup):
        """The score separates dense from pruned and busy from idle."""
        config, replicas = self.make_replicas(cluster_setup, pages=(64, 64))
        router = ClusterRouter("pruning_aware")
        dense = self.request(config, rid=1, prompt_len=40, max_new=20)
        pruned = self.request(config, rid=2, prompt_len=40, max_new=20,
                              pruning=AGGRESSIVE)
        idle = replicas[0]
        dense_key = router._pruning_aware_key(
            dense, idle, idle.engine.placement_pages_estimate(dense))
        pruned_key = router._pruning_aware_key(
            pruned, idle, idle.engine.placement_pages_estimate(pruned))
        # Same prompt and budget: the pruned request's schedule-bound
        # cost (pages and FLOPs) is strictly cheaper.
        assert pruned_key[0] < dense_key[0]
        assert idle.engine.placement_pages_estimate(pruned) < \
            idle.engine.placement_pages_estimate(dense)
        # Backlog raises the same request's score on a busier replica.
        replicas[1].engine.submit(
            self.request(config, rid=95, prompt_len=40, max_new=40)
        )
        busy = replicas[1]
        busy_key = router._pruning_aware_key(
            dense, busy, busy.engine.placement_pages_estimate(dense))
        assert busy_key[0] > dense_key[0]


class TestClusterEngine:
    def run_cluster(self, cluster_setup, requests, n_replicas=2,
                    policy="round_robin", total_pages=128, pruning=None,
                    prefill_chunk=8, **kwargs):
        config, model, _ = cluster_setup
        pool = make_sharded(
            config, total_pages=total_pages, n_replicas=n_replicas
        )
        cluster = ClusterEngine(
            model, pool, policy=policy, pruning=pruning,
            prefill_chunk=prefill_chunk, **kwargs
        )
        return cluster.run(requests), pool

    @pytest.mark.parametrize("pruning", [None, PRUNING],
                             ids=["dense", "spatten"])
    @pytest.mark.parametrize("prefill_chunk", [None, 8],
                             ids=["monolithic", "chunked"])
    def test_single_replica_matches_plain_engine(
        self, cluster_setup, pruning, prefill_chunk
    ):
        """The acceptance bar: N=1 serve-cluster == plain serve."""
        config, model, corpus = cluster_setup
        requests = synthetic_request_trace(
            corpus, n_requests=8, rate_per_s=500.0, prompt_len=PROMPT_LEN,
            max_new_tokens=(3, 6), seed=7,
        )
        plain = ServingEngine(
            model, KVMemoryPool(config, page_budget(config, 64), 8),
            pruning=pruning, prefill_chunk=prefill_chunk,
        ).run(requests)
        pool = make_sharded(config, total_pages=64, n_replicas=1)
        stats = ClusterEngine(
            model, pool, policy="pruning_aware", pruning=pruning,
            prefill_chunk=prefill_chunk,
        ).run(requests)
        replica = stats.replicas[0]
        assert (
            [r.token_ids for r in plain.records]
            == [r.token_ids for r in replica.records]
        )
        assert plain.to_dict() == replica.to_dict()
        assert stats.fleet.n_tokens == plain.n_tokens
        assert stats.fleet.ttft_p95 == plain.ttft_p95

    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    def test_skewed_traffic_fully_served_every_policy(
        self, cluster_setup, policy
    ):
        config, model, corpus = cluster_setup
        requests = skewed_requests(config, corpus)
        stats, pool = self.run_cluster(
            cluster_setup, requests, n_replicas=2, policy=policy
        )
        assert stats.fleet.n_requests == len(requests)
        assert all(
            r.n_generated == r.request.max_new_tokens
            for r in stats.fleet.records
        )
        assert stats.fleet.n_unadmitted == 0
        assert sum(stats.routed_counts) == len(requests)
        assert pool.n_sequences == 0  # every reservation released
        pool.audit()

    def test_policies_commit_identical_tokens(self, cluster_setup):
        """Routing moves work around; greedy decoding stays greedy."""
        config, model, corpus = cluster_setup
        requests = skewed_requests(config, corpus)
        streams = {}
        for policy in ROUTING_POLICIES:
            stats, _ = self.run_cluster(
                cluster_setup, requests, n_replicas=2, policy=policy
            )
            streams[policy] = [r.token_ids for r in stats.fleet.records]
        assert streams["round_robin"] == streams["least_loaded"]
        assert streams["round_robin"] == streams["pruning_aware"]

    def test_all_replicas_full_backpressure(self, cluster_setup):
        """When every shard is reserved out, arrivals wait — and the
        cluster works through the queue without dropping anything."""
        config, model, corpus = cluster_setup
        prompts = lm_prompts(corpus, PROMPT_LEN, 6, seed=43)
        requests = [
            Request(i, prompts[i], 4, arrival_time=0.0)
            for i in range(6)
        ]
        # Each shard fits exactly one dense reservation:
        # ceil(28/8)=4 pages x 4 layers = 16 pages per request.
        stats, pool = self.run_cluster(
            cluster_setup, requests, n_replicas=2, total_pages=32,
        )
        assert all(
            r.n_generated == r.request.max_new_tokens
            for r in stats.fleet.records
        )
        waits = sorted(r.queue_wait for r in stats.fleet.records)
        # Two requests admit immediately (one per replica); the other
        # four wait for a predecessor to retire.
        assert waits[0] == pytest.approx(0.0)
        assert waits[1] == pytest.approx(0.0)
        assert all(w > 0 for w in waits[2:])
        assert stats.fleet.queue_wait_p95 > 0
        pool.audit()

    def test_mid_run_drain_requeues_without_token_loss(self, cluster_setup):
        config, model, corpus = cluster_setup
        requests = skewed_requests(config, corpus, n=10, rate=2000.0)
        baseline, _ = self.run_cluster(
            cluster_setup, requests, n_replicas=2, policy="least_loaded"
        )
        # Drain replica 0 while it still has work in flight.
        drain_t = baseline.fleet.makespan_s / 3
        stats, pool = self.run_cluster(
            cluster_setup, requests, n_replicas=2, policy="least_loaded",
            drain_events=[(drain_t, 0)],
        )
        assert stats.n_requeued > 0
        assert stats.n_drained == 1 and stats.n_failed == 0
        assert stats.n_active_replicas == 1
        # No token loss: every request still delivers its full budget,
        # and greedy decoding makes the streams identical to the
        # drain-free run.
        assert all(
            r.n_generated == r.request.max_new_tokens
            for r in stats.fleet.records
        )
        assert (
            [r.token_ids for r in stats.fleet.records]
            == [r.token_ids for r in baseline.fleet.records]
        )
        # No double-billed pages: the drained shard is empty and the
        # ledger audit holds (run() already audited; re-check).
        assert pool.shard(0).reserved_pages == 0
        assert pool.shard(0).allocated_pages == 0
        pool.audit()
        # The drain penalty is visible: displaced requests waited longer.
        assert stats.fleet.queue_wait_p95 >= baseline.fleet.queue_wait_p95

    def test_late_drain_does_not_inflate_makespan(self, cluster_setup):
        """A drain long after the work finished is administrative only:
        the fleet keeps its real makespan and throughput (regression:
        the retire event used to drag the replica clock forward)."""
        config, model, corpus = cluster_setup
        requests = skewed_requests(config, corpus, n=6, rate=2000.0)
        baseline, _ = self.run_cluster(cluster_setup, requests, n_replicas=2)
        late, pool = self.run_cluster(
            cluster_setup, requests, n_replicas=2,
            drain_events=[(baseline.fleet.makespan_s + 10.0, 0)],
        )
        assert late.n_requeued == 0
        assert late.n_drained == 1
        assert late.fleet.makespan_s == baseline.fleet.makespan_s
        assert late.fleet.throughput_tps == baseline.fleet.throughput_tps
        assert (
            late.replicas[0].makespan_s == baseline.replicas[0].makespan_s
        )
        pool.audit()

    def test_fail_flagged_in_report(self, cluster_setup):
        config, model, corpus = cluster_setup
        requests = skewed_requests(config, corpus, n=6, rate=2000.0)
        stats, pool = self.run_cluster(
            cluster_setup, requests, n_replicas=2,
            fail_events=[(1e-4, 1)],
        )
        assert stats.n_failed == 1 and stats.n_drained == 0
        assert pool.is_failed(1)
        assert all(
            r.n_generated == r.request.max_new_tokens
            for r in stats.fleet.records
        )

    def test_draining_every_replica_fails_requests_cleanly(
        self, cluster_setup
    ):
        """A fleet-wide drain must not crash or dead-loop: work that no
        surviving replica can take is failed cleanly, its ledger pages
        stay released, and the report counts the failures.  (This used
        to raise PoolExhausted mid-run, losing every other record.)"""
        config, model, corpus = cluster_setup
        requests = skewed_requests(config, corpus, n=6, rate=2000.0)
        stats, pool = self.run_cluster(
            cluster_setup, requests, n_replicas=2,
            drain_events=[(1e-4, 0), (2e-4, 1)],
        )
        pool.audit()
        assert stats.n_failed_requests > 0
        assert stats.n_failed_requests == stats.fleet.n_failed_requests
        failed = [
            r for r in stats.fleet.records
            if r.status is RequestStatus.FAILED
        ]
        assert len(failed) == stats.n_failed_requests
        assert all(r.admit_time is None and not r.token_ids for r in failed)

    def test_never_placeable_requeue_fails_cleanly(self, cluster_setup):
        """Regression: draining the only shard big enough for an
        in-flight request used to crash the run (or leak its pages)
        when the requeue fit no surviving replica.  The request must
        fail cleanly, its ledger pages must return, and every other
        request must still be served to completion."""
        config, model, corpus = cluster_setup
        # Replica 0 is the only shard that can hold the big request.
        pool = ShardedKVPool(
            config,
            replica_budgets_bytes=[
                page_budget(config, 64), page_budget(config, 24),
            ],
            page_tokens=8,
        )
        small = [
            Request(i, lm_prompts(corpus, 8, 1, seed=30 + i)[0],
                    max_new_tokens=4, arrival_time=i * 1e-5)
            for i in range(4)
        ]
        big = Request(4, lm_prompts(corpus, 40, 1, seed=40)[0],
                      max_new_tokens=20, arrival_time=2e-5)
        cluster = ClusterEngine(
            model, pool, policy="round_robin", prefill_chunk=8,
            drain_events=[(1e-4, 0)],
        )
        stats = cluster.run(small + [big])
        pool.audit()
        assert cluster.failed_requests == [4]
        assert stats.n_failed_requests == 1
        big_record = next(
            r for r in stats.fleet.records if r.request.request_id == 4
        )
        assert big_record.status is RequestStatus.FAILED
        assert big_record.admit_time is None and not big_record.token_ids
        # The retired shard holds nothing and every small request is
        # fully served despite the drain.
        assert pool.shard(0).n_sequences == 0
        for r in stats.fleet.records:
            if r.request.request_id != 4:
                assert r.n_generated == r.request.max_new_tokens

    def test_retire_event_validation(self, cluster_setup):
        config, model, corpus = cluster_setup
        pool = make_sharded(config)
        with pytest.raises(ValueError, match="unknown replica"):
            ClusterEngine(model, pool, drain_events=[(0.1, 9)])
        with pytest.raises(ValueError, match="non-negative"):
            ClusterEngine(model, pool, drain_events=[(-0.1, 0)])
        # Overlapping retire events (no recover in between) are
        # rejected; a drain -> recover -> fail sequence is legal.
        with pytest.raises(ValueError, match="recover first"):
            ClusterEngine(
                model, pool, drain_events=[(0.1, 0)],
                fail_events=[(0.2, 0)],
            )
        with pytest.raises(ValueError, match="still active"):
            ClusterEngine(model, pool, recover_events=[(0.1, 0)])
        ClusterEngine(
            model, pool, drain_events=[(0.1, 0)],
            recover_events=[(0.15, 0)], fail_events=[(0.2, 0)],
        )

    def test_infeasible_request_rejected_up_front(self, cluster_setup):
        config, model, corpus = cluster_setup
        prompt = lm_prompts(corpus, 40, 1, seed=19)[0]
        requests = [Request(0, prompt, 60, arrival_time=0.0)]
        with pytest.raises(PoolExhausted, match="fits no replica"):
            self.run_cluster(
                cluster_setup, requests, n_replicas=2, total_pages=32
            )

    def test_duplicate_request_ids_rejected(self, cluster_setup):
        config, model, corpus = cluster_setup
        prompt = lm_prompts(corpus, PROMPT_LEN, 1, seed=23)[0]
        with pytest.raises(ValueError, match="unique"):
            self.run_cluster(
                cluster_setup,
                [Request(0, prompt, 2), Request(0, prompt, 2)],
            )

    def test_per_request_schedule_overrides_engine_default(
        self, cluster_setup
    ):
        config, model, corpus = cluster_setup
        pool = make_sharded(config)
        engine = ClusterEngine(
            model, pool, pruning=PRUNING
        ).replicas[0].engine
        prompt = lm_prompts(corpus, PROMPT_LEN, 1, seed=3)[0]
        inherit = Request(0, prompt, 4)
        forced_dense = Request(1, prompt, 4, pruning=None)
        override = Request(2, prompt, 4, pruning=AGGRESSIVE)
        assert engine.pruning_of(inherit) is PRUNING
        assert engine.pruning_of(forced_dense) is None
        assert engine.pruning_of(override) is AGGRESSIVE
        # The pool reservation follows the per-request schedule.
        shard = pool.shard(0)
        assert shard.reservation_pages(
            PROMPT_LEN, 4, engine.pruning_of(override)
        ) < shard.reservation_pages(
            PROMPT_LEN, 4, engine.pruning_of(forced_dense)
        )

    def test_cluster_stats_json_roundtrip(self, cluster_setup):
        config, model, corpus = cluster_setup
        requests = skewed_requests(config, corpus, n=6)
        stats, _ = self.run_cluster(cluster_setup, requests, n_replicas=2)
        payload = json.loads(stats.to_json())
        assert payload["n_replicas"] == 2
        assert payload["fleet"]["n_requests"] == 6
        assert len(payload["replicas"]) == 2
        assert "records" not in payload["fleet"]
        assert "cluster report" in str(stats.table())


@pytest.mark.smoke
def test_cluster_smoke(cluster_setup):
    """Fast end-to-end: skewed traffic, a drain, full service, clean ledger."""
    config, model, corpus = cluster_setup
    requests = skewed_requests(config, corpus, n=8, rate=1500.0)
    pool = make_sharded(config, total_pages=96, n_replicas=2)
    stats = ClusterEngine(
        model, pool, policy="pruning_aware", prefill_chunk=8,
        drain_events=[(0.002, 0)],
    ).run(requests)
    assert all(
        r.n_generated == r.request.max_new_tokens
        for r in stats.fleet.records
    )
    pool.audit()
    assert stats.fleet.throughput_tps > 0
