"""Tests for optimistic admission + preemption (repro.serving).

The invariants under test, matching the subsystem's acceptance bar:

* the pool ledger audits clean across preempt/requeue cycles (the
  engine audits after every preemption; these tests audit again at
  checkpoints);
* greedy recompute-on-preempt is bit-identical: a run that preempts
  commits exactly the token streams of an unpreempted run;
* the livelock guard holds: no request is preempted twice without
  committing work in between;
* optimistic admission survives worst-case backpressure — a dense
  (no-pruning) trace where actual usage meets the worst-case bound —
  without losing tokens or livelocking.
"""

import numpy as np
import pytest

from repro.cluster import ClusterEngine, ShardedKVPool
from repro.config import GPT2_SMALL, PruningConfig
from repro.serving import (
    KVMemoryPool,
    PoolExhausted,
    PreemptionCandidate,
    PreemptionPolicy,
    Request,
    ServingEngine,
)
from repro.workloads import (
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    make_lm_corpus,
    synthetic_request_trace,
)

PROMPT_LEN = 24
PRUNING = PruningConfig(token_keep_final=0.3, head_keep_final=0.625,
                        value_keep=0.9)


@pytest.fixture(scope="module")
def serving_setup():
    vocab = build_vocabulary(size=512, n_classes=4, seed=0)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=4, d_model=64, n_heads=4,
        max_seq_len=160,
    )
    model, _ = build_task_model(config, vocab, "lm", seed=0)
    corpus = make_lm_corpus(vocab, n_tokens=2048, seed=2)
    return config, model, corpus


def make_pool(config, pages, page_tokens=8):
    pool = KVMemoryPool(
        config,
        budget_bytes=pages * page_tokens * 2 * config.n_heads
        * config.head_dim * config.bytes_per_element,
        page_tokens=page_tokens,
    )
    assert pool.n_pages == pages
    return pool


def trace(corpus, n=16, rate=2000.0, max_new=(8, 16), seed=3):
    return synthetic_request_trace(
        corpus, n_requests=n, rate_per_s=rate, prompt_len=PROMPT_LEN,
        max_new_tokens=max_new, seed=seed,
    )


def tokens_by_id(stats):
    return {r.request.request_id: list(r.token_ids) for r in stats.records}


def assert_all_complete(stats):
    for r in stats.records:
        assert r.n_generated == r.request.max_new_tokens


class TestOptimisticPool:
    def test_optimistic_floor_cheaper_than_worst_case(self, serving_setup):
        config, _, _ = serving_setup
        pool = make_pool(config, pages=64)
        floor = pool.optimistic_floor_pages(PROMPT_LEN, PRUNING)
        worst = pool.reservation_pages(PROMPT_LEN, 16, PRUNING)
        assert 0 < floor < worst

    def test_optimistic_reservation_tracks_actual_usage(self, serving_setup):
        """The bug under repair: reserve-mode reservations never shrink,
        so reclaimed pages cannot admit new work.  Optimistic accounts
        must shrink with the allocation once the prompt has landed."""
        config, _, _ = serving_setup
        pool = make_pool(config, pages=64)
        pool.admit_optimistic(1, PROMPT_LEN, PRUNING)
        floor = pool.reserved_pages_of(1)
        pool.sync(1, [PROMPT_LEN] * config.n_layers)
        assert pool.reserved_pages_of(1) >= floor
        pool.finish_prefill(1)
        grown = pool.reserved_pages_of(1)
        assert grown == pool.allocated_pages_of(1)
        # Cascade eviction shrinks the bill immediately.
        pool.sync(1, [4] * config.n_layers)
        assert pool.reserved_pages_of(1) < grown
        assert pool.reserved_pages_of(1) == pool.allocated_pages_of(1)
        pool.audit()

    def test_headroom_gates_admission(self, serving_setup):
        config, _, _ = serving_setup
        pool = make_pool(config, pages=16)
        floor = pool.optimistic_floor_pages(PROMPT_LEN, None)
        assert pool.can_admit_optimistic(PROMPT_LEN)
        assert not pool.can_admit_optimistic(
            PROMPT_LEN, headroom_pages=16 - floor + 1
        )
        with pytest.raises(PoolExhausted, match="headroom"):
            pool.admit_optimistic(
                5, PROMPT_LEN, headroom_pages=16 - floor + 1
            )

    def test_try_grow_signals_pressure_without_mutating(self, serving_setup):
        config, _, _ = serving_setup
        pool = make_pool(config, pages=8)
        pool.admit_optimistic(1, 8)
        pool.sync(1, [8] * config.n_layers)  # 4 layers x 1 page
        before = pool.allocated_pages
        # Growing every layer past the remaining budget must refuse.
        assert not pool.try_grow(1, [8 * 3] * config.n_layers)
        assert pool.allocated_pages == before
        # A fitting growth commits.
        assert pool.try_grow(1, [16] * config.n_layers)
        assert pool.allocated_pages == 8
        pool.audit()

    def test_growth_respects_midprefill_floors(self, serving_setup):
        """Regression: try_grow/pressure_pages gated on *allocated*
        pages only, so another sequence's decode growth could eat the
        pages a mid-prefill sequence's floor had promised — pushing
        total reservations past the pool and crashing the next
        audit().  Growth must be gated on the reserved plane."""
        config, _, _ = serving_setup
        pool = make_pool(config, pages=16)
        # Sequence 1: dense 24-token prompt, floor 12 pages, only 4
        # allocated so far (prompt still committing chunk by chunk).
        pool.admit_optimistic(1, 24)
        pool.sync(1, [8] * config.n_layers)
        assert pool.reserved_pages_of(1) == 12
        # Sequence 2 fits the remaining 4 unreserved pages.
        pool.admit_optimistic(2, 8)
        pool.sync(2, [8] * config.n_layers)
        # Growing 2 to 8 pages fits *allocations* (4 + 8 <= 16) but
        # would steal 4 pages promised to sequence 1's prefill: refuse.
        assert pool.pressure_pages({2: [16] * config.n_layers}) == 4
        assert not pool.try_grow(2, [16] * config.n_layers)
        assert pool.reserved_pages <= pool.n_pages
        pool.audit()
        # Once sequence 1's prompt lands, its floor is real allocation
        # and the ledger stays exactly at the pool: still no room.
        pool.sync(1, [24] * config.n_layers)
        pool.finish_prefill(1)
        assert pool.reserved_pages == 16
        assert not pool.try_grow(2, [16] * config.n_layers)
        pool.audit()

    def test_pressure_pages_projection(self, serving_setup):
        config, _, _ = serving_setup
        pool = make_pool(config, pages=8)
        pool.admit_optimistic(1, 8)
        pool.sync(1, [8] * config.n_layers)
        assert pool.pressure_pages({}) == 0
        assert pool.pressure_pages({1: [16] * config.n_layers}) == 0
        assert pool.pressure_pages({1: [24] * config.n_layers}) == 4
        # Unknown projected ids are ignored (already preempted).
        assert pool.pressure_pages({99: [999] * config.n_layers}) == 0

    def test_preempt_release_counts_and_clears(self, serving_setup):
        config, _, _ = serving_setup
        pool = make_pool(config, pages=16)
        pool.admit_optimistic(1, 8)
        pool.sync(1, [8] * config.n_layers)
        freed = pool.preempt_release(1)
        assert freed == config.n_layers
        assert pool.n_preempted == 1
        assert pool.preempted_pages == freed
        assert pool.n_sequences == 0
        with pytest.raises(ValueError, match="unknown sequence"):
            pool.preempt_release(1)
        pool.audit()

    def test_audit_catches_corrupt_accounts(self, serving_setup):
        config, _, _ = serving_setup
        pool = make_pool(config, pages=16)
        pool.admit_optimistic(1, 8)
        pool.sync(1, [8] * config.n_layers)
        pool.audit()
        pool._accounts[1].reserved_pages += 1  # simulate a ledger bug
        with pytest.raises(PoolExhausted, match="audit"):
            pool.audit()


class TestPreemptionPolicy:
    CANDIDATES = [
        PreemptionCandidate(seq_id=1, priority=0, arrival_time=0.1, pages=9),
        PreemptionCandidate(seq_id=2, priority=2, arrival_time=0.2, pages=3),
        PreemptionCandidate(seq_id=3, priority=1, arrival_time=0.3, pages=6),
    ]

    def test_policies_pick_their_victim(self):
        assert PreemptionPolicy("lowest_priority").select(
            self.CANDIDATES).seq_id == 2
        assert PreemptionPolicy("most_pages").select(
            self.CANDIDATES).seq_id == 1
        assert PreemptionPolicy("latest_arrival").select(
            self.CANDIDATES).seq_id == 3

    def test_protected_candidates_are_skipped(self):
        shielded = [
            PreemptionCandidate(seq_id=c.seq_id, priority=c.priority,
                                arrival_time=c.arrival_time, pages=c.pages,
                                protected=c.seq_id == 2)
            for c in self.CANDIDATES
        ]
        assert PreemptionPolicy("lowest_priority").select(
            shielded).seq_id == 3
        all_protected = [
            PreemptionCandidate(seq_id=c.seq_id, priority=c.priority,
                                arrival_time=c.arrival_time, pages=c.pages,
                                protected=True)
            for c in self.CANDIDATES
        ]
        assert PreemptionPolicy("most_pages").select(all_protected) is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="preemption policy"):
            PreemptionPolicy("coin_flip")


class TestOptimisticEngine:
    def run_engine(self, serving_setup, requests, pages, admission,
                   pruning=PRUNING, **kwargs):
        config, model, _ = serving_setup
        pool = make_pool(config, pages=pages)
        engine = ServingEngine(
            model, pool, pruning=pruning, prefill_chunk=8,
            admission=admission, **kwargs,
        )
        stats = engine.run(requests)
        pool.audit()
        return stats, engine, pool

    def test_invalid_configuration_rejected(self, serving_setup):
        config, model, _ = serving_setup
        pool = make_pool(config, pages=16)
        with pytest.raises(ValueError, match="admission"):
            ServingEngine(model, pool, admission="hopeful")
        with pytest.raises(ValueError, match="headroom"):
            ServingEngine(model, pool, admission="optimistic",
                          headroom_pages=-1)
        with pytest.raises(ValueError, match="preemption policy"):
            ServingEngine(model, pool, preempt_policy="coin_flip")

    def test_validate_rejects_impossible_headroom(self, serving_setup):
        config, model, corpus = serving_setup
        pool = make_pool(config, pages=24)
        engine = ServingEngine(
            model, pool, prefill_chunk=8, admission="optimistic",
            headroom_pages=15,
        )
        # The worst case (20 pages) fits the pool, but the optimistic
        # floor (12) plus headroom (15) never can.
        with pytest.raises(PoolExhausted, match="headroom"):
            engine.run(trace(corpus, n=1))

    def test_optimistic_fixes_admission_starvation(self, serving_setup):
        """The headline claim: at the same tight pool budget on a
        pruning-heavy trace, optimistic admission + preemption strictly
        beats reservation-only admission on throughput and TTFT p95 —
        with bit-identical per-request token streams."""
        _, _, corpus = serving_setup
        requests = trace(corpus, n=16)
        reserve, _, _ = self.run_engine(
            serving_setup, requests, pages=40, admission="reserve")
        optimistic, engine, _ = self.run_engine(
            serving_setup, requests, pages=40, admission="optimistic")
        assert optimistic.throughput_tps > reserve.throughput_tps
        assert optimistic.ttft_p95 < reserve.ttft_p95
        assert tokens_by_id(optimistic) == tokens_by_id(reserve)
        assert_all_complete(optimistic)
        assert optimistic.admission == "optimistic"

    def test_recompute_is_token_identical_under_preemption(
        self, serving_setup
    ):
        """Preemption must actually fire, and the replayed streams must
        match an unpreempted run bit for bit (greedy recompute)."""
        _, _, corpus = serving_setup
        requests = trace(corpus, n=16, max_new=(12, 24), seed=11)
        roomy, _, _ = self.run_engine(
            serving_setup, requests, pages=160, admission="reserve")
        tight, engine, pool = self.run_engine(
            serving_setup, requests, pages=36, admission="optimistic")
        assert tight.n_preemptions > 0
        assert pool.n_preempted == tight.n_preemptions
        assert tight.recompute_tokens > 0
        assert tokens_by_id(tight) == tokens_by_id(roomy)
        assert_all_complete(tight)
        assert len(engine.preemption_log) == tight.n_preemptions

    @pytest.mark.parametrize(
        "policy", ["lowest_priority", "most_pages", "latest_arrival"]
    )
    def test_every_policy_preserves_tokens_and_ledger(
        self, serving_setup, policy
    ):
        _, _, corpus = serving_setup
        requests = trace(corpus, n=12, max_new=(12, 24), seed=13)
        roomy, _, _ = self.run_engine(
            serving_setup, requests, pages=160, admission="reserve")
        tight, engine, _ = self.run_engine(
            serving_setup, requests, pages=36, admission="optimistic",
            preempt_policy=policy)
        assert tokens_by_id(tight) == tokens_by_id(roomy)
        assert_all_complete(tight)
        assert all(e.policy == policy for e in engine.preemption_log)

    def test_livelock_guard_requires_progress_between_preemptions(
        self, serving_setup
    ):
        """No request is preempted twice without progress: after its
        first preemption a request is protected until it commits work,
        so every later preemption of the same request must discard a
        strictly positive amount of recomputed work."""
        _, _, corpus = serving_setup
        requests = trace(corpus, n=16, max_new=(12, 24), seed=11)
        _, engine, _ = self.run_engine(
            serving_setup, requests, pages=36, admission="optimistic")
        assert engine.preemption_log, "scenario must actually preempt"
        seen = set()
        for event in engine.preemption_log:
            if event.request_id in seen:
                assert event.work_tokens > 0, (
                    f"request {event.request_id} re-preempted without "
                    f"progress"
                )
            seen.add(event.request_id)

    def test_backpressure_under_worst_case_dense_trace(self, serving_setup):
        """No-pruning worst case: actual usage meets the worst-case
        bound, so optimism is always wrong and preemption carries the
        whole load.  The run must terminate with zero token loss and a
        clean ledger — backpressure, not collapse."""
        _, _, corpus = serving_setup
        requests = trace(corpus, n=10, max_new=(10, 20), seed=17)
        reserve, _, _ = self.run_engine(
            serving_setup, requests, pages=28, admission="reserve",
            pruning=None)
        optimistic, engine, _ = self.run_engine(
            serving_setup, requests, pages=28, admission="optimistic",
            pruning=None)
        assert optimistic.n_preemptions > 0
        assert tokens_by_id(optimistic) == tokens_by_id(reserve)
        assert_all_complete(optimistic)

    def test_long_prefill_floor_survives_decode_growth(self, serving_setup):
        """Regression companion to the pool-level floor test: a long
        dense prompt committing chunk by chunk while short requests
        decode-grow around it must never blow the reservation invariant
        (the engine audits after every preemption) and must lose no
        tokens."""
        config, model, corpus = serving_setup
        from repro.serving import Request
        from repro.workloads import lm_prompts

        small = [
            Request(i, lm_prompts(corpus, 8, 1, seed=50 + i)[0],
                    max_new_tokens=40, arrival_time=0.0)
            for i in range(4)
        ]
        long_dense = Request(
            9, lm_prompts(corpus, 96, 1, seed=60)[0],
            max_new_tokens=8, arrival_time=1e-4, pruning=None,
        )
        requests = small + [long_dense]
        roomy, _, _ = self.run_engine(
            serving_setup, requests, pages=200, admission="reserve",
            pruning=None)
        tight, _, pool = self.run_engine(
            serving_setup, requests, pages=56, admission="optimistic",
            pruning=None)
        assert tokens_by_id(tight) == tokens_by_id(roomy)
        assert_all_complete(tight)
        assert pool.reserved_pages == 0 and pool.allocated_pages == 0

    def test_monolithic_prefill_supports_optimistic_mode(
        self, serving_setup
    ):
        config, model, corpus = serving_setup
        requests = trace(corpus, n=8, seed=19)
        baseline = ServingEngine(
            model, make_pool(config, pages=160), pruning=PRUNING,
        ).run(requests)
        pool = make_pool(config, pages=36)
        engine = ServingEngine(
            model, pool, pruning=PRUNING, admission="optimistic",
        )
        stats = engine.run(requests)
        pool.audit()
        assert tokens_by_id(stats) == tokens_by_id(baseline)
        assert_all_complete(stats)

    def test_headroom_damps_preemptions(self, serving_setup):
        _, _, corpus = serving_setup
        requests = trace(corpus, n=16, max_new=(12, 24), seed=11)
        eager, _, _ = self.run_engine(
            serving_setup, requests, pages=36, admission="optimistic",
            headroom_pages=0)
        damped, _, _ = self.run_engine(
            serving_setup, requests, pages=36, admission="optimistic",
            headroom_pages=8)
        assert damped.n_preemptions <= eager.n_preemptions
        assert tokens_by_id(damped) == tokens_by_id(eager)


class TestOptimisticCluster:
    def budget(self, config, pages, page_tokens=8):
        per_token = (
            2 * config.n_heads * config.head_dim * config.bytes_per_element
        )
        return pages * page_tokens * per_token

    def run_cluster(self, serving_setup, requests, admission,
                    total_pages=72, **kwargs):
        config, model, _ = serving_setup
        pool = ShardedKVPool(
            config, total_budget_bytes=self.budget(config, total_pages),
            n_replicas=2, page_tokens=8,
        )
        cluster = ClusterEngine(
            model, pool, policy="pruning_aware", pruning=PRUNING,
            prefill_chunk=8, admission=admission, **kwargs,
        )
        stats = cluster.run(requests)
        pool.audit()
        return stats, pool

    def test_cluster_threads_admission_mode(self, serving_setup):
        _, _, corpus = serving_setup
        requests = trace(corpus, n=16, max_new=(12, 24), seed=11)
        reserve, _ = self.run_cluster(serving_setup, requests, "reserve")
        optimistic, pool = self.run_cluster(
            serving_setup, requests, "optimistic")
        assert optimistic.fleet.admission == "optimistic"
        assert all(s.admission == "optimistic" for s in optimistic.replicas)
        assert tokens_by_id(optimistic.fleet) == tokens_by_id(reserve.fleet)
        for r in optimistic.fleet.records:
            assert r.n_generated == r.request.max_new_tokens
        assert optimistic.fleet.n_preemptions == pool.n_preempted

    def test_drain_during_optimistic_run_keeps_ledger_clean(
        self, serving_setup
    ):
        _, _, corpus = serving_setup
        requests = trace(corpus, n=12, max_new=(8, 16), seed=23)
        stats, pool = self.run_cluster(
            serving_setup, requests, "optimistic",
            drain_events=[(2e-3, 0)],
        )
        assert pool.shard(0).n_sequences == 0
        for r in stats.fleet.records:
            assert r.n_generated == r.request.max_new_tokens
