"""Unit tests for the per-layer KV cache."""

import numpy as np
import pytest

from repro.nn.kv_cache import KVCache, LayerKVCache


@pytest.fixture
def layer_cache():
    return LayerKVCache(n_heads=2, head_dim=4)


class TestLayerKVCache:
    def test_starts_empty(self, layer_cache):
        assert len(layer_cache) == 0
        assert layer_cache.n_bytes == 0

    def test_append_accumulates(self, layer_cache, rng):
        k = rng.normal(size=(2, 3, 4))
        v = rng.normal(size=(2, 3, 4))
        layer_cache.append(k, v, np.array([0, 1, 2]))
        layer_cache.append(k[:, :1], v[:, :1], np.array([3]))
        assert len(layer_cache) == 4
        assert np.array_equal(layer_cache.token_ids, [0, 1, 2, 3])

    def test_append_shape_validation(self, layer_cache, rng):
        k = rng.normal(size=(2, 3, 4))
        with pytest.raises(ValueError):
            layer_cache.append(k, rng.normal(size=(2, 2, 4)), np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            layer_cache.append(
                rng.normal(size=(3, 3, 4)), rng.normal(size=(3, 3, 4)),
                np.array([0, 1, 2]),
            )
        with pytest.raises(ValueError):
            layer_cache.append(k, k, np.array([0, 1]))

    def test_keep_preserves_order_and_content(self, layer_cache, rng):
        k = rng.normal(size=(2, 5, 4))
        v = rng.normal(size=(2, 5, 4))
        layer_cache.append(k, v, np.arange(5))
        layer_cache.keep(np.array([0, 2, 4]))
        assert np.array_equal(layer_cache.token_ids, [0, 2, 4])
        assert np.array_equal(layer_cache.keys, k[:, [0, 2, 4]])
        assert np.array_equal(layer_cache.values, v[:, [0, 2, 4]])

    def test_keep_rejects_unsorted(self, layer_cache, rng):
        layer_cache.append(
            rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)), np.arange(3)
        )
        with pytest.raises(ValueError):
            layer_cache.keep(np.array([2, 0]))

    def test_nbytes_fp16(self, layer_cache, rng):
        layer_cache.append(
            rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)), np.arange(3)
        )
        # 2 tensors x 2 heads x 3 tokens x 4 dims x 2 bytes
        assert layer_cache.n_bytes == 2 * 2 * 3 * 4 * 2


class TestKVCache:
    def test_per_layer_independence(self, rng):
        cache = KVCache(n_layers=3, n_heads=2, head_dim=4)
        cache[0].append(
            rng.normal(size=(2, 2, 4)), rng.normal(size=(2, 2, 4)), np.arange(2)
        )
        assert len(cache[0]) == 2
        assert len(cache[1]) == 0
        assert cache.total_cached_tokens == 2
        assert len(cache) == 3

    def test_total_bytes(self, rng):
        cache = KVCache(n_layers=2, n_heads=2, head_dim=4)
        for layer in range(2):
            cache[layer].append(
                rng.normal(size=(2, 1, 4)), rng.normal(size=(2, 1, 4)),
                np.array([0]),
            )
        assert cache.n_bytes == 2 * (2 * 2 * 1 * 4 * 2)
