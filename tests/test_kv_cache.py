"""Unit tests for the per-layer KV cache."""

import numpy as np
import pytest

from repro.nn.kv_cache import KVCache, LayerKVCache


@pytest.fixture
def layer_cache():
    return LayerKVCache(n_heads=2, head_dim=4)


class TestLayerKVCache:
    def test_starts_empty(self, layer_cache):
        assert len(layer_cache) == 0
        assert layer_cache.n_bytes == 0

    def test_append_accumulates(self, layer_cache, rng):
        k = rng.normal(size=(2, 3, 4))
        v = rng.normal(size=(2, 3, 4))
        layer_cache.append(k, v, np.array([0, 1, 2]))
        layer_cache.append(k[:, :1], v[:, :1], np.array([3]))
        assert len(layer_cache) == 4
        assert np.array_equal(layer_cache.token_ids, [0, 1, 2, 3])

    def test_append_shape_validation(self, layer_cache, rng):
        k = rng.normal(size=(2, 3, 4))
        with pytest.raises(ValueError):
            layer_cache.append(k, rng.normal(size=(2, 2, 4)), np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            layer_cache.append(
                rng.normal(size=(3, 3, 4)), rng.normal(size=(3, 3, 4)),
                np.array([0, 1, 2]),
            )
        with pytest.raises(ValueError):
            layer_cache.append(k, k, np.array([0, 1]))

    def test_keep_preserves_order_and_content(self, layer_cache, rng):
        k = rng.normal(size=(2, 5, 4))
        v = rng.normal(size=(2, 5, 4))
        layer_cache.append(k, v, np.arange(5))
        layer_cache.keep(np.array([0, 2, 4]))
        assert np.array_equal(layer_cache.token_ids, [0, 2, 4])
        assert np.array_equal(layer_cache.keys, k[:, [0, 2, 4]])
        assert np.array_equal(layer_cache.values, v[:, [0, 2, 4]])

    def test_keep_rejects_unsorted(self, layer_cache, rng):
        layer_cache.append(
            rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)), np.arange(3)
        )
        with pytest.raises(ValueError):
            layer_cache.keep(np.array([2, 0]))

    def test_nbytes_fp16(self, layer_cache, rng):
        layer_cache.append(
            rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)), np.arange(3)
        )
        # 2 tensors x 2 heads x 3 tokens x 4 dims x 2 bytes
        assert layer_cache.n_bytes == 2 * 2 * 3 * 4 * 2
        assert layer_cache.nbytes == layer_cache.n_bytes

    def test_nbytes_is_dtype_aware(self, rng):
        cache = LayerKVCache(n_heads=2, head_dim=4, bytes_per_element=4)
        cache.append(
            rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)), np.arange(3)
        )
        assert cache.nbytes == 2 * 2 * 3 * 4 * 4
        with pytest.raises(ValueError):
            LayerKVCache(n_heads=2, head_dim=4, bytes_per_element=0)

    def test_keep_empty_empties_the_cache(self, layer_cache, rng):
        layer_cache.append(
            rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)), np.arange(3)
        )
        layer_cache.keep(np.array([], dtype=np.int64))
        assert len(layer_cache) == 0
        assert layer_cache.nbytes == 0
        assert layer_cache.evicted_tokens == 3

    def test_keep_rejects_out_of_range(self, layer_cache, rng):
        layer_cache.append(
            rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)), np.arange(3)
        )
        with pytest.raises(ValueError):
            layer_cache.keep(np.array([1, 3]))  # beyond the last column
        with pytest.raises(ValueError):
            layer_cache.keep(np.array([-1, 1]))
        # Failed keeps must not disturb the cache.
        assert len(layer_cache) == 3
        assert layer_cache.evicted_tokens == 0

    def test_keep_tracks_cumulative_evictions(self, layer_cache, rng):
        layer_cache.append(
            rng.normal(size=(2, 5, 4)), rng.normal(size=(2, 5, 4)), np.arange(5)
        )
        layer_cache.keep(np.array([0, 2, 4]))
        layer_cache.keep(np.array([1]))
        assert layer_cache.evicted_tokens == 2 + 2
        assert np.array_equal(layer_cache.token_ids, [2])

    def test_append_empty_token_ids_mismatch(self, layer_cache, rng):
        with pytest.raises(ValueError):
            layer_cache.append(
                rng.normal(size=(2, 2, 4)), rng.normal(size=(2, 2, 4)),
                np.array([], dtype=np.int64),
            )

    def test_append_wrong_head_dim(self, layer_cache, rng):
        bad = rng.normal(size=(2, 3, 5))
        with pytest.raises(ValueError):
            layer_cache.append(bad, bad, np.arange(3))


class TestKVCache:
    def test_per_layer_independence(self, rng):
        cache = KVCache(n_layers=3, n_heads=2, head_dim=4)
        cache[0].append(
            rng.normal(size=(2, 2, 4)), rng.normal(size=(2, 2, 4)), np.arange(2)
        )
        assert len(cache[0]) == 2
        assert len(cache[1]) == 0
        assert cache.total_cached_tokens == 2
        assert len(cache) == 3

    def test_total_bytes(self, rng):
        cache = KVCache(n_layers=2, n_heads=2, head_dim=4)
        for layer in range(2):
            cache[layer].append(
                rng.normal(size=(2, 1, 4)), rng.normal(size=(2, 1, 4)),
                np.array([0]),
            )
        assert cache.n_bytes == 2 * (2 * 2 * 1 * 4 * 2)
        assert cache.nbytes == cache.n_bytes

    def test_bytes_per_element_propagates_to_layers(self, rng):
        cache = KVCache(n_layers=2, n_heads=2, head_dim=4, bytes_per_element=4)
        cache[1].append(
            rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)), np.arange(3)
        )
        assert cache.nbytes == 2 * 2 * 3 * 4 * 4

    def test_lengths_and_evictions_across_layers(self, rng):
        cache = KVCache(n_layers=3, n_heads=2, head_dim=4)
        for layer in range(3):
            cache[layer].append(
                rng.normal(size=(2, 4, 4)), rng.normal(size=(2, 4, 4)),
                np.arange(4),
            )
        cache[1].keep(np.array([0, 3]))
        cache[2].keep(np.array([], dtype=np.int64))
        assert cache.lengths() == [4, 2, 0]
        assert cache.total_cached_tokens == 6
        assert cache.total_evicted_tokens == 2 + 4
        # Eviction in one layer never disturbs the others.
        assert np.array_equal(cache[0].token_ids, np.arange(4))


class TestCapacityModel:
    """Capacity/length separation: preallocated page-aligned buffers."""

    def test_capacity_is_page_aligned_and_doubles(self, rng):
        cache = LayerKVCache(n_heads=2, head_dim=4, page_tokens=8)
        assert cache.capacity == 0
        cache.append(rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)),
                     np.arange(3))
        assert cache.capacity == 8  # one page
        for i in range(3, 9):
            cache.append(rng.normal(size=(2, 1, 4)), rng.normal(size=(2, 1, 4)),
                         np.array([i]))
        assert len(cache) == 9
        assert cache.capacity == 16  # doubled, page-aligned
        assert cache.capacity % cache.page_tokens == 0

    def test_views_are_zero_copy(self, rng):
        cache = LayerKVCache(n_heads=2, head_dim=4)
        k = rng.normal(size=(2, 3, 4))
        cache.append(k, k, np.arange(3))
        assert cache.keys.base is not None  # a view, not a copy
        assert np.shares_memory(cache.keys, cache.values) is False
        np.testing.assert_array_equal(cache.keys, k)

    def test_append_does_not_reallocate_within_capacity(self, rng):
        cache = LayerKVCache(n_heads=2, head_dim=4, page_tokens=16)
        cache.reserve(16)
        buffer_before = cache.keys.base
        for i in range(16):
            cache.append(rng.normal(size=(2, 1, 4)), rng.normal(size=(2, 1, 4)),
                         np.array([i]))
        assert cache.keys.base is buffer_before

    def test_reserve_prepares_capacity(self):
        cache = LayerKVCache(n_heads=2, head_dim=4, page_tokens=8)
        cache.reserve(20)
        assert cache.capacity == 24  # ceil(20 / 8) pages
        assert len(cache) == 0

    def test_keep_compacts_in_place(self, rng):
        cache = LayerKVCache(n_heads=2, head_dim=4)
        k = rng.normal(size=(2, 6, 4))
        v = rng.normal(size=(2, 6, 4))
        cache.append(k, v, np.arange(6))
        buffer_before = cache.keys.base
        cache.keep(np.array([1, 3, 4]))
        assert cache.keys.base is buffer_before  # no reallocation
        np.testing.assert_array_equal(cache.keys, k[:, [1, 3, 4]])
        np.testing.assert_array_equal(cache.token_ids, [1, 3, 4])

    def test_padded_to_returns_zero_tail_views(self, rng):
        cache = LayerKVCache(n_heads=2, head_dim=4)
        k = rng.normal(size=(2, 5, 4))
        cache.append(k, k, np.arange(5))
        cache.keep(np.array([0, 2]))  # leaves stale tail data
        keys, values = cache.padded_to(7)
        assert keys.shape == (2, 7, 4)
        np.testing.assert_array_equal(keys[:, :2], k[:, [0, 2]])
        assert np.all(keys[:, 2:] == 0.0)
        assert np.all(values[:, 2:] == 0.0)
        with pytest.raises(ValueError):
            cache.padded_to(1)  # below the live length

    def test_concat_mode_matches_preallocated_results(self, rng):
        fast = LayerKVCache(n_heads=2, head_dim=4, preallocate=True)
        legacy = LayerKVCache(n_heads=2, head_dim=4, preallocate=False)
        for i in range(7):
            k = rng.normal(size=(2, 1, 4))
            v = rng.normal(size=(2, 1, 4))
            for cache in (fast, legacy):
                cache.append(k, v, np.array([i]))
        fast.keep(np.array([0, 3, 5]))
        legacy.keep(np.array([0, 3, 5]))
        np.testing.assert_array_equal(fast.keys, legacy.keys)
        np.testing.assert_array_equal(fast.values, legacy.values)
        np.testing.assert_array_equal(fast.token_ids, legacy.token_ids)
        pk_fast, _ = fast.padded_to(9)
        pk_legacy, _ = legacy.padded_to(9)
        np.testing.assert_array_equal(pk_fast, pk_legacy)

    def test_nbytes_counts_live_columns_not_capacity(self, rng):
        cache = LayerKVCache(n_heads=2, head_dim=4, page_tokens=16)
        cache.append(rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)),
                     np.arange(3))
        assert cache.nbytes == 2 * 2 * 3 * 4 * 2          # live columns
        assert cache.capacity_nbytes == 2 * 2 * 16 * 4 * 2  # one page
        assert cache.capacity_nbytes >= cache.nbytes

    def test_invalid_page_tokens_rejected(self):
        with pytest.raises(ValueError):
            LayerKVCache(n_heads=2, head_dim=4, page_tokens=0)

    def test_kvcache_reserve_covers_every_layer(self):
        cache = KVCache(n_layers=3, n_heads=2, head_dim=4, page_tokens=8)
        cache.reserve(10)
        assert all(layer.capacity == 16 for layer in cache.layers)
        assert cache.capacity_nbytes == 3 * (2 * 2 * 16 * 4 * 2)


class TestNumericsStorage:
    """Dtype-parameterized planes: the numerics ladder's KV storage.

    ``dtype=float32`` must round-trip every lifecycle operation at fp32
    precision; ``dtype=int8`` stores codes plus per-(head, column) fp32
    scales and must dequantize consistently across views, compaction,
    padding, and mid-generation appends — and the byte accounting must
    follow the storage width, scales included.
    """

    def test_fp32_views_round_trip_the_cast(self, rng):
        cache = LayerKVCache(
            n_heads=2, head_dim=4, dtype=np.float32, bytes_per_element=4
        )
        k = rng.normal(size=(2, 5, 4))
        v = rng.normal(size=(2, 5, 4))
        cache.append(k, v, np.arange(5))
        assert cache.keys.dtype == np.float32
        assert np.array_equal(cache.keys, k.astype(np.float32))
        assert np.array_equal(cache.values, v.astype(np.float32))
        assert cache.key_scales is None and cache.value_scales is None

    def test_fp32_keep_reserve_padded_to(self, rng):
        cache = LayerKVCache(
            n_heads=2, head_dim=4, dtype=np.float32, bytes_per_element=4,
            page_tokens=4,
        )
        k = rng.normal(size=(2, 6, 4)).astype(np.float32)
        v = rng.normal(size=(2, 6, 4)).astype(np.float32)
        cache.append(k, v, np.arange(6))
        cache.keep(np.array([0, 2, 5]))
        assert np.array_equal(cache.keys, k[:, [0, 2, 5]])
        cache.reserve(12)
        assert cache.capacity >= 12
        assert np.array_equal(cache.keys, k[:, [0, 2, 5]])
        pk, pv = cache.padded_to(8)
        assert pk.dtype == np.float32
        assert np.array_equal(pk[:, :3], k[:, [0, 2, 5]])
        assert np.all(pk[:, 3:] == 0.0)
        assert np.all(pv[:, 3:] == 0.0)

    def test_fp32_decode_col_appends_at_storage_dtype(self, rng):
        cache = LayerKVCache(
            n_heads=2, head_dim=4, dtype=np.float32, bytes_per_element=4
        )
        k = rng.normal(size=(2, 4)).astype(np.float32)
        v = rng.normal(size=(2, 4)).astype(np.float32)
        cache.append_decode_col(k, v, 17)
        assert len(cache) == 1
        assert np.array_equal(cache.keys[:, 0], k)
        assert np.array_equal(cache.token_ids, [17])

    def test_int8_round_trip_within_half_step(self, rng):
        cache = LayerKVCache(
            n_heads=2, head_dim=4, dtype=np.int8, bytes_per_element=1
        )
        k = rng.normal(size=(2, 5, 4))
        v = rng.normal(size=(2, 5, 4))
        cache.append(k, v, np.arange(5))
        assert cache.quantized
        assert cache.keys.dtype == np.float32  # dequantized view
        k_err = np.abs(cache.keys - k)
        v_err = np.abs(cache.values - v)
        assert np.all(k_err <= cache.key_scales[..., None] * (0.5 + 1e-5))
        assert np.all(v_err <= cache.value_scales[..., None] * (0.5 + 1e-5))

    def test_int8_keep_moves_scales_with_rows(self, rng):
        cache = LayerKVCache(
            n_heads=2, head_dim=4, dtype=np.int8, bytes_per_element=1
        )
        cache.append(
            rng.normal(size=(2, 6, 4)), rng.normal(size=(2, 6, 4)),
            np.arange(6),
        )
        before_k = cache.keys.copy()
        before_scales = cache.key_scales.copy()
        cache.keep(np.array([1, 3, 4]))
        # Compaction never requantizes: surviving dequantized columns
        # and their scales are bit-identical to the pre-keep state.
        assert np.array_equal(cache.keys, before_k[:, [1, 3, 4]])
        assert np.array_equal(cache.key_scales, before_scales[:, [1, 3, 4]])
        assert cache.evicted_tokens == 3

    def test_int8_mid_generation_eviction_then_append(self, rng):
        from repro.core.quantization import quantize_rows

        cache = LayerKVCache(
            n_heads=2, head_dim=4, dtype=np.int8, bytes_per_element=1
        )
        cache.append(
            rng.normal(size=(2, 5, 4)), rng.normal(size=(2, 5, 4)),
            np.arange(5),
        )
        cache.keep(np.array([0, 2]))
        survivors = cache.keys.copy()
        k_new = rng.normal(size=(2, 1, 4))
        v_new = rng.normal(size=(2, 1, 4))
        k_codes, k_scales = quantize_rows(k_new, bits=8)
        v_codes, v_scales = quantize_rows(v_new, bits=8)
        cache.append_decode_col_quantized(
            k_codes[:, 0], k_scales[:, 0, 0], v_codes[:, 0], v_scales[:, 0, 0], 5
        )
        assert len(cache) == 3
        assert np.array_equal(cache.keys[:, :2], survivors)
        assert np.array_equal(
            cache.keys[:, 2:], k_codes.astype(np.float32) * k_scales
        )
        assert np.array_equal(cache.token_ids, [0, 2, 5])

    def test_int8_padded_to_dequantizes_with_zero_tail(self, rng):
        cache = LayerKVCache(
            n_heads=2, head_dim=4, dtype=np.int8, bytes_per_element=1
        )
        cache.append(
            rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)),
            np.arange(3),
        )
        pk, pv = cache.padded_to(6)
        assert pk.dtype == np.float32 and pk.shape == (2, 6, 4)
        assert np.array_equal(pk[:, :3], cache.keys)
        assert np.all(pk[:, 3:] == 0.0) and np.all(pv[:, 3:] == 0.0)

    def test_nbytes_matches_storage_width(self, rng):
        fp32 = LayerKVCache(
            n_heads=2, head_dim=4, dtype=np.float32, bytes_per_element=4
        )
        int8 = LayerKVCache(
            n_heads=2, head_dim=4, dtype=np.int8, bytes_per_element=1
        )
        k = rng.normal(size=(2, 3, 4))
        v = rng.normal(size=(2, 3, 4))
        fp32.append(k, v, np.arange(3))
        int8.append(k, v, np.arange(3))
        # 2 tensors x 2 heads x 4 dims at the declared width per column.
        assert fp32.nbytes == 3 * (2 * 2 * 4 * 4)
        # int8 adds two fp32 scales (K and V) per head per column.
        assert int8.nbytes == 3 * (2 * 2 * 4 * 1 + 2 * 2 * 4)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError):
            LayerKVCache(n_heads=2, head_dim=4, dtype=np.float16)

    def test_quantized_appends_require_matching_dtype(self, layer_cache, rng):
        with pytest.raises(ValueError):
            layer_cache.append_quantized(
                np.zeros((2, 1, 4), dtype=np.int8), np.ones((2, 1), dtype=np.float32),
                np.zeros((2, 1, 4), dtype=np.int8), np.ones((2, 1), dtype=np.float32),
                np.array([0]),
            )
        # The float decode-col append on int8 storage routes through
        # the requantizing append() instead of the raw-write fast path.
        cache = LayerKVCache(
            n_heads=2, head_dim=4, dtype=np.int8, bytes_per_element=1
        )
        cache.append_decode_col(
            rng.normal(size=(2, 4)), rng.normal(size=(2, 4)), 0
        )
        assert len(cache) == 1 and cache.quantized

    def test_kvcache_propagates_dtype_to_layers(self):
        cache = KVCache(
            n_layers=2, n_heads=2, head_dim=4, dtype=np.float32,
            bytes_per_element=4,
        )
        assert all(layer.dtype == np.dtype(np.float32) for layer in cache.layers)
