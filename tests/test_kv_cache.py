"""Unit tests for the per-layer KV cache."""

import numpy as np
import pytest

from repro.nn.kv_cache import KVCache, LayerKVCache


@pytest.fixture
def layer_cache():
    return LayerKVCache(n_heads=2, head_dim=4)


class TestLayerKVCache:
    def test_starts_empty(self, layer_cache):
        assert len(layer_cache) == 0
        assert layer_cache.n_bytes == 0

    def test_append_accumulates(self, layer_cache, rng):
        k = rng.normal(size=(2, 3, 4))
        v = rng.normal(size=(2, 3, 4))
        layer_cache.append(k, v, np.array([0, 1, 2]))
        layer_cache.append(k[:, :1], v[:, :1], np.array([3]))
        assert len(layer_cache) == 4
        assert np.array_equal(layer_cache.token_ids, [0, 1, 2, 3])

    def test_append_shape_validation(self, layer_cache, rng):
        k = rng.normal(size=(2, 3, 4))
        with pytest.raises(ValueError):
            layer_cache.append(k, rng.normal(size=(2, 2, 4)), np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            layer_cache.append(
                rng.normal(size=(3, 3, 4)), rng.normal(size=(3, 3, 4)),
                np.array([0, 1, 2]),
            )
        with pytest.raises(ValueError):
            layer_cache.append(k, k, np.array([0, 1]))

    def test_keep_preserves_order_and_content(self, layer_cache, rng):
        k = rng.normal(size=(2, 5, 4))
        v = rng.normal(size=(2, 5, 4))
        layer_cache.append(k, v, np.arange(5))
        layer_cache.keep(np.array([0, 2, 4]))
        assert np.array_equal(layer_cache.token_ids, [0, 2, 4])
        assert np.array_equal(layer_cache.keys, k[:, [0, 2, 4]])
        assert np.array_equal(layer_cache.values, v[:, [0, 2, 4]])

    def test_keep_rejects_unsorted(self, layer_cache, rng):
        layer_cache.append(
            rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)), np.arange(3)
        )
        with pytest.raises(ValueError):
            layer_cache.keep(np.array([2, 0]))

    def test_nbytes_fp16(self, layer_cache, rng):
        layer_cache.append(
            rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)), np.arange(3)
        )
        # 2 tensors x 2 heads x 3 tokens x 4 dims x 2 bytes
        assert layer_cache.n_bytes == 2 * 2 * 3 * 4 * 2
        assert layer_cache.nbytes == layer_cache.n_bytes

    def test_nbytes_is_dtype_aware(self, rng):
        cache = LayerKVCache(n_heads=2, head_dim=4, bytes_per_element=4)
        cache.append(
            rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)), np.arange(3)
        )
        assert cache.nbytes == 2 * 2 * 3 * 4 * 4
        with pytest.raises(ValueError):
            LayerKVCache(n_heads=2, head_dim=4, bytes_per_element=0)

    def test_keep_empty_empties_the_cache(self, layer_cache, rng):
        layer_cache.append(
            rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)), np.arange(3)
        )
        layer_cache.keep(np.array([], dtype=np.int64))
        assert len(layer_cache) == 0
        assert layer_cache.nbytes == 0
        assert layer_cache.evicted_tokens == 3

    def test_keep_rejects_out_of_range(self, layer_cache, rng):
        layer_cache.append(
            rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)), np.arange(3)
        )
        with pytest.raises(ValueError):
            layer_cache.keep(np.array([1, 3]))  # beyond the last column
        with pytest.raises(ValueError):
            layer_cache.keep(np.array([-1, 1]))
        # Failed keeps must not disturb the cache.
        assert len(layer_cache) == 3
        assert layer_cache.evicted_tokens == 0

    def test_keep_tracks_cumulative_evictions(self, layer_cache, rng):
        layer_cache.append(
            rng.normal(size=(2, 5, 4)), rng.normal(size=(2, 5, 4)), np.arange(5)
        )
        layer_cache.keep(np.array([0, 2, 4]))
        layer_cache.keep(np.array([1]))
        assert layer_cache.evicted_tokens == 2 + 2
        assert np.array_equal(layer_cache.token_ids, [2])

    def test_append_empty_token_ids_mismatch(self, layer_cache, rng):
        with pytest.raises(ValueError):
            layer_cache.append(
                rng.normal(size=(2, 2, 4)), rng.normal(size=(2, 2, 4)),
                np.array([], dtype=np.int64),
            )

    def test_append_wrong_head_dim(self, layer_cache, rng):
        bad = rng.normal(size=(2, 3, 5))
        with pytest.raises(ValueError):
            layer_cache.append(bad, bad, np.arange(3))


class TestKVCache:
    def test_per_layer_independence(self, rng):
        cache = KVCache(n_layers=3, n_heads=2, head_dim=4)
        cache[0].append(
            rng.normal(size=(2, 2, 4)), rng.normal(size=(2, 2, 4)), np.arange(2)
        )
        assert len(cache[0]) == 2
        assert len(cache[1]) == 0
        assert cache.total_cached_tokens == 2
        assert len(cache) == 3

    def test_total_bytes(self, rng):
        cache = KVCache(n_layers=2, n_heads=2, head_dim=4)
        for layer in range(2):
            cache[layer].append(
                rng.normal(size=(2, 1, 4)), rng.normal(size=(2, 1, 4)),
                np.array([0]),
            )
        assert cache.n_bytes == 2 * (2 * 2 * 1 * 4 * 2)
        assert cache.nbytes == cache.n_bytes

    def test_bytes_per_element_propagates_to_layers(self, rng):
        cache = KVCache(n_layers=2, n_heads=2, head_dim=4, bytes_per_element=4)
        cache[1].append(
            rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)), np.arange(3)
        )
        assert cache.nbytes == 2 * 2 * 3 * 4 * 4

    def test_lengths_and_evictions_across_layers(self, rng):
        cache = KVCache(n_layers=3, n_heads=2, head_dim=4)
        for layer in range(3):
            cache[layer].append(
                rng.normal(size=(2, 4, 4)), rng.normal(size=(2, 4, 4)),
                np.arange(4),
            )
        cache[1].keep(np.array([0, 3]))
        cache[2].keep(np.array([], dtype=np.int64))
        assert cache.lengths() == [4, 2, 0]
        assert cache.total_cached_tokens == 6
        assert cache.total_evicted_tokens == 2 + 4
        # Eviction in one layer never disturbs the others.
        assert np.array_equal(cache[0].token_ids, np.arange(4))


class TestCapacityModel:
    """Capacity/length separation: preallocated page-aligned buffers."""

    def test_capacity_is_page_aligned_and_doubles(self, rng):
        cache = LayerKVCache(n_heads=2, head_dim=4, page_tokens=8)
        assert cache.capacity == 0
        cache.append(rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)),
                     np.arange(3))
        assert cache.capacity == 8  # one page
        for i in range(3, 9):
            cache.append(rng.normal(size=(2, 1, 4)), rng.normal(size=(2, 1, 4)),
                         np.array([i]))
        assert len(cache) == 9
        assert cache.capacity == 16  # doubled, page-aligned
        assert cache.capacity % cache.page_tokens == 0

    def test_views_are_zero_copy(self, rng):
        cache = LayerKVCache(n_heads=2, head_dim=4)
        k = rng.normal(size=(2, 3, 4))
        cache.append(k, k, np.arange(3))
        assert cache.keys.base is not None  # a view, not a copy
        assert np.shares_memory(cache.keys, cache.values) is False
        np.testing.assert_array_equal(cache.keys, k)

    def test_append_does_not_reallocate_within_capacity(self, rng):
        cache = LayerKVCache(n_heads=2, head_dim=4, page_tokens=16)
        cache.reserve(16)
        buffer_before = cache.keys.base
        for i in range(16):
            cache.append(rng.normal(size=(2, 1, 4)), rng.normal(size=(2, 1, 4)),
                         np.array([i]))
        assert cache.keys.base is buffer_before

    def test_reserve_prepares_capacity(self):
        cache = LayerKVCache(n_heads=2, head_dim=4, page_tokens=8)
        cache.reserve(20)
        assert cache.capacity == 24  # ceil(20 / 8) pages
        assert len(cache) == 0

    def test_keep_compacts_in_place(self, rng):
        cache = LayerKVCache(n_heads=2, head_dim=4)
        k = rng.normal(size=(2, 6, 4))
        v = rng.normal(size=(2, 6, 4))
        cache.append(k, v, np.arange(6))
        buffer_before = cache.keys.base
        cache.keep(np.array([1, 3, 4]))
        assert cache.keys.base is buffer_before  # no reallocation
        np.testing.assert_array_equal(cache.keys, k[:, [1, 3, 4]])
        np.testing.assert_array_equal(cache.token_ids, [1, 3, 4])

    def test_padded_to_returns_zero_tail_views(self, rng):
        cache = LayerKVCache(n_heads=2, head_dim=4)
        k = rng.normal(size=(2, 5, 4))
        cache.append(k, k, np.arange(5))
        cache.keep(np.array([0, 2]))  # leaves stale tail data
        keys, values = cache.padded_to(7)
        assert keys.shape == (2, 7, 4)
        np.testing.assert_array_equal(keys[:, :2], k[:, [0, 2]])
        assert np.all(keys[:, 2:] == 0.0)
        assert np.all(values[:, 2:] == 0.0)
        with pytest.raises(ValueError):
            cache.padded_to(1)  # below the live length

    def test_concat_mode_matches_preallocated_results(self, rng):
        fast = LayerKVCache(n_heads=2, head_dim=4, preallocate=True)
        legacy = LayerKVCache(n_heads=2, head_dim=4, preallocate=False)
        for i in range(7):
            k = rng.normal(size=(2, 1, 4))
            v = rng.normal(size=(2, 1, 4))
            for cache in (fast, legacy):
                cache.append(k, v, np.array([i]))
        fast.keep(np.array([0, 3, 5]))
        legacy.keep(np.array([0, 3, 5]))
        np.testing.assert_array_equal(fast.keys, legacy.keys)
        np.testing.assert_array_equal(fast.values, legacy.values)
        np.testing.assert_array_equal(fast.token_ids, legacy.token_ids)
        pk_fast, _ = fast.padded_to(9)
        pk_legacy, _ = legacy.padded_to(9)
        np.testing.assert_array_equal(pk_fast, pk_legacy)

    def test_nbytes_counts_live_columns_not_capacity(self, rng):
        cache = LayerKVCache(n_heads=2, head_dim=4, page_tokens=16)
        cache.append(rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)),
                     np.arange(3))
        assert cache.nbytes == 2 * 2 * 3 * 4 * 2          # live columns
        assert cache.capacity_nbytes == 2 * 2 * 16 * 4 * 2  # one page
        assert cache.capacity_nbytes >= cache.nbytes

    def test_invalid_page_tokens_rejected(self):
        with pytest.raises(ValueError):
            LayerKVCache(n_heads=2, head_dim=4, page_tokens=0)

    def test_kvcache_reserve_covers_every_layer(self):
        cache = KVCache(n_layers=3, n_heads=2, head_dim=4, page_tokens=8)
        cache.reserve(10)
        assert all(layer.capacity == 16 for layer in cache.layers)
        assert cache.capacity_nbytes == 3 * (2 * 2 * 16 * 4 * 2)
