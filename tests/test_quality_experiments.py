"""Band tests for the quality experiments (accuracy-scale model runs).

Marked as a single module so the cached worlds are built once; total
runtime is dominated by the Fig. 21 sweeps.
"""

import numpy as np
import pytest

from repro.eval import quality_experiments as Q


@pytest.fixture(scope="module")
def fig21():
    return Q.fig21_accuracy_tradeoff()


class TestFig01:
    def test_cascade_counts(self):
        result = Q.fig01_cascade_pruning()
        assert result.tokens_per_layer[0] == len(result.sentence)
        assert result.tokens_per_layer[-1] == 2
        assert all(np.diff(result.tokens_per_layer) <= 0)
        assert all(np.diff(result.heads_per_layer) <= 0)
        # Compute collapses across layers (paper: 100% -> 38% -> 12%).
        assert result.compute_fraction_per_layer[0] == pytest.approx(1.0)
        assert result.compute_fraction_per_layer[-1] < 0.35

    def test_survivors_are_content_words(self):
        result = Q.fig01_cascade_pruning()
        survivors = [w for w in result.surviving_words if w != "[CLS]"]
        function_words = {"as", "a", "the", "is", "almost"}
        assert not function_words.intersection(survivors)

    def test_prediction_preserved(self):
        result = Q.fig01_cascade_pruning()
        assert result.predicted_label == result.dense_label


class TestFig07:
    def test_negative_correlation(self):
        result = Q.fig07_quant_error(n_rows=1500)
        assert result.correlation < -0.4

    def test_dominated_rows_cheap_to_quantize(self):
        result = Q.fig07_quant_error(n_rows=1500)
        means = result.bin_mean_errors
        valid = ~np.isnan(means)
        low_bins = means[valid][:3].mean()
        high_bins = means[valid][-3:].mean()
        assert high_bins < 0.6 * low_bins

    def test_more_bits_less_error(self):
        err4 = Q.fig07_quant_error(bits=4, n_rows=600).errors.mean()
        err8 = Q.fig07_quant_error(bits=8, n_rows=600).errors.mean()
        assert err8 < err4


class TestFig21:
    def test_token_curve_flat_then_degrading(self, fig21):
        losses = fig21.token_losses  # keeps (1.0, 0.5, 0.33, 0.25, ...)
        assert losses[0] == pytest.approx(0.0)
        assert losses[1] > -0.07  # paper: free at ~2x
        assert losses[2] > -0.07  # ... and still near-free at ~3x
        # Degradation appears at extreme ratios.
        assert min(losses) < -0.04

    def test_token_kl_monotone_degradation(self, fig21):
        kls = fig21.token_kls
        # keep=1.0 still applies 12-bit static quantization -> tiny KL.
        assert kls[0] == pytest.approx(0.0, abs=1e-3)
        assert kls[-1] > max(10 * kls[0], 0.1)

    def test_head_curve_flat_then_degrading(self, fig21):
        losses = dict(zip(fig21.head_ratios, fig21.head_losses))
        assert losses[1.0] == pytest.approx(0.0)
        # Mild ratios near-free (paper: ~1.2x), strong ratios degrade.
        assert losses[min(r for r in losses if r > 1.0)] > -0.06
        assert min(fig21.head_losses) < -0.015


class TestFig22:
    def test_prunes_function_words_first(self):
        result = Q.fig22_visualization()
        for task, stages in result.visualisations.items():
            sizes = [len(stage.surviving_words) for stage in stages]
            assert sizes == sorted(sizes, reverse=True), task
            final = stages[-1].surviving_words
            assert not {"the", "a", "is", "to", "and"}.intersection(final), task

    def test_lm_sentence_keeps_translate(self):
        result = Q.fig22_visualization()
        mid_stage = result.visualisations["lm"][1].surviving_words
        assert "translate" in mid_stage


class TestFig23:
    def test_importance_consistent_across_layers(self):
        result = Q.fig23_importance_map()
        importance = result.importance
        # Rank correlation between consecutive layers is high: important
        # tokens stay important (paper: 'published' dark in every row).
        from scipy.stats import spearmanr

        for layer in range(1, importance.shape[0]):
            rho = spearmanr(importance[layer - 1], importance[layer]).statistic
            assert rho > 0.7

    def test_content_words_outrank_function_words(self):
        result = Q.fig23_importance_map()
        lm = Q.lm_world()
        final = result.importance[-1]
        ids = lm.vocab.encode(Q.PAPER_SENTENCES["lm"])
        salient = lm.vocab.salience[ids] > 0.3
        assert final[salient].mean() > 1.5 * final[~salient].mean()
