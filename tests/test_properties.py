"""Cross-cutting property tests (hypothesis) over whole subsystems.

These check invariants that hold for *arbitrary* configurations, not
just the calibrated defaults: trace equivalence between the executor
and the analytic builder, schedule monotonicity, quantizer identities
across every supported bit setting, and conservation laws of the cost
models.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ModelConfig, PruningConfig, QuantConfig, SUPPORTED_BIT_SETTINGS
from repro.core import SpAttenExecutor, dense_trace, spatten_trace
from repro.core.quantization import LinearQuantizer
from repro.core.schedule import head_keep_counts, token_keep_counts
from repro.eval.dram import trace_dram
from repro.eval.flops import trace_flops
from repro.nn import TransformerModel, random_model

pruning_configs = st.builds(
    PruningConfig,
    token_keep_final=st.sampled_from([1.0, 0.75, 0.5, 0.3, 0.15]),
    head_keep_final=st.sampled_from([1.0, 0.75, 0.5]),
    value_keep=st.sampled_from([1.0, 0.9, 0.6]),
    token_front_frac=st.sampled_from([0.0, 0.15, 0.3]),
)


class TestTraceEquivalence:
    """The reproduction's load-bearing invariant: the analytic trace
    predicts the executor's work shape exactly, for any schedule."""

    @given(pruning_configs, st.integers(6, 24), st.integers(0, 4))
    @settings(max_examples=25, deadline=None)
    def test_encoder_and_decoder_traces_match(self, pruning, length, n_generate):
        config = ModelConfig(
            "prop", n_layers=3, n_heads=4, d_model=32, d_ff=48,
            vocab_size=64, max_seq_len=96, causal=n_generate > 0,
        )
        model = TransformerModel(config, random_model(config, seed=11))
        tokens = np.random.default_rng(length).integers(
            0, 64, size=length
        ).tolist()
        executor = SpAttenExecutor(pruning)
        if config.causal:
            model.generate(tokens, n_generate, executor=executor)
        else:
            model.encode(tokens, executor=executor)
        analytic = spatten_trace(config, pruning, None, length, n_generate)
        assert executor.trace.count_signature() == analytic.count_signature()


class TestScheduleProperties:
    @given(pruning_configs, st.integers(1, 36), st.integers(1, 300))
    @settings(max_examples=60, deadline=None)
    def test_token_counts_monotone_bounded(self, pruning, n_layers, length):
        counts = token_keep_counts(pruning, n_layers, length)
        assert len(counts) == n_layers
        assert counts[0] <= length
        assert np.all(np.diff(counts) <= 0)
        assert counts[-1] >= min(length, 1)

    @given(pruning_configs, st.integers(1, 36), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_head_counts_monotone_bounded(self, pruning, n_layers, n_heads):
        counts = head_keep_counts(pruning, n_layers, n_heads)
        assert np.all(counts >= 1)
        assert np.all(counts <= n_heads)
        assert np.all(np.diff(counts) <= 0)


class TestQuantizerAcrossSettings:
    @pytest.mark.parametrize("msb,lsb", SUPPORTED_BIT_SETTINGS)
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_split_recompose_identity_every_setting(self, msb, lsb, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(0, rng.uniform(0.1, 10), size=64)
        quantizer = LinearQuantizer(msb, lsb)
        q = quantizer.quantize(x)
        m, l = quantizer.split(q)
        assert np.allclose(
            quantizer.recompose(m, l, q.scale), quantizer.dequantize_full(q)
        )
        # MSB codes fit their width.
        assert np.all(np.abs(m) < 2 ** (msb - 1) + 1)


class TestCostModelConservation:
    @given(pruning_configs, st.integers(8, 64))
    @settings(max_examples=30, deadline=None)
    def test_pruned_work_never_exceeds_dense(self, pruning, length):
        config = ModelConfig(
            "prop", n_layers=4, n_heads=4, d_model=32, d_ff=48,
            vocab_size=64, max_seq_len=128,
        )
        pruned = spatten_trace(config, pruning, None, length)
        dense = dense_trace(config, length)
        assert trace_flops(pruned).total <= trace_flops(dense).total + 1e-9
        assert trace_dram(pruned).total <= trace_dram(dense, quant=None).total + 1e-9

    @given(st.sampled_from(SUPPORTED_BIT_SETTINGS), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_quantized_traffic_below_fp32(self, bits, progressive):
        msb, lsb = bits
        config = ModelConfig(
            "prop", n_layers=2, n_heads=2, d_model=16, d_ff=32, vocab_size=32
        )
        quant = QuantConfig(msb_bits=msb, lsb_bits=lsb, progressive=progressive)
        trace = spatten_trace(config, PruningConfig(), quant, 16,
                              lsb_fraction=0.2)
        quantized = trace_dram(trace).total
        fp32 = trace_dram(trace, quant=None).total
        assert quantized < fp32
