"""Unit and property tests for the top-k selection algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.topk import filter_topk, quick_select_kth, topk_indices

score_arrays = hnp.arrays(
    np.float64,
    st.integers(1, 64),
    elements=st.floats(-100, 100, allow_nan=False),
)


class TestTopkIndices:
    def test_simple_selection(self):
        assert np.array_equal(
            topk_indices(np.array([0.4, 1.0, 0.3, 1.2, 1.7]), 2), [3, 4]
        )

    def test_order_preserved(self):
        indices = topk_indices(np.array([5.0, 1.0, 4.0, 3.0]), 3)
        assert np.all(np.diff(indices) > 0)

    def test_ties_break_toward_earlier(self):
        indices = topk_indices(np.array([1.0, 2.0, 2.0, 2.0]), 2)
        assert np.array_equal(indices, [1, 2])

    def test_k_clipping(self):
        scores = np.array([1.0, 2.0])
        assert len(topk_indices(scores, 0)) == 0
        assert len(topk_indices(scores, 5)) == 2
        assert len(topk_indices(scores, -3)) == 0

    @given(score_arrays, st.integers(1, 64))
    @settings(max_examples=80, deadline=None)
    def test_matches_sorted_selection(self, scores, k):
        k = min(k, len(scores))
        chosen = topk_indices(scores, k)
        assert len(chosen) == k
        # The selected multiset of values equals the k largest values.
        expected = np.sort(scores)[::-1][:k]
        assert np.allclose(np.sort(scores[chosen])[::-1], expected)


class TestQuickSelect:
    def test_paper_example(self):
        # Fig. 9's example: [0.6, 0.1, 0.5, 1.2, 0.6], k=3 -> 0.6, 2 ties.
        value, n_eq, _ = quick_select_kth(
            np.array([0.6, 0.1, 0.5, 1.2, 0.6]), 3
        )
        assert value == pytest.approx(0.6)
        assert n_eq == 2

    def test_k_equals_one_is_max(self):
        value, n_eq, _ = quick_select_kth(np.array([3.0, 9.0, 1.0]), 1)
        assert value == 9.0 and n_eq == 1

    def test_k_equals_n_is_min(self):
        value, _, _ = quick_select_kth(np.array([3.0, 9.0, 1.0]), 3)
        assert value == 1.0

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            quick_select_kth(np.array([1.0]), 2)
        with pytest.raises(ValueError):
            quick_select_kth(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            quick_select_kth(np.array([]), 1)

    @given(score_arrays, st.integers(1, 64), st.integers(0, 1000))
    @settings(max_examples=80, deadline=None)
    def test_threshold_contract(self, scores, k, pivot_seed):
        """Algorithm 3's contract: (threshold, tie budget) such that the
        order-preserving filter emits exactly the top-k set.  When the
        FIFO_R partition holds exactly ``target`` elements the returned
        threshold may sit *below* the true k-th largest with a zero tie
        budget — still selecting the correct set."""
        k = min(k, len(scores))
        rng = np.random.default_rng(pivot_seed)
        value, n_eq, stats = quick_select_kth(scores, k, rng)
        kth_true = np.sort(scores)[::-1][k - 1]
        assert value <= kth_true
        if n_eq >= 1:
            assert value == kth_true
        assert n_eq >= 0
        assert stats.n_rounds >= 1
        assert stats.partition_sizes[0] == len(scores)

    @given(score_arrays, st.integers(1, 64), st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_filter_yields_exactly_k(self, scores, k, pivot_seed):
        k = min(k, len(scores))
        rng = np.random.default_rng(pivot_seed)
        value, n_eq, _ = quick_select_kth(scores, k, rng)
        kept = filter_topk(scores, value, n_eq)
        assert len(kept) == k
        assert np.array_equal(kept, topk_indices(scores, k))


class TestFilterTopk:
    def test_strictly_greater_always_kept(self):
        kept = filter_topk(np.array([1.0, 5.0, 3.0]), 2.0, 0)
        assert np.array_equal(kept, [1, 2])

    def test_tie_budget_respected(self):
        kept = filter_topk(np.array([2.0, 2.0, 2.0]), 2.0, 2)
        assert np.array_equal(kept, [0, 1])

    def test_negative_budget_treated_as_zero(self):
        kept = filter_topk(np.array([2.0, 3.0]), 2.0, -1)
        assert np.array_equal(kept, [1])
