"""Tests for FLOPs/DRAM accounting, readouts, and reporting."""

import numpy as np
import pytest

from repro.config import (
    GPT2_MEDIUM,
    ModelConfig,
    PruningConfig,
    QuantConfig,
)
from repro.core.trace import AttentionTrace, LayerStep, dense_trace, spatten_trace
from repro.eval.dram import step_attention_bytes, trace_dram
from repro.eval.flops import step_flops, trace_flops
from repro.eval.accuracy import (
    train_classification_readout,
    train_regression_readout,
)
from repro.eval.reporting import Table, fmt, geometric_mean


class TestFlops:
    def test_hand_computed_step(self):
        model = ModelConfig("m", 1, 2, 8, 16, vocab_size=16)
        step = LayerStep(0, "summarize", 3, 3, 2, 3)
        flops = step_flops(step, model)
        # QK: 2 * heads * L0 * L1 * head_dim = 2*2*3*3*4
        assert flops.attention_qk == 2 * 2 * 3 * 3 * 4
        # prob x V identical with all values kept.
        assert flops.prob_v == flops.attention_qk
        # FFN: 2 FCs of [3, 8] x [8, 16]
        assert flops.ffn == 2 * 2 * 3 * 8 * 16

    def test_decode_projects_single_kv(self):
        model = ModelConfig("m", 1, 2, 8, 16, vocab_size=16, causal=True)
        step = LayerStep(0, "decode", 1, 10, 2, 10)
        flops = step_flops(step, model)
        # K/V projections cover one new token only: 2*2*1*8*8 = 256.
        assert flops.qkv_fc == 2 * 1 * 8 * 8 + 2 * 2 * 1 * 8 * 8

    def test_head_pruning_shrinks_projections(self):
        model = ModelConfig("m", 1, 4, 16, 32, vocab_size=16)
        full = step_flops(LayerStep(0, "summarize", 4, 4, 4, 4), model)
        pruned = step_flops(LayerStep(0, "summarize", 4, 4, 2, 4), model)
        assert pruned.qkv_fc == full.qkv_fc / 2

    def test_gpt2_medium_generation_matches_paper_table4(self):
        """Dense GPT-2-Medium generating 32 tokens from a 992 prompt:
        the paper's Table IV reports 19.3 GFLOPs FC / 3.3 GFLOPs attn."""
        trace = dense_trace(GPT2_MEDIUM, 992, n_generate=32)
        flops = trace_flops(trace, include_summarize=False)
        assert flops.fc / 1e9 == pytest.approx(19.3, rel=0.03)
        assert flops.attention / 1e9 == pytest.approx(3.3, rel=0.05)

    def test_stage_filters(self):
        trace = dense_trace(GPT2_MEDIUM, 64, n_generate=2)
        total = trace_flops(trace).total
        summarize = trace_flops(trace, include_decode=False).total
        decode = trace_flops(trace, include_summarize=False).total
        assert total == pytest.approx(summarize + decode)


class TestDram:
    def test_fp32_baseline_bytes(self):
        model = ModelConfig("m", 1, 2, 8, 16, vocab_size=16)
        step = LayerStep(0, "summarize", 3, 3, 2, 3)
        traffic = step_attention_bytes(step, model, None)
        elems = 3 * 2 * 4
        assert traffic.query == elems * 4
        assert traffic.key == elems * 4
        assert traffic.value == elems * 4
        assert traffic.output == elems * 4

    def test_static_quant_fetches_msb_only(self):
        model = ModelConfig("m", 1, 2, 8, 16, vocab_size=16)
        step = LayerStep(0, "summarize", 3, 3, 2, 3)
        quant = QuantConfig(msb_bits=8, lsb_bits=4, progressive=False)
        traffic = step_attention_bytes(step, model, quant)
        assert traffic.key == 3 * 2 * 4 * 1.0  # 8 bits = 1 byte/elem

    def test_progressive_adds_lsb_fraction(self):
        model = ModelConfig("m", 1, 2, 8, 16, vocab_size=16)
        quant = QuantConfig(msb_bits=6, lsb_bits=4, progressive=True)
        no_refetch = LayerStep(0, "summarize", 3, 3, 2, 3, lsb_fraction=0.0)
        half_refetch = LayerStep(0, "summarize", 3, 3, 2, 3, lsb_fraction=0.5)
        a = step_attention_bytes(no_refetch, model, quant).key
        b = step_attention_bytes(half_refetch, model, quant).key
        assert b == pytest.approx(a * (6 + 2) / 6)

    def test_value_pruning_reduces_value_traffic_only(self):
        model = ModelConfig("m", 1, 2, 8, 16, vocab_size=16)
        full = step_attention_bytes(LayerStep(0, "summarize", 4, 4, 2, 4), model, None)
        pruned = step_attention_bytes(LayerStep(0, "summarize", 4, 4, 2, 2), model, None)
        assert pruned.value == full.value / 2
        assert pruned.key == full.key

    def test_paper_dram_reduction_band(self):
        """Token pruning + progressive quantization on a GPT-2 workload
        cuts attention DRAM traffic by an order of magnitude vs fp32."""
        pruning = PruningConfig(token_keep_final=0.26, value_keep=0.85)
        quant = QuantConfig(msb_bits=6, lsb_bits=4, progressive=True)
        pruned = spatten_trace(GPT2_MEDIUM, pruning, quant, 992, 32)
        dense = dense_trace(GPT2_MEDIUM, 992, 32)
        reduction = trace_dram(dense, quant=None).total / trace_dram(pruned).total
        assert reduction > 8.0

    def test_trace_quant_default_from_trace(self):
        pruning = PruningConfig(token_keep_final=0.5)
        quant = QuantConfig(msb_bits=8, lsb_bits=4, progressive=False)
        trace = spatten_trace(GPT2_MEDIUM, pruning, quant, 32)
        with_quant = trace_dram(trace).total
        fp32 = trace_dram(trace, quant=None).total
        assert fp32 / with_quant == pytest.approx(32 / 8, rel=0.25)


class TestReadouts:
    def test_classification_on_separable_data(self, rng):
        n, d = 120, 8
        labels = rng.integers(0, 2, size=n)
        features = rng.normal(size=(n, d))
        features[:, 0] += 5.0 * (labels - 0.5)  # well-separated clusters
        readout = train_classification_readout(features, labels, 2)
        acc = np.mean(readout.predict(features) == labels)
        assert acc > 0.95

    def test_three_class(self, rng):
        n = 150
        labels = rng.integers(0, 3, size=n)
        features = np.eye(3)[labels] * 4 + rng.normal(size=(n, 3))
        readout = train_classification_readout(features, labels, 3)
        assert np.mean(readout.predict(features) == labels) > 0.9

    def test_ridge_recovers_linear_map(self, rng):
        n, d = 100, 6
        features = rng.normal(size=(n, d))
        true_w = rng.normal(size=d)
        targets = features @ true_w + 2.0
        readout = train_regression_readout(features, targets, l2=1e-6)
        preds = readout.predict(features)
        assert np.corrcoef(preds, targets)[0, 1] > 0.99


class TestReporting:
    def test_table_renders(self):
        table = Table("Demo", ["a", "b"])
        table.add_row("x", 1.5)
        table.add_note("note")
        text = table.render()
        assert "Demo" in text and "1.50" in text and "* note" in text

    def test_row_width_validation(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_fmt_magnitudes(self):
        assert fmt(1.5e12) == "1.50T"
        assert fmt(2.5e9) == "2.50G"
        assert fmt(3.5e6) == "3.50M"
        assert fmt(4500) == "4.50K"
        assert fmt(0.5) == "0.5"
        assert fmt("text") == "text"
        assert fmt(None) == "-"
        assert fmt(float("nan")) == "-"

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
