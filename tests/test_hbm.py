"""Unit tests for the HBM memory-system model."""

import numpy as np
import pytest

from repro.hardware.hbm import HBMConfig, HBMModel


@pytest.fixture
def hbm():
    return HBMModel(HBMConfig())


class TestTransfers:
    def test_zero_bytes_free(self, hbm):
        result = hbm.transfer(0)
        assert result.cycles == 0 and result.energy_pj == 0

    def test_negative_rejected(self, hbm):
        with pytest.raises(ValueError):
            hbm.transfer(-1)

    def test_cycles_scale_with_bytes(self, hbm):
        small = hbm.transfer(64 * 1024).cycles
        large = hbm.transfer(64 * 1024 * 8).cycles
        assert large == pytest.approx(small * 8, rel=0.05)

    def test_peak_bandwidth_bound(self, hbm):
        """A big streaming transfer approaches but never exceeds peak."""
        n_bytes = 16 * 1024 * 1024
        result = hbm.transfer(n_bytes, random_access=False)
        achieved = n_bytes / result.cycles  # bytes per cycle
        peak = hbm.config.peak_bandwidth / hbm.config.clock_hz
        assert achieved <= peak
        assert achieved >= 0.9 * peak * hbm.config.sequential_efficiency

    def test_random_access_slower(self, hbm):
        n_bytes = 1024 * 1024
        sequential = hbm.transfer(n_bytes, random_access=False).cycles
        random = hbm.transfer(n_bytes, random_access=True).cycles
        assert random > sequential

    def test_random_access_more_activations(self, hbm):
        n_bytes = 64 * 1024
        seq = hbm.transfer(n_bytes, random_access=False)
        rnd = hbm.transfer(n_bytes, random_access=True)
        assert rnd.n_activations > seq.n_activations
        assert rnd.energy_pj > seq.energy_pj

    def test_channel_balance(self, hbm):
        result = hbm.transfer(256 * 64)  # 64 bursts over 16 channels
        assert result.per_channel_bytes.max() - result.per_channel_bytes.min() == 0

    def test_residual_burst_imbalance_bounded(self, hbm):
        result = hbm.transfer(256 * 17)  # 17 bursts -> one channel gets 2
        spread = result.per_channel_bytes.max() - result.per_channel_bytes.min()
        assert spread == 256

    def test_accounting_accumulates(self, hbm):
        hbm.transfer(1000)
        hbm.transfer(2000)
        assert hbm.total_bytes == 3000
        hbm.reset()
        assert hbm.total_bytes == 0 and hbm.total_energy_pj == 0


class TestConfig:
    def test_paper_geometry(self):
        config = HBMConfig()
        assert config.n_channels == 16
        assert config.peak_bandwidth == pytest.approx(512e9)

    def test_static_power_scales_with_channels(self):
        full = HBMConfig(n_channels=16)
        eighth = HBMConfig(n_channels=2)
        assert full.static_power_w == pytest.approx(8 * eighth.static_power_w)

    def test_energy_proportional_to_bits(self):
        hbm = HBMModel(HBMConfig(activation_energy_pj=0.0))
        a = hbm.transfer(1024).energy_pj
        b = hbm.transfer(2048).energy_pj
        assert b == pytest.approx(2 * a)
