"""Unit tests for workload traces (analytic builders)."""

import numpy as np
import pytest

from repro.config import GPT2_SMALL, ModelConfig, PruningConfig, QuantConfig
from repro.core.trace import (
    AttentionTrace,
    LayerStep,
    dense_trace,
    spatten_trace,
)


class TestLayerStep:
    def test_validation(self):
        with pytest.raises(ValueError):
            LayerStep(0, "invalid", 1, 1, 1, 1)
        with pytest.raises(ValueError):
            LayerStep(0, "summarize", -1, 1, 1, 1)
        with pytest.raises(ValueError):
            LayerStep(0, "summarize", 1, 2, 1, 3)  # values > keys


class TestDenseTrace:
    def test_encoder_trace(self, tiny_encoder_config):
        trace = dense_trace(tiny_encoder_config, 10)
        assert len(trace.steps) == 4
        assert all(s.n_queries == 10 and s.n_keys == 10 for s in trace.steps)
        assert all(s.n_heads == 4 for s in trace.steps)

    def test_decoder_trace_grows_keys(self, tiny_decoder_config):
        trace = dense_trace(tiny_decoder_config, 10, n_generate=3)
        decode = trace.decode_steps
        assert len(decode) == 3 * 4
        assert decode[0].n_keys == 11
        assert decode[-1].n_keys == 13

    def test_generation_requires_causal(self, tiny_encoder_config):
        with pytest.raises(ValueError):
            dense_trace(tiny_encoder_config, 10, n_generate=2)

    def test_rejects_empty_sentence(self, tiny_encoder_config):
        with pytest.raises(ValueError):
            dense_trace(tiny_encoder_config, 0)


class TestSpattenTrace:
    def test_counts_shrink_across_layers(self, tiny_encoder_config):
        pruning = PruningConfig(token_keep_final=0.3, head_keep_final=0.5)
        trace = spatten_trace(tiny_encoder_config, pruning, None, 20)
        queries = [s.n_queries for s in trace.steps]
        heads = [s.n_heads for s in trace.steps]
        assert queries[0] == 20
        assert queries[-1] == 6
        assert all(np.diff(queries) <= 0)
        assert all(np.diff(heads) <= 0)

    def test_value_pruning_counts(self, tiny_encoder_config):
        pruning = PruningConfig(value_keep=0.5)
        trace = spatten_trace(tiny_encoder_config, pruning, None, 10)
        assert all(s.n_values == 5 for s in trace.steps)

    def test_decode_alive_set_tracks_budget(self, tiny_decoder_config):
        pruning = PruningConfig(token_keep_final=0.25)
        trace = spatten_trace(tiny_decoder_config, pruning, None, 40, n_generate=4)
        final_steps = [s for s in trace.decode_steps if s.layer == 3]
        for idx, step in enumerate(final_steps):
            total = 40 + idx + 1
            assert step.n_keys == max(round(0.25 * total), 2)

    def test_lsb_fraction_only_with_progressive(self, tiny_decoder_config):
        pruning = PruningConfig(token_keep_final=0.5)
        progressive = QuantConfig(msb_bits=6, lsb_bits=4, progressive=True)
        static = QuantConfig(msb_bits=8, lsb_bits=4, progressive=False)
        t_prog = spatten_trace(
            tiny_decoder_config, pruning, progressive, 20, 2, lsb_fraction=0.1
        )
        t_static = spatten_trace(
            tiny_decoder_config, pruning, static, 20, 2, lsb_fraction=0.1
        )
        assert t_prog.steps[0].lsb_fraction == 0.1
        assert t_static.steps[0].lsb_fraction == 0.0

    def test_mean_lsb_fraction(self, tiny_decoder_config):
        pruning = PruningConfig()
        quant = QuantConfig(msb_bits=6, lsb_bits=4, progressive=True)
        trace = spatten_trace(
            tiny_decoder_config, pruning, quant, 10, lsb_fraction=0.059
        )
        assert trace.mean_lsb_fraction == pytest.approx(0.059)

    def test_count_signature_stable(self, tiny_encoder_config):
        pruning = PruningConfig(token_keep_final=0.5)
        a = spatten_trace(tiny_encoder_config, pruning, None, 16)
        b = spatten_trace(tiny_encoder_config, pruning, None, 16)
        assert a.count_signature() == b.count_signature()

    def test_no_pruning_equals_dense_counts(self, tiny_decoder_config):
        trace = spatten_trace(
            tiny_decoder_config, PruningConfig(), None, 12, n_generate=2
        )
        dense = dense_trace(tiny_decoder_config, 12, n_generate=2)
        assert trace.count_signature() == dense.count_signature()

    def test_paper_scale_gpt2(self):
        """992-token prompt, 32 generated — the paper's GPT-2 workload."""
        pruning = PruningConfig(token_keep_final=0.26, value_keep=0.85)
        trace = spatten_trace(GPT2_SMALL, pruning, None, 992, n_generate=32)
        assert len(trace.summarize_steps) == 12
        assert len(trace.decode_steps) == 12 * 32
        last = trace.decode_steps[-1]
        assert last.n_keys == round(0.26 * 1024)
        assert last.n_values < last.n_keys
