"""Smoke tests: every example script must run end-to-end.

The heavier examples are exercised through their ``main()`` functions
with output captured; they double as living documentation, so breaking
one is a release blocker.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def _load_module(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    ["quickstart", "sentiment_token_pruning", "generation_kv_pruning"],
)
def test_example_runs(name, capsys):
    module = _load_module(name)
    module.main()
    output = capsys.readouterr().out
    assert len(output) > 100  # produced a real report


def test_quickstart_reports_savings(capsys):
    module = _load_module("quickstart")
    module.main()
    output = capsys.readouterr().out
    assert "survivors after cascade pruning" in output
    assert "DRAM traffic" in output
    assert "SpAtten latency" in output
