"""Tests for beam-search decoding under SpAtten executors."""

import numpy as np
import pytest

from repro.config import PruningConfig
from repro.core import SpAttenExecutor
from repro.nn import beam_search


class TestBeamSearch:
    def test_beam_one_equals_greedy(self, tiny_decoder, sample_tokens):
        greedy = tiny_decoder.generate(sample_tokens, 4)
        beams = beam_search(tiny_decoder, sample_tokens, 4, beam_width=1)
        assert beams[0].token_ids == greedy.token_ids

    def test_wider_beam_never_scores_worse(self, tiny_decoder, sample_tokens):
        narrow = beam_search(tiny_decoder, sample_tokens, 4, beam_width=1)
        wide = beam_search(tiny_decoder, sample_tokens, 4, beam_width=4)
        assert wide[0].log_probability >= narrow[0].log_probability - 1e-9

    def test_returns_sorted_hypotheses(self, tiny_decoder, sample_tokens):
        beams = beam_search(tiny_decoder, sample_tokens, 3, beam_width=3)
        scores = [b.score(0.0) for b in beams]
        assert scores == sorted(scores, reverse=True)
        assert all(len(b.token_ids) == 3 for b in beams)

    def test_length_penalty_normalises(self):
        from repro.nn.beam import BeamHypothesis

        hypothesis = BeamHypothesis([1, 2, 3, 4], -4.0)
        assert hypothesis.score(0.0) == -4.0
        assert hypothesis.score(1.0) == pytest.approx(-1.0)

    def test_works_under_cascade_pruning(self, tiny_decoder, sample_tokens):
        """The paper's claim: pruning composes with beam search (a
        pruned token is absent from every beam)."""
        factory = lambda: SpAttenExecutor(
            PruningConfig(token_keep_final=0.5, value_keep=0.9)
        )
        beams = beam_search(
            tiny_decoder, sample_tokens, 3, beam_width=2,
            executor_factory=factory,
        )
        assert len(beams) == 2
        dense = beam_search(tiny_decoder, sample_tokens, 3, beam_width=2)
        # Pruned scores are close to dense ones (moderate pruning).
        assert beams[0].log_probability == pytest.approx(
            dense[0].log_probability, abs=2.0
        )

    def test_validation(self, tiny_decoder, tiny_encoder, sample_tokens):
        with pytest.raises(ValueError):
            beam_search(tiny_encoder, sample_tokens, 2)
        with pytest.raises(ValueError):
            beam_search(tiny_decoder, sample_tokens, 2, beam_width=0)
        with pytest.raises(ValueError):
            beam_search(tiny_decoder, sample_tokens, 0)
