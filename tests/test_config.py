"""Unit tests for repro.config dataclasses and the model zoo."""

import pytest

from repro.config import (
    BERT_BASE,
    BERT_LARGE,
    GPT2_MEDIUM,
    GPT2_SMALL,
    MODEL_ZOO,
    ModelConfig,
    PruningConfig,
    QuantConfig,
    SUPPORTED_BIT_SETTINGS,
)


class TestModelConfig:
    def test_paper_geometries(self):
        assert BERT_BASE.n_layers == 12 and BERT_BASE.n_heads == 12
        assert BERT_BASE.d_model == 768 and BERT_BASE.d_ff == 3072
        assert BERT_LARGE.n_layers == 24 and BERT_LARGE.n_heads == 16
        assert BERT_LARGE.d_model == 1024
        assert GPT2_SMALL.causal and GPT2_MEDIUM.causal
        assert not BERT_BASE.causal and not BERT_LARGE.causal

    def test_head_dim(self):
        assert BERT_BASE.head_dim == 64
        assert BERT_LARGE.head_dim == 64
        assert GPT2_MEDIUM.head_dim == 64

    def test_zoo_contains_all_four(self):
        assert set(MODEL_ZOO) == {
            "bert-base", "bert-large", "gpt2-small", "gpt2-medium"
        }

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            ModelConfig("bad", 2, 3, 32, 64)

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig("bad", 0, 2, 32, 64)
        with pytest.raises(ValueError):
            ModelConfig("bad", 2, 2, 32, -1)

    def test_with_overrides_returns_new_config(self):
        small = BERT_BASE.with_overrides(n_layers=2)
        assert small.n_layers == 2
        assert BERT_BASE.n_layers == 12
        assert small.d_model == BERT_BASE.d_model


class TestPruningConfig:
    def test_defaults_disable_pruning(self):
        config = PruningConfig()
        assert config.token_keep_final == 1.0
        assert config.head_keep_final == 1.0
        assert config.value_keep == 1.0

    def test_prune_ratio_properties(self):
        config = PruningConfig(token_keep_final=0.25, head_keep_final=0.5)
        assert config.token_prune_ratio == pytest.approx(4.0)
        assert config.head_prune_ratio == pytest.approx(2.0)

    @pytest.mark.parametrize("field", ["token_keep_final", "head_keep_final", "value_keep"])
    @pytest.mark.parametrize("value", [0.0, -0.1, 1.5])
    def test_keep_fractions_validated(self, field, value):
        with pytest.raises(ValueError):
            PruningConfig(**{field: value})

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_front_fractions_validated(self, value):
        with pytest.raises(ValueError):
            PruningConfig(token_front_frac=value)

    def test_with_overrides(self):
        config = PruningConfig(token_keep_final=0.5)
        harder = config.with_overrides(token_keep_final=0.25)
        assert harder.token_keep_final == 0.25
        assert config.token_keep_final == 0.5


class TestQuantConfig:
    @pytest.mark.parametrize("msb,lsb", SUPPORTED_BIT_SETTINGS)
    def test_supported_settings(self, msb, lsb):
        config = QuantConfig(msb_bits=msb, lsb_bits=lsb)
        assert config.full_bits == msb + lsb

    @pytest.mark.parametrize("msb,lsb", [(5, 4), (4, 2), (12, 0), (16, 4)])
    def test_unsupported_settings_rejected(self, msb, lsb):
        with pytest.raises(ValueError, match="unsupported"):
            QuantConfig(msb_bits=msb, lsb_bits=lsb)

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            QuantConfig(threshold=1.5)

    def test_paper_settings(self):
        # "the common MSB+LSB combinations are 6+4 and 8+4"
        for msb in (6, 8):
            config = QuantConfig(msb_bits=msb, lsb_bits=4, progressive=True)
            assert config.onchip_bits == 12
