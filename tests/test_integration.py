"""End-to-end integration tests crossing every subsystem boundary."""

import numpy as np
import pytest

from repro.baselines import TITAN_XP, attention_cost
from repro.config import PruningConfig, QuantConfig
from repro.core import SpAttenExecutor, dense_trace
from repro.eval import trace_dram, trace_flops
from repro.eval.experiments import benchmark_traces, spatten_benchmark_report
from repro.hardware import SpAttenSimulator
from repro.workloads import (
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    get_benchmark,
)
from repro.config import BERT_BASE


class TestExecutorToSimulator:
    """A measured executor trace must be a valid simulator input and
    cost the same as its analytic twin."""

    def test_measured_trace_simulates_identically(self):
        vocab = build_vocabulary(size=512, n_classes=2, seed=0)
        config = accuracy_scale_config(
            BERT_BASE, len(vocab), n_layers=6, d_model=128, n_heads=8,
            max_seq_len=128,
        )
        model, _ = build_task_model(config, vocab, "classification", seed=0)
        ids = vocab.encode("the film is a wonderful treat", add_cls=True)

        executor = SpAttenExecutor(
            pruning=PruningConfig(token_keep_final=0.5, head_keep_final=0.75,
                                  value_keep=0.9),
            quant=QuantConfig(msb_bits=8, lsb_bits=4, progressive=False),
        )
        model.encode(ids, executor=executor)

        from repro.core import spatten_trace

        analytic = spatten_trace(
            config, executor.pruning, executor.quant, len(ids)
        )
        sim = SpAttenSimulator()
        measured_report = sim.run_trace(executor.trace)
        analytic_report = sim.run_trace(analytic)
        assert measured_report.total_cycles == pytest.approx(
            analytic_report.total_cycles, rel=1e-9
        )
        assert measured_report.dram_bytes == pytest.approx(
            analytic_report.dram_bytes, rel=1e-9
        )


class TestBenchmarkPipeline:
    """Registry benchmark -> traces -> simulator -> platform comparison."""

    @pytest.mark.parametrize("key", ["bert-base-sst-2", "gpt2-small-ptb"])
    def test_end_to_end_speedup_positive(self, key):
        bench = get_benchmark(key)
        report = spatten_benchmark_report(bench)
        _, dense = benchmark_traces(bench)
        gpu = attention_cost(
            TITAN_XP, dense,
            include_summarize=not bench.is_generative,
            include_decode=bench.is_generative,
        )
        assert gpu.latency_s / report.latency_s > 20.0
        assert report.energy_j > 0

    def test_flops_dram_consistency(self):
        """Pruned work must never exceed dense work in any dimension."""
        bench = get_benchmark("bert-large-qnli")
        pruned, dense = benchmark_traces(bench)
        assert trace_flops(pruned).total < trace_flops(dense).total
        assert trace_dram(pruned).total < trace_dram(dense, quant=None).total
        for p_step, d_step in zip(pruned.steps, dense.steps):
            assert p_step.n_queries <= d_step.n_queries
            assert p_step.n_keys <= d_step.n_keys
            assert p_step.n_heads <= d_step.n_heads

    def test_simulator_scales_with_model_size(self):
        small = spatten_benchmark_report(get_benchmark("gpt2-small-ptb"))
        medium = spatten_benchmark_report(get_benchmark("gpt2-medium-ptb"))
        assert medium.latency_s > small.latency_s


class TestFullStackQuality:
    """The complete stack (pruning + quantization) at the registry's
    own settings must preserve model quality on a real task."""

    def test_registry_settings_lossless_on_classification(self):
        from repro.eval.accuracy import (
            classification_accuracy,
            extract_features,
            train_classification_readout,
        )
        from repro.workloads import make_classification_dataset

        bench = get_benchmark("bert-base-sst-2")
        vocab = build_vocabulary(size=512, n_classes=2, seed=0)
        config = accuracy_scale_config(
            BERT_BASE, len(vocab), n_layers=6, d_model=128, n_heads=8,
            max_seq_len=256,
        )
        model, _ = build_task_model(config, vocab, "classification", seed=0)
        dataset = make_classification_dataset(
            vocab, "sst2", avg_len=bench.seq_len, n_train=72, n_test=48, seed=1
        )
        features = extract_features(model, dataset.train)
        labels = np.array([int(e.label) for e in dataset.train])
        readout = train_classification_readout(features, labels, 2)
        dense_acc = classification_accuracy(model, dataset, readout)

        factory = lambda: SpAttenExecutor(bench.pruning, bench.quant)
        pruned_acc = classification_accuracy(model, dataset, readout, factory)
        # Paper claim: the per-task settings cost no accuracy.
        assert pruned_acc >= dense_acc - 0.035
