"""Tests for the deterministic chaos subsystem (repro.faults).

Covers the fault-plan grammar and its validator, heartbeat failure
detection, the KV-page checksum/quarantine plane, replica
recovery/rejoin, stragglers, deadlines and retry budgets, the
graceful-degradation ladder, NaN-aware failure reporting, and the
seed-sweep chaos soak (smoke) that proves every chaos run keeps the
ledgers clean, loses no tokens, and replays byte-identically.
"""

import json
import math

import numpy as np
import pytest

from repro.cluster import ClusterEngine, ShardedKVPool
from repro.config import GPT2_SMALL, PruningConfig
from repro.faults import (
    CHAOS_PROFILES,
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    HeartbeatMonitor,
    validate_fault_events,
)
from repro.serving import (
    DegradationPolicy,
    Request,
    RequestRecord,
    RequestStatus,
    ServingEngine,
    ServingStats,
)
from repro.workloads import (
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    make_lm_corpus,
    synthetic_request_trace,
)

PROMPT_LEN = 24
AGGRESSIVE = PruningConfig(token_keep_final=0.3, head_keep_final=0.625,
                           value_keep=0.9)


@pytest.fixture(scope="module")
def chaos_setup():
    vocab = build_vocabulary(size=512, n_classes=4, seed=0)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=4, d_model=64, n_heads=4,
        max_seq_len=160,
    )
    model, _ = build_task_model(config, vocab, "lm", seed=0)
    corpus = make_lm_corpus(vocab, n_tokens=2048, seed=2)
    return config, model, corpus


def page_budget(config, pages, page_tokens=8):
    per_token = 2 * config.n_heads * config.head_dim * config.bytes_per_element
    return pages * page_tokens * per_token


def make_sharded(config, total_pages=128, n_replicas=2, page_tokens=8):
    return ShardedKVPool(
        config,
        total_budget_bytes=page_budget(config, total_pages, page_tokens),
        n_replicas=n_replicas,
        page_tokens=page_tokens,
    )


def make_trace(corpus, n=10, rate=400.0, seed=5, max_new=(8, 16)):
    return synthetic_request_trace(
        corpus, n_requests=n, rate_per_s=rate, prompt_len=PROMPT_LEN,
        max_new_tokens=max_new, seed=seed,
    )


def tokens_by_id(stats):
    """request_id -> token stream for every FINISHED record."""
    return {
        r.request.request_id: list(r.token_ids)
        for r in stats.fleet.records
        if r.status is RequestStatus.FINISHED
    }


def assert_zero_token_loss(stats):
    """Every non-failed request delivered its full decode budget."""
    for r in stats.fleet.records:
        assert r.status in (RequestStatus.FINISHED, RequestStatus.FAILED)
        if r.status is RequestStatus.FINISHED:
            assert r.n_generated == r.request.max_new_tokens


class TestFaultPlanGrammar:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            validate_fault_events([FaultEvent(0.1, 0, "meteor")], 1)

    def test_unknown_replica_rejected(self):
        with pytest.raises(ValueError, match="unknown replica 3"):
            validate_fault_events([FaultEvent(0.1, 3, "drain")], 2)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_fault_events([FaultEvent(-0.1, 0, "fail")], 1)

    def test_overlapping_retire_rejected(self):
        # The seed's once-only restriction, now expressed as sequence
        # validation: a second retirement without an intervening
        # recover is illegal.
        with pytest.raises(ValueError, match="recover first"):
            validate_fault_events(
                [FaultEvent(0.1, 0, "drain"), FaultEvent(0.2, 0, "fail")], 1
            )

    def test_recover_on_active_replica_rejected(self):
        with pytest.raises(ValueError, match="still active"):
            validate_fault_events([FaultEvent(0.1, 0, "recover")], 1)

    def test_drain_recover_fail_sequence_is_legal(self):
        ordered = validate_fault_events(
            [
                FaultEvent(0.3, 0, "fail"),
                FaultEvent(0.1, 0, "drain"),
                FaultEvent(0.2, 0, "recover"),
            ],
            1,
        )
        assert [e.kind for e in ordered] == ["drain", "recover", "fail"]

    def test_straggler_window_grammar(self):
        with pytest.raises(ValueError, match="factor must be >= 1"):
            validate_fault_events(
                [FaultEvent(0.1, 0, "slow_start", factor=0.5)], 1
            )
        with pytest.raises(ValueError, match="without a matching"):
            validate_fault_events([FaultEvent(0.1, 0, "slow_end")], 1)
        with pytest.raises(ValueError, match="overlapping straggler"):
            validate_fault_events(
                [
                    FaultEvent(0.1, 0, "slow_start", factor=2.0),
                    FaultEvent(0.2, 0, "slow_start", factor=3.0),
                ],
                1,
            )

    def test_corrupt_coordinates_bounded(self):
        with pytest.raises(ValueError, match="lie in"):
            validate_fault_events(
                [FaultEvent(0.1, 0, "corrupt", u_seq=1.5)], 1
            )

    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(7, n_replicas=3, horizon_s=0.5)
        b = FaultPlan.generate(7, n_replicas=3, horizon_s=0.5)
        assert a.events == b.events
        c = FaultPlan.generate(8, n_replicas=3, horizon_s=0.5)
        assert a.events != c.events
        assert set(a.counts()) <= set(FAULT_KINDS)
        # Generated plans are always grammatical.
        validate_fault_events(a.events, 3)

    def test_profiles_cover_all_intensities(self):
        assert set(CHAOS_PROFILES) == {"light", "moderate", "heavy"}
        for profile in CHAOS_PROFILES:
            plan = FaultPlan.generate(
                3, n_replicas=2, horizon_s=1.0, profile=profile
            )
            assert plan.profile == profile
            assert plan.heartbeat_timeout_s > 0
        with pytest.raises(ValueError, match="unknown chaos profile"):
            FaultPlan.generate(0, n_replicas=1, horizon_s=1.0,
                               profile="apocalyptic")

    def test_injector_drains_in_order(self):
        plan = FaultPlan(
            n_replicas=1,
            events=(
                FaultEvent(0.2, 0, "drain"),
                FaultEvent(0.1, 0, "slow_start", factor=2.0),
                FaultEvent(0.15, 0, "slow_end"),
            ),
        )
        injector = FaultInjector(plan.events, 1)
        assert len(injector) == 3 and bool(injector)
        seen = []
        while injector:
            next_time = injector.next_time
            seen.append(injector.pop().time)
            assert seen[-1] == next_time
        assert seen == sorted(seen)
        assert injector.next_time == math.inf


class TestHeartbeat:
    def test_suspicion_after_timeout(self):
        mon = HeartbeatMonitor(timeout_s=0.05)
        mon.note_alive(0, 0.0)
        assert not mon.suspected(0, 0.04)
        assert mon.suspected(0, 0.06)

    def test_completed_step_refreshes_liveness(self):
        mon = HeartbeatMonitor(timeout_s=0.05)
        mon.note_alive(0, 0.0)
        mon.note_step(0, 0.01, 0.03)
        assert mon.last_seen(0, 0.04) == 0.03
        assert not mon.suspected(0, 0.07)

    def test_inflight_step_counts_from_its_start(self):
        # A step still executing at t pins last_seen to its start, so a
        # straggler stuck in one long step eventually turns suspect.
        mon = HeartbeatMonitor(timeout_s=0.05)
        mon.note_alive(0, 0.0)
        mon.note_step(0, 0.01, 0.5)
        assert mon.last_seen(0, 0.1) == 0.01
        assert mon.suspected(0, 0.1)


class TestChecksumPlane:
    def _start_one(self, chaos_setup, pages=64):
        config, model, corpus = chaos_setup
        from repro.serving import KVMemoryPool

        pool = KVMemoryPool(config, page_budget(config, pages),
                            page_tokens=8)
        engine = ServingEngine(model, pool, prefill_chunk=16)
        [request] = make_trace(corpus, n=1, seed=9, max_new=(8, 8))
        engine.start()
        engine.submit(request)
        while not engine.live:
            engine.step()
        return engine, pool, request

    def test_corrupt_page_is_detected_and_quarantined(self, chaos_setup):
        engine, pool, request = self._start_one(chaos_setup)
        seq_id = engine.live[0].seq_id
        per_layer = pool.allocated_pages_per_layer(seq_id)
        layer = next(i for i, n in enumerate(per_layer) if n > 0)
        pool.corrupt_page(seq_id, layer, 0)
        assert (layer, 0) in pool.corrupted_pages(seq_id)
        assert seq_id in pool.verify_checksums()
        released = pool.quarantine_release(seq_id)
        assert released > 0
        assert seq_id not in pool.tracked_sequences
        assert pool.n_quarantined == 1
        pool.audit()

    def test_engine_recomputes_after_corruption(self, chaos_setup):
        config, model, corpus = chaos_setup
        from repro.serving import KVMemoryPool

        [request] = make_trace(corpus, n=1, seed=9, max_new=(8, 8))
        clean_pool = KVMemoryPool(config, page_budget(config, 64),
                                  page_tokens=8)
        clean = ServingEngine(model, clean_pool, prefill_chunk=16)
        clean_stats = clean.run([request])
        clean_tokens = list(clean_stats.records[0].token_ids)

        engine, pool, request = self._start_one(chaos_setup)
        # Decode a couple of tokens, then flip a page under the engine.
        for _ in range(2):
            engine.step()
        seq_id = engine.live[0].seq_id
        per_layer = pool.allocated_pages_per_layer(seq_id)
        layer = next(i for i, n in enumerate(per_layer) if n > 0)
        pool.corrupt_page(seq_id, layer, 0)
        while engine.has_work:
            engine.step()
        engine.drain()
        stats = engine.finish()
        record = stats.records[0]
        assert record.status is RequestStatus.FINISHED
        assert record.n_corruptions == 1
        assert record.recompute_tokens > 0
        assert stats.n_corruptions == 1
        # Greedy decoding replays the identical stream: corruption
        # costs latency, never tokens.
        assert list(record.token_ids) == clean_tokens
        pool.audit()


class TestRecovery:
    def test_pool_recover_rejoins_clean_shard(self, chaos_setup):
        config, _, _ = chaos_setup
        pool = make_sharded(config, total_pages=64, n_replicas=2)
        pool.fail(0)
        assert not pool.is_active(0)
        pool.recover(0)
        assert pool.is_active(0) and not pool.is_failed(0)
        assert pool.n_active == 2
        pool.audit()
        with pytest.raises(ValueError, match="already active"):
            pool.recover(0)

    def test_crashed_replica_rejoins_without_token_loss(self, chaos_setup):
        config, model, corpus = chaos_setup
        requests = make_trace(corpus, n=10, seed=5)

        baseline = ClusterEngine(
            model, make_sharded(config), policy="least_loaded"
        ).run(requests)
        base_tokens = tokens_by_id(baseline)

        pool = make_sharded(config)
        engine = ClusterEngine(
            model, pool, policy="least_loaded",
            fail_events=[(0.005, 0)], recover_events=[(0.02, 0)],
            retry_budget=3, retry_backoff_s=0.01,
            heartbeat_timeout_s=0.05, audit_every=1,
        )
        stats = engine.run(requests)
        pool.audit()
        assert stats.n_recovered == 1
        assert stats.n_failed_requests == 0
        assert stats.availability < 1.0
        assert stats.mttr_s == pytest.approx(0.015)
        assert_zero_token_loss(stats)
        # Every surviving stream is bit-identical to the fault-free run.
        assert tokens_by_id(stats) == base_tokens
        # Fleet-health rows render and serialize.
        table = str(stats.table())
        assert "availability" in table and "recovered" in table
        doc = json.loads(stats.to_json())
        assert doc["n_recovered"] == 1 and doc["availability"] < 1.0

    def test_goodput_counts_only_finished_tokens(self, chaos_setup):
        config, model, corpus = chaos_setup
        requests = make_trace(corpus, n=6, seed=5)
        stats = ClusterEngine(
            model, make_sharded(config), policy="least_loaded"
        ).run(requests)
        finished = sum(
            r.n_generated for r in stats.fleet.records
            if r.status is RequestStatus.FINISHED
        )
        assert stats.goodput_tps == pytest.approx(
            finished / stats.fleet.makespan_s
        )


class TestStragglers:
    def test_slow_window_stretches_makespan_not_tokens(self, chaos_setup):
        config, model, corpus = chaos_setup
        requests = make_trace(corpus, n=8, seed=5)
        baseline = ClusterEngine(
            model, make_sharded(config), policy="round_robin"
        ).run(requests)
        plan = FaultPlan(
            n_replicas=2,
            events=(
                FaultEvent(0.0, 0, "slow_start", factor=6.0),
                FaultEvent(0.5, 0, "slow_end"),
            ),
        )
        stats = ClusterEngine(
            model, make_sharded(config), policy="round_robin",
            fault_plan=plan,
        ).run(requests)
        assert stats.fleet.makespan_s > baseline.fleet.makespan_s
        assert stats.n_failed_requests == 0
        assert tokens_by_id(stats) == tokens_by_id(baseline)


class TestDeadlinesAndRetries:
    def test_retry_budget_exhaustion_fails_cleanly(self, chaos_setup):
        config, model, corpus = chaos_setup
        requests = make_trace(corpus, n=4, seed=5)
        pool = make_sharded(config)
        stats = ClusterEngine(
            model, pool, policy="least_loaded",
            fail_events=[(0.0, 0), (0.0, 1)],
            retry_budget=2, retry_backoff_s=0.01,
        ).run(requests)
        pool.audit()
        records = stats.fleet.records
        assert all(r.status is RequestStatus.FAILED for r in records)
        assert all(r.failure == "retry_budget" for r in records)
        assert all(r.n_retries == 2 for r in records)
        assert stats.n_retries == 8
        assert stats.n_failed_requests == len(requests)

    def test_recovery_lands_before_retries_exhaust(self, chaos_setup):
        config, model, corpus = chaos_setup
        requests = make_trace(corpus, n=4, seed=5)
        stats = ClusterEngine(
            model, make_sharded(config), policy="least_loaded",
            fail_events=[(0.0, 0), (0.0, 1)],
            recover_events=[(0.01, 0)],
            retry_budget=8, retry_backoff_s=0.01,
        ).run(requests)
        assert stats.n_failed_requests == 0
        assert stats.n_recovered == 1
        assert stats.n_retries > 0
        assert_zero_token_loss(stats)

    def test_deadline_expires_queued_requests(self, chaos_setup):
        config, model, corpus = chaos_setup
        # A tiny fleet and a long backlog: late arrivals blow their
        # admission deadline while queued and fail with "deadline".
        requests = make_trace(corpus, n=12, rate=5000.0, seed=5,
                              max_new=(10, 16))
        stats = ClusterEngine(
            model, make_sharded(config, total_pages=48, n_replicas=2),
            policy="least_loaded", deadline_s=0.003,
        ).run(requests)
        failed = [
            r for r in stats.fleet.records
            if r.status is RequestStatus.FAILED
        ]
        assert failed and all(r.failure == "deadline" for r in failed)
        assert stats.n_failed_requests == len(failed)
        assert stats.fleet.n_shed == len(failed)
        assert_zero_token_loss(stats)


class TestFailureReporting:
    """Satellite: FAILED requests surface as n/a, never vanish."""

    def _failed_record(self, request_id=0, priority=0):
        request = Request(request_id, np.arange(1, 9),
                          max_new_tokens=4, priority=priority)
        record = RequestRecord(request)
        record.status = RequestStatus.FAILED
        record.failure = "unplaceable"
        return record

    def _stats(self, records):
        return ServingStats.from_run(
            mode="dense", records=records, makespan_s=1.0,
            batch_sizes=[], occupancy_samples=[], pool_pages=8,
            pool_page_tokens=8, occupancy_peak=0.0, reclaimed_pages=0,
            reclaimed_tokens=0,
        )

    def test_all_failed_run_reports_na_not_perfect_latency(self):
        stats = self._stats([self._failed_record(i) for i in range(3)])
        assert stats.n_failed_requests == 3
        assert stats.n_unadmitted == 0
        assert math.isnan(stats.ttft_p50)
        assert "n/a" in str(stats.table())
        doc = stats.to_dict()
        assert doc["ttft_p50"] is None
        json.dumps(doc)  # strict JSON, no bare NaN

    def test_per_tier_breakdown_counts_failures(self):
        records = [
            self._failed_record(0, priority=1),
            self._failed_record(1, priority=1),
        ]
        stats = self._stats(records)
        [tier] = stats.tiers
        assert tier["priority"] == 1
        assert tier["n_requests"] == 2
        assert tier["n_finished"] == 0
        assert tier["n_failed_requests"] == 2
        doc = stats.to_dict()
        assert doc["tiers"][0]["ttft_p50"] is None


class TestDegradation:
    def test_policy_pressure_gate(self):
        policy = DegradationPolicy(free_page_frac=0.25, sustain_steps=2)
        assert policy.pressured(free_pages=3, total_pages=16, queue_len=2)
        assert not policy.pressured(free_pages=8, total_pages=16,
                                    queue_len=2)
        assert not policy.pressured(free_pages=3, total_pages=16,
                                    queue_len=0)

    def _pressured_run(self, chaos_setup, degradation, n=12):
        config, model, corpus = chaos_setup
        requests = make_trace(corpus, n=n, rate=8000.0, seed=5,
                              max_new=(10, 16))
        # Alternate best-effort (priority 1) and interactive tiers.
        requests = [
            Request(r.request_id, r.prompt_ids, r.max_new_tokens,
                    r.arrival_time, priority=r.request_id % 2)
            for r in requests
        ]
        pool = make_sharded(config, total_pages=48, n_replicas=2)
        stats = ClusterEngine(
            model, pool, policy="least_loaded", degradation=degradation,
        ).run(requests)
        pool.audit()
        return stats

    def test_shed_drops_best_effort_load_first(self, chaos_setup):
        stats = self._pressured_run(
            chaos_setup,
            DegradationPolicy(free_page_frac=0.5, sustain_steps=2,
                              shed_priority_floor=1),
        )
        shed = [
            r for r in stats.fleet.records if r.failure == "shed"
        ]
        assert shed
        assert all(r.request.priority >= 1 for r in shed)
        assert stats.fleet.n_shed >= len(shed)
        assert_zero_token_loss(stats)

    def test_reprune_escalates_schedule_but_keeps_tokens(self, chaos_setup):
        stats = self._pressured_run(
            chaos_setup,
            DegradationPolicy(free_page_frac=0.5, sustain_steps=2,
                              shed_priority_floor=2,  # nothing sheddable
                              reprune=AGGRESSIVE),
        )
        degraded = [r for r in stats.fleet.records if r.degraded]
        assert degraded
        assert all(r.pruning_override is AGGRESSIVE for r in degraded)
        assert stats.fleet.n_repruned == len(degraded)
        # Degraded requests still deliver the full decode budget.
        assert_zero_token_loss(stats)
        assert all(
            r.status is RequestStatus.FINISHED for r in degraded
        )


class TestChaosSoak:
    @pytest.mark.smoke
    def test_seed_sweep_keeps_ledgers_clean_and_replays_identically(
        self, chaos_setup
    ):
        config, model, corpus = chaos_setup
        requests = make_trace(corpus, n=8, rate=600.0, seed=11,
                              max_new=(6, 10))
        baseline = ClusterEngine(
            model, make_sharded(config), policy="least_loaded"
        ).run(requests)
        base_tokens = tokens_by_id(baseline)

        def run_once(plan):
            pool = make_sharded(config)
            stats = ClusterEngine(
                model, pool, policy="least_loaded", fault_plan=plan,
                heartbeat_timeout_s=plan.heartbeat_timeout_s,
                retry_budget=3, retry_backoff_s=0.01, audit_every=1,
            ).run(requests)
            pool.audit()
            return stats

        horizon = requests[-1].arrival_time + 0.05
        for seed in range(10):
            plan = FaultPlan.generate(
                seed, n_replicas=2, horizon_s=horizon, profile="moderate"
            )
            stats = run_once(plan)
            assert_zero_token_loss(stats)
            # Surviving non-degraded streams match the fault-free run
            # bit for bit.
            for r in stats.fleet.records:
                if r.status is RequestStatus.FINISHED and not r.degraded:
                    assert list(r.token_ids) == \
                        base_tokens[r.request.request_id], f"seed {seed}"
            # Deterministic replay: identical stats document.
            replay = run_once(plan)
            assert replay.to_json() == stats.to_json(), f"seed {seed}"
