"""Quality tests on the sentence-pair regression task (STS-B-like) and
the length-adaptive pruning rule — the remaining task family of the
paper's 30-benchmark suite.

Pair similarity is read out from interaction features over the
evidence block ([h1*h2, |h1-h2|]); absolute correlations are modest at
this scale, but the pruning behaviour — moderate ratios preserved,
extreme ratios degraded — is what the paper claims and what we assert.
"""

import numpy as np
import pytest

from repro.config import BERT_BASE, PruningConfig
from repro.core import SpAttenExecutor
from repro.eval.accuracy import extract_pair_features, train_regression_readout
from repro.nn.weights import EVIDENCE_START
from repro.workloads import (
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    make_regression_dataset,
)

EVIDENCE_SLICE = slice(EVIDENCE_START, EVIDENCE_START + 18)


@pytest.fixture(scope="module")
def regression_world():
    vocab = build_vocabulary(size=512, n_classes=2, seed=0)
    config = accuracy_scale_config(
        BERT_BASE, len(vocab), n_layers=6, d_model=128, n_heads=8,
        max_seq_len=256,
    )
    model, _ = build_task_model(config, vocab, "regression", seed=0)
    dataset = make_regression_dataset(
        vocab, "sts-b-like", avg_len=27, n_train=128, n_test=64, seed=1
    )
    features = extract_pair_features(
        model, dataset.train, vocab.sep_id, feature_slice=EVIDENCE_SLICE
    )
    targets = np.array([e.label for e in dataset.train])
    readout = train_regression_readout(features, targets, l2=0.1)

    def score(executor_factory=None):
        test_features = extract_pair_features(
            model, dataset.test, vocab.sep_id,
            executor_factory=executor_factory, feature_slice=EVIDENCE_SLICE,
        )
        test_targets = np.array([e.label for e in dataset.test])
        return float(np.corrcoef(readout.predict(test_features), test_targets)[0, 1])

    return vocab, model, dataset, score


class TestRegressionQuality:
    def test_dense_correlation_meaningful(self, regression_world):
        *_, score = regression_world
        assert score() > 0.15

    def test_moderate_pruning_preserves_correlation(self, regression_world):
        *_, score = regression_world
        dense = score()
        pruned = score(lambda: SpAttenExecutor(
            PruningConfig(token_keep_final=0.7, head_keep_final=0.75,
                          value_keep=0.9)
        ))
        assert pruned > dense - 0.15

    def test_extreme_pruning_degrades(self, regression_world):
        """Over-pruning a *pair* task is harsh: the overlap signal needs
        both sentences' content words."""
        *_, score = regression_world
        dense = score()
        pruned = score(lambda: SpAttenExecutor(
            PruningConfig(token_keep_final=0.08, min_tokens=2)
        ))
        assert pruned < dense

    def test_pair_feature_requires_sep(self, regression_world):
        vocab, model, dataset, _ = regression_world
        from repro.workloads.tasks import Example

        bad = Example(np.array([vocab.cls_id, 5, 6]), 1.0)
        with pytest.raises(ValueError, match="SEP"):
            extract_pair_features(model, [bad], vocab.sep_id)


class TestLengthAdaptivePruning:
    """Section III-A: 'the longer, the more tokens are pruned away'."""

    def test_longer_sentences_prune_to_smaller_fraction(self):
        from repro.core.schedule import token_keep_counts

        pruning = PruningConfig(
            token_keep_final=0.5, length_adaptive=True, reference_length=64
        )
        short = token_keep_counts(pruning, 12, 16)
        long = token_keep_counts(pruning, 12, 256)
        assert short[-1] / 16 > long[-1] / 256

    def test_adaptive_executor_consistent_with_trace(self, tiny_encoder, rng):
        """Length adaptation flows through both the executor and the
        analytic builder identically."""
        from repro.core import spatten_trace

        pruning = PruningConfig(
            token_keep_final=0.5, length_adaptive=True, reference_length=16
        )
        tokens = rng.integers(0, 64, size=32).tolist()
        executor = SpAttenExecutor(pruning)
        tiny_encoder.encode(tokens, executor=executor)
        analytic = spatten_trace(tiny_encoder.config, pruning, None, 32)
        assert executor.trace.count_signature() == analytic.count_signature()
