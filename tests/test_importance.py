"""Unit tests for cumulative importance accumulators (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.importance import (
    HeadImportanceAccumulator,
    TokenImportanceAccumulator,
)
from repro.nn.functional import softmax


class TestTokenImportance:
    def test_column_sum_accumulation(self, rng):
        probs = softmax(rng.normal(size=(2, 3, 4)))
        acc = TokenImportanceAccumulator()
        acc.accumulate(probs, np.arange(4))
        assert np.allclose(acc.raw_scores, probs.sum(axis=(0, 1)))

    def test_total_mass_equals_rows(self, rng):
        """Each softmax row sums to 1, so total accumulated mass is
        n_heads * n_queries per round — a conservation law."""
        probs = softmax(rng.normal(size=(3, 5, 7)))
        acc = TokenImportanceAccumulator()
        acc.accumulate(probs, np.arange(7))
        assert acc.raw_scores.sum() == pytest.approx(3 * 5)

    def test_accumulates_across_rounds(self, rng):
        probs = softmax(rng.normal(size=(1, 2, 3)))
        acc = TokenImportanceAccumulator()
        acc.accumulate(probs, np.arange(3))
        acc.accumulate(probs, np.arange(3))
        assert np.allclose(acc.raw_scores, 2 * probs.sum(axis=(0, 1)))

    def test_addressed_by_original_position(self, rng):
        probs = softmax(rng.normal(size=(1, 1, 2)))
        acc = TokenImportanceAccumulator()
        acc.accumulate(probs, np.array([5, 9]))
        assert len(acc.raw_scores) == 10
        assert acc.raw_scores[5] == pytest.approx(probs[0, 0, 0])
        assert acc.raw_scores[0] == 0.0

    def test_duplicate_ids_accumulate(self, rng):
        probs = np.ones((1, 1, 2)) * 0.5
        acc = TokenImportanceAccumulator()
        acc.accumulate(probs, np.array([3, 3]))
        assert acc.raw_scores[3] == pytest.approx(1.0)

    def test_scores_for_grows_lazily(self):
        acc = TokenImportanceAccumulator()
        scores = acc.scores_for(np.array([0, 7]))
        assert np.array_equal(scores, [0.0, 0.0])

    def test_shape_validation(self, rng):
        acc = TokenImportanceAccumulator()
        with pytest.raises(ValueError):
            acc.accumulate(np.ones((2, 3)), np.arange(3))
        with pytest.raises(ValueError):
            acc.accumulate(np.ones((1, 2, 3)), np.arange(2))


class TestHeadImportance:
    def test_magnitude_accumulation(self, rng):
        outputs = rng.normal(size=(2, 3, 4))
        acc = HeadImportanceAccumulator(4)
        acc.accumulate(outputs, np.array([0, 2]))
        assert acc.raw_scores[0] == pytest.approx(np.abs(outputs[0]).sum())
        assert acc.raw_scores[2] == pytest.approx(np.abs(outputs[1]).sum())
        assert acc.raw_scores[1] == 0.0

    def test_accumulates_across_layers(self, rng):
        outputs = rng.normal(size=(1, 2, 2))
        acc = HeadImportanceAccumulator(2)
        acc.accumulate(outputs, np.array([1]))
        acc.accumulate(outputs, np.array([1]))
        assert acc.raw_scores[1] == pytest.approx(2 * np.abs(outputs[0]).sum())

    def test_quiet_heads_rank_low(self, rng):
        loud = rng.normal(0, 2.0, size=(1, 4, 8))
        quiet = rng.normal(0, 0.01, size=(1, 4, 8))
        acc = HeadImportanceAccumulator(2)
        acc.accumulate(loud, np.array([0]))
        acc.accumulate(quiet, np.array([1]))
        assert acc.raw_scores[0] > acc.raw_scores[1]

    def test_validation(self, rng):
        acc = HeadImportanceAccumulator(2)
        with pytest.raises(ValueError):
            acc.accumulate(rng.normal(size=(1, 2, 2)), np.array([5]))
        with pytest.raises(ValueError):
            acc.accumulate(rng.normal(size=(2, 2)), np.array([0]))
        with pytest.raises(ValueError):
            HeadImportanceAccumulator(0)
