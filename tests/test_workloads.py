"""Tests for vocabularies, task generators, and the benchmark registry."""

import numpy as np
import pytest

from repro.workloads import (
    Benchmark,
    TrafficClass,
    Vocabulary,
    all_benchmarks,
    bert_benchmarks,
    build_vocabulary,
    get_benchmark,
    gpt2_benchmarks,
    heterogeneous_request_trace,
    lm_prompts,
    make_classification_dataset,
    make_lm_corpus,
    make_regression_dataset,
    poisson_arrival_times,
    synthetic_request_trace,
)
from repro.workloads.benchmarks import GPT2_GEN_TOKENS, GPT2_PROMPT_LEN


@pytest.fixture(scope="module")
def vocab():
    return build_vocabulary(size=512, n_classes=2, seed=0)


class TestVocabulary:
    def test_structure(self, vocab):
        assert len(vocab) == 512
        assert vocab.words[vocab.cls_id] == "[CLS]"
        assert len(vocab.function_ids) > 50
        assert len(vocab.content_ids) > 100

    def test_function_words_low_salience(self, vocab):
        the = vocab.id_of("the")
        film = vocab.id_of("film")
        assert vocab.salience[the] < 0.3
        assert vocab.salience[film] > 0.5

    def test_classes_partition_carriers(self, vocab):
        for c in range(2):
            assert len(vocab.content_ids_of_class(c)) > 20
        carriers = set(np.flatnonzero(vocab.class_of >= 0))
        assert carriers.issubset(set(vocab.content_ids.tolist()))

    def test_oov_maps_to_content(self, vocab):
        token = vocab.id_of("zyzzyva")
        assert vocab.salience[token] >= 0.3
        assert vocab.id_of("zyzzyva") == token  # deterministic

    def test_encode_decode(self, vocab):
        ids = vocab.encode("the film is perfect", add_cls=True)
        words = vocab.decode(ids)
        assert words[0] == "[CLS]"
        assert words[1:] == ["the", "film", "is", "perfect"]

    def test_encode_strips_punctuation(self, vocab):
        ids = vocab.encode("Perfect, film!")
        assert vocab.decode(ids) == ["perfect", "film"]

    def test_evidence_matrix(self, vocab):
        evidence = vocab.evidence_matrix()
        assert evidence.shape == (512, 2)
        the = vocab.id_of("the")
        assert np.all(evidence[the] == 0)
        carrier = vocab.content_ids_of_class(0)[0]
        assert evidence[carrier, 0] == 1.0

    def test_evidence_with_signatures(self, vocab):
        evidence = vocab.evidence_matrix(evidence_dim=10)
        carrier = vocab.content_ids_of_class(1)[0]
        assert np.any(evidence[carrier, 2:] != 0)
        with pytest.raises(ValueError):
            vocab.evidence_matrix(evidence_dim=1)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            build_vocabulary(size=16)

    def test_zipf_head_is_function_words(self, vocab):
        top = np.argsort(vocab.zipf_weights)[::-1][:20]
        assert np.all(vocab.salience[top] < 0.3)


class TestDatasets:
    def test_classification_dataset(self, vocab):
        ds = make_classification_dataset(vocab, "t", avg_len=20,
                                         n_train=10, n_test=5, seed=0)
        assert len(ds.train) == 10 and len(ds.test) == 5
        for example in ds.train:
            assert example.token_ids[0] == vocab.cls_id
            assert example.label in (0.0, 1.0)
        assert 8 < ds.mean_length < 50

    def test_labels_balanced_ish(self, vocab):
        ds = make_classification_dataset(vocab, "t", avg_len=15,
                                         n_train=100, n_test=0, seed=1)
        labels = [e.label for e in ds.train]
        assert 0.3 < np.mean(labels) < 0.7

    def test_regression_dataset(self, vocab):
        ds = make_regression_dataset(vocab, "sts", avg_len=30,
                                     n_train=10, n_test=4, seed=0)
        for example in ds.train:
            assert 1.0 <= example.label <= 5.0
            assert vocab.sep_id in example.token_ids

    def test_lm_corpus(self, vocab):
        corpus = make_lm_corpus(vocab, n_tokens=500, seed=0)
        assert len(corpus) == 500
        assert np.all(corpus >= 3)  # no specials in the stream
        content_frac = np.mean(vocab.salience[corpus] > 0.3)
        assert 0.2 < content_frac < 0.55

    def test_lm_prompts(self, vocab):
        corpus = make_lm_corpus(vocab, n_tokens=300, seed=0)
        prompts = lm_prompts(corpus, 50, 7, seed=1)
        assert len(prompts) == 7
        assert all(len(p) == 50 for p in prompts)
        with pytest.raises(ValueError):
            lm_prompts(corpus, 301, 2)


class TestBenchmarkRegistry:
    def test_thirty_benchmarks(self):
        assert len(all_benchmarks()) == 30
        assert len(bert_benchmarks()) == 22
        assert len(gpt2_benchmarks()) == 8

    def test_bert_tasks_cover_glue_and_squad(self):
        tasks = {b.task for b in bert_benchmarks()}
        assert tasks == {
            "cola", "sst-2", "mrpc", "sts-b", "qqp", "mnli-m", "mnli-mm",
            "qnli", "rte", "squad-v1", "squad-v2",
        }

    def test_gpt2_workload_shape(self):
        for bench in gpt2_benchmarks():
            assert bench.seq_len == GPT2_PROMPT_LEN == 992
            assert bench.n_generate == GPT2_GEN_TOKENS == 32
            assert bench.is_generative
            assert bench.quant.progressive

    def test_bert_uses_static_quant(self):
        for bench in bert_benchmarks():
            assert not bench.quant.progressive
            assert not bench.is_generative

    def test_gpt2_prunes_harder_than_bert(self):
        bert_keep = np.mean([b.pruning.token_keep_final for b in bert_benchmarks()])
        gpt2_keep = np.mean([b.pruning.token_keep_final for b in gpt2_benchmarks()])
        assert gpt2_keep < bert_keep

    def test_longer_tasks_prune_more(self):
        cola = get_benchmark("bert-base-cola")
        squad = get_benchmark("bert-base-squad-v1")
        assert squad.pruning.token_keep_final < cola.pruning.token_keep_final
        assert squad.seq_len > cola.seq_len

    def test_lookup_errors(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("bert-base-imagenet")

    def test_keys_match_models(self):
        bench = get_benchmark("gpt2-medium-ptb")
        assert bench.model.name == "gpt2-medium"
        assert bench.model.n_layers == 24


class TestTrafficSeedSchemes:
    """Regression: the legacy scheme derives the arrival RNG as
    ``seed + 1``, so traces built with seeds ``s`` and ``s + 1`` share
    underlying bit streams.  ``seed_scheme="spawn"`` replaces the
    integer offsets with independent ``SeedSequence`` children while the
    legacy default keeps every checked-in benchmark trace bit-identical.
    """

    @pytest.fixture(scope="class")
    def corpus(self):
        return make_lm_corpus(
            build_vocabulary(size=256, n_classes=2, seed=0),
            n_tokens=1024, seed=2,
        )

    def trace(self, corpus, seed, scheme):
        return synthetic_request_trace(
            corpus, n_requests=16, rate_per_s=100.0, prompt_len=12,
            max_new_tokens=(2, 6), seed=seed, seed_scheme=scheme,
        )

    def test_legacy_default_is_unchanged(self, corpus):
        """The default trace still derives its arrival stream from
        ``default_rng(seed + 1)`` — checked-in benchmark results built
        on the legacy scheme stay valid."""
        implicit = self.trace(corpus, seed=9, scheme="legacy")
        default = synthetic_request_trace(
            corpus, n_requests=16, rate_per_s=100.0, prompt_len=12,
            max_new_tokens=(2, 6), seed=9,
        )
        assert [r.arrival_time for r in implicit] == \
            [r.arrival_time for r in default]
        pinned = np.cumsum(
            np.random.default_rng(10).exponential(1.0 / 100.0, size=16)
        )
        np.testing.assert_allclose(
            [r.arrival_time for r in implicit], pinned
        )

    def test_legacy_adjacent_seeds_share_bit_streams(self, corpus):
        """The bug the spawn scheme fixes, pinned: trace ``s``'s
        arrival stream *is* ``default_rng(s + 1)``'s bit stream, which
        trace ``s + 1`` consumes as its base RNG."""
        arrivals = poisson_arrival_times(16, 100.0, seed=8)
        trace_7 = self.trace(corpus, seed=7, scheme="legacy")
        np.testing.assert_allclose(
            [r.arrival_time for r in trace_7], arrivals
        )

    def test_spawn_scheme_is_reproducible_and_decorrelated(self, corpus):
        a1 = self.trace(corpus, seed=7, scheme="spawn")
        a2 = self.trace(corpus, seed=7, scheme="spawn")
        assert [r.arrival_time for r in a1] == [r.arrival_time for r in a2]
        assert [list(r.prompt_ids) for r in a1] == \
            [list(r.prompt_ids) for r in a2]
        # Adjacent seeds no longer share any stream: arrivals differ
        # everywhere and no longer reproduce default_rng(seed + 1).
        b = self.trace(corpus, seed=8, scheme="spawn")
        assert all(
            x.arrival_time != y.arrival_time for x, y in zip(a1, b)
        )
        legacy_style = np.cumsum(
            np.random.default_rng(8).exponential(1.0 / 100.0, size=16)
        )
        assert not np.allclose(
            [r.arrival_time for r in a1], legacy_style
        )

    def test_heterogeneous_trace_supports_spawn(self, corpus):
        classes = [
            TrafficClass("a", weight=0.5, prompt_len=8,
                         max_new_tokens=(2, 4)),
            TrafficClass("b", weight=0.5, prompt_len=16,
                         max_new_tokens=(2, 4)),
        ]
        t1 = heterogeneous_request_trace(
            corpus, classes, n_requests=12, rate_per_s=100.0, seed=3,
            seed_scheme="spawn",
        )
        t2 = heterogeneous_request_trace(
            corpus, classes, n_requests=12, rate_per_s=100.0, seed=3,
            seed_scheme="spawn",
        )
        assert [r.arrival_time for r in t1] == [r.arrival_time for r in t2]
        legacy = heterogeneous_request_trace(
            corpus, classes, n_requests=12, rate_per_s=100.0, seed=3,
        )
        assert [r.arrival_time for r in t1] != \
            [r.arrival_time for r in legacy]

    def test_unknown_scheme_rejected(self, corpus):
        with pytest.raises(ValueError, match="seed_scheme"):
            self.trace(corpus, seed=0, scheme="mystery")
