"""Tests for vocabularies, task generators, and the benchmark registry."""

import numpy as np
import pytest

from repro.workloads import (
    Benchmark,
    Vocabulary,
    all_benchmarks,
    bert_benchmarks,
    build_vocabulary,
    get_benchmark,
    gpt2_benchmarks,
    lm_prompts,
    make_classification_dataset,
    make_lm_corpus,
    make_regression_dataset,
)
from repro.workloads.benchmarks import GPT2_GEN_TOKENS, GPT2_PROMPT_LEN


@pytest.fixture(scope="module")
def vocab():
    return build_vocabulary(size=512, n_classes=2, seed=0)


class TestVocabulary:
    def test_structure(self, vocab):
        assert len(vocab) == 512
        assert vocab.words[vocab.cls_id] == "[CLS]"
        assert len(vocab.function_ids) > 50
        assert len(vocab.content_ids) > 100

    def test_function_words_low_salience(self, vocab):
        the = vocab.id_of("the")
        film = vocab.id_of("film")
        assert vocab.salience[the] < 0.3
        assert vocab.salience[film] > 0.5

    def test_classes_partition_carriers(self, vocab):
        for c in range(2):
            assert len(vocab.content_ids_of_class(c)) > 20
        carriers = set(np.flatnonzero(vocab.class_of >= 0))
        assert carriers.issubset(set(vocab.content_ids.tolist()))

    def test_oov_maps_to_content(self, vocab):
        token = vocab.id_of("zyzzyva")
        assert vocab.salience[token] >= 0.3
        assert vocab.id_of("zyzzyva") == token  # deterministic

    def test_encode_decode(self, vocab):
        ids = vocab.encode("the film is perfect", add_cls=True)
        words = vocab.decode(ids)
        assert words[0] == "[CLS]"
        assert words[1:] == ["the", "film", "is", "perfect"]

    def test_encode_strips_punctuation(self, vocab):
        ids = vocab.encode("Perfect, film!")
        assert vocab.decode(ids) == ["perfect", "film"]

    def test_evidence_matrix(self, vocab):
        evidence = vocab.evidence_matrix()
        assert evidence.shape == (512, 2)
        the = vocab.id_of("the")
        assert np.all(evidence[the] == 0)
        carrier = vocab.content_ids_of_class(0)[0]
        assert evidence[carrier, 0] == 1.0

    def test_evidence_with_signatures(self, vocab):
        evidence = vocab.evidence_matrix(evidence_dim=10)
        carrier = vocab.content_ids_of_class(1)[0]
        assert np.any(evidence[carrier, 2:] != 0)
        with pytest.raises(ValueError):
            vocab.evidence_matrix(evidence_dim=1)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            build_vocabulary(size=16)

    def test_zipf_head_is_function_words(self, vocab):
        top = np.argsort(vocab.zipf_weights)[::-1][:20]
        assert np.all(vocab.salience[top] < 0.3)


class TestDatasets:
    def test_classification_dataset(self, vocab):
        ds = make_classification_dataset(vocab, "t", avg_len=20,
                                         n_train=10, n_test=5, seed=0)
        assert len(ds.train) == 10 and len(ds.test) == 5
        for example in ds.train:
            assert example.token_ids[0] == vocab.cls_id
            assert example.label in (0.0, 1.0)
        assert 8 < ds.mean_length < 50

    def test_labels_balanced_ish(self, vocab):
        ds = make_classification_dataset(vocab, "t", avg_len=15,
                                         n_train=100, n_test=0, seed=1)
        labels = [e.label for e in ds.train]
        assert 0.3 < np.mean(labels) < 0.7

    def test_regression_dataset(self, vocab):
        ds = make_regression_dataset(vocab, "sts", avg_len=30,
                                     n_train=10, n_test=4, seed=0)
        for example in ds.train:
            assert 1.0 <= example.label <= 5.0
            assert vocab.sep_id in example.token_ids

    def test_lm_corpus(self, vocab):
        corpus = make_lm_corpus(vocab, n_tokens=500, seed=0)
        assert len(corpus) == 500
        assert np.all(corpus >= 3)  # no specials in the stream
        content_frac = np.mean(vocab.salience[corpus] > 0.3)
        assert 0.2 < content_frac < 0.55

    def test_lm_prompts(self, vocab):
        corpus = make_lm_corpus(vocab, n_tokens=300, seed=0)
        prompts = lm_prompts(corpus, 50, 7, seed=1)
        assert len(prompts) == 7
        assert all(len(p) == 50 for p in prompts)
        with pytest.raises(ValueError):
            lm_prompts(corpus, 301, 2)


class TestBenchmarkRegistry:
    def test_thirty_benchmarks(self):
        assert len(all_benchmarks()) == 30
        assert len(bert_benchmarks()) == 22
        assert len(gpt2_benchmarks()) == 8

    def test_bert_tasks_cover_glue_and_squad(self):
        tasks = {b.task for b in bert_benchmarks()}
        assert tasks == {
            "cola", "sst-2", "mrpc", "sts-b", "qqp", "mnli-m", "mnli-mm",
            "qnli", "rte", "squad-v1", "squad-v2",
        }

    def test_gpt2_workload_shape(self):
        for bench in gpt2_benchmarks():
            assert bench.seq_len == GPT2_PROMPT_LEN == 992
            assert bench.n_generate == GPT2_GEN_TOKENS == 32
            assert bench.is_generative
            assert bench.quant.progressive

    def test_bert_uses_static_quant(self):
        for bench in bert_benchmarks():
            assert not bench.quant.progressive
            assert not bench.is_generative

    def test_gpt2_prunes_harder_than_bert(self):
        bert_keep = np.mean([b.pruning.token_keep_final for b in bert_benchmarks()])
        gpt2_keep = np.mean([b.pruning.token_keep_final for b in gpt2_benchmarks()])
        assert gpt2_keep < bert_keep

    def test_longer_tasks_prune_more(self):
        cola = get_benchmark("bert-base-cola")
        squad = get_benchmark("bert-base-squad-v1")
        assert squad.pruning.token_keep_final < cola.pruning.token_keep_final
        assert squad.seq_len > cola.seq_len

    def test_lookup_errors(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("bert-base-imagenet")

    def test_keys_match_models(self):
        bench = get_benchmark("gpt2-medium-ptb")
        assert bench.model.name == "gpt2-medium"
        assert bench.model.n_layers == 24
