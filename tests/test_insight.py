"""Tests for the repro.insight analysis layer.

The contract under test, in order of importance:

* **exact** — every request's blame vector sums *bit-exactly* (as
  Fractions in the exported-microsecond domain) to its recorded
  end-to-end latency, for dense and SpAtten modes, single-engine and
  cluster, with preemption and chaos in play, across multiple seeds;
* **free** — attaching an SLO policy changes no committed token and no
  core stat, and identical runs render byte-identical slo-report and
  bench-compare output;
* **source-agnostic** — attribution from the live tracer and from the
  exported Chrome trace file agree exactly;
* **gating** — the bench-compare regression gate demonstrably fails on
  a synthetic regression and passes on real, deterministic history.
"""

import json
from fractions import Fraction

import pytest

from repro.cluster import ClusterEngine, ShardedKVPool
from repro.config import GPT2_SMALL, PruningConfig
from repro.faults import FaultEvent, FaultPlan
from repro.serving import KVMemoryPool, ServingEngine
from repro.telemetry import Telemetry, chrome_trace_json
from repro.insight import (
    CAUSES,
    SLOObjective,
    SLOPolicy,
    RequestSample,
    TraceAttribution,
    append_history,
    compare_all,
    compare_history,
    load_history,
    metric,
    timelines_from_tracer,
)
from repro.cli import main as cli_main
from repro.workloads import (
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    make_lm_corpus,
    synthetic_request_trace,
)

PROMPT_LEN = 24
PRUNING = PruningConfig(token_keep_final=0.4, head_keep_final=0.75,
                        value_keep=0.9)


@pytest.fixture(scope="module")
def world():
    vocab = build_vocabulary(size=512, n_classes=4, seed=0)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=4, d_model=64, n_heads=4,
        max_seq_len=160,
    )
    model, _ = build_task_model(config, vocab, "lm", seed=0)
    corpus = make_lm_corpus(vocab, n_tokens=2048, seed=2)
    return config, model, corpus


def make_pool(config, pages=64, page_tokens=8):
    return KVMemoryPool(
        config,
        budget_bytes=pages * page_tokens * 2 * config.n_heads
        * config.head_dim * config.bytes_per_element,
        page_tokens=page_tokens,
    )


def make_sharded(config, total_pages=128, n_replicas=2, page_tokens=8):
    per_token = 2 * config.n_heads * config.head_dim * config.bytes_per_element
    return ShardedKVPool(
        config,
        total_budget_bytes=total_pages * page_tokens * per_token,
        n_replicas=n_replicas,
        page_tokens=page_tokens,
    )


def trace(corpus, n=8, rate=2000.0, max_new=(6, 12), seed=3):
    return synthetic_request_trace(
        corpus, n_requests=n, rate_per_s=rate, prompt_len=PROMPT_LEN,
        max_new_tokens=max_new, seed=seed,
    )


def tokens_by_id(stats):
    return {r.request.request_id: list(r.token_ids) for r in stats.records}


def run_preempting_engine(world, seed, pruning=PRUNING, telemetry=None,
                          **kwargs):
    """The preemption-heavy recipe: optimistic admission on a tight
    pool forces preempt/requeue cycles for most seeds."""
    config, model, corpus = world
    requests = trace(corpus, n=16, max_new=(12, 24), seed=seed)
    engine = ServingEngine(
        model, make_pool(config, pages=36), pruning=pruning,
        prefill_chunk=8, admission="optimistic", telemetry=telemetry,
        **kwargs,
    )
    return engine.run(requests), engine


def run_chaos_cluster(world, seed, telemetry=None, **kwargs):
    """Cluster run with a mid-flight replica failure + recovery."""
    config, model, corpus = world
    requests = trace(corpus, n=12, max_new=(8, 16), seed=seed)
    cluster = ClusterEngine(
        model, make_sharded(config), pruning=PRUNING, prefill_chunk=8,
        fail_events=[(0.004, 0)], recover_events=[(0.02, 0)],
        telemetry=telemetry, **kwargs,
    )
    return cluster.run(requests), cluster


def assert_exact(attribution, records=None):
    """Every vector's components and phases sum bit-exactly to its e2e,
    and (when records are given) e2e matches the engine's own record."""
    assert attribution.vectors, "attribution produced no vectors"
    by_id = {}
    if records is not None:
        by_id = {r.request.request_id: r for r in records}
    for vector in attribution.vectors:
        total = sum(vector.components.values(), Fraction(0))
        assert total == vector.e2e_us, (
            f"request {vector.request_id}: components sum {float(total)}us "
            f"!= e2e {float(vector.e2e_us)}us"
        )
        assert sum(vector.phases.values(), Fraction(0)) == vector.e2e_us
        record = by_id.get(vector.request_id)
        if record is not None and record.finish_time is not None:
            expected = Fraction(record.finish_time * 1e6) \
                - Fraction(record.request.arrival_time * 1e6)
            assert vector.e2e_us == expected, (
                f"request {vector.request_id}: trace e2e disagrees with "
                f"the engine record"
            )


def total_cause(attribution, cause):
    return sum(
        (v.components[cause] for v in attribution.vectors), Fraction(0)
    )


# ----------------------------------------------------------------------
# Attribution exactness — the tentpole acceptance bar
# ----------------------------------------------------------------------
class TestAttributionExactness:
    @pytest.mark.parametrize("seed", [3, 7, 11])
    @pytest.mark.parametrize("mode", ["dense", "spatten"])
    def test_engine_with_preemption_sums_exactly(self, world, seed, mode):
        tel = Telemetry()
        pruning = PRUNING if mode == "spatten" else None
        stats, _ = run_preempting_engine(world, seed, pruning=pruning,
                                         telemetry=tel)
        attribution = TraceAttribution.from_tracer(tel.tracer)
        assert len(attribution.vectors) == len(stats.records)
        assert_exact(attribution, stats.records)
        if stats.n_preemptions:
            assert total_cause(attribution, "preempt_discard") > 0
            assert total_cause(attribution, "preempt_requeue") > 0

    def test_preemption_is_actually_exercised(self, world):
        # The sweep above must not pass vacuously: at least one seed
        # preempts in SpAtten mode under the tight-pool recipe.
        tel = Telemetry()
        stats, _ = run_preempting_engine(world, 11, telemetry=tel)
        assert stats.n_preemptions > 0

    @pytest.mark.parametrize("seed", [5, 9, 13])
    def test_cluster_with_chaos_sums_exactly(self, world, seed):
        tel = Telemetry()
        stats, _ = run_chaos_cluster(world, seed, telemetry=tel)
        attribution = TraceAttribution.from_tracer(tel.tracer)
        assert len(attribution.vectors) == len(stats.fleet.records)
        assert_exact(attribution, stats.fleet.records)

    def test_quarantine_blame_under_corruption_plan(self, world):
        config, model, corpus = world
        tel = Telemetry()
        plan = FaultPlan(n_replicas=2, events=(
            FaultEvent(0.004, 0, "corrupt", u_seq=0.3),
            FaultEvent(0.008, 1, "corrupt", u_seq=0.6),
        ))
        requests = trace(corpus, n=12, max_new=(8, 16), seed=5)
        cluster = ClusterEngine(
            model, make_sharded(config), pruning=PRUNING, prefill_chunk=8,
            fault_plan=plan, telemetry=tel,
        )
        stats = cluster.run(requests)
        attribution = TraceAttribution.from_tracer(tel.tracer)
        assert_exact(attribution, stats.fleet.records)
        # Not vacuous: the explicit plan really corrupted pages, and
        # the discarded work shows up as quarantine blame.
        assert total_cause(attribution, "quarantine_discard") > 0

    def test_tracer_and_exported_file_agree_exactly(self, world, tmp_path):
        tel = Telemetry()
        run_preempting_engine(world, 7, telemetry=tel)
        live = TraceAttribution.from_tracer(tel.tracer)
        doc = json.loads(chrome_trace_json(tel.tracer))
        exported = TraceAttribution.from_events(doc["traceEvents"])
        assert live.to_dict() == exported.to_dict()

    def test_every_cause_key_is_always_present(self, world):
        tel = Telemetry()
        run_preempting_engine(world, 3, telemetry=tel)
        attribution = TraceAttribution.from_tracer(tel.tracer)
        for vector in attribution.vectors:
            assert tuple(vector.components) == CAUSES

    def test_render_is_deterministic(self, world):
        tel = Telemetry()
        run_preempting_engine(world, 3, telemetry=tel)
        a = TraceAttribution.from_tracer(tel.tracer)
        b = TraceAttribution.from_tracer(tel.tracer)
        assert a.render() == b.render()


# ----------------------------------------------------------------------
# Observability is free — insight on vs off
# ----------------------------------------------------------------------
class TestInsightIsFree:
    POLICY = SLOPolicy.from_specs(["all:ttft:p95:50", "all:e2e:p99:400"])

    def core_stats(self, stats):
        doc = stats.to_dict()
        doc.pop("slo", None)
        return doc

    def test_engine_tokens_and_stats_identical(self, world):
        bare, _ = run_preempting_engine(world, 7)
        slo, _ = run_preempting_engine(world, 7, slo=self.POLICY)
        assert tokens_by_id(bare) == tokens_by_id(slo)
        assert self.core_stats(bare) == self.core_stats(slo)
        assert bare.slo is None
        assert slo.slo is not None and "attained" in slo.slo

    def test_cluster_tokens_and_stats_identical(self, world):
        bare, _ = run_chaos_cluster(world, 5)
        slo, _ = run_chaos_cluster(world, 5, slo=self.POLICY)
        assert tokens_by_id(bare.fleet) == tokens_by_id(slo.fleet)
        assert self.core_stats(bare) == self.core_stats(slo)
        assert slo.slo is not None

    def test_slo_evaluation_is_reproducible(self, world):
        stats, _ = run_preempting_engine(world, 7)
        one = self.POLICY.evaluate_records(stats.records, stats.makespan_s)
        two = self.POLICY.evaluate_records(stats.records, stats.makespan_s)
        assert one.to_dict() == two.to_dict()
        assert one.render() == two.render()


# ----------------------------------------------------------------------
# SLO engine semantics
# ----------------------------------------------------------------------
def sample(request_id, arrival, ttft=None, tpot=None, e2e=None,
           failed=False, priority=0):
    return RequestSample(
        request_id=request_id, priority=priority, arrival_s=arrival,
        ttft_s=ttft, tpot_s=tpot, e2e_s=e2e, failed=failed,
    )


class TestSLOEngine:
    def test_parse_round_trips_the_name(self):
        obj = SLOObjective.parse("0:ttft:p95:150")
        assert (obj.tier, obj.metric, obj.percentile) == (0, "ttft", 95.0)
        assert obj.target_s == pytest.approx(0.150)
        assert obj.name == "0:ttft:p95:150ms"
        assert SLOObjective.parse("all:e2e:p99:2000").tier is None

    @pytest.mark.parametrize("spec", [
        "e2e:p99:2000",              # missing tier
        "all:walltime:p99:2000",     # unknown metric
        "all:e2e:99:2000",           # percentile missing the p
        "all:e2e:p0:2000",           # out-of-range percentile
        "all:e2e:p99:zero",          # non-numeric target
        "fast:e2e:p99:2000",         # non-integer tier
    ])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            SLOObjective.parse(spec)

    def test_attainment_and_violations(self):
        policy = SLOPolicy.from_specs(["all:e2e:p50:100"], window_s=1.0)
        samples = [
            sample(0, 0.0, e2e=0.05),
            sample(1, 0.1, e2e=0.09),
            sample(2, 0.2, e2e=0.50),
        ]
        report = policy.evaluate_samples(samples, makespan_s=1.0)
        result = report.results[0]
        assert report.attained is True  # p50 of (50, 90, 500)ms = 90ms
        assert result["n_violations"] == 1
        assert result["attainment"] == pytest.approx(2 / 3)

    def test_failed_requests_violate_every_objective(self):
        policy = SLOPolicy.from_specs(["all:e2e:p50:100"], window_s=1.0)
        report = policy.evaluate_samples(
            [sample(0, 0.0, e2e=0.05), sample(1, 0.1, failed=True)],
            makespan_s=1.0,
        )
        assert report.results[0]["n_violations"] == 1
        assert report.results[0]["n_samples"] == 2

    def test_undefined_metric_is_out_of_scope(self):
        # A 1-token request has no TPOT: it neither attains nor violates.
        policy = SLOPolicy.from_specs(["all:tpot:p99:10"], window_s=1.0)
        report = policy.evaluate_samples(
            [sample(0, 0.0, tpot=None, e2e=0.05)], makespan_s=1.0,
        )
        assert report.results[0]["n_samples"] == 0
        assert report.attained is None

    def test_tier_scoping(self):
        policy = SLOPolicy.from_specs(["1:e2e:p50:100"], window_s=1.0)
        report = policy.evaluate_samples(
            [sample(0, 0.0, e2e=9.0, priority=0),   # wrong tier: ignored
             sample(1, 0.1, e2e=0.05, priority=1)],
            makespan_s=1.0,
        )
        assert report.results[0]["n_samples"] == 1
        assert report.attained is True

    def test_burn_rate_windows(self):
        # p50 => 50% error budget; window 0: 0/1 violations (burn 0),
        # window 1: 1/1 violations (burn 2x > 1 => burning).
        policy = SLOPolicy.from_specs(["all:e2e:p50:100"], window_s=0.1)
        report = policy.evaluate_samples(
            [sample(0, 0.05, e2e=0.01), sample(1, 0.15, e2e=9.0)],
            makespan_s=1.0,
        )
        result = report.results[0]
        assert result["n_windows"] == 2
        assert result["n_burning_windows"] == 1
        assert result["burn_rate_worst"] == pytest.approx(2.0)
        assert result["burn_window_start_s"] == pytest.approx(0.1)

    def test_report_json_is_strict(self):
        # NaN / inf never leak into the JSON document (json.dumps with
        # allow_nan=False must succeed).
        policy = SLOPolicy.from_specs(["all:e2e:p100:100"], window_s=1.0)
        report = policy.evaluate_samples(
            [sample(0, 0.0, failed=True)], makespan_s=1.0,
        )
        json.dumps(report.to_dict(), allow_nan=False)
        assert report.attained is None  # failures only: no measurement

    def test_missed_objective_renders_no(self):
        policy = SLOPolicy.from_specs(["all:e2e:p50:1"], window_s=1.0)
        report = policy.evaluate_samples(
            [sample(0, 0.0, e2e=5.0)], makespan_s=1.0,
        )
        assert report.attained is False
        assert "NO" in report.render()
        assert "MISSED" in report.render()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SLOPolicy(objectives=())
        with pytest.raises(ValueError):
            SLOPolicy.from_specs(["all:e2e:p99:100"], window_s=0.0)


# ----------------------------------------------------------------------
# Benchmark history + regression gate
# ----------------------------------------------------------------------
class TestHistory:
    def test_metric_validation(self):
        assert metric(1.5, "x", "lower")["direction"] == "lower"
        with pytest.raises(ValueError):
            metric(1.5, "x", "sideways")
        with pytest.raises(ValueError):
            metric(1.5, "x", rel_tol=0.0)
        with pytest.raises(ValueError):
            metric(float("nan"), "x")

    def test_append_skips_identical_records(self, tmp_path):
        for _ in range(3):
            path = append_history(tmp_path, "b", {"m": metric(1.0, "x")})
        assert len(load_history(path)) == 1
        append_history(tmp_path, "b", {"m": metric(2.0, "x")})
        assert len(load_history(path)) == 2

    def test_records_carry_no_wall_clock(self, tmp_path):
        path = append_history(tmp_path, "b", {"m": metric(1.0, "x")},
                              context={"n": 8})
        (record,) = load_history(path)
        assert sorted(record) == ["bench", "context", "metrics", "schema"]

    def test_load_rejects_garbage_and_schema_drift(self, tmp_path):
        path = tmp_path / "b.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="b.jsonl:1"):
            load_history(path)
        path.write_text('{"schema": 99, "bench": "b", "metrics": {}}\n')
        with pytest.raises(ValueError, match="schema"):
            load_history(path)

    def history(self, tmp_path, values, direction="higher", rel_tol=0.05):
        for value in values:
            # append-iff-different would collapse equal neighbours; the
            # fixture values are distinct so each lands as one record.
            append_history(tmp_path, "b",
                           {"m": metric(value, "x", direction, rel_tol)})
        return load_history(tmp_path / "b.jsonl")

    def test_single_record_is_its_own_baseline(self, tmp_path):
        (verdict,) = compare_history(self.history(tmp_path, [1.0]))
        assert verdict["status"] == "baseline"
        report = compare_all(tmp_path)
        assert report.exit_code == 0

    def test_regression_fails_only_in_the_bad_direction(self, tmp_path):
        # "higher is better" metric dropping 20% regresses...
        verdicts = compare_history(
            self.history(tmp_path, [1.0, 1.01, 0.99, 0.8]))
        assert verdicts[0]["status"] == "regressed"
        # ...while the same drop on a "lower is better" metric improves.
        verdicts = compare_history(
            self.history(tmp_path / "flip", [1.0, 1.01, 0.99, 0.8],
                         direction="lower"))
        assert verdicts[0]["status"] == "improved"

    def test_noise_aware_tolerance_widens_for_wobbly_metrics(self, tmp_path):
        # Historic wobble ~ +-10% around 1.0: MAD-derived tolerance
        # (3 * 0.1) lets a 20% dip pass that the 5% floor would fail.
        records = self.history(tmp_path, [0.9, 1.1, 1.0, 0.9, 1.1, 0.8])
        (verdict,) = compare_history(records)
        assert verdict["tolerance"] > 0.05
        assert verdict["status"] == "ok"

    def test_stable_metric_is_held_to_the_floor(self, tmp_path):
        records = self.history(tmp_path, [1.0, 1.0001, 0.9999, 0.9])
        (verdict,) = compare_history(records)
        assert verdict["tolerance"] == pytest.approx(0.05, rel=0.1)
        assert verdict["status"] == "regressed"

    def test_missing_named_bench_fails_the_gate(self, tmp_path):
        self.history(tmp_path, [1.0])
        report = compare_all(tmp_path, benches=["b", "ghost"])
        assert report.missing == ["ghost"]
        assert report.exit_code == 1
        assert "MISSING" in report.render()


# ----------------------------------------------------------------------
# CLI surface: slo-report + bench-compare
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def served_trace(world, tmp_path_factory):
    """One preemption-heavy traced run exported to a Chrome trace file."""
    tel = Telemetry()
    stats, _ = run_preempting_engine(world, 7, telemetry=tel)
    path = tmp_path_factory.mktemp("insight") / "trace.json"
    path.write_text(chrome_trace_json(tel.tracer))
    return path, stats


class TestSloReportCli:
    def test_text_report_and_exit_zero(self, served_trace, capsys):
        path, _ = served_trace
        rc = cli_main(["slo-report", str(path), "--slo", "all:e2e:p99:5000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "SLO attainment" in out
        assert "latency attribution by cause" in out

    def test_missed_objective_exits_one(self, served_trace, capsys):
        path, _ = served_trace
        # Nothing finishes in a microsecond: the objective must miss.
        rc = cli_main(["slo-report", str(path),
                       "--slo", "all:e2e:p99:0.001"])
        capsys.readouterr()
        assert rc == 1

    def test_output_is_byte_identical_across_runs(self, served_trace,
                                                  tmp_path, capsys):
        path, _ = served_trace
        args = ["slo-report", str(path), "--slo", "all:ttft:p95:50",
                "--slo", "all:e2e:p99:5000"]
        outputs, docs = [], []
        for index in range(2):
            out_path = tmp_path / f"report{index}.json"
            assert cli_main(args + ["--out", str(out_path)]) == 0
            outputs.append(capsys.readouterr().out)
            docs.append(out_path.read_bytes())
        assert outputs[0] == outputs[1]
        assert docs[0] == docs[1]

    def test_json_document_matches_engine_slo(self, served_trace, world,
                                              tmp_path, capsys):
        # The trace-derived SLO verdicts equal the engine's own: the
        # trace carries enough to reproduce the live evaluation.
        path, _ = served_trace
        policy = SLOPolicy.from_specs(
            ["all:ttft:p95:50", "all:e2e:p99:400"])
        stats, _ = run_preempting_engine(world, 7, slo=policy)
        out_path = tmp_path / "slo.json"
        cli_main(["slo-report", str(path), "--slo", "all:ttft:p95:50",
                  "--slo", "all:e2e:p99:400", "--format", "json",
                  "--out", str(out_path)])
        capsys.readouterr()
        doc = json.loads(out_path.read_text())
        trace_objs = {o["objective"]: o for o in doc["slo"]["objectives"]}
        live_objs = {o["objective"]: o for o in stats.slo["objectives"]}
        for name, live in live_objs.items():
            for key in ("n_samples", "n_violations", "attained",
                        "measured_s"):
                assert trace_objs[name][key] == live[key], (name, key)

    def test_bad_spec_exits_two(self, served_trace, capsys):
        path, _ = served_trace
        rc = cli_main(["slo-report", str(path), "--slo", "nope"])
        assert rc == 2
        assert "slo-report:" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        rc = cli_main(["slo-report", str(tmp_path / "ghost.json"),
                       "--slo", "all:e2e:p99:100"])
        assert rc == 2
        assert "slo-report:" in capsys.readouterr().err


class TestBenchCompareCli:
    def seeded(self, tmp_path, values):
        for value in values:
            append_history(tmp_path, "tps",
                           {"m": metric(value, "tok/s", "higher")})
        return tmp_path

    def test_clean_history_passes(self, tmp_path, capsys):
        history = self.seeded(tmp_path, [100.0, 101.0, 99.0, 100.5])
        rc = cli_main(["bench-compare", "--history", str(history)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 regression(s)" in out

    def test_synthetic_regression_fails(self, tmp_path, capsys):
        history = self.seeded(tmp_path, [100.0, 101.0, 99.0, 70.0])
        rc = cli_main(["bench-compare", "--history", str(history)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "regressed" in out

    def test_json_out_and_missing_bench(self, tmp_path, capsys):
        history = self.seeded(tmp_path, [100.0])
        out_path = tmp_path / "compare.json"
        rc = cli_main(["bench-compare", "ghost", "tps",
                       "--history", str(history),
                       "--format", "json", "--out", str(out_path)])
        capsys.readouterr()
        assert rc == 1
        doc = json.loads(out_path.read_text())
        assert doc["missing"] == ["ghost"]
        assert doc["verdicts"][0]["status"] == "baseline"

    def test_checked_in_baselines_pass(self, capsys):
        # The real gate over the repo's committed history: the numbers
        # the smoke benches just published must not regress themselves.
        rc = cli_main(["bench-compare",
                       "--history", "benchmarks/results/history"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "0 regression(s)" in out

    def test_byte_identical_across_runs(self, tmp_path, capsys):
        history = self.seeded(tmp_path, [100.0, 99.0, 70.0])
        outputs = []
        for _ in range(2):
            cli_main(["bench-compare", "--history", str(history)])
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]


# ----------------------------------------------------------------------
# Trace-derived timelines (shared plumbing)
# ----------------------------------------------------------------------
class TestTimelines:
    def test_timelines_cover_every_record(self, world):
        tel = Telemetry()
        stats, _ = run_preempting_engine(world, 3, telemetry=tel)
        timelines = timelines_from_tracer(tel.tracer)
        assert sorted(timelines) == sorted(
            r.request.request_id for r in stats.records
        )
        for tl in timelines.values():
            assert tl.complete
