"""Shared fixtures: tiny model geometries and deterministic RNGs.

Tests use reduced geometries (4 layers, 32-128 dims) — every algorithm
under test is dimension-agnostic, and the paper-scale geometries are
exercised by the analytic-trace tests and the benchmark harness.
"""

import numpy as np
import pytest

from repro.config import ModelConfig, PruningConfig, QuantConfig
from repro.nn import TransformerModel, random_model


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_encoder_config():
    return ModelConfig(
        "tiny-encoder", n_layers=4, n_heads=4, d_model=32, d_ff=64,
        vocab_size=64, max_seq_len=128, causal=False,
    )


@pytest.fixture(scope="session")
def tiny_decoder_config():
    return ModelConfig(
        "tiny-decoder", n_layers=4, n_heads=4, d_model=32, d_ff=64,
        vocab_size=64, max_seq_len=128, causal=True,
    )


@pytest.fixture(scope="session")
def tiny_encoder(tiny_encoder_config):
    return TransformerModel(tiny_encoder_config, random_model(tiny_encoder_config, seed=7))


@pytest.fixture(scope="session")
def tiny_decoder(tiny_decoder_config):
    return TransformerModel(tiny_decoder_config, random_model(tiny_decoder_config, seed=8))


@pytest.fixture
def sample_tokens(rng, tiny_encoder_config):
    return rng.integers(0, tiny_encoder_config.vocab_size, size=20).tolist()


@pytest.fixture
def moderate_pruning():
    return PruningConfig(
        token_keep_final=0.5, head_keep_final=0.75, value_keep=0.9
    )


@pytest.fixture
def progressive_quant():
    return QuantConfig(msb_bits=6, lsb_bits=4, progressive=True, threshold=0.1)
