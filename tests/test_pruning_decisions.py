"""Unit tests for token/head pruning decisions and local value pruning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.head_pruning import prune_heads
from repro.core.token_pruning import prune_tokens
from repro.core.value_pruning import (
    apply_local_value_pruning,
    local_value_keep_indices,
)
from repro.nn.functional import softmax


class TestPruneTokens:
    def test_keeps_highest_scores(self):
        decision = prune_tokens(
            np.arange(5), np.array([0.1, 0.9, 0.5, 0.8, 0.2]), 2
        )
        assert np.array_equal(decision.kept_ids, [1, 3])
        assert np.array_equal(decision.pruned_ids, [0, 2, 4])

    def test_kept_rows_strictly_increasing(self, rng):
        decision = prune_tokens(np.arange(20), rng.random(20), 7)
        assert np.all(np.diff(decision.kept_rows) > 0)
        assert decision.n_kept == 7

    def test_protected_token_survives_zero_score(self):
        scores = np.array([0.0, 0.9, 0.8, 0.7])
        decision = prune_tokens(np.arange(4), scores, 2, protected_ids=[0])
        assert 0 in decision.kept_ids

    def test_protection_counts_against_budget(self):
        scores = np.array([0.0, 0.9, 0.8])
        decision = prune_tokens(np.arange(3), scores, 2, protected_ids=[0])
        assert decision.n_kept == 2
        assert set(decision.kept_ids) == {0, 1}

    def test_keep_all_when_target_at_or_above_live(self):
        decision = prune_tokens(np.arange(3), np.ones(3), 5)
        assert decision.n_kept == 3
        assert len(decision.pruned_ids) == 0

    def test_protection_can_exceed_target(self):
        decision = prune_tokens(
            np.arange(3), np.ones(3), 1, protected_ids=[0, 2]
        )
        assert decision.n_kept == 2

    def test_live_ids_need_not_start_at_zero(self):
        live = np.array([4, 9, 17])
        decision = prune_tokens(live, np.array([0.5, 0.1, 0.9]), 2)
        assert np.array_equal(decision.kept_ids, [4, 17])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            prune_tokens(np.arange(3), np.ones(2), 1)

    @given(st.integers(1, 40), st.integers(0, 45), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_budget_always_met(self, n_live, target, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random(n_live)
        decision = prune_tokens(np.arange(n_live), scores, target)
        assert decision.n_kept == min(max(target, 0), n_live)
        # kept + pruned partition the live set
        union = np.sort(np.concatenate([decision.kept_ids, decision.pruned_ids]))
        assert np.array_equal(union, np.arange(n_live))


class TestPruneHeads:
    def test_keeps_loudest(self):
        decision = prune_heads(np.arange(4), np.array([3.0, 9.0, 1.0, 5.0]), 2)
        assert np.array_equal(decision.kept_ids, [1, 3])

    def test_minimum_one_head(self):
        decision = prune_heads(np.arange(4), np.ones(4), 0)
        assert decision.n_kept == 1

    def test_no_op_when_target_covers_all(self):
        decision = prune_heads(np.arange(3), np.ones(3), 3)
        assert np.array_equal(decision.kept_ids, np.arange(3))
        assert len(decision.pruned_ids) == 0

    def test_respects_original_head_ids(self):
        live = np.array([1, 4, 7])
        decision = prune_heads(live, np.array([0.1, 0.9, 0.5]), 2)
        assert np.array_equal(decision.kept_ids, [4, 7])


class TestLocalValuePruning:
    def test_keep_count_ceil(self, rng):
        probs = softmax(rng.normal(size=(2, 3, 10)))
        kept = local_value_keep_indices(probs, keep_fraction=0.25)
        assert all(len(k) == 3 for k in kept)  # ceil(0.25 * 10)

    def test_keep_one_minimum(self, rng):
        probs = softmax(rng.normal(size=(1, 1, 4)))
        kept = local_value_keep_indices(probs, keep_fraction=0.01)
        assert len(kept[0]) == 1

    def test_per_head_independence(self):
        probs = np.zeros((2, 1, 4))
        probs[0, 0] = [0.7, 0.1, 0.1, 0.1]
        probs[1, 0] = [0.1, 0.1, 0.1, 0.7]
        kept = local_value_keep_indices(probs, keep_fraction=0.25)
        assert kept[0][0] == 0 and kept[1][0] == 3

    def test_keep_all_is_exact(self, rng):
        probs = softmax(rng.normal(size=(2, 4, 6)))
        values = rng.normal(size=(2, 6, 8))
        kept = local_value_keep_indices(probs, keep_fraction=1.0)
        outputs, counts = apply_local_value_pruning(probs, values, kept)
        assert np.allclose(outputs, probs @ values)
        assert np.all(counts == 6)

    def test_pruned_columns_do_not_contribute(self):
        probs = np.array([[[0.6, 0.4]]])
        values = np.array([[[1.0], [100.0]]])
        kept = [np.array([0])]
        outputs, counts = apply_local_value_pruning(probs, values, kept)
        assert outputs[0, 0, 0] == pytest.approx(0.6)
        assert counts[0] == 1

    def test_invalid_fraction_rejected(self, rng):
        probs = softmax(rng.normal(size=(1, 1, 4)))
        with pytest.raises(ValueError):
            local_value_keep_indices(probs, 0.0)
        with pytest.raises(ValueError):
            local_value_keep_indices(probs, 1.5)

    def test_error_dominated_by_small_probabilities(self, rng):
        """Dropping the lowest-probability V rows changes the output
        less than dropping random rows — the design rationale."""
        probs = softmax(rng.normal(0, 2.0, size=(1, 8, 32)))
        values = rng.normal(size=(1, 32, 16))
        exact = probs @ values
        kept = local_value_keep_indices(probs, keep_fraction=0.5)
        pruned, _ = apply_local_value_pruning(probs, values, kept)
        smart_err = np.abs(exact - pruned).mean()
        rng2 = np.random.default_rng(0)
        random_kept = [np.sort(rng2.choice(32, size=16, replace=False))]
        random_pruned, _ = apply_local_value_pruning(probs, values, random_kept)
        random_err = np.abs(exact - random_pruned).mean()
        assert smart_err < random_err
