"""Integration tests for the cycle-level SpAtten simulator."""

import numpy as np
import pytest

from repro.config import (
    BERT_BASE,
    GPT2_SMALL,
    PruningConfig,
    QuantConfig,
)
from repro.core.trace import AttentionTrace, dense_trace, spatten_trace
from repro.hardware import (
    SPATTEN_EIGHTH,
    SPATTEN_FULL,
    SpAttenE2ESimulator,
    SpAttenSimulator,
    area_model,
    fc_weight_bytes_per_block,
)

PRUNING = PruningConfig(token_keep_final=0.26, head_keep_final=0.83,
                        value_keep=0.85)
QUANT = QuantConfig(msb_bits=6, lsb_bits=4, progressive=True)


@pytest.fixture(scope="module")
def sim():
    return SpAttenSimulator()


def decode_only(trace):
    return AttentionTrace(
        trace.model, trace.original_length, trace.n_generated,
        trace.decode_steps, trace.quant, trace.pruning,
    )


class TestLatencyModel:
    def test_bert_is_compute_bound(self, sim):
        trace = spatten_trace(
            BERT_BASE, PruningConfig(token_keep_final=0.6), QUANT, 170
        )
        report = sim.run_trace(trace)
        assert report.bottleneck_histogram.get("compute", 0) > (
            report.bottleneck_histogram.get("dram", 0)
        )

    def test_gpt2_decode_is_memory_bound(self, sim):
        trace = spatten_trace(GPT2_SMALL, PRUNING, QUANT, 992, n_generate=8)
        report = sim.run_trace(decode_only(trace))
        assert report.bottleneck_histogram.get("dram", 0) > (
            report.bottleneck_histogram.get("compute", 0)
        )

    def test_pruning_reduces_cycles_and_dram(self, sim):
        dense = dense_trace(GPT2_SMALL, 512, n_generate=4)
        pruned = spatten_trace(GPT2_SMALL, PRUNING, None, 512, n_generate=4)
        dense_report = sim.run_trace(decode_only(dense))
        pruned_report = sim.run_trace(decode_only(pruned))
        assert pruned_report.total_cycles < dense_report.total_cycles
        assert pruned_report.dram_bytes < dense_report.dram_bytes

    def test_quantization_reduces_dram(self, sim):
        base = spatten_trace(GPT2_SMALL, PRUNING, None, 256, n_generate=4)
        quantized = spatten_trace(GPT2_SMALL, PRUNING, QUANT, 256, n_generate=4)
        assert (
            sim.run_trace(quantized).dram_bytes < sim.run_trace(base).dram_bytes
        )

    def test_more_work_more_cycles(self, sim):
        short = sim.run_trace(dense_trace(BERT_BASE, 32)).total_cycles
        long = sim.run_trace(dense_trace(BERT_BASE, 128)).total_cycles
        assert long > short

    def test_bert_effective_throughput_band(self, sim):
        """Fig. 18: SpAtten runs BERT near the compute roof — the
        dense-equivalent throughput must land in the paper's band."""
        from repro.eval.flops import trace_flops

        pruning = PruningConfig(token_keep_final=0.6, head_keep_final=0.75,
                                value_keep=0.9)
        quant = QuantConfig(msb_bits=8, lsb_bits=4, progressive=False)
        trace = spatten_trace(BERT_BASE, pruning, quant, 170)
        report = sim.run_trace(trace)
        dense_flops = trace_flops(dense_trace(BERT_BASE, 170)).attention
        dense_eq_tflops = dense_flops / report.latency_s / 1e12
        assert 0.8 < dense_eq_tflops < 3.2  # paper: 1.61

    def test_sram_spill_costs_extra_dram(self):
        tiny_sram = SPATTEN_FULL.with_overrides(
            key_sram_bytes=8 * 1024, value_sram_bytes=8 * 1024
        )
        trace = dense_trace(BERT_BASE, 512)
        spilled = SpAttenSimulator(tiny_sram).run_trace(trace)
        normal = SpAttenSimulator().run_trace(trace)
        assert spilled.dram_bytes > normal.dram_bytes

    def test_slow_topk_engine_becomes_bottleneck(self):
        """Fig. 20: with parallelism 1 the pruning top-k throttles the
        pipeline."""
        slow = SPATTEN_FULL.with_overrides(topk_parallelism=1)
        trace = spatten_trace(GPT2_SMALL, PRUNING, QUANT, 512, n_generate=4)
        slow_report = SpAttenSimulator(slow).run_trace(decode_only(trace))
        fast_report = SpAttenSimulator().run_trace(decode_only(trace))
        assert slow_report.total_cycles > 1.5 * fast_report.total_cycles


class TestEnergyModel:
    def test_energy_components_positive(self, sim):
        report = sim.run_trace(dense_trace(BERT_BASE, 64))
        assert report.energy.compute_logic_j > 0
        assert report.energy.sram_j > 0
        assert report.energy.dram_j > 0

    def test_power_in_paper_band(self, sim):
        """Table II: total power around 8.3 W."""
        trace = spatten_trace(GPT2_SMALL, PRUNING, QUANT, 992, n_generate=8)
        report = sim.run_trace(trace)
        assert 3.0 < report.average_power_w < 16.0

    def test_module_energy_reported(self, sim):
        report = sim.run_trace(dense_trace(BERT_BASE, 64))
        assert set(report.module_energy_pj) >= {
            "qk_module", "softmax", "probv_module", "topk_engines",
            "qkv_fetcher",
        }

    def test_qk_dominates_onchip_energy(self, sim):
        """Fig. 13(b): Q x K is the largest on-chip consumer."""
        trace = spatten_trace(BERT_BASE, PRUNING, QUANT, 170)
        report = sim.run_trace(trace)
        modules = report.module_energy_pj
        assert modules["qk_module"] == max(modules.values())


class TestScaledInstances:
    def test_eighth_scale_slower(self):
        trace = dense_trace(BERT_BASE, 128)
        full = SpAttenSimulator(SPATTEN_FULL).run_trace(trace)
        eighth = SpAttenSimulator(SPATTEN_EIGHTH).run_trace(trace)
        assert eighth.total_cycles > 4 * full.total_cycles

    def test_area_model_reference_point(self):
        assert area_model(SPATTEN_FULL).total_mm2 == pytest.approx(18.71, abs=0.01)

    def test_area_shrinks_with_scale(self):
        assert area_model(SPATTEN_EIGHTH).total_mm2 < area_model(SPATTEN_FULL).total_mm2

    def test_scaling_validation(self):
        with pytest.raises(ValueError):
            SPATTEN_FULL.scaled(0)


class TestE2ESimulator:
    def test_fc_weight_bytes(self):
        # GPT-2-Medium block: 4d^2 + 2*d*d_ff weights.
        from repro.config import GPT2_MEDIUM

        expected = (4 * 1024**2 + 2 * 1024 * 4096) * 8 / 8
        assert fc_weight_bytes_per_block(GPT2_MEDIUM, 8) == expected

    def test_fc_dominates_generation(self):
        """Table IV: FC takes >85% of SpAtten-e2e latency on GPT-2."""
        trace = spatten_trace(GPT2_SMALL, PRUNING, QUANT, 992, n_generate=8)
        report = SpAttenE2ESimulator(fc_bits=8).run_trace(decode_only(trace))
        assert report.fc_latency_fraction > 0.80

    def test_twelve_bit_slower_than_eight(self):
        trace = decode_only(
            spatten_trace(GPT2_SMALL, PRUNING, QUANT, 512, n_generate=4)
        )
        eight = SpAttenE2ESimulator(fc_bits=8).run_trace(trace)
        twelve = SpAttenE2ESimulator(fc_bits=12).run_trace(trace)
        assert twelve.latency_s > eight.latency_s

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            SpAttenE2ESimulator(fc_bits=7)

    def test_energy_additive(self):
        trace = decode_only(
            spatten_trace(GPT2_SMALL, PRUNING, QUANT, 256, n_generate=2)
        )
        report = SpAttenE2ESimulator(fc_bits=8).run_trace(trace)
        assert report.energy.total_j == pytest.approx(
            report.attention.energy.total_j + report.fc_energy.total_j
        )
