"""Unit tests for the pruning schedules."""

import numpy as np
import pytest

from repro.config import PruningConfig
from repro.core.schedule import (
    decode_token_target,
    effective_token_keep,
    head_keep_counts,
    head_keep_fractions,
    token_keep_counts,
    token_keep_fractions,
)


class TestTokenSchedule:
    def test_no_pruning_is_all_ones(self):
        fractions = token_keep_fractions(PruningConfig(), 12, 50)
        assert np.all(fractions == 1.0)

    def test_front_layers_unpruned(self):
        config = PruningConfig(token_keep_final=0.3, token_front_frac=0.25)
        fractions = token_keep_fractions(config, 12, 100)
        assert np.all(fractions[:3] == 1.0)
        assert fractions[-1] == pytest.approx(0.3)

    def test_fractions_non_increasing(self):
        config = PruningConfig(token_keep_final=0.2)
        fractions = token_keep_fractions(config, 24, 100)
        assert np.all(np.diff(fractions) <= 1e-12)

    def test_counts_non_increasing_and_floored(self):
        config = PruningConfig(token_keep_final=0.05, min_tokens=3)
        counts = token_keep_counts(config, 12, 40)
        assert np.all(np.diff(counts) <= 0)
        assert counts[-1] >= 3
        assert counts[0] == 40

    def test_counts_for_short_sentence(self):
        config = PruningConfig(token_keep_final=0.1, min_tokens=2)
        counts = token_keep_counts(config, 4, 3)
        assert np.all(counts >= 2)

    def test_single_layer_model(self):
        config = PruningConfig(token_keep_final=0.5)
        counts = token_keep_counts(config, 1, 10)
        assert len(counts) == 1


class TestLengthAdaptive:
    def test_reference_length_unchanged(self):
        config = PruningConfig(
            token_keep_final=0.5, length_adaptive=True, reference_length=128
        )
        assert effective_token_keep(config, 128) == pytest.approx(0.5)

    def test_longer_prunes_more(self):
        config = PruningConfig(
            token_keep_final=0.5, length_adaptive=True, reference_length=128
        )
        assert effective_token_keep(config, 512) < 0.5

    def test_shorter_prunes_less(self):
        config = PruningConfig(
            token_keep_final=0.5, length_adaptive=True, reference_length=128
        )
        assert effective_token_keep(config, 32) > 0.5

    def test_disabled_by_default(self):
        config = PruningConfig(token_keep_final=0.5)
        assert effective_token_keep(config, 512) == 0.5

    def test_floor_respected(self):
        config = PruningConfig(
            token_keep_final=0.1, length_adaptive=True,
            reference_length=16, min_tokens=2,
        )
        keep = effective_token_keep(config, 1024)
        assert keep * 1024 >= 2


class TestHeadSchedule:
    def test_front_fraction_is_larger_for_heads(self):
        """Paper: 30% front layers unpruned for heads vs 15% for tokens."""
        config = PruningConfig(token_keep_final=0.5, head_keep_final=0.5)
        token_f = token_keep_fractions(config, 12, 100)
        head_f = head_keep_fractions(config, 12)
        assert np.sum(head_f == 1.0) > np.sum(token_f == 1.0)

    def test_head_counts_floor_one(self):
        config = PruningConfig(head_keep_final=0.01)
        counts = head_keep_counts(config, 12, 12)
        assert counts[-1] >= 1

    def test_paper_fig1_progression(self):
        """12 -> ~10 -> ~8 heads as in Fig. 1 with keep=0.67."""
        config = PruningConfig(head_keep_final=8.0 / 12.0, head_front_frac=0.2)
        counts = head_keep_counts(config, 3, 12)
        assert counts[0] == 12
        assert counts[-1] == 8
        assert 8 <= counts[1] <= 12


class TestDecodeTarget:
    def test_tracks_total_length(self):
        config = PruningConfig(token_keep_final=0.25)
        assert decode_token_target(config, 0.25, 1000) == 250
        assert decode_token_target(config, 0.25, 1004) == 251

    def test_floor(self):
        config = PruningConfig(token_keep_final=0.25, min_tokens=4)
        assert decode_token_target(config, 0.01, 100) == 4

    def test_no_pruning_fraction(self):
        config = PruningConfig()
        assert decode_token_target(config, 1.0, 57) == 57
