"""Band tests for the performance experiment runners.

These assert the paper's qualitative claims: who wins, by roughly what
factor, and where the regimes change.  Absolute paper numbers are noted
in each experiment's table; here we enforce generous bands around them
(the substrate is a simulator, not the authors' testbed).
"""

import numpy as np
import pytest

from repro.eval import experiments as E


@pytest.fixture(scope="module")
def headline():
    return E.headline_reductions()


@pytest.fixture(scope="module")
def fig14():
    return E.fig14_speedup_energy()


class TestHeadline:
    def test_dram_reduction_band(self, headline):
        # Paper: 10.0x average DRAM-access reduction.
        assert 5.0 < headline.dram_reduction < 20.0

    def test_token_value_pruning_bands(self, headline):
        # Paper: 1.9x all-model average, 3.8x on GPT-2.
        assert 1.3 < headline.token_value_reduction_all < 2.8
        assert 2.8 < headline.token_value_reduction_gpt2 < 5.5

    def test_head_pruning_band(self, headline):
        # Paper: 1.1x.
        assert 1.03 < headline.head_reduction < 1.35

    def test_computation_reduction_band(self, headline):
        # Paper: 2.1x.
        assert 1.4 < headline.computation_reduction < 3.5

    def test_throughput_bands(self, headline):
        # Paper: 1.61 TFLOPS (BERT, dense-equivalent), 0.43 (GPT-2).
        assert 1.0 < headline.bert_tflops < 2.6
        assert 0.2 < headline.gpt2_tflops < 1.0

    def test_gpt2_prunes_more_than_bert(self, headline):
        gpt2 = [r for r in headline.per_benchmark if "gpt2" in r["benchmark"]]
        bert = [r for r in headline.per_benchmark if "bert" in r["benchmark"]]
        assert np.mean([r["token_value"] for r in gpt2]) > (
            np.mean([r["token_value"] for r in bert])
        )

    def test_all_thirty_covered(self, headline):
        assert len(headline.per_benchmark) == 30


class TestFig02:
    def test_attention_dominates_generation(self):
        result = E.fig02_latency_breakdown()
        # Paper: attention is ~half of end-to-end latency.
        for name, fraction in result.platform_attention_fraction.items():
            assert 0.35 < fraction < 0.75, name

    def test_gpu_matmul_share(self):
        result = E.fig02_latency_breakdown()
        shares = result.gpu_attention_shares
        matmul = shares["q_x_k_matmul"] + shares["prob_x_v_matmul"]
        assert matmul == pytest.approx(0.27, abs=0.01)


class TestFig14:
    PAPER = E.PAPER_FIG14_GEOMEANS

    @pytest.mark.parametrize("platform", list(PAPER))
    def test_speedup_geomeans_in_band(self, fig14, platform):
        paper_speedup, _ = self.PAPER[platform]
        measured = fig14.geomean_speedup[platform]
        assert paper_speedup / 2.5 < measured < paper_speedup * 2.5

    @pytest.mark.parametrize("platform", list(PAPER))
    def test_energy_geomeans_in_band(self, fig14, platform):
        _, paper_energy = self.PAPER[platform]
        measured = fig14.geomean_energy[platform]
        assert paper_energy / 3.0 < measured < paper_energy * 3.0

    def test_platform_ordering_preserved(self, fig14):
        s = fig14.geomean_speedup
        assert (s["raspberry-pi-4"] > s["jetson-nano"]
                > s["xeon-e5-2640"] > s["titan-xp"])

    def test_short_tasks_see_largest_speedups(self, fig14):
        xp = fig14.speedups["titan-xp"]
        assert xp["bert-base-cola"] > xp["bert-base-squad-v1"]

    def test_every_benchmark_wins(self, fig14):
        for platform_speedups in fig14.speedups.values():
            assert min(platform_speedups.values()) > 10.0


class TestTables:
    def test_table2_power_split(self):
        result = E.table2_power()
        # Paper: 1.36 / 1.24 / 5.71 / 8.30 W.
        assert 4.0 < result.total_w < 14.0
        assert result.dram_w > result.logic_w
        assert result.dram_w > result.sram_w
        assert 0.45 < result.dram_w / result.total_w < 0.85

    def test_fig13_area(self):
        result = E.fig13_breakdowns()
        total = sum(result.area_mm2.values())
        assert total == pytest.approx(18.71, abs=0.01)
        # Q x K and prob x V dominate area (paper: ~38% each).
        assert result.area_mm2["qk_module"] > 0.3 * total
        assert result.area_mm2["probv_module"] > 0.3 * total

    def test_table3_wins(self):
        result = E.table3_prior_art()
        # Paper: 1.6x/3.0x throughput, 1.4x/3.2x energy efficiency.
        assert result.throughput_vs_a3 > 1.0
        assert result.throughput_vs_mnnfast > 1.8
        assert result.energy_vs_a3 > 0.9
        assert result.energy_vs_mnnfast > 1.8

    def test_table4_shapes(self):
        result = E.table4_e2e_breakdown()
        # Paper: GPU 19.3/3.3 GFLOPs; attention ~48.6% of GPU latency
        # but only ~7.6% of SpAtten-e2e latency.
        assert result.fc_gflops == pytest.approx(19.3, rel=0.05)
        assert result.attn_gflops_dense == pytest.approx(3.3, rel=0.1)
        gpu_frac = result.gpu_attn_ms / (result.gpu_attn_ms + result.gpu_fc_ms)
        e2e_frac = result.e2e_attn_ms / (result.e2e_attn_ms + result.e2e_fc_ms)
        assert 0.35 < gpu_frac < 0.65
        assert e2e_frac < 0.15
        assert result.e2e_fc_ms < result.gpu_fc_ms / 5


class TestFig15:
    def test_e2e_speedup_bands(self):
        result = E.fig15_e2e_speedup()
        # Paper geomeans: 35x/24x over GPU, 122x/83x over CPU (8b/12b).
        assert 15 < result.geomeans[8]["titan-xp"] < 80
        assert 10 < result.geomeans[12]["titan-xp"] < 60
        assert 35 < result.geomeans[8]["xeon-e5-2640"] < 250
        assert result.geomeans[8]["titan-xp"] > result.geomeans[12]["titan-xp"]


class TestFig18:
    def test_roofline_regimes(self):
        result = E.fig18_roofline()
        by_label = {p.label: p for p in result.points}
        spatten_bert = by_label["SpAtten BERT"]
        spatten_gpt2 = by_label["SpAtten GPT-2"]
        gpu_bert = by_label["TITAN Xp BERT"]
        gpu_gpt2 = by_label["TITAN Xp GPT-2"]
        # SpAtten runs orders of magnitude above the GPU points.
        assert spatten_bert.achieved_flops > 30 * gpu_bert.achieved_flops
        assert spatten_gpt2.achieved_flops > 30 * gpu_gpt2.achieved_flops
        # BERT is compute-bound on SpAtten, GPT-2 memory-bound.
        from repro.baselines.roofline import classify

        assert classify(result.spatten_roofline, spatten_bert) == "compute-bound"
        assert classify(result.spatten_roofline, spatten_gpt2) == "memory-bound"
        # SpAtten sits near its roof; the GPU far below its own.
        assert spatten_bert.utilisation(result.spatten_roofline) > 0.3
        assert gpu_bert.utilisation(result.gpu_roofline) < 0.05
        # Paper: GPT-2 on the GPU has ~0.5 ops/byte intensity.
        assert gpu_gpt2.intensity_ops_per_byte == pytest.approx(0.5, abs=0.15)


class TestFig19:
    def test_parallelism_saturates(self):
        result = E.fig19_design_space()
        gflops = result.parallelism_gflops
        # Performance grows then saturates (paper: saturation at 16).
        assert gflops[1] < gflops[4] < gflops[16]
        assert gflops[32] == pytest.approx(gflops[16], rel=0.05)
        assert 2.5 < gflops[16] / gflops[1] < 12.0  # paper: ~4.6x span

    def test_sram_size_no_effect(self):
        result = E.fig19_design_space()
        values = list(result.sram_gflops.values())
        assert max(values) / min(values) < 1.05


class TestFig20:
    def test_waterfall_shape(self):
        result = E.fig20_speedup_breakdown()
        cumulative = result.cumulative_speedup
        assert cumulative[0] == 1.0
        # Datapath alone gives an order of magnitude (paper: 22.1x).
        assert 6.0 < cumulative[1] < 45.0
        # The full stack lands near the Fig. 14 GPT-2 geomean (paper 209x).
        assert 100.0 < cumulative[-1] < 600.0
        # The high-parallelism engine and quantization both help.
        assert cumulative[4] > cumulative[3]
        assert cumulative[6] > cumulative[5] > cumulative[4]


class TestTopkComparison:
    def test_engine_wins(self):
        result = E.topk_engine_comparison()
        # Paper: 1.4x throughput, 3.5x power advantage.
        assert result.throughput_ratio > 1.0
        assert result.power_ratio > 1.5


class TestHat:
    def test_codesign_dominates_big(self):
        result = E.fig16_hat_codesign()
        # Paper: 1.9x faster, 2.8x smaller at matched quality.
        assert result.speedup_vs_big > 1.5
        assert result.size_reduction_vs_big > 1.8

    def test_fig17_flops_shift(self):
        result = E.fig16_hat_codesign()
        base = result.base
        near_base = min(
            result.codesigned, key=lambda p: abs(p.bleu - base.bleu)
        )
        # Paper: co-designed has less FC, not less attention capacity.
        assert near_base.fc_flops < base.fc_flops
        assert near_base.attention_flops > 0.8 * base.attention_flops


class TestAblations:
    def test_component_isolation_matches_paper(self):
        result = E.ablation_pruning_components()
        # Paper's isolated GPT-2 contributions: token 3.8x, head 1.1x,
        # value pruning ~1.1x, progressive quantization 5.1x DRAM.
        assert result.dram_reduction["token pruning only"] == pytest.approx(3.8, rel=0.2)
        assert 1.05 < result.dram_reduction["head pruning only"] < 1.35
        assert 1.02 < result.dram_reduction["local value pruning only"] < 1.3
        assert result.dram_reduction["progressive quantization only"] == pytest.approx(5.1, rel=0.2)

    def test_components_compound(self):
        result = E.ablation_pruning_components()
        best_single = max(
            v for k, v in result.dram_reduction.items() if k != "everything"
        )
        assert result.dram_reduction["everything"] > 2 * best_single

    def test_gpu_token_pruning_modest(self):
        """Section V-B: token pruning helps general-purpose hardware far
        less than the dedicated design (up to 2.3x vs SpAtten's 162x)."""
        result = E.gpu_token_pruning()
        assert 1.0 <= result.geomean < 2.0
        assert max(result.speedups.values()) < 2.5
