"""GPT-style generation with cascade KV-cache pruning (the paper's
memory-bound case).

Generates from a topic-structured prompt with the full SpAtten stack —
cascade token pruning evicting KV-cache entries, local value pruning,
and progressive quantization — and reports the cache footprint, the
LSB-refetch rate, and the fidelity of the generated continuation.

Run:  python examples/generation_kv_pruning.py
"""

import numpy as np

from repro.config import GPT2_SMALL, PruningConfig, QuantConfig
from repro.core import SpAttenExecutor
from repro.eval import trace_dram
from repro.core.trace import dense_trace
from repro.workloads import (
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    lm_prompts,
    make_lm_corpus,
)


def main() -> None:
    vocab = build_vocabulary(size=512, n_classes=4, seed=0)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=6, d_model=128, n_heads=8,
        max_seq_len=256,
    )
    model, _ = build_task_model(config, vocab, "lm", seed=0)
    corpus = make_lm_corpus(vocab, n_tokens=2048, mean_segment=24, seed=2)
    prompt = lm_prompts(corpus, 96, 1, seed=3)[0]

    n_new = 16

    def make_sampler(seed: int = 0, temperature: float = 0.7):
        rng = np.random.default_rng(seed)

        def sample(logits: np.ndarray) -> int:
            z = logits / temperature
            z -= z.max()
            probs = np.exp(z) / np.exp(z).sum()
            return int(rng.choice(len(probs), p=probs))

        return sample

    dense = model.generate(prompt, n_new, sampler=make_sampler())

    executor = SpAttenExecutor(
        pruning=PruningConfig(
            token_keep_final=0.3, head_keep_final=0.83, value_keep=0.85
        ),
        quant=QuantConfig(msb_bits=6, lsb_bits=4, progressive=True),
    )
    pruned = model.generate(prompt, n_new, executor=executor,
                            sampler=make_sampler())

    print(f"prompt: ... {' '.join(vocab.decode(prompt[-12:]))}")
    print(f"dense continuation : {' '.join(vocab.decode(dense.token_ids))}")
    print(f"pruned continuation: {' '.join(vocab.decode(pruned.token_ids))}")
    agreement = np.mean(
        [a == b for a, b in zip(dense.token_ids, pruned.token_ids)]
    )
    print(f"token agreement: {agreement:.0%}\n")

    trace = executor.trace
    total_len = len(prompt) + n_new
    final_keys = trace.decode_steps[-1].n_keys
    print(f"KV cache: {final_keys}/{total_len} entries alive at the last step "
          f"({total_len / final_keys:.1f}x eviction)")
    print(f"LSB refetch rate: {trace.mean_lsb_fraction:.1%} of softmax rows "
          f"(paper average: 5.9%)")

    baseline = dense_trace(config, len(prompt), n_new)
    reduction = trace_dram(baseline, quant=None).total / trace_dram(trace).total
    print(f"attention DRAM traffic reduced {reduction:.1f}x vs fp32 dense")


if __name__ == "__main__":
    main()
