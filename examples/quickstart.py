"""Quickstart: run SpAtten's cascade pruning on a sentence.

Builds a small BERT-style model with realistic attention structure,
encodes a sentence densely and under the SpAtten executor, and shows
what survived, what it cost, and what the accelerator would make of it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import BERT_BASE, PruningConfig, QuantConfig
from repro.core import SpAttenExecutor, dense_trace
from repro.eval import trace_dram, trace_flops
from repro.hardware import SpAttenSimulator
from repro.workloads import accuracy_scale_config, build_task_model, build_vocabulary


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A model and a sentence.
    # ------------------------------------------------------------------
    vocab = build_vocabulary(size=512, n_classes=2, seed=0)
    config = accuracy_scale_config(
        BERT_BASE, len(vocab), n_layers=6, d_model=128, n_heads=8,
        max_seq_len=128,
    )
    model, _ = build_task_model(config, vocab, "classification", seed=0)

    sentence = "As a visual treat, the film is almost perfect."
    token_ids = vocab.encode(sentence, add_cls=True)
    print(f"input ({len(token_ids)} tokens): {sentence}")

    # ------------------------------------------------------------------
    # 2. Dense reference vs SpAtten (cascade pruning + quantization).
    # ------------------------------------------------------------------
    dense = model.encode(token_ids)

    executor = SpAttenExecutor(
        pruning=PruningConfig(
            token_keep_final=0.35,   # ~3x token pruning
            head_keep_final=0.75,    # 8 -> 6 heads
            value_keep=0.9,          # local value pruning
        ),
        quant=QuantConfig(msb_bits=8, lsb_bits=4, progressive=False),
    )
    pruned = model.encode(token_ids, executor=executor)

    survivors = " ".join(vocab.words[int(t)] for t in token_ids[pruned.positions])
    print(f"survivors after cascade pruning: {survivors}")

    drift = np.linalg.norm(pruned.pooled() - dense.pooled())
    scale = np.linalg.norm(dense.pooled())
    print(f"[CLS] feature drift: {drift / scale:.1%} of feature norm")

    # ------------------------------------------------------------------
    # 3. What the pruning is worth, in work terms.
    # ------------------------------------------------------------------
    trace = executor.trace
    baseline = dense_trace(config, len(token_ids))
    flops_saved = trace_flops(baseline).total / trace_flops(trace).total
    dram_saved = trace_dram(baseline, quant=None).total / trace_dram(trace).total
    print(f"computation reduced {flops_saved:.1f}x, DRAM traffic {dram_saved:.1f}x")

    # ------------------------------------------------------------------
    # 4. And on the accelerator.
    # ------------------------------------------------------------------
    sim = SpAttenSimulator()
    report_pruned = sim.run_trace(trace)
    report_dense = sim.run_trace(baseline)
    print(
        f"SpAtten latency: {report_pruned.latency_s * 1e6:.1f} us pruned vs "
        f"{report_dense.latency_s * 1e6:.1f} us dense "
        f"({report_dense.latency_s / report_pruned.latency_s:.1f}x)"
    )


if __name__ == "__main__":
    main()
