"""Sentiment classification under cascade token pruning (paper Fig. 1
and Fig. 22).

Trains a readout on a synthetic SST-2-style task, then sweeps the token
pruning ratio and shows (a) accuracy staying flat while most tokens are
removed, and (b) which words survive on real example sentences.

Run:  python examples/sentiment_token_pruning.py
"""

import numpy as np

from repro.config import BERT_BASE, PruningConfig
from repro.core import SpAttenExecutor
from repro.eval.accuracy import (
    classification_accuracy,
    extract_features,
    train_classification_readout,
)
from repro.workloads import (
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    make_classification_dataset,
)


def main() -> None:
    vocab = build_vocabulary(size=512, n_classes=2, seed=0)
    config = accuracy_scale_config(
        BERT_BASE, len(vocab), n_layers=6, d_model=128, n_heads=8,
        max_seq_len=256,
    )
    model, _ = build_task_model(config, vocab, "classification", seed=0)
    dataset = make_classification_dataset(
        vocab, "sst2-like", avg_len=25, n_train=96, n_test=64, seed=1
    )

    features = extract_features(model, dataset.train)
    labels = np.array([int(e.label) for e in dataset.train])
    readout = train_classification_readout(features, labels, 2)
    dense_acc = classification_accuracy(model, dataset, readout)
    print(f"dense accuracy: {dense_acc:.3f}\n")

    print("token pruning sweep (accuracy vs ratio):")
    for keep in (0.8, 0.6, 0.4, 0.25, 0.15, 0.10):
        factory = lambda keep=keep: SpAttenExecutor(
            PruningConfig(token_keep_final=keep, head_keep_final=0.75,
                          value_keep=0.9)
        )
        acc = classification_accuracy(model, dataset, readout, factory)
        print(f"  {1 / keep:4.1f}x pruning -> accuracy {acc:.3f} "
              f"({acc - dense_acc:+.3f})")

    print("\nwhat survives on a real sentence:")
    sentence = (
        "A wonderful movie, I am sure that you will remember it, you admire "
        "its conception and are able to resolve some of the confusions you "
        "had while watching it."
    )
    ids = vocab.encode(sentence, add_cls=True)
    for keep in (0.7, 0.4, 0.2):
        executor = SpAttenExecutor(
            PruningConfig(token_keep_final=keep, token_front_frac=0.0)
        )
        result = model.encode(ids, executor=executor)
        words = [
            vocab.words[int(ids[p])] for p in result.positions
            if ids[p] != vocab.cls_id
        ]
        print(f"  keep {keep:.0%}: {' '.join(words)}")


if __name__ == "__main__":
    main()
