"""Hardware-aware Transformer search for SpAtten-e2e (paper Fig. 16/17).

Runs the evolutionary search under a ladder of latency constraints and
prints the co-designed frontier against vanilla layer/width scaling —
showing how cheap attention shifts the optimum toward attention-heavy,
FFN-light architectures.

Run:  python examples/hat_codesign.py
"""

from repro.codesign import hat
from repro.eval.reporting import Table


def main() -> None:
    big = hat.evaluate_design(hat.TRANSFORMER_BIG)
    base = hat.evaluate_design(hat.TRANSFORMER_BASE)
    print(f"vanilla Transformer-Base: {base.latency_s * 1e3:.2f} ms, "
          f"BLEU {base.bleu:.2f}, {base.parameters / 1e6:.0f}M params")
    print(f"vanilla Transformer-Big : {big.latency_s * 1e3:.2f} ms, "
          f"BLEU {big.bleu:.2f}, {big.parameters / 1e6:.0f}M params\n")

    table = Table(
        "Co-designed frontier (evolutionary search on SpAtten-e2e latency)",
        ["constraint", "design", "latency ms", "BLEU", "params M",
         "attn MFLOPs", "FC GFLOPs"],
    )
    for idx, fraction in enumerate((0.10, 0.16, 0.22, 0.30, 0.38, 0.46, 0.55)):
        constraint = big.latency_s * fraction
        point = hat.evolutionary_search(constraint, seed=idx)
        table.add_row(
            f"{constraint * 1e3:.2f}ms",
            point.design.label,
            f"{point.latency_s * 1e3:.2f}",
            f"{point.bleu:.2f}",
            f"{point.parameters / 1e6:.1f}",
            f"{point.attention_flops / 1e6:.1f}",
            f"{point.fc_flops / 1e9:.2f}",
        )
    table.add_note("paper: the champion is 1.9x faster and 2.8x smaller than "
                   "Transformer-Big at matched BLEU")
    print(table)


if __name__ == "__main__":
    main()
