"""Accelerator performance study on the paper's 30 benchmarks.

Simulates SpAtten on every registry benchmark, compares against the
four general-purpose platforms, and prints the roofline placement —
a condensed tour of Fig. 14 and Fig. 18.

Run:  python examples/accelerator_study.py
"""

from repro.baselines import TITAN_XP, XEON, attention_cost
from repro.eval.experiments import (
    benchmark_traces,
    fig18_roofline,
    spatten_benchmark_report,
)
from repro.eval.reporting import Table, geometric_mean
from repro.workloads import all_benchmarks


def main() -> None:
    table = Table(
        "SpAtten vs GPU/CPU on the 30 paper benchmarks (attention layers)",
        ["benchmark", "SpAtten", "vs TITAN Xp", "vs Xeon"],
    )
    speedups_gpu, speedups_cpu = [], []
    for bench in all_benchmarks():
        report = spatten_benchmark_report(bench)
        _, dense = benchmark_traces(bench)
        generative = bench.is_generative
        gpu = attention_cost(TITAN_XP, dense, include_summarize=not generative,
                             include_decode=generative)
        cpu = attention_cost(XEON, dense, include_summarize=not generative,
                             include_decode=generative)
        s_gpu = gpu.latency_s / report.latency_s
        s_cpu = cpu.latency_s / report.latency_s
        speedups_gpu.append(s_gpu)
        speedups_cpu.append(s_cpu)
        table.add_row(
            bench.key,
            f"{report.latency_s * 1e3:.3f}ms",
            f"{s_gpu:.0f}x",
            f"{s_cpu:.0f}x",
        )
    table.add_row(
        "GEOMEAN", "",
        f"{geometric_mean(speedups_gpu):.0f}x",
        f"{geometric_mean(speedups_cpu):.0f}x",
    )
    table.add_note("paper geomeans: 162x over TITAN Xp, 347x over Xeon")
    print(table)
    print()
    print(fig18_roofline().table)


if __name__ == "__main__":
    main()
