#!/usr/bin/env bash
# Tier-1 verification: the full unit/integration suite plus fast
# serving/cluster smoke benchmarks (marker: smoke).  Extra args pass
# through to the first pytest invocation, e.g.
# `scripts/run_tier1.sh -k serving`.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Static-analysis gate: the tree must carry zero unsuppressed lint
# violations (determinism, clock-domain, accounting, drift rules —
# see the "Static analysis" section of the serving guide).  The JSON
# report lands in benchmarks/results/ so CI uploads it as an artifact.
mkdir -p benchmarks/results
python -m repro.cli lint --out benchmarks/results/lint_report.json

python -m pytest -x -q "$@"
python -m pytest -q -m smoke tests/test_serving.py \
    tests/test_packed_decode.py \
    tests/test_cluster.py \
    tests/test_faults.py \
    benchmarks/bench_serving_throughput.py \
    benchmarks/bench_decode_step.py \
    benchmarks/bench_numerics.py \
    benchmarks/bench_cluster_scaling.py \
    benchmarks/bench_preemption.py \
    benchmarks/bench_chaos.py

# Traced serving smoke: one fully-instrumented run through the CLI,
# archived under benchmarks/results/ so CI uploads the trace and
# metrics artifacts, then rendered by trace-report as a format check.
mkdir -p benchmarks/results/telemetry
python -m repro.cli serve --mode spatten --requests 8 --layers 2 \
    --audit-every 4 --profile \
    --slo all:ttft:p95:50 --slo all:e2e:p99:400 \
    --trace-out benchmarks/results/telemetry/serve_trace.json \
    --metrics-out benchmarks/results/telemetry/serve_metrics.jsonl \
    --prom-out benchmarks/results/telemetry/serve_metrics.prom \
    --stats-json benchmarks/results/telemetry/serve_stats.json
python -m repro.cli trace-report \
    benchmarks/results/telemetry/serve_trace.json

# SLO + latency-attribution report over the same trace (repro.insight):
# deterministic text + JSON artifacts, exit 1 on a missed objective.
python -m repro.cli slo-report \
    benchmarks/results/telemetry/serve_trace.json \
    --slo all:ttft:p95:50 --slo all:e2e:p99:400 \
    --out benchmarks/results/telemetry/slo_report.json \
    | tee benchmarks/results/telemetry/slo_report.txt

# Perf-regression gate: judge each smoke bench's newest history record
# (appended by the smoke run above) against the median of its earlier
# ones; noise-aware thresholds, exit 1 on regression.
python -m repro.cli bench-compare \
    --history benchmarks/results/history \
    --out benchmarks/results/bench_compare.json
