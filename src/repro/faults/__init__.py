"""repro.faults — deterministic chaos engineering for the fleet.

Everything here runs on the **simulated clock**: fault schedules are
plain data (:class:`FaultPlan`), generated from a seeded
``numpy.random.Generator`` or scripted by hand, validated once
(:func:`validate_fault_events`), and fired by the cluster loop through
a :class:`FaultInjector`.  Because injection, detection
(:class:`HeartbeatMonitor` + KV-page checksums), and repair (recovery,
quarantine-and-recompute, retries) are all deterministic functions of
the (plan seed, trace seed) pair, a chaos run replays byte-for-byte —
the property the seed-sweep soak in ``benchmarks/bench_chaos.py``
asserts.

See the "Fault tolerance & chaos testing" section of the serving guide
(:mod:`repro.serving`) for the fault taxonomy, the retry/backoff
semantics, and the graceful-degradation ladder.
"""

from .heartbeat import HeartbeatMonitor
from .plan import (
    CHAOS_PROFILES,
    FAULT_KINDS,
    ChaosProfile,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    validate_fault_events,
)

__all__ = [
    "CHAOS_PROFILES",
    "FAULT_KINDS",
    "ChaosProfile",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "HeartbeatMonitor",
    "validate_fault_events",
]
