"""Seeded fault plans for the simulated-clock chaos engine.

A :class:`FaultPlan` is a validated, time-ordered list of
:class:`FaultEvent` records — replica crashes and recoveries, transient
straggler windows, and KV-page corruption strikes — either scripted by
hand or generated deterministically from a seed with
:meth:`FaultPlan.generate`.  The :class:`FaultInjector` hands the
ordered events to :class:`repro.cluster.ClusterEngine`, which fires
each one on the simulated clock, so a (seed, profile) pair replays to
byte-identical fleet behaviour.

Event taxonomy (``FaultEvent.kind``):

``drain``
    Graceful retirement: the replica stops taking traffic, in-flight
    work is requeued, the shard leaves the ledger clean.
``fail``
    Crash: the shard's pages are torn down immediately and in-flight
    work is requeued elsewhere.
``recover``
    Rejoin: a previously drained/failed replica re-registers its
    (empty) shard with the ledger and becomes routable again.
``slow_start`` / ``slow_end``
    A transient straggler window: every cost-model step time on the
    replica is multiplied by ``factor`` until the matching
    ``slow_end``.  Token streams are unaffected — only the clock.
``corrupt``
    Flip a stored KV-page checksum on the replica's shard.  The victim
    sequence/page is chosen deterministically from the event's
    ``u_seq``/``u_page`` coordinates over the pages resident when the
    event fires (a no-op on an empty shard).

Sequencing rules (enforced by :func:`validate_fault_events`): a replica
must be active to ``drain``/``fail`` and retired to ``recover`` —
``drain -> recover -> fail`` is legal, overlapping retire events on one
replica are not — and straggler windows must be properly bracketed and
non-overlapping per replica.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "CHAOS_PROFILES",
    "ChaosProfile",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "validate_fault_events",
]


FAULT_KINDS = ("drain", "fail", "recover", "slow_start", "slow_end",
               "corrupt")

# Deterministic tiebreak for events sharing a timestamp on one replica:
# close out the previous episode (recover / slow_end) before opening a
# new one, and strike corruption before the replica retires.
_KIND_ORDER = {
    "recover": 0, "slow_end": 1, "corrupt": 2,
    "slow_start": 3, "drain": 4, "fail": 5,
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        time: simulated-clock firing time (seconds, >= 0).
        replica: target replica index.
        kind: one of :data:`FAULT_KINDS`.
        factor: slowdown multiplier (``slow_start`` only, >= 1).
        u_seq: victim-sequence coordinate in ``[0, 1)`` (``corrupt``).
        u_page: victim-page coordinate in ``[0, 1)`` (``corrupt``).
    """

    time: float
    replica: int
    kind: str
    factor: float = 1.0
    u_seq: float = 0.0
    u_page: float = 0.0

    def sort_key(self) -> Tuple[float, int, int]:
        # .get so an unknown kind still sorts (validation rejects it
        # with a proper message instead of a KeyError mid-sort).
        return (self.time, self.replica, _KIND_ORDER.get(self.kind, -1))


def validate_fault_events(
    events: Iterable[FaultEvent], n_replicas: int
) -> List[FaultEvent]:
    """Validate and time-order a fault schedule.

    Enforces the per-replica event-sequence rules documented in the
    module docstring and returns the events sorted by
    ``(time, replica, kind)``.  Raises ``ValueError`` on any illegal
    schedule — unknown replica, negative time, overlapping retire
    events without an intervening ``recover``, a ``recover`` while the
    replica is still active, or an unbracketed straggler window.
    """
    ordered = sorted(events, key=FaultEvent.sort_key)
    retired: Dict[int, bool] = {}
    slowed: Dict[int, bool] = {}
    for event in ordered:
        if event.kind not in _KIND_ORDER:
            raise ValueError(
                f"unknown fault kind {event.kind!r}; choose from "
                f"{FAULT_KINDS}"
            )
        if not 0 <= event.replica < n_replicas:
            raise ValueError(
                f"unknown replica {event.replica} in fault event "
                f"(fleet has {n_replicas})"
            )
        if event.time < 0:
            raise ValueError("fault event times must be non-negative")
        idx = event.replica
        if event.kind in ("drain", "fail"):
            if retired.get(idx):
                raise ValueError(
                    f"overlapping retire events on replica {idx}: it is "
                    f"already drained/failed at t={event.time:.6g}; "
                    "schedule a recover first"
                )
            retired[idx] = True
        elif event.kind == "recover":
            if not retired.get(idx):
                raise ValueError(
                    f"recover on replica {idx} at t={event.time:.6g} "
                    "while it is still active"
                )
            retired[idx] = False
        elif event.kind == "slow_start":
            if not event.factor >= 1.0:
                raise ValueError("slow_start factor must be >= 1")
            if slowed.get(idx):
                raise ValueError(
                    f"overlapping straggler windows on replica {idx} "
                    f"at t={event.time:.6g}"
                )
            slowed[idx] = True
        elif event.kind == "slow_end":
            if not slowed.get(idx):
                raise ValueError(
                    f"slow_end on replica {idx} at t={event.time:.6g} "
                    "without a matching slow_start"
                )
            slowed[idx] = False
        else:  # corrupt
            if not (0.0 <= event.u_seq < 1.0 and 0.0 <= event.u_page < 1.0):
                raise ValueError(
                    "corrupt event coordinates must lie in [0, 1)"
                )
    return ordered


@dataclass(frozen=True)
class ChaosProfile:
    """Fault intensities for one cell of the chaos sweep.

    Rates are expected event counts *per replica* over the plan
    horizon; durations are fractions of the horizon.
    """

    name: str
    crash_cycles: float
    downtime_frac: Tuple[float, float]
    straggler_windows: float
    slowdown: Tuple[float, float]
    window_frac: Tuple[float, float]
    corruptions: float
    heartbeat_timeout_s: float


CHAOS_PROFILES = {
    "light": ChaosProfile(
        name="light", crash_cycles=0.25, downtime_frac=(0.05, 0.1),
        straggler_windows=0.5, slowdown=(2.0, 3.0),
        window_frac=(0.05, 0.1), corruptions=0.5,
        heartbeat_timeout_s=0.05,
    ),
    "moderate": ChaosProfile(
        name="moderate", crash_cycles=0.75, downtime_frac=(0.08, 0.16),
        straggler_windows=1.0, slowdown=(3.0, 5.0),
        window_frac=(0.08, 0.16), corruptions=1.5,
        heartbeat_timeout_s=0.05,
    ),
    "heavy": ChaosProfile(
        name="heavy", crash_cycles=1.5, downtime_frac=(0.1, 0.25),
        straggler_windows=2.0, slowdown=(4.0, 8.0),
        window_frac=(0.1, 0.25), corruptions=3.0,
        heartbeat_timeout_s=0.05,
    ),
}


@dataclass(frozen=True)
class FaultPlan:
    """A validated, time-ordered fault schedule for one cluster run."""

    n_replicas: int
    events: Tuple[FaultEvent, ...] = ()
    seed: Optional[int] = None
    profile: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        ordered = validate_fault_events(self.events, self.n_replicas)
        object.__setattr__(self, "events", tuple(ordered))

    @classmethod
    def generate(
        cls,
        seed: int,
        n_replicas: int,
        horizon_s: float,
        profile: str = "moderate",
    ) -> "FaultPlan":
        """Deterministically generate a plan from a seeded Generator.

        Per replica, crash/recover cycles and straggler windows are
        laid out on a forward time walk (so episodes never overlap and
        the schedule is always legal), and corruption strikes are
        scattered uniformly.  Identical ``(seed, n_replicas,
        horizon_s, profile)`` always yields an identical plan.
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if profile not in CHAOS_PROFILES:
            raise ValueError(
                f"unknown chaos profile {profile!r}; choose from "
                f"{sorted(CHAOS_PROFILES)}"
            )
        prof = CHAOS_PROFILES[profile]
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        for idx in range(n_replicas):
            episodes = (
                ["crash"] * int(rng.poisson(prof.crash_cycles))
                + ["straggle"] * int(rng.poisson(prof.straggler_windows))
            )
            episodes = [episodes[i] for i in rng.permutation(len(episodes))]
            cursor = horizon_s * float(rng.uniform(0.05, 0.25))
            for episode in episodes:
                start = cursor + horizon_s * float(rng.uniform(0.02, 0.1))
                if episode == "crash":
                    lo, hi = prof.downtime_frac
                    duration = horizon_s * float(rng.uniform(lo, hi))
                    events.append(FaultEvent(start, idx, "fail"))
                    events.append(
                        FaultEvent(start + duration, idx, "recover")
                    )
                else:
                    lo, hi = prof.window_frac
                    duration = horizon_s * float(rng.uniform(lo, hi))
                    factor = float(rng.uniform(*prof.slowdown))
                    events.append(
                        FaultEvent(start, idx, "slow_start", factor=factor)
                    )
                    events.append(
                        FaultEvent(start + duration, idx, "slow_end")
                    )
                cursor = start + duration
            for _ in range(int(rng.poisson(prof.corruptions))):
                events.append(FaultEvent(
                    horizon_s * float(rng.uniform(0.05, 0.9)), idx,
                    "corrupt",
                    u_seq=float(rng.uniform()),
                    u_page=float(rng.uniform()),
                ))
        return cls(
            n_replicas=n_replicas, events=tuple(events), seed=seed,
            profile=profile,
        )

    @property
    def heartbeat_timeout_s(self) -> Optional[float]:
        if self.profile is None:
            return None
        return CHAOS_PROFILES[self.profile].heartbeat_timeout_s

    def counts(self) -> Dict[str, int]:
        """Event counts by kind (for reports and plan summaries)."""
        out = {kind: 0 for kind in FAULT_KINDS}
        for event in self.events:
            out[event.kind] += 1
        return out


class FaultInjector:
    """Hands a validated fault schedule to the cluster loop in order.

    Thin consumable view over the merged per-run schedule (scripted
    ``drain_at``/``fail_at``/``recover_at`` events plus an optional
    generated :class:`FaultPlan`); the cluster fires :meth:`pop` when
    the simulated clock reaches :attr:`next_time`.
    """

    def __init__(
        self, events: Iterable[FaultEvent], n_replicas: int
    ) -> None:
        self._events = deque(validate_fault_events(events, n_replicas))

    @property
    def next_time(self) -> float:
        return self._events[0].time if self._events else math.inf

    def pop(self) -> FaultEvent:
        return self._events.popleft()

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)
