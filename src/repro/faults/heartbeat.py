"""Heartbeat-based failure detection on the simulated clock.

Replicas do not send literal heartbeats: in a discrete-event fleet the
only evidence a replica is making progress is the steps it completes.
:class:`HeartbeatMonitor` records each replica's latest step window and
answers "when was this replica last seen healthy as of time ``t``?" —
if the step finished by ``t`` the answer is its end, otherwise the
replica has been stuck *inside* the step since its start (the straggler
signature).  A replica whose last-seen time trails the clock by more
than ``timeout_s`` is *suspected*; :class:`repro.cluster.ClusterRouter`
opens its circuit breaker for suspected replicas so new work routes
around them until they complete a step again.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["HeartbeatMonitor"]


class HeartbeatMonitor:
    """Tracks per-replica liveness from completed step windows."""

    def __init__(self, timeout_s: float) -> None:
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.timeout_s = float(timeout_s)
        self._last_step: Dict[int, Tuple[float, float]] = {}

    def note_alive(self, replica: int, t: float) -> None:
        """Record an administrative liveness proof (start, rejoin)."""
        self._last_step[replica] = (t, t)

    def note_step(self, replica: int, start: float, end: float) -> None:
        """Record the replica's most recent engine step window."""
        self._last_step[replica] = (start, end)

    def last_seen(self, replica: int, t: float) -> Optional[float]:
        """Latest time <= ``t`` the replica demonstrably made progress."""
        window = self._last_step.get(replica)
        if window is None:
            return None
        start, end = window
        return end if end <= t else start

    def suspected(self, replica: int, t: float) -> bool:
        """True when the replica has been silent for over ``timeout_s``.

        Only meaningful for replicas that currently hold work — an
        idle replica is silent because it has nothing to do, so the
        caller gates this check on ``engine.has_work``.
        """
        seen = self.last_seen(replica, t)
        return seen is not None and (t - seen) > self.timeout_s
