"""FLOPs accounting over workload traces.

Counts multiply-accumulates as 2 FLOPs, matching the paper's convention
(1024 multipliers @ 1 GHz => 2 TFLOPS computation roof, Section V-C).

The breakdown separates the categories the paper reports:

* ``attention`` — Q x K^T and attention_prob x V (this is what Table IV
  calls "Attn GFLOPs": for GPT-2-Medium generating 32 tokens from a
  992-token prompt it evaluates to ~3.3 GFLOPs dense, matching the
  paper's number exactly);
* ``fc`` — QKV projections, the attention output FC, and the FFN
  (Table IV's "FC GFLOPs", ~19.3 for the same workload);
* ``softmax`` — exponentials/normalisation, reported separately since
  SpAtten executes it on its float pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ModelConfig
from ..core.trace import AttentionTrace, LayerStep

__all__ = ["FlopsBreakdown", "step_flops", "trace_flops"]

#: FLOPs charged per softmax element (exp Taylor pipeline + accumulate +
#: divide, Section V-A).
SOFTMAX_FLOPS_PER_ELEMENT = 5


@dataclass
class FlopsBreakdown:
    """FLOPs split by operation category."""

    qkv_fc: float = 0.0
    attention_qk: float = 0.0
    softmax: float = 0.0
    prob_v: float = 0.0
    out_fc: float = 0.0
    ffn: float = 0.0

    @property
    def attention(self) -> float:
        """The paper's "attention FLOPs": QK + prob x V."""
        return self.attention_qk + self.prob_v

    @property
    def fc(self) -> float:
        """The paper's "FC FLOPs": projections + output FC + FFN."""
        return self.qkv_fc + self.out_fc + self.ffn

    @property
    def total(self) -> float:
        return self.attention + self.fc + self.softmax

    def __add__(self, other: "FlopsBreakdown") -> "FlopsBreakdown":
        return FlopsBreakdown(
            qkv_fc=self.qkv_fc + other.qkv_fc,
            attention_qk=self.attention_qk + other.attention_qk,
            softmax=self.softmax + other.softmax,
            prob_v=self.prob_v + other.prob_v,
            out_fc=self.out_fc + other.out_fc,
            ffn=self.ffn + other.ffn,
        )


def step_flops(step: LayerStep, model: ModelConfig) -> FlopsBreakdown:
    """FLOPs of one attention execution plus its block's FC work.

    Head pruning shrinks the projected width (pruned heads' Q/K/V are
    never computed, Section III-B); token pruning shrinks the row count
    everywhere, including the FFN (Section III-A).
    """
    head_dim = model.head_dim
    live_width = step.n_heads * head_dim
    d_model = model.d_model
    # K/V are projected only for tokens entering this layer: the whole
    # live sentence in summarization, the single new token in decode
    # (cached keys were projected in earlier steps).
    n_new_kv = step.n_queries if step.stage == "summarize" else 1

    qkv_fc = (
        2.0 * step.n_queries * d_model * live_width  # Q
        + 2.0 * 2.0 * n_new_kv * d_model * live_width  # K and V
    )
    out_fc = 2.0 * step.n_queries * live_width * d_model
    attention_qk = 2.0 * step.n_heads * step.n_queries * step.n_keys * head_dim
    softmax = float(
        SOFTMAX_FLOPS_PER_ELEMENT * step.n_heads * step.n_queries * step.n_keys
    )
    prob_v = 2.0 * step.n_heads * step.n_queries * step.n_values * head_dim
    ffn = 2.0 * 2.0 * step.n_queries * d_model * model.d_ff
    return FlopsBreakdown(
        qkv_fc=qkv_fc,
        attention_qk=attention_qk,
        softmax=softmax,
        prob_v=prob_v,
        out_fc=out_fc,
        ffn=ffn,
    )


def trace_flops(
    trace: AttentionTrace,
    include_summarize: bool = True,
    include_decode: bool = True,
) -> FlopsBreakdown:
    """Aggregate FLOPs over a trace.

    The paper's generative-model numbers (Table IV, Fig. 15) count the
    generation stage only ("generation takes the largest part of overall
    latency"); pass ``include_summarize=False`` to match.
    """
    total = FlopsBreakdown()
    for step in trace.steps:
        if step.stage == "summarize" and not include_summarize:
            continue
        if step.stage == "decode" and not include_decode:
            continue
        total = total + step_flops(step, trace.model)
    return total
