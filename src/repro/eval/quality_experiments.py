"""Quality-side experiment runners: real (accuracy-scale) models are
executed under the SpAtten executor to reproduce the paper's accuracy,
quantization-error, and interpretability results.

Covered here: Fig. 1 (cascade pruning across layers), Fig. 7
(quantization error vs attention-probability dominance), Fig. 21
(pruning-ratio / accuracy trade-offs), Fig. 22 (token-pruning
visualisations), and Fig. 23 (per-layer cumulative importance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import BERT_BASE, GPT2_SMALL, PruningConfig, QuantConfig
from ..core import SpAttenExecutor
from ..core.quantization import LinearQuantizer, attention_prob_error
from ..eval.flops import step_flops, trace_flops
from ..nn import DenseExecutor, TransformerModel
from ..workloads import (
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    lm_prompts,
    make_classification_dataset,
    make_lm_corpus,
)
from .accuracy import (
    classification_accuracy,
    extract_features,
    lm_fidelity,
    train_classification_readout,
)
from .reporting import Table, fmt_ratio

__all__ = [
    "classification_world",
    "lm_world",
    "fig01_cascade_pruning",
    "fig07_quant_error",
    "fig21_accuracy_tradeoff",
    "fig22_visualization",
    "fig23_importance_map",
    "PAPER_SENTENCES",
]


# ----------------------------------------------------------------------
# Cached accuracy-scale worlds (vocab + model + dataset + readout)
# ----------------------------------------------------------------------
@dataclass
class ClassificationWorld:
    vocab: object
    model: TransformerModel
    dataset: object
    readout: object
    dense_accuracy: float
    head_strengths: np.ndarray


@lru_cache(maxsize=4)
def classification_world(
    avg_len: int = 25,
    n_layers: int = 6,
    n_train: int = 96,
    n_test: int = 64,
    signal_purity: float = 0.75,
    seed: int = 0,
) -> ClassificationWorld:
    """SST-2/CoLA-style world with a trained readout (cached)."""
    vocab = build_vocabulary(size=512, n_classes=2, seed=seed)
    config = accuracy_scale_config(
        BERT_BASE, len(vocab), n_layers=n_layers, d_model=128, n_heads=8,
        max_seq_len=max(4 * avg_len, 128),
    )
    model, info = build_task_model(config, vocab, "classification", seed=seed)
    dataset = make_classification_dataset(
        vocab, f"cls-len{avg_len}", avg_len=avg_len,
        n_train=n_train, n_test=n_test, signal_purity=signal_purity,
        seed=seed + 1,
    )
    features = extract_features(model, dataset.train)
    labels = np.array([int(e.label) for e in dataset.train])
    readout = train_classification_readout(features, labels, 2, seed=seed)
    dense_acc = classification_accuracy(model, dataset, readout)
    return ClassificationWorld(
        vocab, model, dataset, readout, dense_acc, info.head_strengths
    )


@dataclass
class LmWorld:
    vocab: object
    model: TransformerModel
    prompts: List[np.ndarray]


@lru_cache(maxsize=4)
def lm_world(
    prompt_len: int = 96,
    n_prompts: int = 16,
    n_layers: int = 6,
    mean_segment: int = 24,
    seed: int = 0,
) -> LmWorld:
    """PTB/WikiText-style LM world (cached)."""
    vocab = build_vocabulary(size=512, n_classes=4, seed=seed)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=n_layers, d_model=128, n_heads=8,
        max_seq_len=max(2 * prompt_len, 256),
    )
    model, _ = build_task_model(config, vocab, "lm", seed=seed)
    corpus = make_lm_corpus(
        vocab, n_tokens=6144, mean_segment=mean_segment, seed=seed + 2
    )
    prompts = lm_prompts(corpus, prompt_len, n_prompts, seed=seed + 3)
    return LmWorld(vocab, model, prompts)


# ----------------------------------------------------------------------
# Fig. 1 — cascade pruning across layers
# ----------------------------------------------------------------------
@dataclass
class Fig01Result:
    sentence: List[str]
    tokens_per_layer: List[int]
    heads_per_layer: List[int]
    compute_fraction_per_layer: List[float]
    surviving_words: List[str]
    predicted_label: int
    dense_label: int
    table: Table


def fig01_cascade_pruning(seed: int = 0) -> Fig01Result:
    """Cascade pruning on an SST-2-style sentence (paper Fig. 1).

    The paper prunes "As a visual treat, the film is almost perfect."
    from 11 tokens to 6 to 2 ('film perfect') and 12 heads to 10 to 8,
    with per-layer computation dropping to 38% then 12%.
    """
    world = classification_world(avg_len=25, seed=seed)
    sentence = "As a visual treat, the film is almost perfect."
    ids = np.concatenate([[world.vocab.cls_id], world.vocab.encode(sentence)])

    pruning = PruningConfig(
        token_keep_final=2.0 / len(ids), head_keep_final=0.67,
        token_front_frac=0.05, head_front_frac=0.2, min_tokens=2,
    )
    executor = SpAttenExecutor(pruning=pruning)
    result = world.model.encode(ids, executor=executor)
    dense_result = world.model.encode(ids)

    steps = executor.trace.steps
    # Per-layer compute fraction relative to an unpruned layer.
    from ..core.trace import dense_trace as _dense_trace

    dense_tr = _dense_trace(world.model.config, len(ids))
    base = step_flops(dense_tr.steps[0], world.model.config).total
    fractions = [
        step_flops(s, world.model.config).total / base for s in steps
    ]

    surviving = [world.vocab.words[int(t)] for t in ids[result.positions]]
    pred = int(world.readout.predict(result.pooled()[None, :])[0])
    dense_pred = int(world.readout.predict(dense_result.pooled()[None, :])[0])

    table = Table("Fig. 1 — Cascade pruning across layers",
                  ["layer", "tokens", "heads", "compute %"])
    for step, frac in zip(steps, fractions):
        table.add_row(str(step.layer), str(step.n_queries),
                      str(step.n_heads), f"{frac * 100:.0f}%")
    table.add_note(f"survivors: {' '.join(surviving)}")
    table.add_note(f"prediction preserved: {pred == dense_pred}")
    return Fig01Result(
        sentence=[world.vocab.words[int(t)] for t in ids],
        tokens_per_layer=[s.n_queries for s in steps],
        heads_per_layer=[s.n_heads for s in steps],
        compute_fraction_per_layer=fractions,
        surviving_words=surviving,
        predicted_label=pred,
        dense_label=dense_pred,
        table=table,
    )


# ----------------------------------------------------------------------
# Fig. 7 — quantization error vs max attention probability
# ----------------------------------------------------------------------
@dataclass
class Fig07Result:
    max_probs: np.ndarray
    errors: np.ndarray
    bin_centers: np.ndarray
    bin_mean_errors: np.ndarray
    correlation: float
    table: Table


def fig07_quant_error(
    bits: int = 4, n_rows: int = 4000, seed: int = 0
) -> Fig07Result:
    """Mean attention-probability error (fp vs int4) against the row's
    max probability — dominated rows quantize almost losslessly."""
    rng = np.random.default_rng(seed)
    # Attention-score rows with a spectrum of peakedness, the same
    # mixture a trained model produces across heads and layers: flat
    # rows (nothing dominant) through sharply dominated rows.
    rows = []
    length = 32
    for _ in range(n_rows):
        sharpness = rng.uniform(0.0, 8.0)
        scores = rng.normal(0, 1.0, size=length)
        scores[int(rng.integers(length))] += sharpness
        rows.append(scores)

    quantizer = LinearQuantizer(bits, 0)
    max_probs, errors = [], []
    for scores in rows:
        q = quantizer.quantize(scores)
        scores_q = quantizer.dequantize_full(q)
        mp, err = attention_prob_error(scores, scores_q)
        max_probs.append(mp[0])
        errors.append(err[0])
    max_probs = np.asarray(max_probs)
    errors = np.asarray(errors)

    bins = np.linspace(0, 1, 11)
    centers = 0.5 * (bins[:-1] + bins[1:])
    mean_err = np.array([
        errors[(max_probs >= lo) & (max_probs < hi)].mean()
        if np.any((max_probs >= lo) & (max_probs < hi)) else np.nan
        for lo, hi in zip(bins[:-1], bins[1:])
    ])
    corr = float(np.corrcoef(max_probs, errors)[0, 1])

    table = Table(f"Fig. 7 — int{bits} attention-probability error vs "
                  "max probability",
                  ["max-prob bin", "mean abs error"])
    for center, err in zip(centers, mean_err):
        table.add_row(f"{center:.2f}", "-" if np.isnan(err) else f"{err:.4f}")
    table.add_note(f"correlation(max_prob, error) = {corr:.2f} "
                   "(paper: strongly negative — dominated rows need fewer bits)")
    return Fig07Result(max_probs, errors, centers, mean_err, corr, table)


# ----------------------------------------------------------------------
# Fig. 21 — pruning-ratio / accuracy trade-off
# ----------------------------------------------------------------------
@dataclass
class Fig21Result:
    token_ratios: List[float]
    token_losses: List[float]
    token_kls: List[float]
    head_ratios: List[float]
    head_losses: List[float]
    table: Table


def fig21_accuracy_tradeoff(
    token_keeps: Sequence[float] = (1.0, 0.5, 0.33, 0.25, 0.2, 0.15, 0.12),
    head_keeps: Sequence[float] = (1.0, 0.89, 0.75, 0.625, 0.5, 0.42, 0.375),
    seed: int = 0,
) -> Fig21Result:
    """Token curve on a PTB-like LM; head curve on a CoLA-like task.

    Paper shape: ~4x token pruning and ~1.2x head pruning are free;
    beyond that accuracy falls off a cliff.
    """
    # Token pruning curve (LM): loss = drop of top-1 agreement with the
    # dense model (12-bit static quantization, progressive off — the
    # paper's protocol for this figure).
    lm = lm_world(seed=seed)
    quant = QuantConfig(msb_bits=12, lsb_bits=4, progressive=False)
    token_ratios, token_losses, token_kls = [], [], []
    for keep in token_keeps:
        pruning = PruningConfig(token_keep_final=keep, value_keep=1.0)
        fidelity = lm_fidelity(
            lm.model, lm.prompts,
            lambda p=pruning: SpAttenExecutor(pruning=p, quant=quant),
        )
        token_ratios.append(1.0 / keep)
        token_losses.append(-fidelity.accuracy_loss)
        token_kls.append(fidelity.mean_kl)

    # Head pruning curve (classification accuracy delta) on a
    # CoLA-style short-sentence task, matching the paper's right panel.
    world = classification_world(
        avg_len=11, n_test=96, signal_purity=0.70, seed=seed
    )
    head_ratios, head_losses = [], []
    for keep in head_keeps:
        pruning = PruningConfig(head_keep_final=keep)
        acc = classification_accuracy(
            world.model, world.dataset, world.readout,
            executor_factory=lambda p=pruning: SpAttenExecutor(
                pruning=p, quant=quant
            ),
        )
        head_ratios.append(1.0 / keep)
        head_losses.append(acc - world.dense_accuracy)

    table = Table("Fig. 21 — Pruning ratio vs accuracy loss",
                  ["curve", "ratio", "accuracy delta"])
    for ratio, loss, kl in zip(token_ratios, token_losses, token_kls):
        table.add_row("token (LM top-5 containment)", fmt_ratio(ratio),
                      f"{loss * 100:+.1f}% (KL {kl:.3f})")
    for ratio, loss in zip(head_ratios, head_losses):
        table.add_row("head (classification)", fmt_ratio(ratio),
                      f"{loss * 100:+.1f}%")
    table.add_note("paper: ~4x token pruning and ~1.2x head pruning with "
                   "no accuracy loss; larger ratios degrade sharply")
    return Fig21Result(token_ratios, token_losses, token_kls,
                       head_ratios, head_losses, table)


# ----------------------------------------------------------------------
# Fig. 22 / Fig. 23 — interpretability visualisations
# ----------------------------------------------------------------------
PAPER_SENTENCES: Dict[str, str] = {
    "classification": (
        "A wonderful movie, I am sure that you will remember it, you "
        "admire its conception and are able to resolve some of the "
        "confusions you had while watching it."
    ),
    "regression": (
        "It does sound like your cat is upset about something, and trying "
        "to communicate it to you. Something is bothering your cat and he "
        "wants to tell you."
    ),
    "lm": (
        "Du Fu was a great poet of the Tang dynasty. Recently a variety "
        "of styles have been used in efforts to translate the work of Du "
        "Fu into English"
    ),
}


@dataclass
class PruningStage:
    keep_fraction: float
    surviving_words: List[str]


@dataclass
class Fig22Result:
    visualisations: Dict[str, List[PruningStage]]
    table: Table


def fig22_visualization(seed: int = 0) -> Fig22Result:
    """Progressive token-pruning renderings of the paper's sentences."""
    world = classification_world(seed=seed)
    stages = (0.7, 0.4, 0.2)
    table = Table("Fig. 22 — Cascade token pruning visualisation",
                  ["task", "keep", "survivors"])
    visualisations: Dict[str, List[PruningStage]] = {}
    for task, sentence in PAPER_SENTENCES.items():
        ids = world.vocab.encode(sentence, add_cls=True)
        rendered: List[PruningStage] = []
        for keep in stages:
            pruning = PruningConfig(
                token_keep_final=keep, token_front_frac=0.0, min_tokens=2
            )
            executor = SpAttenExecutor(pruning=pruning)
            result = world.model.encode(ids, executor=executor)
            words = [
                world.vocab.words[int(ids[p])]
                for p in result.positions
                if ids[p] != world.vocab.cls_id
            ]
            rendered.append(PruningStage(keep, words))
            table.add_row(task, f"{keep:.0%}", " ".join(words))
        visualisations[task] = rendered
    table.add_note("paper prunes structural words first ('a', 'is', 'to'), "
                   "keeping content words ('film', 'perfect', 'translate')")
    return Fig22Result(visualisations, table)


@dataclass
class Fig23Result:
    words: List[str]
    importance: np.ndarray  # [n_layers, n_tokens] cumulative scores
    table: Table


def fig23_importance_map(seed: int = 0) -> Fig23Result:
    """Per-layer cumulative token importance for a GPT-2-style model."""
    lm = lm_world(seed=seed)
    ids = lm.vocab.encode(PAPER_SENTENCES["lm"])
    executor = SpAttenExecutor()  # no pruning: observe raw importance
    result = lm.model.encode(ids, executor=executor)

    n_layers = lm.model.config.n_layers
    importance = np.zeros((n_layers, len(ids)))
    running = np.zeros(len(ids))
    for layer, record in enumerate(result.records):
        running[record.key_token_ids] += record.probs.sum(axis=(0, 1))
        importance[layer] = running / max(running.max(), 1e-9)

    words = lm.vocab.decode(ids)
    table = Table("Fig. 23 — Cumulative token importance by layer",
                  ["layer"] + [w[:6] for w in words[:12]])
    glyphs = " .:-=+*#%@"
    for layer in range(n_layers):
        cells = [str(layer)]
        for token in range(min(len(ids), 12)):
            level = int(importance[layer, token] * (len(glyphs) - 1))
            cells.append(glyphs[level] * 3)
        table.add_row(*cells)
    table.add_note("important (content) tokens stay consistently dark "
                   "across layers; function words stay light")
    return Fig23Result(words, importance, table)
