"""ASCII chart rendering for figure-style results.

The paper's evaluation is mostly figures; the benchmark harness prints
their data as tables, and this module adds terminal-friendly plots so
the *shape* of a result (saturation, cliffs, waterfalls, rooflines) is
visible at a glance without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

__all__ = ["line_chart", "bar_chart"]


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e4 or magnitude < 1e-2:
        return f"{value:.1e}"
    if magnitude >= 10:
        return f"{value:.0f}"
    return f"{value:.2f}"


def line_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    title: str = "",
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
) -> str:
    """Render one series as an ASCII scatter/line chart.

    Args:
        xs, ys: the series (same length, at least 2 points).
        width, height: plot-area size in characters.
        log_x: place x ticks on a log scale (ratio sweeps).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    fx = [math.log10(x) if log_x else float(x) for x in xs]
    fy = [float(y) for y in ys]
    x_lo, x_hi = min(fx), max(fx)
    y_lo, y_hi = min(fy), max(fy)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    points = []
    for x, y in zip(fx, fy):
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        points.append((height - 1 - row, col))
    # Connect consecutive points with interpolated markers.
    for (r0, c0), (r1, c1) in zip(points, points[1:]):
        steps = max(abs(r1 - r0), abs(c1 - c0), 1)
        for step in range(steps + 1):
            t = step / steps
            row = round(r0 + (r1 - r0) * t)
            col = round(c0 + (c1 - c0) * t)
            grid[row][col] = "."
    for row, col in points:
        grid[row][col] = "*"

    lines = []
    if title:
        lines.append(title)
    top_tick = _format_tick(y_hi)
    bottom_tick = _format_tick(y_lo)
    label_width = max(len(top_tick), len(bottom_tick), len(y_label)) + 1
    for idx, row in enumerate(grid):
        if idx == 0:
            prefix = top_tick.rjust(label_width)
        elif idx == height - 1:
            prefix = bottom_tick.rjust(label_width)
        elif idx == height // 2:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}|")
    x_lo_tick = _format_tick(xs[0] if not log_x else min(xs))
    x_hi_tick = _format_tick(xs[-1] if not log_x else max(xs))
    axis = f"{' ' * label_width} +{'-' * width}+"
    lines.append(axis)
    footer = (
        f"{' ' * label_width}  {x_lo_tick}"
        f"{x_label.center(width - len(x_lo_tick) - len(x_hi_tick))}"
        f"{x_hi_tick}"
    )
    lines.append(footer)
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    title: str = "",
    width: int = 50,
    log_scale: bool = False,
    unit: str = "",
) -> str:
    """Render labelled values as horizontal bars.

    ``log_scale`` sizes bars by log10 (speedup waterfalls spanning
    orders of magnitude).
    """
    if not values:
        raise ValueError("no values to chart")
    numeric = {k: float(v) for k, v in values.items()}
    if log_scale and any(v <= 0 for v in numeric.values()):
        raise ValueError("log scale requires positive values")
    scaled = {
        k: (math.log10(v) if log_scale else v) for k, v in numeric.items()
    }
    lo = min(0.0, min(scaled.values()))
    hi = max(scaled.values())
    span = hi - lo if hi != lo else 1.0
    label_width = max(len(k) for k in numeric)
    lines = [title] if title else []
    for key, value in numeric.items():
        filled = round((scaled[key] - lo) / span * width)
        bar = "#" * max(filled, 1 if value > 0 else 0)
        lines.append(f"{key.ljust(label_width)} |{bar.ljust(width)}| "
                     f"{_format_tick(value)}{unit}")
    return "\n".join(lines)
