"""Performance-side experiment runners: one function per paper table /
figure.  Each returns a structured result object carrying both the raw
numbers and a ready-to-print :class:`~repro.eval.reporting.Table`.

Quality-side experiments (accuracy trade-offs, quantization error,
visualisations) live in :mod:`repro.eval.quality_experiments` because
they execute real models rather than analytic traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..baselines import (
    ALL_PLATFORMS,
    A3_PUBLISHED,
    MNNFAST_PUBLISHED,
    TITAN_XP,
    XEON,
    JETSON_NANO,
    A3CostModel,
    MNNFastCostModel,
    PlatformSpec,
    Roofline,
    RooflinePoint,
    attention_cost,
    fc_cost,
)
from ..codesign import hat
from ..config import PruningConfig, QuantConfig
from ..core.trace import AttentionTrace, dense_trace, spatten_trace
from ..hardware import (
    SPATTEN_EIGHTH,
    SPATTEN_FULL,
    ArchConfig,
    BatcherSorter,
    SimReport,
    SpAttenE2ESimulator,
    SpAttenSimulator,
    TopKEngine,
    area_model,
)
from ..workloads import Benchmark, all_benchmarks, bert_benchmarks, gpt2_benchmarks
from .dram import trace_dram
from .flops import trace_flops
from .reporting import Table, fmt, fmt_ratio, geometric_mean

__all__ = [
    "benchmark_traces",
    "spatten_benchmark_report",
    "headline_reductions",
    "fig02_latency_breakdown",
    "table1_architecture",
    "table2_power",
    "fig13_breakdowns",
    "fig14_speedup_energy",
    "table3_prior_art",
    "table4_e2e_breakdown",
    "fig15_e2e_speedup",
    "fig16_hat_codesign",
    "fig18_roofline",
    "fig19_design_space",
    "fig20_speedup_breakdown",
    "gpu_token_pruning",
    "ablation_pruning_components",
    "topk_engine_comparison",
]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def benchmark_traces(bench: Benchmark) -> Tuple[AttentionTrace, AttentionTrace]:
    """(spatten_trace, dense_trace) for one registry benchmark."""
    pruned = spatten_trace(
        bench.model, bench.pruning, bench.quant, bench.seq_len,
        bench.n_generate, bench.lsb_fraction,
    )
    dense = dense_trace(bench.model, bench.seq_len, bench.n_generate)
    return pruned, dense


def _stage_filter(trace: AttentionTrace, generative: bool) -> AttentionTrace:
    """The latency-relevant sub-trace: the paper times the whole
    summarization for BERT and the generation stage for GPT-2."""
    stage = "decode" if generative else "summarize"
    steps = [s for s in trace.steps if s.stage == stage]
    return AttentionTrace(
        trace.model, trace.original_length, trace.n_generated, steps,
        trace.quant, trace.pruning,
    )


@dataclass
class BenchmarkReport:
    """SpAtten cost of one benchmark, restricted to the timed stage."""

    bench: Benchmark
    latency_s: float
    energy_j: float
    dram_bytes: float
    performed_attention_flops: float
    dense_attention_flops: float
    sim: SimReport

    @property
    def dense_equivalent_tflops(self) -> float:
        return self.dense_attention_flops / self.latency_s / 1e12


def spatten_benchmark_report(
    bench: Benchmark, arch: ArchConfig = SPATTEN_FULL
) -> BenchmarkReport:
    """Simulate one benchmark and extract the paper-relevant stage."""
    pruned, dense = benchmark_traces(bench)
    sim = SpAttenSimulator(arch)
    report = sim.run_trace(pruned)
    generative = bench.is_generative
    cycles = report.decode_cycles if generative else report.summarize_cycles
    latency = cycles / arch.clock_hz
    stage_fraction = cycles / report.total_cycles if report.total_cycles else 0.0
    dense_stage = _stage_filter(dense, generative)
    pruned_stage = _stage_filter(pruned, generative)
    return BenchmarkReport(
        bench=bench,
        latency_s=latency,
        energy_j=report.energy.total_j * stage_fraction,
        dram_bytes=sum(
            c.dram_bytes for c in report.step_costs
            if (c.stage == "decode") == generative
        ),
        performed_attention_flops=trace_flops(pruned_stage).attention,
        dense_attention_flops=trace_flops(dense_stage).attention,
        sim=report,
    )


# ----------------------------------------------------------------------
# Headline reductions (Section V-B text)
# ----------------------------------------------------------------------
@dataclass
class HeadlineResult:
    per_benchmark: List[dict]
    token_value_reduction_all: float
    token_value_reduction_gpt2: float
    head_reduction: float
    computation_reduction: float
    dram_reduction: float
    bert_tflops: float
    gpt2_tflops: float
    table: Table


def headline_reductions() -> HeadlineResult:
    """The paper's aggregate claims: DRAM 10.0x, computation 2.1x,
    token+value pruning 1.9x (3.8x on GPT-2), head pruning 1.1x,
    1.61 / 0.43 TFLOPS effective throughput."""
    rows = []
    tv_all, tv_gpt2, head_r, comp_r, dram_r = [], [], [], [], []
    bert_tflops, gpt2_tflops = [], []
    table = Table(
        "Headline reductions (Section V-B)",
        ["benchmark", "token+value", "head", "compute", "DRAM", "TFLOPS(dense-eq)"],
    )
    for bench in all_benchmarks():
        pruned, dense = benchmark_traces(bench)
        generative = bench.is_generative
        p_stage = _stage_filter(pruned, generative)
        d_stage = _stage_filter(dense, generative)

        # Token + local-value pruning: surviving K/V fetch fraction.
        kept = sum(s.n_keys + s.n_values for s in p_stage.steps)
        dense_kv = sum(s.n_keys + s.n_values for s in d_stage.steps)
        token_value = dense_kv / kept
        head = bench.model.n_heads / np.mean([s.n_heads for s in p_stage.steps])
        # "Computation" reduction: the attention arithmetic SpAtten
        # executes (Q x K + prob x V), the quantity the paper's 2.1x
        # aggregate refers to (FFN savings are reported separately).
        compute = (
            trace_flops(d_stage).attention / trace_flops(p_stage).attention
        )
        dram = trace_dram(d_stage, quant=None).total / trace_dram(p_stage).total

        report = spatten_benchmark_report(bench)
        tflops = report.dense_equivalent_tflops

        rows.append(
            dict(benchmark=bench.key, token_value=token_value, head=head,
                 compute=compute, dram=dram, tflops=tflops)
        )
        tv_all.append(token_value)
        if generative:
            tv_gpt2.append(token_value)
            gpt2_tflops.append(report.performed_attention_flops / report.latency_s / 1e12)
        else:
            bert_tflops.append(tflops)
        head_r.append(head)
        comp_r.append(compute)
        dram_r.append(dram)
        table.add_row(bench.key, fmt_ratio(token_value), fmt_ratio(head),
                      fmt_ratio(compute), fmt_ratio(dram), fmt(tflops, 2))

    result = HeadlineResult(
        per_benchmark=rows,
        token_value_reduction_all=geometric_mean(tv_all),
        token_value_reduction_gpt2=geometric_mean(tv_gpt2),
        head_reduction=geometric_mean(head_r),
        computation_reduction=geometric_mean(comp_r),
        dram_reduction=geometric_mean(dram_r),
        bert_tflops=float(np.mean(bert_tflops)),
        gpt2_tflops=float(np.mean(gpt2_tflops)),
        table=table,
    )
    table.add_note(
        f"geomeans: token+value {result.token_value_reduction_all:.1f}x "
        f"(GPT-2 {result.token_value_reduction_gpt2:.1f}x), head "
        f"{result.head_reduction:.2f}x, compute "
        f"{result.computation_reduction:.1f}x, DRAM "
        f"{result.dram_reduction:.1f}x | paper: 1.9x (3.8x), 1.1x, 2.1x, 10.0x"
    )
    table.add_note(
        f"BERT {result.bert_tflops:.2f} TFLOPS dense-equivalent, GPT-2 "
        f"{result.gpt2_tflops:.2f} TFLOPS performed | paper: 1.61 / 0.43"
    )
    return result


# ----------------------------------------------------------------------
# Fig. 2 — latency breakdowns
# ----------------------------------------------------------------------
#: Published GPU attention-time shares (Fig. 2 right): the two matmuls
#: take only 27% of attention latency; the rest is data movement.
FIG2_GPU_ATTENTION_SHARES: Dict[str, float] = {
    "q_x_k_matmul": 0.106,
    "prob_x_v_matmul": 0.164,
    "split_heads_concat_reshape": 0.396,
    "transpose_softmax": 0.334,
}


@dataclass
class Fig02Result:
    platform_attention_fraction: Dict[str, float]
    gpu_attention_shares: Dict[str, float]
    table: Table


def fig02_latency_breakdown() -> Fig02Result:
    """End-to-end GPT-2 latency split (attention vs others) on three
    platforms, plus the GPU attention-op breakdown.

    Measured over the generation stage, which dominates end-to-end
    GPT-2 latency (Section I: 97% when generating 32 tokens).
    """
    bench = gpt2_benchmarks()[0]
    _, dense = benchmark_traces(bench)
    fractions: Dict[str, float] = {}
    table = Table(
        "Fig. 2 — End-to-end GPT-2 latency breakdown",
        ["platform", "attention", "others (FC etc.)", "attention %"],
    )
    for spec in (TITAN_XP, XEON, JETSON_NANO):
        attn = attention_cost(spec, dense, include_summarize=False)
        other = fc_cost(spec, dense, include_summarize=False)
        frac = attn.latency_s / (attn.latency_s + other.latency_s)
        fractions[spec.name] = frac
        table.add_row(
            spec.name,
            f"{attn.latency_s * 1e3:.1f}ms",
            f"{other.latency_s * 1e3:.1f}ms",
            f"{frac * 100:.0f}%",
        )
    table.add_note("paper: attention is ~50%/61%/49% on GPU/CPU/Nano")
    table.add_note(
        "GPU attention-op shares (published): "
        + ", ".join(f"{k} {v * 100:.1f}%" for k, v in FIG2_GPU_ATTENTION_SHARES.items())
    )
    return Fig02Result(fractions, dict(FIG2_GPU_ATTENTION_SHARES), table)


# ----------------------------------------------------------------------
# Table I / Table II / Fig. 13 — architecture, power, area
# ----------------------------------------------------------------------
def table1_architecture(arch: ArchConfig = SPATTEN_FULL) -> Table:
    table = Table("Table I — Architectural setup", ["component", "setting"])
    table.add_row("Q-K-V fetcher", "32x16 addr + 16x32 data crossbars, 64-deep FIFOs")
    table.add_row("Q x K", f"{arch.key_sram_bytes // 1024}KB Key SRAM; "
                           f"{arch.qk_multipliers} x {arch.onchip_bits}-bit multipliers")
    table.add_row("Softmax", f"parallelism {arch.softmax_parallelism}")
    table.add_row("Prob x V", f"{arch.value_sram_bytes // 1024}KB Value SRAM; "
                              f"{arch.probv_multipliers} multipliers")
    table.add_row("top-k engines", f"parallelism {arch.topk_parallelism}, "
                                   "quick-select + zero eliminators")
    table.add_row("HBM", f"{arch.hbm_channels} channels @ "
                         f"{arch.hbm_channel_bandwidth / 1e9:.0f}GB/s")
    table.add_row("clock", f"{arch.clock_hz / 1e9:.1f}GHz")
    return table


@dataclass
class PowerResult:
    logic_w: float
    sram_w: float
    dram_w: float
    table: Table

    @property
    def total_w(self) -> float:
        return self.logic_w + self.sram_w + self.dram_w


def table2_power() -> PowerResult:
    """30-benchmark average power split (paper Table II)."""
    logic, sram, dram = [], [], []
    sim = SpAttenSimulator()
    for bench in all_benchmarks():
        pruned, _ = benchmark_traces(bench)
        report = sim.run_trace(pruned)
        generative = bench.is_generative
        cycles = report.decode_cycles if generative else report.summarize_cycles
        frac = cycles / report.total_cycles
        t = cycles / SPATTEN_FULL.clock_hz
        logic.append(report.energy.compute_logic_j * frac / t)
        sram.append(report.energy.sram_j * frac / t)
        dram.append(report.energy.dram_j * frac / t)
    result = PowerResult(
        float(np.mean(logic)), float(np.mean(sram)), float(np.mean(dram)),
        Table("Table II — Power breakdown",
              ["component", "measured", "paper"]),
    )
    result.table.add_row("computation logic", f"{result.logic_w:.2f}W", "1.36W")
    result.table.add_row("SRAM", f"{result.sram_w:.2f}W", "1.24W")
    result.table.add_row("DRAM", f"{result.dram_w:.2f}W", "5.71W")
    result.table.add_row("overall", f"{result.total_w:.2f}W", "8.30W")
    return result


@dataclass
class Fig13Result:
    area_mm2: Dict[str, float]
    onchip_power_share: Dict[str, float]
    table: Table


def fig13_breakdowns() -> Fig13Result:
    """On-chip area and power per module (paper Fig. 13)."""
    area = area_model(SPATTEN_FULL)
    # Power shares: aggregate module energies over the benchmark mix.
    sim = SpAttenSimulator()
    module_pj: Dict[str, float] = {}
    for bench in all_benchmarks():
        pruned, _ = benchmark_traces(bench)
        report = sim.run_trace(pruned)
        for key, value in report.module_energy_pj.items():
            module_pj[key] = module_pj.get(key, 0.0) + value
    total_pj = sum(module_pj.values())
    shares = {k: v / total_pj for k, v in module_pj.items()}

    table = Table("Fig. 13 — On-chip area and power breakdowns",
                  ["module", "area mm^2", "area %", "on-chip power %"])
    for module, mm2 in area.modules.items():
        table.add_row(
            module, f"{mm2:.2f}", f"{mm2 / area.total_mm2 * 100:.1f}%",
            f"{shares.get(module, 0.0) * 100:.1f}%",
        )
    table.add_note(f"total area {area.total_mm2:.2f} mm^2 (paper: 18.71 mm^2)")
    return Fig13Result(dict(area.modules), shares, table)


# ----------------------------------------------------------------------
# Fig. 14 — speedup & energy efficiency over CPUs/GPUs
# ----------------------------------------------------------------------
@dataclass
class Fig14Result:
    speedups: Dict[str, Dict[str, float]]  # platform -> benchmark -> x
    energy_ratios: Dict[str, Dict[str, float]]
    geomean_speedup: Dict[str, float]
    geomean_energy: Dict[str, float]
    table: Table


#: Paper geomeans for the four platforms (Fig. 14).
PAPER_FIG14_GEOMEANS = {
    "titan-xp": (162.0, 1193.0),
    "xeon-e5-2640": (347.0, 4059.0),
    "jetson-nano": (1095.0, 406.0),
    "raspberry-pi-4": (5071.0, 1910.0),
}


def fig14_speedup_energy(
    platforms: Optional[List[PlatformSpec]] = None,
) -> Fig14Result:
    """Per-benchmark attention speedup and energy saving of SpAtten."""
    platforms = platforms or ALL_PLATFORMS
    speedups: Dict[str, Dict[str, float]] = {p.name: {} for p in platforms}
    energies: Dict[str, Dict[str, float]] = {p.name: {} for p in platforms}
    table = Table(
        "Fig. 14 — Speedup / energy-efficiency over baselines (attention layers)",
        ["benchmark"] + [f"{p.name} spd|en" for p in platforms],
    )
    for bench in all_benchmarks():
        report = spatten_benchmark_report(bench)
        _, dense = benchmark_traces(bench)
        generative = bench.is_generative
        cells = [bench.key]
        for spec in platforms:
            base = attention_cost(
                spec, dense,
                include_summarize=not generative,
                include_decode=generative,
            )
            spd = base.latency_s / report.latency_s
            en = base.energy_j / report.energy_j
            speedups[spec.name][bench.key] = spd
            energies[spec.name][bench.key] = en
            cells.append(f"{spd:.0f}x|{en:.0f}x")
        table.add_row(*cells)

    geo_s = {n: geometric_mean(list(v.values())) for n, v in speedups.items()}
    geo_e = {n: geometric_mean(list(v.values())) for n, v in energies.items()}
    cells = ["GEOMEAN"] + [
        f"{geo_s[p.name]:.0f}x|{geo_e[p.name]:.0f}x" for p in platforms
    ]
    table.add_row(*cells)
    for p in platforms:
        if p.name in PAPER_FIG14_GEOMEANS:
            ps, pe = PAPER_FIG14_GEOMEANS[p.name]
            table.add_note(f"paper geomean {p.name}: {ps:.0f}x | {pe:.0f}x")
    return Fig14Result(speedups, energies, geo_s, geo_e, table)


# ----------------------------------------------------------------------
# Table III — prior-art comparison at 1/8 scale
# ----------------------------------------------------------------------
@dataclass
class Table3Result:
    spatten_throughput_gops: float
    spatten_energy_eff_gopj: float
    spatten_area_mm2: float
    throughput_vs_a3: float
    throughput_vs_mnnfast: float
    energy_vs_a3: float
    energy_vs_mnnfast: float
    table: Table


def table3_prior_art() -> Table3Result:
    """SpAtten-1/8 vs A3 vs MNNFast under matched multipliers/bandwidth."""
    arch = SPATTEN_EIGHTH
    latencies, energies, dense_flops_total = 0.0, 0.0, 0.0
    for bench in bert_benchmarks():
        report = spatten_benchmark_report(bench, arch=arch)
        latencies += report.latency_s
        energies += report.energy_j
        dense_flops_total += report.dense_attention_flops
    throughput_gops = dense_flops_total / latencies / 1e9
    energy_eff = dense_flops_total / energies / 1e9
    area = area_model(arch).total_mm2

    a3, mnn = A3_PUBLISHED, MNNFAST_PUBLISHED
    table = Table(
        "Table III — Comparison with prior art (1/8-scale SpAtten)",
        ["property", "MNNFast", "A3", "SpAtten-1/8"],
    )
    table.add_row("cascade head pruning", "no", "no", "yes")
    table.add_row("cascade token pruning", "no", "no", "yes")
    table.add_row("local value pruning", "yes", "yes", "yes")
    table.add_row("progressive quantization", "no", "no", "yes")
    table.add_row("reduces DRAM access", "no", "no", "yes")
    table.add_row("reduces FFN computation", "no", "no", "yes")
    table.add_row("accelerates generative (GPT-2)", "no", "no", "yes")
    table.add_row("preprocessing overhead", "no", "yes (key sort)", "no")
    table.add_row("throughput GOP/s",
                  f"{mnn.throughput_gops:.0f}", f"{a3.throughput_gops:.0f}",
                  f"{throughput_gops:.0f}")
    table.add_row("energy eff. GOP/J",
                  f"{mnn.energy_efficiency_gop_per_j:.0f}",
                  f"{a3.energy_efficiency_gop_per_j:.0f}",
                  f"{energy_eff:.0f}")
    table.add_row("area mm^2", "-", f"{a3.area_mm2:.2f}",
                  f"{area:.2f} (paper 1.55)")
    table.add_note("paper: SpAtten-1/8 is 1.6x/3.0x faster and 1.4x/3.2x more "
                   "energy-efficient than A3/MNNFast")
    return Table3Result(
        spatten_throughput_gops=throughput_gops,
        spatten_energy_eff_gopj=energy_eff,
        spatten_area_mm2=area,
        throughput_vs_a3=throughput_gops / a3.throughput_gops,
        throughput_vs_mnnfast=throughput_gops / mnn.throughput_gops,
        energy_vs_a3=energy_eff / a3.energy_efficiency_gop_per_j,
        energy_vs_mnnfast=energy_eff / mnn.energy_efficiency_gop_per_j,
        table=table,
    )


# ----------------------------------------------------------------------
# Table IV + Fig. 15 — end-to-end with FFN support
# ----------------------------------------------------------------------
@dataclass
class Table4Result:
    gpu_fc_ms: float
    gpu_attn_ms: float
    e2e_fc_ms: float
    e2e_attn_ms: float
    fc_gflops: float
    attn_gflops_dense: float
    attn_gflops_pruned: float
    table: Table


def table4_e2e_breakdown() -> Table4Result:
    """FC & attention FLOPs + latency on GPT-2-Medium (GPU vs e2e).

    Matches the paper's protocol: generation stage only, 4-benchmark
    average, head pruning disabled.
    """
    gpu_fc, gpu_attn, e2e_fc, e2e_attn = [], [], [], []
    fc_g, attn_dense_g, attn_pruned_g = [], [], []
    for bench in gpt2_benchmarks():
        if bench.model.name != "gpt2-medium":
            continue
        no_head = bench.pruning.with_overrides(head_keep_final=1.0)
        pruned = spatten_trace(bench.model, no_head, bench.quant,
                               bench.seq_len, bench.n_generate,
                               bench.lsb_fraction)
        dense = dense_trace(bench.model, bench.seq_len, bench.n_generate)
        dense_dec = _stage_filter(dense, True)
        pruned_dec = _stage_filter(pruned, True)

        gpu_fc.append(fc_cost(TITAN_XP, dense, include_summarize=False).latency_s)
        gpu_attn.append(
            attention_cost(TITAN_XP, dense, include_summarize=False).latency_s
        )
        e2e = SpAttenE2ESimulator(fc_bits=8).run_trace(pruned_dec)
        e2e_fc.append(e2e.fc_latency_s)
        e2e_attn.append(e2e.attention_latency_s)
        fc_g.append(trace_flops(dense_dec).fc / 1e9)
        attn_dense_g.append(trace_flops(dense_dec).attention / 1e9)
        attn_pruned_g.append(trace_flops(pruned_dec).attention / 1e9)

    result = Table4Result(
        gpu_fc_ms=float(np.mean(gpu_fc)) * 1e3,
        gpu_attn_ms=float(np.mean(gpu_attn)) * 1e3,
        e2e_fc_ms=float(np.mean(e2e_fc)) * 1e3,
        e2e_attn_ms=float(np.mean(e2e_attn)) * 1e3,
        fc_gflops=float(np.mean(fc_g)),
        attn_gflops_dense=float(np.mean(attn_dense_g)),
        attn_gflops_pruned=float(np.mean(attn_pruned_g)),
        table=Table(
            "Table IV — FC & attention breakdown, GPT-2-Medium generation",
            ["system", "FC GFLOPs", "Attn GFLOPs", "FC latency", "Attn latency",
             "Attn latency %"],
        ),
    )
    gpu_total = result.gpu_fc_ms + result.gpu_attn_ms
    e2e_total = result.e2e_fc_ms + result.e2e_attn_ms
    result.table.add_row(
        "TITAN Xp GPU", f"{result.fc_gflops:.1f}",
        f"{result.attn_gflops_dense:.1f}",
        f"{result.gpu_fc_ms:.1f}ms", f"{result.gpu_attn_ms:.1f}ms",
        f"{result.gpu_attn_ms / gpu_total * 100:.1f}%",
    )
    result.table.add_row(
        "SpAtten-e2e (8-bit FC)", f"{result.fc_gflops:.1f}",
        f"{result.attn_gflops_pruned:.1f}",
        f"{result.e2e_fc_ms:.2f}ms", f"{result.e2e_attn_ms:.2f}ms",
        f"{result.e2e_attn_ms / e2e_total * 100:.1f}%",
    )
    result.table.add_note(
        "paper: GPU 19.3/3.3 GFLOPs, 388.3/366.7 ms (48.6% attn); "
        "SpAtten-e2e 19.3/0.9 GFLOPs, 25.75/2.13 ms (7.6% attn)"
    )
    return result


@dataclass
class Fig15Result:
    speedups: Dict[int, Dict[str, Dict[str, float]]]  # bits -> platform -> bench
    geomeans: Dict[int, Dict[str, float]]
    table: Table


def fig15_e2e_speedup() -> Fig15Result:
    """End-to-end SpAtten-e2e speedup over GPU/CPU, 8- and 12-bit FC."""
    speedups: Dict[int, Dict[str, Dict[str, float]]] = {
        8: {"titan-xp": {}, "xeon-e5-2640": {}},
        12: {"titan-xp": {}, "xeon-e5-2640": {}},
    }
    table = Table(
        "Fig. 15 — End-to-end speedup of SpAtten-e2e (GPT-2 generation)",
        ["benchmark", "12b vs GPU", "8b vs GPU", "12b vs CPU", "8b vs CPU"],
    )
    for bench in gpt2_benchmarks():
        no_head = bench.pruning.with_overrides(head_keep_final=1.0)
        pruned = spatten_trace(bench.model, no_head, bench.quant,
                               bench.seq_len, bench.n_generate,
                               bench.lsb_fraction)
        dense = dense_trace(bench.model, bench.seq_len, bench.n_generate)
        pruned_dec = _stage_filter(pruned, True)
        base: Dict[str, float] = {}
        for spec in (TITAN_XP, XEON):
            base[spec.name] = (
                attention_cost(spec, dense, include_summarize=False).latency_s
                + fc_cost(spec, dense, include_summarize=False).latency_s
            )
        per_bits: Dict[int, float] = {}
        for bits in (8, 12):
            e2e = SpAttenE2ESimulator(fc_bits=bits).run_trace(pruned_dec)
            per_bits[bits] = e2e.latency_s
            for spec in (TITAN_XP, XEON):
                speedups[bits][spec.name][bench.key] = (
                    base[spec.name] / per_bits[bits]
                )
        table.add_row(
            bench.key,
            fmt_ratio(speedups[12]["titan-xp"][bench.key], 0),
            fmt_ratio(speedups[8]["titan-xp"][bench.key], 0),
            fmt_ratio(speedups[12]["xeon-e5-2640"][bench.key], 0),
            fmt_ratio(speedups[8]["xeon-e5-2640"][bench.key], 0),
        )
    geomeans = {
        bits: {
            name: geometric_mean(list(vals.values()))
            for name, vals in by_platform.items()
        }
        for bits, by_platform in speedups.items()
    }
    table.add_row(
        "GEOMEAN",
        fmt_ratio(geomeans[12]["titan-xp"], 0),
        fmt_ratio(geomeans[8]["titan-xp"], 0),
        fmt_ratio(geomeans[12]["xeon-e5-2640"], 0),
        fmt_ratio(geomeans[8]["xeon-e5-2640"], 0),
    )
    table.add_note("paper geomeans: 24x (12b) / 35x (8b) over GPU, "
                   "83x (12b) / 122x (8b) over CPU")
    return Fig15Result(speedups, geomeans, table)


# ----------------------------------------------------------------------
# Fig. 16 / Fig. 17 — HAT co-design
# ----------------------------------------------------------------------
@dataclass
class Fig16Result:
    codesigned: List[hat.DesignPoint]
    layer_scaling: List[hat.DesignPoint]
    dim_scaling: List[hat.DesignPoint]
    big: hat.DesignPoint
    base: hat.DesignPoint
    speedup_vs_big: float
    size_reduction_vs_big: float
    table: Table
    fig17_table: Table


def fig16_hat_codesign(seed: int = 0) -> Fig16Result:
    """Evolutionary HAT search under a ladder of latency constraints."""
    big = hat.evaluate_design(hat.TRANSFORMER_BIG)
    base = hat.evaluate_design(hat.TRANSFORMER_BASE)
    constraints = [big.latency_s * f for f in
                   (0.10, 0.16, 0.22, 0.30, 0.38, 0.46, 0.55)]
    codesigned = [
        hat.evolutionary_search(c, seed=seed + idx)
        for idx, c in enumerate(constraints)
    ]
    # Best co-designed point within 0.35 BLEU of Transformer-Big.
    near_big = [p for p in codesigned if p.bleu >= big.bleu - 0.35]
    champion = min(near_big, key=lambda p: p.latency_s) if near_big else codesigned[-1]
    speedup = big.latency_s / champion.latency_s
    size_red = big.parameters / champion.parameters

    table = Table(
        "Fig. 16 — Co-designed Transformers vs vanilla scaling (SpAtten-e2e)",
        ["design", "latency ms", "BLEU (surrogate)", "params M"],
    )
    for point in hat.vanilla_layer_scaling():
        table.add_row(f"vanilla-layers {point.design.label}",
                      f"{point.latency_s * 1e3:.2f}",
                      f"{point.bleu:.2f}", f"{point.parameters / 1e6:.1f}")
    for point in hat.vanilla_dim_scaling():
        table.add_row(f"vanilla-dims {point.design.label}",
                      f"{point.latency_s * 1e3:.2f}",
                      f"{point.bleu:.2f}", f"{point.parameters / 1e6:.1f}")
    for idx, point in enumerate(codesigned, 1):
        table.add_row(f"co-designed-{idx} {point.design.label}",
                      f"{point.latency_s * 1e3:.2f}",
                      f"{point.bleu:.2f}", f"{point.parameters / 1e6:.1f}")
    table.add_note(
        f"champion vs Transformer-Big: {speedup:.1f}x faster, "
        f"{size_red:.1f}x smaller (paper: 1.9x faster, 2.8x smaller)"
    )

    # Fig. 17: FLOPs breakdown, vanilla Base vs a similar-BLEU co-design.
    near_base = min(codesigned, key=lambda p: abs(p.bleu - base.bleu))
    fig17 = Table(
        "Fig. 17 — FLOPs breakdown: vanilla Transformer-Base vs co-designed",
        ["design", "FC GFLOPs", "Attention MFLOPs"],
    )
    fig17.add_row("vanilla Transformer-Base",
                  f"{base.fc_flops / 1e9:.2f}",
                  f"{base.attention_flops / 1e6:.1f}")
    fig17.add_row(f"co-designed ({near_base.design.label})",
                  f"{near_base.fc_flops / 1e9:.2f}",
                  f"{near_base.attention_flops / 1e6:.1f}")
    fig17.add_note("paper: 2.7G/28.9M (vanilla) vs 1.9G/30.5M (co-designed): "
                   "less FC, slightly more attention")
    return Fig16Result(
        codesigned=codesigned,
        layer_scaling=hat.vanilla_layer_scaling(),
        dim_scaling=hat.vanilla_dim_scaling(),
        big=big,
        base=base,
        speedup_vs_big=speedup,
        size_reduction_vs_big=size_red,
        table=table,
        fig17_table=fig17,
    )


# ----------------------------------------------------------------------
# Fig. 18 — roofline
# ----------------------------------------------------------------------
@dataclass
class Fig18Result:
    spatten_roofline: Roofline
    gpu_roofline: Roofline
    points: List[RooflinePoint]
    table: Table


def fig18_roofline() -> Fig18Result:
    """SpAtten and TITAN Xp points against their roofs."""
    spatten_roof = Roofline(
        "spatten", SPATTEN_FULL.compute_roof_flops, SPATTEN_FULL.dram_bandwidth
    )
    gpu_roof = Roofline("titan-xp", TITAN_XP.peak_flops, TITAN_XP.dram_bandwidth)

    points: List[RooflinePoint] = []
    for family, benches in (("BERT", bert_benchmarks()),
                            ("GPT-2", gpt2_benchmarks())):
        generative = family == "GPT-2"
        perf, intens, gpu_perf, gpu_intens = [], [], [], []
        for bench in benches:
            report = spatten_benchmark_report(bench)
            pruned, dense = benchmark_traces(bench)
            p_stage = _stage_filter(pruned, generative)
            d_stage = _stage_filter(dense, generative)
            flops = trace_flops(p_stage).attention
            sp_bytes = trace_dram(p_stage).total
            perf.append(flops / report.latency_s)
            intens.append(flops / sp_bytes)
            base = attention_cost(
                TITAN_XP, dense,
                include_summarize=not generative, include_decode=generative,
            )
            gpu_perf.append(base.flops / base.latency_s)
            gpu_intens.append(base.flops / base.dram_bytes)
        points.append(RooflinePoint(
            f"SpAtten {family}", "spatten",
            float(np.mean(intens)), float(np.mean(perf)),
        ))
        points.append(RooflinePoint(
            f"TITAN Xp {family}", "titan-xp",
            float(np.mean(gpu_intens)), float(np.mean(gpu_perf)),
        ))

    table = Table("Fig. 18 — Roofline",
                  ["point", "ops/byte", "achieved TFLOPS", "roof TFLOPS"])
    for point in points:
        roof = spatten_roof if point.machine == "spatten" else gpu_roof
        from ..baselines.roofline import attainable
        table.add_row(point.label, f"{point.intensity_ops_per_byte:.2f}",
                      f"{point.achieved_flops / 1e12:.3f}",
                      f"{attainable(roof, point.intensity_ops_per_byte) / 1e12:.2f}")
    table.add_note("paper: SpAtten 1.61 TFLOPS (BERT, near 2T compute roof) "
                   "and 0.43 TFLOPS (GPT-2, near bandwidth roof); GPU 0.02 / 0.01")
    return Fig18Result(spatten_roof, gpu_roof, points, table)


# ----------------------------------------------------------------------
# Fig. 19 — design-space exploration
# ----------------------------------------------------------------------
@dataclass
class Fig19Result:
    parallelism_gflops: Dict[int, float]
    sram_gflops: Dict[int, float]
    table: Table


def fig19_design_space() -> Fig19Result:
    """Top-k parallelism sweep and K/V SRAM size sweep (GPT-2)."""
    bench = gpt2_benchmarks()[0]
    pruned, _ = benchmark_traces(bench)
    pruned_dec = _stage_filter(pruned, True)
    flops = trace_flops(pruned_dec).attention

    parallelism_gflops: Dict[int, float] = {}
    for parallelism in (1, 2, 4, 8, 16, 32):
        arch = SPATTEN_FULL.with_overrides(topk_parallelism=parallelism)
        report = SpAttenSimulator(arch).run_trace(pruned_dec)
        parallelism_gflops[parallelism] = flops / report.latency_s / 1e9

    sram_gflops: Dict[int, float] = {}
    for sram_kb in (196, 392, 784):
        arch = SPATTEN_FULL.with_overrides(
            key_sram_bytes=sram_kb * 1024, value_sram_bytes=sram_kb * 1024
        )
        report = SpAttenSimulator(arch).run_trace(pruned_dec)
        sram_gflops[sram_kb] = flops / report.latency_s / 1e9

    table = Table("Fig. 19 — Design space exploration (GPT-2 generation)",
                  ["knob", "setting", "GFLOPS"])
    for parallelism, gflops in parallelism_gflops.items():
        table.add_row("top-k parallelism", str(parallelism), f"{gflops:.0f}")
    for sram_kb, gflops in sram_gflops.items():
        table.add_row("K/V SRAM", f"{sram_kb}KB", f"{gflops:.0f}")
    table.add_note("paper: performance saturates at parallelism 16 "
                   "(168..776 GFLOPS over the sweep); SRAM size has no effect")
    return Fig19Result(parallelism_gflops, sram_gflops, table)


# ----------------------------------------------------------------------
# Fig. 20 — speedup breakdown waterfall
# ----------------------------------------------------------------------
@dataclass
class Fig20Result:
    stage_names: List[str]
    cumulative_speedup: List[float]
    table: Table


def fig20_speedup_breakdown() -> Fig20Result:
    """Cumulative speedup over the GPU as techniques stack (8 GPT-2)."""
    stage_names = [
        "TITAN Xp GPU baseline",
        "specialized datapath (dense)",
        "+ cascade token pruning (top-k parallelism 1)",
        "+ cascade head pruning (top-k parallelism 1)",
        "+ high-parallelism top-k engine",
        "+ static quantization (12-bit)",
        "+ progressive quantization (6+4)",
    ]
    per_stage_latency: List[List[float]] = [[] for _ in stage_names]
    for bench in gpt2_benchmarks():
        dense = dense_trace(bench.model, bench.seq_len, bench.n_generate)
        dense_dec = _stage_filter(dense, True)
        gpu = attention_cost(TITAN_XP, dense, include_summarize=False)
        per_stage_latency[0].append(gpu.latency_s)

        slow_topk = SPATTEN_FULL.with_overrides(topk_parallelism=1)
        token_only = bench.pruning.with_overrides(head_keep_final=1.0)

        configs = [
            (SPATTEN_FULL, None, None),  # dense datapath
            (slow_topk, token_only, None),
            (slow_topk, bench.pruning, None),
            (SPATTEN_FULL, bench.pruning, None),
            (SPATTEN_FULL, bench.pruning,
             QuantConfig(msb_bits=12, lsb_bits=4, progressive=False)),
            (SPATTEN_FULL, bench.pruning, bench.quant),
        ]
        for idx, (arch, pruning, quant) in enumerate(configs, start=1):
            if pruning is None:
                trace = dense_dec
                trace = AttentionTrace(
                    dense.model, dense.original_length, dense.n_generated,
                    dense_dec.steps, None, None,
                )
            else:
                full = spatten_trace(bench.model, pruning, quant,
                                     bench.seq_len, bench.n_generate,
                                     bench.lsb_fraction)
                trace = _stage_filter(full, True)
            report = SpAttenSimulator(arch).run_trace(trace)
            per_stage_latency[idx].append(report.latency_s)

    gpu_geo = geometric_mean(per_stage_latency[0])
    cumulative = [
        gpu_geo / geometric_mean(stage) for stage in per_stage_latency
    ]
    table = Table("Fig. 20 — Speedup breakdown over TITAN Xp (GPT-2 generation)",
                  ["configuration", "cumulative speedup", "step gain"])
    prev = 1.0
    for name, cum in zip(stage_names, cumulative):
        table.add_row(name, fmt_ratio(cum), fmt_ratio(cum / prev))
        prev = cum
    table.add_note("paper: datapath 22.1x; +token 1.1x; +head 1.1x; "
                   "+top-k engine 3x; +static quant 1.6x; +progressive 1.7x "
                   "(total 209x)")
    return Fig20Result(stage_names, cumulative, table)


# ----------------------------------------------------------------------
# Section V-B text — token pruning implemented on CPUs/GPUs
# ----------------------------------------------------------------------
@dataclass
class GpuPruningResult:
    speedups: Dict[str, float]  # benchmark -> x over dense GPU
    geomean: float
    table: Table


def gpu_token_pruning(gather_overhead: float = 1.15) -> GpuPruningResult:
    """The paper's "token pruning on CPUs/GPUs" experiment.

    "We use topk and gather operations to select un-pruned tokens and
    QKV matrices to reduce matrix sizes ... 3x pruning ratio brings up
    to 2.3x speedup for BERT in batch mode."  The gather/topk cost is
    modelled as a multiplicative overhead on the (reduced) attention
    work.
    """
    speedups: Dict[str, float] = {}
    table = Table(
        "Token pruning implemented on the GPU (BERT benchmarks)",
        ["benchmark", "prune ratio", "GPU speedup"],
    )
    for bench in bert_benchmarks():
        if bench.model.name != "bert-base":
            continue
        pruned, dense = benchmark_traces(bench)
        base = attention_cost(TITAN_XP, dense)
        with_pruning = attention_cost(
            TITAN_XP, pruned, gather_overhead=gather_overhead
        )
        speedup = base.latency_s / with_pruning.latency_s
        speedups[bench.key] = speedup
        table.add_row(bench.key, fmt_ratio(bench.pruning.token_prune_ratio),
                      fmt_ratio(speedup))
    geomean = geometric_mean(list(speedups.values()))
    table.add_note(f"geomean {geomean:.2f}x | paper: up to 2.3x at 3x pruning")
    return GpuPruningResult(speedups, geomean, table)


# ----------------------------------------------------------------------
# Ablation: contribution of each technique in isolation
# ----------------------------------------------------------------------
@dataclass
class AblationResult:
    dram_reduction: Dict[str, float]
    latency_reduction: Dict[str, float]
    table: Table


def ablation_pruning_components(benchmark_key: str = "gpt2-small-wikitext2") -> AblationResult:
    """Isolate each technique's contribution on one GPT-2 benchmark.

    Unlike Fig. 20's cumulative waterfall, each row here enables exactly
    one technique against the dense fp32 datapath baseline, exposing
    which savings are independent and which only pay off combined.
    """
    from ..workloads import get_benchmark

    bench = get_benchmark(benchmark_key)
    dense = dense_trace(bench.model, bench.seq_len, bench.n_generate)
    dense_dec = _stage_filter(dense, True)
    sim = SpAttenSimulator()
    base_report = sim.run_trace(dense_dec)
    base_dram = trace_dram(dense_dec, quant=None).total

    no_pruning = PruningConfig()
    variants = {
        "token pruning only": (
            bench.pruning.with_overrides(head_keep_final=1.0, value_keep=1.0),
            None,
        ),
        "head pruning only": (
            no_pruning.with_overrides(head_keep_final=bench.pruning.head_keep_final),
            None,
        ),
        "local value pruning only": (
            no_pruning.with_overrides(value_keep=bench.pruning.value_keep),
            None,
        ),
        "progressive quantization only": (no_pruning, bench.quant),
        "everything": (bench.pruning, bench.quant),
    }
    dram_red: Dict[str, float] = {}
    lat_red: Dict[str, float] = {}
    table = Table(
        f"Ablation on {benchmark_key} (generation stage, vs dense fp32)",
        ["technique", "DRAM reduction", "latency reduction"],
    )
    for name, (pruning, quant) in variants.items():
        trace = _stage_filter(
            spatten_trace(bench.model, pruning, quant, bench.seq_len,
                          bench.n_generate, bench.lsb_fraction),
            True,
        )
        report = sim.run_trace(trace)
        dram_red[name] = base_dram / trace_dram(trace).total
        lat_red[name] = base_report.latency_s / report.latency_s
        table.add_row(name, fmt_ratio(dram_red[name]), fmt_ratio(lat_red[name]))
    table.add_note("cascade token pruning and progressive quantization carry "
                   "most of the saving; they compound when combined")
    return AblationResult(dram_red, lat_red, table)


# ----------------------------------------------------------------------
# Section IV-B/IV-C — top-k engine vs full sorter
# ----------------------------------------------------------------------
@dataclass
class TopkComparisonResult:
    engine_cycles: float
    sorter_cycles: float
    throughput_ratio: float
    engine_energy_pj: float
    sorter_energy_pj: float
    power_ratio: float
    table: Table


def topk_engine_comparison(
    n: int = 1024, seed: int = 0, trials: int = 16
) -> TopkComparisonResult:
    """Quick-select engine vs Batcher sorter on length-1024 median finds."""
    rng = np.random.default_rng(seed)
    engine = TopKEngine(parallelism=16, seed=seed)
    sorter = BatcherSorter()
    engine_cycles, sorter_cycles = [], []
    engine_pj, sorter_pj = [], []
    # Engine energy per streamed element: comparator + zero-eliminator +
    # FIFO traffic.  The sorter pays only compare-exchange toggles but
    # must additionally stream out the top-k *indices* after sorting
    # (one gather pass at the same 16-wide port).
    engine_pj_per_op = (
        engine.energy_per_compare_pj
        + engine.eliminator.energy_per_element_pj
        + 0.10  # FIFO push+pop
    )
    for _ in range(trials):
        values = rng.random(n)
        result = engine.select(values, n // 2)  # worst case: the median
        engine_cycles.append(result.cycles)
        engine_pj.append(result.comparator_ops * engine_pj_per_op)
        sorted_result = sorter.sort(values)
        sorter_cycles.append(sorted_result.cycles + np.ceil(n / 16))
        sorter_pj.append(sorted_result.energy_pj)

    result = TopkComparisonResult(
        engine_cycles=float(np.mean(engine_cycles)),
        sorter_cycles=float(np.mean(sorter_cycles)),
        throughput_ratio=float(np.mean(sorter_cycles) / np.mean(engine_cycles)),
        engine_energy_pj=float(np.mean(engine_pj)),
        sorter_energy_pj=float(np.mean(sorter_pj)),
        power_ratio=float(
            (np.mean(sorter_pj) / np.mean(sorter_cycles))
            / (np.mean(engine_pj) / np.mean(engine_cycles))
        ),
        table=Table("top-k engine vs Batcher odd-even sorter (n=1024, k=512)",
                    ["unit", "cycles", "energy pJ"]),
    )
    result.table.add_row("quick-select engine (P=16)",
                         f"{result.engine_cycles:.0f}",
                         f"{result.engine_energy_pj:.0f}")
    result.table.add_row("Batcher sorter (64 comparators)",
                         f"{result.sorter_cycles:.0f}",
                         f"{result.sorter_energy_pj:.0f}")
    result.table.add_note(
        f"throughput ratio {result.throughput_ratio:.1f}x, power ratio "
        f"{result.power_ratio:.1f}x (paper: 1.4x higher throughput, "
        f"3.5x smaller power)"
    )
    return result
