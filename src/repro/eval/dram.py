"""DRAM-traffic accounting over workload traces.

Models the SpAtten dataflow of Section IV: the co-processor fetches
Q/K/V from DRAM (they are produced by the host's FC units), holds K and
V of the *surviving* tokens in on-chip SRAM for reuse across queries in
the summarization stage, and writes attention outputs back.

Cascade token pruning removes K/V fetches of pruned tokens, cascade
head pruning removes whole head chunks, local value pruning removes V
vectors, and progressive quantization replaces full-precision fetches
with MSB-only fetches plus an occasional LSB pass.  The *baseline*
traffic (what the 10.0x DRAM-access reduction is measured against) is
the dense fp32 workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import ModelConfig, QuantConfig
from ..core.trace import AttentionTrace, LayerStep

__all__ = ["DramTraffic", "step_attention_bytes", "trace_dram"]

#: Bits per element of the unquantized baseline (fp32, the PyTorch
#: CPU/GPU baselines of Section V-A).
BASELINE_BITS = 32


@dataclass
class DramTraffic:
    """Bytes moved per tensor category."""

    query: float = 0.0
    key: float = 0.0
    value: float = 0.0
    output: float = 0.0

    @property
    def total(self) -> float:
        return self.query + self.key + self.value + self.output

    def __add__(self, other: "DramTraffic") -> "DramTraffic":
        return DramTraffic(
            query=self.query + other.query,
            key=self.key + other.key,
            value=self.value + other.value,
            output=self.output + other.output,
        )


def _fetch_bits(quant: Optional[QuantConfig], lsb_fraction: float) -> float:
    """Average bits fetched per Q/K/V element under the quant setting."""
    if quant is None:
        return float(BASELINE_BITS)
    if not quant.progressive:
        return float(quant.msb_bits)
    return quant.msb_bits + lsb_fraction * quant.lsb_bits


def _output_bits(quant: Optional[QuantConfig]) -> float:
    """Bits per written attention-output element (on-chip width)."""
    if quant is None:
        return float(BASELINE_BITS)
    return float(quant.onchip_bits)


def step_attention_bytes(
    step: LayerStep,
    model: ModelConfig,
    quant: Optional[QuantConfig],
) -> DramTraffic:
    """DRAM bytes of one attention execution.

    * Q: one fetch per live query row (live heads only).
    * K: one fetch per surviving key column per layer — reused across
      queries via the Key SRAM, so not multiplied by L0.
    * V: only the vectors surviving local value pruning.
    * output: written once per query row.
    """
    head_dim = model.head_dim
    fetch_bits = _fetch_bits(quant, step.lsb_fraction)
    out_bits = _output_bits(quant)
    q_elems = step.n_queries * step.n_heads * head_dim
    k_elems = step.n_keys * step.n_heads * head_dim
    v_elems = step.n_values * step.n_heads * head_dim
    out_elems = step.n_queries * step.n_heads * head_dim
    return DramTraffic(
        query=q_elems * fetch_bits / 8.0,
        key=k_elems * fetch_bits / 8.0,
        value=v_elems * fetch_bits / 8.0,
        output=out_elems * out_bits / 8.0,
    )


def trace_dram(
    trace: AttentionTrace,
    quant: Optional[QuantConfig] = "from_trace",
    include_summarize: bool = True,
    include_decode: bool = True,
) -> DramTraffic:
    """Aggregate attention DRAM traffic over a trace.

    ``quant`` defaults to the trace's own setting; pass ``None``
    explicitly to cost the same work shape at fp32 (useful for isolating
    pruning's contribution from quantization's).
    """
    if isinstance(quant, str):
        quant = trace.quant
    total = DramTraffic()
    for step in trace.steps:
        if step.stage == "summarize" and not include_summarize:
            continue
        if step.stage == "decode" and not include_decode:
            continue
        total = total + step_attention_bytes(step, trace.model, quant)
    return total
