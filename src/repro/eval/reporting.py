"""Plain-text table rendering for the experiment harness.

The benchmark files print the same rows the paper's tables and figures
report; this module keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence

__all__ = ["Table", "fmt", "fmt_ratio", "geometric_mean"]


def fmt(value: Any, digits: int = 2) -> str:
    """Human-friendly number formatting (SI-ish magnitudes)."""
    if isinstance(value, str):
        return value
    if value is None:
        return "-"
    try:
        v = float(value)
    except (TypeError, ValueError):
        return str(value)
    if v != v:  # NaN
        return "-"
    if abs(v) >= 1e12:
        return f"{v / 1e12:.{digits}f}T"
    if abs(v) >= 1e9:
        return f"{v / 1e9:.{digits}f}G"
    if abs(v) >= 1e6:
        return f"{v / 1e6:.{digits}f}M"
    if abs(v) >= 1e3:
        return f"{v / 1e3:.{digits}f}K"
    if abs(v) >= 1 or v == 0:
        return f"{v:.{digits}f}"
    return f"{v:.{max(digits, 3)}g}"


def fmt_ratio(value: float, digits: int = 1) -> str:
    return f"{value:.{digits}f}x"


def geometric_mean(values: Sequence[float]) -> float:
    import numpy as np

    values = np.asarray(list(values), dtype=np.float64)
    if len(values) == 0:
        raise ValueError("geometric mean of empty sequence")
    if np.any(values <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(values))))


@dataclass
class Table:
    """A fixed-width text table."""

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([c if isinstance(c, str) else fmt(c) for c in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for idx, cell in enumerate(row):
                widths[idx] = max(widths[idx], len(cell))

        def line(cells: Iterable[str]) -> str:
            return "  ".join(
                cell.ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        parts = [self.title, "=" * len(self.title), line(self.headers), sep]
        parts += [line(row) for row in self.rows]
        for note in self.notes:
            parts.append(f"  * {note}")
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
