"""Accuracy and fidelity metrics for pruned/quantized models.

The paper's quality claim is relative: "no accuracy loss" at the chosen
pruning ratios, with Fig. 21 showing the flat-then-cliff trade-off as
ratios grow.  We measure it two ways:

* **task accuracy** — a linear readout (NumPy softmax regression /
  ridge) trained on the *dense* model's pooled features, evaluated on
  features produced under a SpAtten executor.  This mirrors the paper's
  protocol of finetuning once and then varying inference-time pruning.
* **fidelity** — direct agreement between dense and pruned model
  outputs (top-1 next-token agreement and KL divergence for LM;
  feature distortion for encoders), independent of any readout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import DenseExecutor, TransformerModel
from ..nn.functional import kl_divergence, log_softmax
from ..nn.transformer import AttentionExecutor
from ..workloads.tasks import Dataset, Example

__all__ = [
    "SoftmaxReadout",
    "RidgeReadout",
    "extract_features",
    "extract_pair_features",
    "train_classification_readout",
    "train_regression_readout",
    "classification_accuracy",
    "regression_score",
    "lm_fidelity",
    "LmFidelity",
]


@dataclass
class SoftmaxReadout:
    """Multinomial logistic-regression head (trained with full-batch GD)."""

    weight: np.ndarray  # [d_feature, n_classes]
    bias: np.ndarray  # [n_classes]
    feature_mean: np.ndarray
    feature_scale: np.ndarray

    def logits(self, features: np.ndarray) -> np.ndarray:
        z = (features - self.feature_mean) / self.feature_scale
        return z @ self.weight + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.logits(features), axis=-1)


@dataclass
class RidgeReadout:
    """Closed-form ridge regression head."""

    weight: np.ndarray
    bias: float
    feature_mean: np.ndarray
    feature_scale: np.ndarray

    def predict(self, features: np.ndarray) -> np.ndarray:
        z = (features - self.feature_mean) / self.feature_scale
        return z @ self.weight + self.bias


def extract_features(
    model: TransformerModel,
    examples: Sequence[Example],
    executor_factory: Optional[Callable[[], AttentionExecutor]] = None,
    pooling: str = "cls",
) -> np.ndarray:
    """Pooled sentence features for every example.

    ``executor_factory`` builds a fresh executor per sentence (executors
    carry per-sequence state); ``None`` uses dense attention.
    """
    if executor_factory is None:
        executor_factory = DenseExecutor
    features = [
        model.encode(ex.token_ids, executor=executor_factory()).pooled(pooling)
        for ex in examples
    ]
    return np.stack(features)


def extract_pair_features(
    model: TransformerModel,
    examples: Sequence[Example],
    sep_id: int,
    executor_factory: Optional[Callable[[], AttentionExecutor]] = None,
    feature_slice: Optional[slice] = None,
) -> np.ndarray:
    """Interaction features for sentence-pair tasks (STS-B style).

    Each sentence half (split at the [SEP] token's original position)
    is mean-pooled over its *surviving* tokens, and the pair feature is
    ``[h1 * h2, |h1 - h2|]`` — the standard construction that makes
    similarity linearly readable.  Robust to pruning: halves are
    located by original position, so a pruned [SEP] is harmless.

    ``feature_slice`` restricts pooling to a sub-block of the hidden
    dimension (e.g. the evidence block of a constructed model), which
    keeps the interaction features from being swamped by id-feature
    noise when the readout's training set is small.
    """
    if executor_factory is None:
        executor_factory = DenseExecutor
    features: List[np.ndarray] = []
    for example in examples:
        sep_positions = np.flatnonzero(example.token_ids == sep_id)
        if len(sep_positions) == 0:
            raise ValueError("pair example lacks a [SEP] token")
        sep_pos = int(sep_positions[0])
        result = model.encode(example.token_ids, executor=executor_factory())
        hidden = result.hidden
        if feature_slice is not None:
            hidden = hidden[:, feature_slice]
        left_mask = (result.positions > 0) & (result.positions < sep_pos)
        right_mask = result.positions > sep_pos
        overall = hidden.mean(axis=0)
        h1 = hidden[left_mask].mean(axis=0) if left_mask.any() else overall
        h2 = hidden[right_mask].mean(axis=0) if right_mask.any() else overall
        features.append(np.concatenate([h1 * h2, np.abs(h1 - h2)]))
    return np.stack(features)


def _standardise(features: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    mean = features.mean(axis=0)
    scale = features.std(axis=0) + 1e-8
    return (features - mean) / scale, mean, scale


def train_classification_readout(
    features: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
    l2: float = 1e-3,
    lr: float = 0.5,
    epochs: int = 300,
    seed: int = 0,
) -> SoftmaxReadout:
    """Full-batch gradient-descent softmax regression."""
    z, mean, scale = _standardise(features)
    labels = np.asarray(labels, dtype=np.int64)
    n, d = z.shape
    rng = np.random.default_rng(seed)
    weight = rng.normal(0, 0.01, size=(d, n_classes))
    bias = np.zeros(n_classes)
    onehot = np.eye(n_classes)[labels]
    for _ in range(epochs):
        probs = np.exp(log_softmax(z @ weight + bias, axis=-1))
        grad_logits = (probs - onehot) / n
        grad_w = z.T @ grad_logits + l2 * weight
        grad_b = grad_logits.sum(axis=0)
        weight -= lr * grad_w
        bias -= lr * grad_b
    return SoftmaxReadout(weight, bias, mean, scale)


def train_regression_readout(
    features: np.ndarray, targets: np.ndarray, l2: float = 1e-2
) -> RidgeReadout:
    """Closed-form ridge regression."""
    z, mean, scale = _standardise(features)
    targets = np.asarray(targets, dtype=np.float64)
    t_mean = float(targets.mean())
    d = z.shape[1]
    gram = z.T @ z + l2 * len(z) * np.eye(d)
    weight = np.linalg.solve(gram, z.T @ (targets - t_mean))
    return RidgeReadout(weight, t_mean, mean, scale)


def classification_accuracy(
    model: TransformerModel,
    dataset: Dataset,
    readout: SoftmaxReadout,
    executor_factory: Optional[Callable[[], AttentionExecutor]] = None,
    split: str = "test",
) -> float:
    """Accuracy of the (dense-trained) readout under an executor."""
    examples = getattr(dataset, split)
    features = extract_features(model, examples, executor_factory)
    labels = np.asarray([int(ex.label) for ex in examples])
    return float(np.mean(readout.predict(features) == labels))


def regression_score(
    model: TransformerModel,
    dataset: Dataset,
    readout: RidgeReadout,
    executor_factory: Optional[Callable[[], AttentionExecutor]] = None,
    split: str = "test",
) -> float:
    """Pearson correlation of predictions with targets (STS-B metric)."""
    examples = getattr(dataset, split)
    features = extract_features(model, examples, executor_factory)
    targets = np.asarray([ex.label for ex in examples])
    preds = readout.predict(features)
    if np.std(preds) < 1e-12 or np.std(targets) < 1e-12:
        return 0.0
    return float(np.corrcoef(preds, targets)[0, 1])


@dataclass
class LmFidelity:
    """LM quality of a pruned model relative to the dense one."""

    top1_agreement: float
    top5_agreement: float
    mean_kl: float
    dense_entropy: float

    @property
    def accuracy_loss(self) -> float:
        """Fractional loss of top-5 containment (0.0 == identical).

        Top-5 containment (is the dense model's argmax still among the
        pruned model's five most likely tokens?) tracks the perplexity
        deltas the paper reports without the brittleness of exact
        argmax agreement on a sharp distribution."""
        return 1.0 - self.top5_agreement


def lm_fidelity(
    model: TransformerModel,
    prompts: Sequence[np.ndarray],
    executor_factory: Callable[[], AttentionExecutor],
) -> LmFidelity:
    """Compare pruned vs dense next-token distributions over prompts."""
    agreements: List[float] = []
    top5: List[float] = []
    kls: List[float] = []
    entropies: List[float] = []
    for prompt in prompts:
        dense = model.next_token_distribution(prompt, executor=DenseExecutor())
        pruned = model.next_token_distribution(
            prompt, executor=executor_factory()
        )
        dense_top = int(np.argmax(dense))
        agreements.append(float(dense_top == np.argmax(pruned)))
        top5.append(float(dense_top in np.argsort(pruned)[-5:]))
        kls.append(kl_divergence(dense, pruned))
        entropies.append(float(-np.sum(dense * np.log(dense + 1e-12))))
    return LmFidelity(
        top1_agreement=float(np.mean(agreements)),
        top5_agreement=float(np.mean(top5)),
        mean_kl=float(np.mean(kls)),
        dense_entropy=float(np.mean(entropies)),
    )
