"""Evaluation utilities: FLOPs/DRAM accounting, accuracy/fidelity
metrics, and reporting.

The per-figure/table experiment runners live in
:mod:`repro.eval.experiments` and are imported explicitly (not here) to
keep the dependency graph acyclic: `repro.hardware` uses the traffic
accounting in this package.
"""

from .accuracy import (
    LmFidelity,
    RidgeReadout,
    SoftmaxReadout,
    classification_accuracy,
    extract_features,
    lm_fidelity,
    regression_score,
    train_classification_readout,
    train_regression_readout,
)
from .dram import BASELINE_BITS, DramTraffic, step_attention_bytes, trace_dram
from .flops import FlopsBreakdown, step_flops, trace_flops

__all__ = [
    "LmFidelity",
    "RidgeReadout",
    "SoftmaxReadout",
    "classification_accuracy",
    "extract_features",
    "lm_fidelity",
    "regression_score",
    "train_classification_readout",
    "train_regression_readout",
    "BASELINE_BITS",
    "DramTraffic",
    "step_attention_bytes",
    "trace_dram",
    "FlopsBreakdown",
    "step_flops",
    "trace_flops",
]
