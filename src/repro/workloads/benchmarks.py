"""Registry of the paper's 30 evaluation benchmarks (Section V-A).

22 discriminative benchmarks — BERT-Base and BERT-Large on the nine
GLUE tasks plus SQuAD v1.1/v2.0 — and 8 generative benchmarks — GPT-2
Small and Medium on WikiText-2, WikiText-103, Penn Tree Bank, and
One-Billion-Word language modelling.

Each entry pins the workload geometry (average dev-set sentence length
for BERT; 992-token prompt + 32 generated tokens for GPT-2, matching
Section V-A) and the per-task SpAtten settings: token/head/value keep
ratios ("for each task, we try multiple sets of token/head pruning
ratios ... to not lose accuracy") and the quantization mode (static for
BERT, progressive MSB+LSB for GPT-2, Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..config import (
    BERT_BASE,
    BERT_LARGE,
    GPT2_MEDIUM,
    GPT2_SMALL,
    ModelConfig,
    PruningConfig,
    QuantConfig,
)
from ..core.trace import DEFAULT_LSB_FRACTION

__all__ = [
    "Benchmark",
    "all_benchmarks",
    "bert_benchmarks",
    "gpt2_benchmarks",
    "get_benchmark",
    "GPT2_PROMPT_LEN",
    "GPT2_GEN_TOKENS",
]

#: GPT-2 workload shape (Section V-A: "we set the initial length of the
#: input sentence as 992 and measure the latency of generating 32
#: tokens").
GPT2_PROMPT_LEN = 992
GPT2_GEN_TOKENS = 32


@dataclass(frozen=True)
class Benchmark:
    """One (model, task) evaluation point.

    Attributes:
        key: canonical name, e.g. ``"bert-base-sst-2"``.
        model: full paper geometry (used by trace-level experiments).
        task: dataset name.
        family: ``"bert"`` or ``"gpt2"``.
        seq_len: input length (avg dev-set length / prompt length).
        n_generate: generated tokens (0 for discriminative models).
        pruning: per-task SpAtten pruning setting.
        quant: per-task quantization setting.
        lsb_fraction: expected LSB-refetch rate for analytic traces.
        n_classes: label cardinality (classification tasks).
    """

    key: str
    model: ModelConfig
    task: str
    family: str
    seq_len: int
    n_generate: int
    pruning: PruningConfig
    quant: QuantConfig
    lsb_fraction: float
    n_classes: int = 2

    @property
    def is_generative(self) -> bool:
        return self.n_generate > 0


# Average dev-set sentence lengths of the BERT tasks (tokens; the GLUE
# and SQuAD numbers the paper uses to set input lengths, Section V-A).
_BERT_TASK_LENGTHS: Dict[str, int] = {
    "cola": 11,
    "sst-2": 25,
    "mrpc": 53,
    "sts-b": 27,
    "qqp": 30,
    "mnli-m": 39,
    "mnli-mm": 39,
    "qnli": 50,
    "rte": 64,
    "squad-v1": 170,
    "squad-v2": 170,
}

# Per-task token keep fractions: longer inputs are more redundant and
# tolerate more pruning (Section III-A).  Values chosen to land the
# paper's aggregate reductions (~1.5x tokens+values on BERT, 3.8x on
# GPT-2) while Fig. 21-style sweeps confirm no accuracy loss.
_BERT_TOKEN_KEEP: Dict[str, float] = {
    "cola": 0.80,
    "sst-2": 0.72,
    "mrpc": 0.60,
    "sts-b": 0.70,
    "qqp": 0.68,
    "mnli-m": 0.65,
    "mnli-mm": 0.65,
    "qnli": 0.62,
    "rte": 0.58,
    "squad-v1": 0.50,
    "squad-v2": 0.50,
}

_BERT_N_CLASSES: Dict[str, int] = {
    "cola": 2, "sst-2": 2, "mrpc": 2, "sts-b": 0, "qqp": 2,
    "mnli-m": 3, "mnli-mm": 3, "qnli": 2, "rte": 2,
    "squad-v1": 2, "squad-v2": 2,
}

_GPT2_TASKS: List[str] = ["wikitext2", "wikitext103", "ptb", "1bw"]


def _bert_pruning(task: str, model: ModelConfig) -> PruningConfig:
    # 12-head models prune to 9 heads, 16-head models to 13 (~1.15x).
    head_keep = 0.75 if model.n_heads == 12 else 0.81
    return PruningConfig(
        token_keep_final=_BERT_TOKEN_KEEP[task],
        head_keep_final=head_keep,
        value_keep=0.90,
        token_front_frac=0.15,
        head_front_frac=0.30,
    )


def _gpt2_pruning(model: ModelConfig) -> PruningConfig:
    head_keep = 0.83 if model.n_heads == 12 else 0.875
    return PruningConfig(
        token_keep_final=0.26,  # ~3.8x with local value pruning on top
        head_keep_final=head_keep,
        value_keep=0.85,
        token_front_frac=0.15,
        head_front_frac=0.30,
    )


#: BERT uses static quantization (Section III-D: "For BERT, we only
#: apply static quantization because BERT models are computation-
#: bounded"); GPT-2 uses progressive 6+4 (a "common combination").
_BERT_QUANT = QuantConfig(msb_bits=8, lsb_bits=4, progressive=False)
_GPT2_QUANT = QuantConfig(msb_bits=6, lsb_bits=4, progressive=True, threshold=0.1)


def _build_registry() -> Dict[str, Benchmark]:
    registry: Dict[str, Benchmark] = {}
    for model in (BERT_BASE, BERT_LARGE):
        for task, length in _BERT_TASK_LENGTHS.items():
            key = f"{model.name}-{task}"
            registry[key] = Benchmark(
                key=key,
                model=model,
                task=task,
                family="bert",
                seq_len=length,
                n_generate=0,
                pruning=_bert_pruning(task, model),
                quant=_BERT_QUANT,
                lsb_fraction=0.0,
                n_classes=_BERT_N_CLASSES[task],
            )
    for model in (GPT2_SMALL, GPT2_MEDIUM):
        for task in _GPT2_TASKS:
            key = f"{model.name}-{task}"
            registry[key] = Benchmark(
                key=key,
                model=model,
                task=task,
                family="gpt2",
                seq_len=GPT2_PROMPT_LEN,
                n_generate=GPT2_GEN_TOKENS,
                pruning=_gpt2_pruning(model),
                quant=_GPT2_QUANT,
                lsb_fraction=DEFAULT_LSB_FRACTION,
                n_classes=0,
            )
    return registry


_REGISTRY = _build_registry()


def all_benchmarks() -> List[Benchmark]:
    """All 30 benchmarks in the paper's presentation order."""
    return list(_REGISTRY.values())


def bert_benchmarks() -> List[Benchmark]:
    return [b for b in _REGISTRY.values() if b.family == "bert"]


def gpt2_benchmarks() -> List[Benchmark]:
    return [b for b in _REGISTRY.values() if b.family == "gpt2"]


def get_benchmark(key: str) -> Benchmark:
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown benchmark {key!r}; known: {known}") from None
