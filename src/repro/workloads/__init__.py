"""Synthetic workloads: vocabularies, corpora, tasks, and the registry
of the paper's 30 evaluation benchmarks."""

from .benchmarks import (
    GPT2_GEN_TOKENS,
    GPT2_PROMPT_LEN,
    Benchmark,
    all_benchmarks,
    bert_benchmarks,
    get_benchmark,
    gpt2_benchmarks,
)
from .model_zoo import (
    accuracy_scale_config,
    build_task_model,
    default_accuracy_vocab,
)
from .tasks import (
    Dataset,
    Example,
    lm_prompts,
    make_classification_dataset,
    make_lm_corpus,
    make_regression_dataset,
)
from .traffic import (
    SEED_SCHEMES,
    TrafficClass,
    heterogeneous_request_trace,
    poisson_arrival_times,
    synthetic_request_trace,
)
from .vocab import CONTENT_EXEMPLARS, FUNCTION_WORDS, Vocabulary, build_vocabulary

__all__ = [
    "GPT2_GEN_TOKENS",
    "GPT2_PROMPT_LEN",
    "Benchmark",
    "all_benchmarks",
    "bert_benchmarks",
    "get_benchmark",
    "gpt2_benchmarks",
    "accuracy_scale_config",
    "build_task_model",
    "default_accuracy_vocab",
    "Dataset",
    "Example",
    "lm_prompts",
    "make_classification_dataset",
    "make_lm_corpus",
    "make_regression_dataset",
    "poisson_arrival_times",
    "synthetic_request_trace",
    "SEED_SCHEMES",
    "TrafficClass",
    "heterogeneous_request_trace",
    "CONTENT_EXEMPLARS",
    "FUNCTION_WORDS",
    "Vocabulary",
    "build_vocabulary",
]
