"""Model construction helpers tying vocabularies to semantic weights.

Two usage scales:

* **paper scale** — BERT-Base/Large, GPT-2-Small/Medium geometries are
  used *as configurations only* by the trace-driven performance
  experiments (no weights are materialised: a BERT-Large float64
  parameter set would be ~1.2 GB and the performance results depend only
  on work shapes).
* **accuracy scale** — reduced geometries (:func:`accuracy_scale_config`)
  with full semantic weights, used for every experiment that measures
  output quality (Fig. 7 error statistics, Fig. 21 trade-off curves,
  Fig. 22/23 visualisations, executor-vs-analytic validation).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..config import ModelConfig
from ..nn import (
    SemanticModelInfo,
    SemanticSpec,
    TransformerModel,
    build_semantic_model,
)
from .vocab import Vocabulary, build_vocabulary

__all__ = [
    "accuracy_scale_config",
    "build_task_model",
    "default_accuracy_vocab",
]


def accuracy_scale_config(
    base: ModelConfig,
    vocab_size: int,
    n_layers: Optional[int] = None,
    d_model: int = 128,
    n_heads: int = 8,
    max_seq_len: int = 1024,
) -> ModelConfig:
    """Shrink a paper geometry to an accuracy-experiment scale.

    Keeps the layer count (unless overridden) so cascade schedules span
    the same depth profile, but reduces width — accuracy trends under
    pruning depend on attention structure, not on raw dimension.
    """
    return base.with_overrides(
        name=f"{base.name}-acc",
        n_layers=n_layers if n_layers is not None else base.n_layers,
        d_model=d_model,
        n_heads=n_heads,
        d_ff=4 * d_model,
        vocab_size=vocab_size,
        max_seq_len=max_seq_len,
    )


def default_accuracy_vocab(n_classes: int = 2, seed: int = 0) -> Vocabulary:
    """The standard vocabulary for accuracy-scale experiments."""
    return build_vocabulary(size=512, n_classes=n_classes, seed=seed)


def build_task_model(
    config: ModelConfig,
    vocab: Vocabulary,
    task_type: str = "classification",
    seed: int = 0,
    lm_signature_dim: int = 16,
    **semantic_kwargs,
) -> Tuple[TransformerModel, SemanticModelInfo]:
    """Construct a semantic model aligned with a vocabulary's structure.

    Args:
        config: model geometry (``config.vocab_size`` must equal
            ``len(vocab)``).
        vocab: the task vocabulary (salience + class structure).
        task_type: ``"classification"``/``"regression"`` use class
            one-hot evidence; ``"lm"`` appends a per-token topic
            signature so the LM head can distinguish content words.
        seed: weight-construction seed.
        semantic_kwargs: forwarded to
            :func:`repro.nn.build_semantic_model` (gains, noise, ...).
    """
    if config.vocab_size != len(vocab):
        raise ValueError(
            f"config.vocab_size={config.vocab_size} != len(vocab)={len(vocab)}"
        )
    if task_type == "classification":
        evidence = vocab.evidence_matrix()
    elif task_type in ("regression", "lm"):
        # Pair-similarity regression and language modelling both need
        # *word-identity* information in the value path (overlap /
        # next-word prediction), not just class mass: append per-token
        # signatures to the class one-hots.
        evidence = vocab.evidence_matrix(
            evidence_dim=vocab.n_classes + lm_signature_dim, seed=seed + 1
        )
    else:
        raise ValueError(f"unknown task_type {task_type!r}")
    spec = SemanticSpec(salience=vocab.salience, evidence=evidence)
    # Positional/local heads are far more prominent in autoregressive
    # decoders (where recency matters) than in bidirectional encoders;
    # default the local-head fraction accordingly.
    semantic_kwargs.setdefault(
        "local_frac", 0.35 if task_type == "lm" else 0.15
    )
    params, info = build_semantic_model(config, spec, seed=seed, **semantic_kwargs)
    if task_type == "lm":
        # Explicit LM head reading the evidence subspace: next-token
        # logits are driven by the topic/evidence state the attention
        # layers accumulated, not by incidental id-feature alignments.
        import numpy as np

        from ..nn.weights import EVIDENCE_START

        rng = np.random.default_rng(seed + 7)
        lm_head = rng.normal(0, 0.02, size=(config.d_model, config.vocab_size))
        e_dim = spec.evidence_dim
        lm_head[EVIDENCE_START : EVIDENCE_START + e_dim, :] += 4.0 * evidence.T
        params.lm_head = lm_head
    return TransformerModel(config, params), info
