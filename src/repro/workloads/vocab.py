"""Synthetic vocabulary with linguistic structure.

The paper's pruning exploits the redundancy of natural language:
function words (articles, prepositions, auxiliaries) receive little
attention and are safely prunable, while content words carry the
meaning.  This module builds a vocabulary that reproduces that split:

* a curated list of real English *function words* with low salience;
* *content words* (real exemplars plus synthetic fillers) with high
  salience, partitioned into classes/topics that carry evidence;
* special tokens ([CLS], [SEP], [PAD]).

Word frequencies follow a Zipf law with function words occupying the
high-frequency head — matching the empirical fact that most tokens in a
sentence are structural (paper Fig. 1 prunes an 11-token sentence down
to "film perfect").
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["Vocabulary", "build_vocabulary", "FUNCTION_WORDS", "CONTENT_EXEMPLARS"]

#: Real English function words: the prunable skeleton of sentences.
FUNCTION_WORDS: List[str] = [
    "the", "a", "an", "is", "are", "was", "were", "be", "been", "being",
    "to", "of", "in", "on", "at", "by", "for", "with", "about", "as",
    "it", "its", "this", "that", "these", "those", "he", "she", "they",
    "we", "you", "i", "his", "her", "their", "our", "your", "my", "and",
    "or", "but", "if", "while", "when", "where", "which", "who", "whom",
    "what", "how", "than", "then", "so", "too", "very", "just", "also",
    "not", "no", "nor", "do", "does", "did", "have", "has", "had", "will",
    "would", "can", "could", "should", "shall", "may", "might", "must",
    "there", "here", "all", "any", "some", "such", "own", "same", "both",
    "each", "few", "more", "most", "other", "into", "through", "during",
    "before", "after", "above", "below", "up", "down", "out", "off",
    "over", "under", "again", "once", "am",
]

#: Real content-word exemplars (from the paper's Fig. 22 sentences plus
#: generic sentiment/topic words) so visualisations read naturally.
CONTENT_EXEMPLARS: List[str] = [
    "film", "movie", "perfect", "wonderful", "treat", "visual", "admire",
    "remember", "confusion", "resolve", "conception", "cat", "upset",
    "bothering", "communicate", "sound", "poet", "dynasty", "translate",
    "english", "styles", "efforts", "work", "great", "terrible", "awful",
    "boring", "brilliant", "masterpiece", "disaster", "researcher",
    "architecture", "computer", "published", "papers", "famous",
    "attention", "pruning", "quantization", "hardware", "language",
    "model", "token", "sparse", "accelerator", "energy", "memory",
    "sure", "watching", "trying", "tell", "wants", "variety", "recently",
    "tang", "du", "fu", "used", "movies", "stories", "delight", "scenes",
]

CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
PAD_TOKEN = "[PAD]"


@dataclass
class Vocabulary:
    """Token inventory with salience and class/topic structure.

    Attributes:
        words: id -> surface string.
        salience: id -> attention salience in [0, 1] (see
            :class:`repro.nn.SemanticSpec`).
        class_of: id -> class/topic index, or -1 for contentless tokens.
        n_classes: number of classes/topics content words split into.
        zipf_weights: unnormalised sampling weights (Zipfian).
    """

    words: List[str]
    salience: np.ndarray
    class_of: np.ndarray
    n_classes: int
    zipf_weights: np.ndarray
    _index: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._index:
            self._index = {w: i for i, w in enumerate(self.words)}

    def __len__(self) -> int:
        return len(self.words)

    @property
    def cls_id(self) -> int:
        return self._index[CLS_TOKEN]

    @property
    def sep_id(self) -> int:
        return self._index[SEP_TOKEN]

    @property
    def pad_id(self) -> int:
        return self._index[PAD_TOKEN]

    @property
    def function_ids(self) -> np.ndarray:
        return np.flatnonzero((self.class_of < 0) & (self.salience < 0.3))

    @property
    def content_ids(self) -> np.ndarray:
        return np.flatnonzero(self.salience >= 0.3)

    def content_ids_of_class(self, class_idx: int) -> np.ndarray:
        return np.flatnonzero(self.class_of == class_idx)

    def id_of(self, word: str) -> int:
        """Lookup with OOV fallback: unknown words hash to a content slot.

        This lets the Fig. 22 visualisations tokenise arbitrary English
        sentences: unknown words behave as (moderately salient) content
        words.
        """
        word = word.lower().strip()
        if word in self._index:
            return self._index[word]
        content = self.content_ids
        # crc32, not hash(): Python salts str hashing per process, which
        # made benchmark tables differ between identical runs.
        return int(content[zlib.crc32(word.encode("utf-8")) % len(content)])

    def encode(self, text: str, add_cls: bool = False) -> np.ndarray:
        """Whitespace/punctuation-light tokenisation to ids."""
        cleaned = "".join(c if (c.isalnum() or c.isspace()) else " " for c in text)
        ids = [self.id_of(w) for w in cleaned.split() if w]
        if add_cls:
            ids = [self.cls_id] + ids
        return np.asarray(ids, dtype=np.int64)

    def decode(self, ids: Sequence[int]) -> List[str]:
        return [self.words[int(i)] for i in ids]

    def evidence_matrix(
        self, evidence_dim: Optional[int] = None, seed: int = 0
    ) -> np.ndarray:
        """Per-token evidence vectors for :class:`repro.nn.SemanticSpec`.

        Classification vocabularies (``evidence_dim == n_classes`` by
        default) use one-hot class rows; larger ``evidence_dim`` values
        append a random topic signature so LM models can distinguish
        individual content words.
        """
        if evidence_dim is None:
            evidence_dim = self.n_classes
        if evidence_dim < self.n_classes:
            raise ValueError("evidence_dim must cover all classes")
        rng = np.random.default_rng(seed)
        evidence = np.zeros((len(self), evidence_dim))
        for token_id in range(len(self)):
            cls = int(self.class_of[token_id])
            if cls >= 0:
                evidence[token_id, cls] = 1.0
                if evidence_dim > self.n_classes:
                    signature = rng.normal(
                        0, 0.5, size=evidence_dim - self.n_classes
                    )
                    evidence[token_id, self.n_classes:] = signature
        return evidence


def build_vocabulary(
    size: int = 512,
    n_classes: int = 2,
    content_fraction: float = 0.5,
    neutral_content_fraction: float = 0.2,
    seed: int = 0,
) -> Vocabulary:
    """Construct a synthetic vocabulary.

    Layout: ``[CLS] [SEP] [PAD]``, then all function words (real list,
    padded with synthetic ``fw-K`` fillers if needed), then content
    words.  Content words are assigned round-robin to classes, except a
    ``neutral_content_fraction`` that are salient but evidence-free
    (realistic: not every noun determines the label).

    Args:
        size: total vocabulary size.
        n_classes: classes/topics for evidence assignment.
        content_fraction: fraction of non-special tokens that are content
            words.
        neutral_content_fraction: fraction *of content words* carrying no
            class evidence.
        seed: RNG seed for salience jitter.
    """
    if size < len(FUNCTION_WORDS) + 32:
        raise ValueError(f"vocabulary size {size} too small")
    rng = np.random.default_rng(seed)

    words: List[str] = [CLS_TOKEN, SEP_TOKEN, PAD_TOKEN]
    n_specials = len(words)
    n_regular = size - n_specials
    n_content = int(round(content_fraction * n_regular))
    n_function = n_regular - n_content

    function_words = list(FUNCTION_WORDS[:n_function])
    for extra in range(n_function - len(function_words)):
        function_words.append(f"fw-{extra}")
    content_words = list(CONTENT_EXEMPLARS[:n_content])
    for extra in range(n_content - len(content_words)):
        content_words.append(f"cw-{extra}")
    words += function_words + content_words

    salience = np.zeros(size)
    class_of = np.full(size, -1, dtype=np.int64)
    # Specials: [CLS] is salient enough to collect attention for pooling
    # but carries no evidence; [SEP]/[PAD] are ignorable.
    salience[0] = 0.45
    salience[1] = 0.05
    salience[2] = 0.0

    fn_slice = slice(n_specials, n_specials + n_function)
    salience[fn_slice] = rng.uniform(0.01, 0.15, size=n_function)

    ct_slice = slice(n_specials + n_function, size)
    salience[ct_slice] = rng.uniform(0.55, 1.0, size=n_content)
    n_neutral = int(round(neutral_content_fraction * n_content))
    content_ids = np.arange(ct_slice.start, ct_slice.stop)
    carriers = content_ids[n_neutral:]
    class_of[carriers] = np.arange(len(carriers)) % n_classes

    # Zipf frequencies: function words take the head ranks.
    ranks = np.empty(size)
    ranks[:n_specials] = 1e9  # specials never sampled from the corpus mix
    ranks[fn_slice] = np.arange(1, n_function + 1)
    ranks[ct_slice] = np.arange(n_function + 1, n_regular + 1)
    zipf_weights = 1.0 / ranks**1.1
    zipf_weights[:n_specials] = 0.0

    return Vocabulary(
        words=words,
        salience=salience,
        class_of=class_of,
        n_classes=n_classes,
        zipf_weights=zipf_weights,
    )
