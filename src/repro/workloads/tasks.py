"""Synthetic task datasets mirroring the paper's 30-benchmark suite.

Three task families cover the paper's evaluation:

* sentence classification (GLUE-style: SST-2, CoLA, MNLI, ...) —
  the label is carried by class-evidence content words scattered in a
  function-word matrix;
* sentence-pair similarity regression (STS-B-style) — the label is the
  content-word overlap between the two sentences;
* language modelling (WikiText/PTB/1BW-style) — a topic-segmented
  Zipfian stream where the next content word is predictable from the
  running topic.

Sentence lengths are sampled around the per-task averages of the real
dev sets, because the paper's pruning ratios scale with sentence length
(Section V-A: GPT-2's long inputs allow larger ratios than BERT's).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .vocab import Vocabulary

__all__ = [
    "Example",
    "Dataset",
    "make_classification_dataset",
    "make_regression_dataset",
    "make_lm_corpus",
    "lm_prompts",
]


@dataclass
class Example:
    """One task instance: token ids plus a label (int or float)."""

    token_ids: np.ndarray
    label: float

    @property
    def length(self) -> int:
        return len(self.token_ids)


@dataclass
class Dataset:
    """A split task dataset."""

    name: str
    task_type: str  # "classification" | "regression" | "lm"
    n_classes: int
    train: List[Example] = field(default_factory=list)
    test: List[Example] = field(default_factory=list)

    @property
    def mean_length(self) -> float:
        examples = self.train + self.test
        return float(np.mean([e.length for e in examples])) if examples else 0.0


def _sample_length(rng: np.random.Generator, avg_len: int, min_len: int = 4) -> int:
    """Length with realistic right-skew (clipped lognormal)."""
    length = int(round(rng.lognormal(np.log(max(avg_len, min_len)), 0.25)))
    return max(min_len, min(length, avg_len * 3))


def _compose_sentence(
    vocab: Vocabulary,
    rng: np.random.Generator,
    length: int,
    class_idx: Optional[int],
    content_fraction: float = 0.35,
    signal_purity: float = 0.75,
) -> np.ndarray:
    """A sentence: Zipfian function words + planted content words.

    ``signal_purity`` of the content slots carry the target class's
    evidence words; the rest are neutral or off-class distractors, so a
    classifier genuinely has to aggregate evidence (and over-pruning
    genuinely hurts).
    """
    n_content = max(1, int(round(content_fraction * length)))
    n_function = length - n_content
    fn_ids = vocab.function_ids
    fn_weights = vocab.zipf_weights[fn_ids]
    fn_weights = fn_weights / fn_weights.sum()
    tokens = list(rng.choice(fn_ids, size=n_function, p=fn_weights))

    content_pool = vocab.content_ids
    for _ in range(n_content):
        if class_idx is not None and rng.random() < signal_purity:
            pool = vocab.content_ids_of_class(class_idx)
        else:
            pool = content_pool
        tokens.append(int(rng.choice(pool)))
    rng.shuffle(tokens)
    return np.asarray(tokens, dtype=np.int64)


def make_classification_dataset(
    vocab: Vocabulary,
    name: str,
    avg_len: int,
    n_train: int = 128,
    n_test: int = 64,
    signal_purity: float = 0.75,
    seed: int = 0,
) -> Dataset:
    """GLUE-style sentence classification with a [CLS] prefix."""
    rng = np.random.default_rng(seed)
    dataset = Dataset(name, "classification", vocab.n_classes)
    for split, count in (("train", n_train), ("test", n_test)):
        examples = getattr(dataset, split)
        for _ in range(count):
            label = int(rng.integers(vocab.n_classes))
            body = _compose_sentence(
                vocab, rng, _sample_length(rng, avg_len) - 1, label,
                signal_purity=signal_purity,
            )
            ids = np.concatenate([[vocab.cls_id], body])
            examples.append(Example(ids, float(label)))
    return dataset


def make_regression_dataset(
    vocab: Vocabulary,
    name: str,
    avg_len: int,
    n_train: int = 128,
    n_test: int = 64,
    seed: int = 0,
) -> Dataset:
    """STS-B-style sentence-pair similarity regression.

    Two sentences are joined with [SEP]; the label in ``[1, 5]`` is
    driven by the fraction of content words the second sentence copies
    from the first — semantic similarity reduced to evidence overlap.
    """
    rng = np.random.default_rng(seed)
    dataset = Dataset(name, "regression", 0)
    half = max(4, avg_len // 2)
    for split, count in (("train", n_train), ("test", n_test)):
        examples = getattr(dataset, split)
        for _ in range(count):
            overlap = float(rng.random())
            first = _compose_sentence(vocab, rng, _sample_length(rng, half), None)
            second = _compose_sentence(vocab, rng, _sample_length(rng, half), None)
            first_content = [t for t in first if vocab.salience[t] >= 0.3]
            if first_content:
                second = second.copy()
                content_slots = [
                    i for i, t in enumerate(second) if vocab.salience[t] >= 0.3
                ]
                n_copy = int(round(overlap * len(content_slots)))
                for slot in content_slots[:n_copy]:
                    second[slot] = int(rng.choice(first_content))
            ids = np.concatenate(
                [[vocab.cls_id], first, [vocab.sep_id], second]
            )
            label = 1.0 + 4.0 * overlap
            examples.append(Example(ids, label))
    return dataset


def make_lm_corpus(
    vocab: Vocabulary,
    n_tokens: int,
    mean_segment: int = 24,
    content_fraction: float = 0.35,
    seed: int = 0,
) -> np.ndarray:
    """Topic-segmented Zipfian token stream for LM benchmarks.

    The stream alternates topic segments (geometric lengths); within a
    segment, content slots draw from the topic's evidence class.  A
    model that attends to the salient context tokens can therefore
    predict upcoming content words — and pruning those tokens away
    measurably damages the next-token distribution (Fig. 21's token
    curve).
    """
    rng = np.random.default_rng(seed)
    fn_ids = vocab.function_ids
    fn_weights = vocab.zipf_weights[fn_ids]
    fn_weights = fn_weights / fn_weights.sum()

    tokens: List[int] = []
    while len(tokens) < n_tokens:
        topic = int(rng.integers(vocab.n_classes))
        segment_len = 1 + int(rng.geometric(1.0 / mean_segment))
        topic_pool = vocab.content_ids_of_class(topic)
        for _ in range(segment_len):
            if rng.random() < content_fraction:
                tokens.append(int(rng.choice(topic_pool)))
            else:
                tokens.append(int(rng.choice(fn_ids, p=fn_weights)))
    return np.asarray(tokens[:n_tokens], dtype=np.int64)


def lm_prompts(
    corpus: np.ndarray, prompt_len: int, n_prompts: int, seed: int = 0
) -> List[np.ndarray]:
    """Random fixed-length windows of the corpus (LM evaluation probes)."""
    if len(corpus) < prompt_len:
        raise ValueError("corpus shorter than prompt length")
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, len(corpus) - prompt_len + 1, size=n_prompts)
    return [corpus[s : s + prompt_len].copy() for s in starts]
