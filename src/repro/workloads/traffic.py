"""Synthetic arrival traces for the serving engine.

Requests arrive as a Poisson process (exponential inter-arrival times at
a configurable rate), with prompts cut from the topic-segmented LM
corpus and per-request decode budgets and priorities drawn from small
ranges — the serving analogue of the task generators in
:mod:`repro.workloads.tasks`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..serving.request import Request
from .tasks import lm_prompts

__all__ = ["poisson_arrival_times", "synthetic_request_trace"]


def poisson_arrival_times(
    n_requests: int, rate_per_s: float, seed: int = 0
) -> np.ndarray:
    """Arrival timestamps of a Poisson process with the given rate."""
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_s, size=n_requests)
    return np.cumsum(gaps)


def synthetic_request_trace(
    corpus: np.ndarray,
    n_requests: int,
    rate_per_s: float,
    prompt_len: int = 48,
    max_new_tokens: Tuple[int, int] = (8, 24),
    n_priorities: int = 1,
    seed: int = 0,
) -> List[Request]:
    """A full arrival trace: prompts, budgets, priorities, timestamps.

    Args:
        corpus: LM token stream (:func:`repro.workloads.make_lm_corpus`).
        n_requests: trace length.
        rate_per_s: Poisson arrival rate (requests per simulated second).
        prompt_len: tokens per prompt (windows of the corpus).
        max_new_tokens: inclusive ``(low, high)`` decode-budget range.
        n_priorities: priorities drawn uniformly from ``[0, n)``.
        seed: RNG seed (prompts, budgets, priorities, and arrivals all
            derive from it, so traces are reproducible).
    """
    low, high = max_new_tokens
    if not 1 <= low <= high:
        raise ValueError("max_new_tokens range must satisfy 1 <= low <= high")
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrival_times(n_requests, rate_per_s, seed=seed + 1)
    prompts = lm_prompts(corpus, prompt_len, n_requests, seed=seed + 2)
    return [
        Request(
            request_id=idx,
            prompt_ids=prompts[idx],
            max_new_tokens=int(rng.integers(low, high + 1)),
            arrival_time=float(arrivals[idx]),
            priority=int(rng.integers(0, max(1, n_priorities))),
        )
        for idx in range(n_requests)
    ]
