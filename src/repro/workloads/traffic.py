"""Synthetic arrival traces for the serving engine and the cluster.

Requests arrive as a Poisson process (exponential inter-arrival times at
a configurable rate), with prompts cut from the topic-segmented LM
corpus and per-request decode budgets and priorities drawn from small
ranges — the serving analogue of the task generators in
:mod:`repro.workloads.tasks`.

Two trace shapes:

* :func:`synthetic_request_trace` — homogeneous: every request shares
  one prompt length and decode-budget range and inherits the serving
  engine's pruning schedule.
* :func:`heterogeneous_request_trace` — a weighted mix of
  :class:`TrafficClass` request classes, each with its own prompt
  length, decode budget, priority, and **per-request cascade
  schedule** (:attr:`repro.serving.request.Request.pruning`).  Skewed
  mixes — many cheap heavily-pruned requests plus a minority of long
  dense ones — are what make the cluster's schedule-aware routing
  measurably better than round-robin.

Seed schemes
------------

Each trace draws from several independent random streams (class
assignment/budgets, arrival times, prompts).  ``seed_scheme`` selects
how those streams derive from the trace seed:

* ``"legacy"`` (default) — adjacent integer seeds (``seed``,
  ``seed + 1``, ...), which keeps every checked-in benchmark trace
  bit-identical.  **Caveat:** traces built with seeds ``s`` and
  ``s + 1`` share underlying bit streams (trace ``s``'s arrival RNG is
  trace ``s + 1``'s base RNG), so sweeps over consecutive seeds are
  cross-correlated.
* ``"spawn"`` — ``np.random.SeedSequence(seed).spawn(...)`` children:
  statistically independent streams both *within* a trace and *across*
  any two trace seeds.  Use this for new experiments, especially
  multi-seed sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import PruningConfig
from ..serving.request import Request
from .tasks import lm_prompts

__all__ = [
    "SEED_SCHEMES",
    "poisson_arrival_times",
    "synthetic_request_trace",
    "TrafficClass",
    "heterogeneous_request_trace",
]


SEED_SCHEMES = ("legacy", "spawn")


def poisson_arrival_times(
    n_requests: int, rate_per_s: float, seed=0
) -> np.ndarray:
    """Arrival timestamps of a Poisson process with the given rate.

    ``seed`` is anything :func:`numpy.random.default_rng` accepts — an
    int, or a :class:`numpy.random.SeedSequence` child spawned by a
    trace builder's ``seed_scheme="spawn"``.
    """
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_s, size=n_requests)
    return np.cumsum(gaps)


def _check_seed_scheme(seed_scheme: str) -> None:
    if seed_scheme not in SEED_SCHEMES:
        raise ValueError(
            f"unknown seed_scheme {seed_scheme!r}; choose from "
            f"{SEED_SCHEMES}"
        )


def synthetic_request_trace(
    corpus: np.ndarray,
    n_requests: int,
    rate_per_s: float,
    prompt_len: int = 48,
    max_new_tokens: Tuple[int, int] = (8, 24),
    n_priorities: int = 1,
    seed: int = 0,
    seed_scheme: str = "legacy",
) -> List[Request]:
    """A full arrival trace: prompts, budgets, priorities, timestamps.

    Args:
        corpus: LM token stream (:func:`repro.workloads.make_lm_corpus`).
        n_requests: trace length.
        rate_per_s: Poisson arrival rate (requests per simulated second).
        prompt_len: tokens per prompt (windows of the corpus).
        max_new_tokens: inclusive ``(low, high)`` decode-budget range.
        n_priorities: priorities drawn uniformly from ``[0, n)``.
        seed: RNG seed (prompts, budgets, priorities, and arrivals all
            derive from it, so traces are reproducible).
        seed_scheme: how the trace's random streams derive from
            ``seed`` — ``"legacy"`` (adjacent integer seeds, keeps
            checked-in benchmark traces bit-identical but correlates
            traces built with consecutive seeds) or ``"spawn"``
            (independent ``SeedSequence`` children; see the module
            docstring).
    """
    low, high = max_new_tokens
    if not 1 <= low <= high:
        raise ValueError("max_new_tokens range must satisfy 1 <= low <= high")
    _check_seed_scheme(seed_scheme)
    if seed_scheme == "spawn":
        rng_seed, arrival_seed, prompt_seed = \
            np.random.SeedSequence(seed).spawn(3)
    else:
        rng_seed, arrival_seed, prompt_seed = seed, seed + 1, seed + 2
    rng = np.random.default_rng(rng_seed)
    arrivals = poisson_arrival_times(n_requests, rate_per_s, seed=arrival_seed)
    prompts = lm_prompts(corpus, prompt_len, n_requests, seed=prompt_seed)
    return [
        Request(
            request_id=idx,
            prompt_ids=prompts[idx],
            max_new_tokens=int(rng.integers(low, high + 1)),
            arrival_time=float(arrivals[idx]),
            priority=int(rng.integers(0, max(1, n_priorities))),
        )
        for idx in range(n_requests)
    ]


@dataclass(frozen=True)
class TrafficClass:
    """One request population inside a heterogeneous trace.

    Attributes:
        name: label (kept out of the Request; used by trace builders
            and benchmark reporting).
        weight: relative arrival share of this class (need not be
            normalized across the mix).
        prompt_len: prompt tokens for every request of this class.
        max_new_tokens: inclusive ``(low, high)`` decode-budget range.
        pruning: the class's cascade schedule, set **explicitly** on
            each request — ``None`` forces the dense path even on a
            pruned-default engine, a :class:`~repro.config.
            PruningConfig` runs that schedule regardless of the engine
            default.
        priority: scheduling class (lower admits first).
    """

    name: str
    weight: float
    prompt_len: int
    max_new_tokens: Tuple[int, int]
    pruning: Optional[PruningConfig] = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("TrafficClass.weight must be positive")
        low, high = self.max_new_tokens
        if not 1 <= low <= high:
            raise ValueError(
                "max_new_tokens range must satisfy 1 <= low <= high"
            )


def heterogeneous_request_trace(
    corpus: np.ndarray,
    classes: Sequence[TrafficClass],
    n_requests: int,
    rate_per_s: float,
    seed: int = 0,
    seed_scheme: str = "legacy",
) -> List[Request]:
    """A Poisson trace drawn from a weighted mix of request classes.

    Each arriving request is assigned a :class:`TrafficClass` with
    probability proportional to its weight, then stamped with that
    class's prompt length, decode budget, priority, and per-request
    pruning schedule.  Everything derives from ``seed``, so traces are
    reproducible, and the *same* trace can be replayed against every
    routing policy.  ``seed_scheme`` picks how the internal streams
    derive from the seed (``"legacy"`` integer offsets vs independent
    ``"spawn"`` children; see the module docstring).
    """
    if not classes:
        raise ValueError("need at least one TrafficClass")
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    _check_seed_scheme(seed_scheme)
    weights = np.array([c.weight for c in classes], dtype=np.float64)
    weights /= weights.sum()
    if seed_scheme == "spawn":
        children = np.random.SeedSequence(seed).spawn(2 + len(classes))
        rng_seed, arrival_seed = children[0], children[1]
        class_seeds = list(children[2:])
    else:
        rng_seed, arrival_seed = seed, seed + 1
        class_seeds = [seed + 3 + ci for ci in range(len(classes))]
    rng = np.random.default_rng(rng_seed)
    arrivals = poisson_arrival_times(n_requests, rate_per_s, seed=arrival_seed)
    assignment = rng.choice(len(classes), size=n_requests, p=weights)
    # Draw each class's prompt pool in one call so a class's prompts do
    # not depend on how the other classes' draws interleave.
    prompts_by_class = {}
    cursor_by_class = {}
    for ci, cls in enumerate(classes):
        count = int(np.sum(assignment == ci))
        if count:
            prompts_by_class[ci] = lm_prompts(
                corpus, cls.prompt_len, count, seed=class_seeds[ci]
            )
            cursor_by_class[ci] = 0
    requests = []
    for idx in range(n_requests):
        ci = int(assignment[idx])
        cls = classes[ci]
        prompt = prompts_by_class[ci][cursor_by_class[ci]]
        cursor_by_class[ci] += 1
        low, high = cls.max_new_tokens
        requests.append(
            Request(
                request_id=idx,
                prompt_ids=prompt,
                max_new_tokens=int(rng.integers(low, high + 1)),
                arrival_time=float(arrivals[idx]),
                priority=cls.priority,
                pruning=cls.pruning,
            )
        )
    return requests
