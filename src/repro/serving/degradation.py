"""Graceful-degradation policy for the serving engine.

Under sustained pool pressure a SpAtten engine has a knob no dense
server has: cascade pruning schedules change how many KV pages a
request is *billed*, so the engine can trade a little accuracy for
admission headroom instead of stalling or preempting.  The ladder, in
escalation order (each rung engages only after ``sustain_steps``
consecutive pressured steps, and the cheaper rungs run first):

1. **Shed** — fail the worst queued *best-effort* request (priority >=
   ``shed_priority_floor``) cleanly, one per pressured step.  Premium
   tiers below the floor are never shed.
2. **Reprune** — escalate the queued head-of-line request to the more
   aggressive ``reprune`` schedule when that strictly lowers its page
   bill, so it admits into pages that exist.  Applies only to requests
   *waiting* for (re)admission — never to live sequences, so already
   delivered tokens are never invalidated — and marks the record
   ``degraded`` (its stream is excluded from bit-identity checks).
3. **Preempt** — the engine's existing optimistic-admission preemption
   (:meth:`ServingEngine._relieve_pressure`) remains the backstop.

Pressure is measured each step as "the queue is non-empty and free
reservation pages have fallen below ``free_page_frac`` of the pool".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import PruningConfig

__all__ = ["DegradationPolicy"]


@dataclass(frozen=True)
class DegradationPolicy:
    """Configuration for the shed -> reprune -> preempt ladder.

    Attributes:
        free_page_frac: pressure threshold — the step is *pressured*
            when free reservation pages < ``free_page_frac *
            pool.n_pages`` while requests wait in the queue.
        sustain_steps: consecutive pressured steps before the ladder
            engages (transient spikes do not shed load).
        shed_priority_floor: only requests with priority >= this are
            best-effort and eligible for shedding.
        reprune: the escalated cascade-pruning schedule for rung 2;
            ``None`` disables repruning (the ladder skips to preempt).
    """

    free_page_frac: float = 0.125
    sustain_steps: int = 3
    shed_priority_floor: int = 1
    reprune: Optional[PruningConfig] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.free_page_frac < 1.0:
            raise ValueError("free_page_frac must lie in (0, 1)")
        if self.sustain_steps < 1:
            raise ValueError("sustain_steps must be >= 1")
        if self.shed_priority_floor < 0:
            raise ValueError("shed_priority_floor must be >= 0")

    def pressured(self, free_pages: int, total_pages: int,
                  queue_len: int) -> bool:
        """One step's pressure verdict (see class docstring)."""
        return queue_len > 0 and free_pages < self.free_page_frac * total_pages
