"""Victim selection for optimistic-admission preemption.

Optimistic admission (:meth:`repro.serving.memory_pool.KVMemoryPool.
admit_optimistic`) trades the worst-case reservation guarantee for
run-time enforcement: when a step's projected KV growth would overflow
the pool, the serving engine must *preempt* — release one resident
sequence's pages and requeue it for recompute.  Greedy decoding makes
the replayed stream bit-identical, so the only policy question is who
pays the latency.  :class:`PreemptionPolicy` answers it
deterministically:

* ``lowest_priority`` — evict the least important scheduling class
  first (the highest numeric ``priority`` value; lower values are
  admitted first everywhere else in the scheduler).  Ties break to the
  latest arrival, which has the least sunk work to recompute.
* ``most_pages`` — evict whoever returns the most *reserved* pages to
  the ledger, so pressure is relieved with the fewest victims.  Ties
  break to the latest arrival.
* ``latest_arrival`` — LIFO eviction: the newest request pays, which
  preserves the FIFO fairness of the admission queue (the preempted
  request re-enters the queue with its original arrival time and lines
  up ahead of younger work).

Every policy skips *protected* candidates — the livelock guard set by
:meth:`repro.serving.request.RequestRecord.reset_for_preempt` and
cleared when the request next commits work — so no request can be
preempted twice without making progress in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = [
    "PREEMPTION_POLICIES",
    "PreemptionCandidate",
    "PreemptionEvent",
    "PreemptionPolicy",
]

PREEMPTION_POLICIES = ("lowest_priority", "most_pages", "latest_arrival")


@dataclass(frozen=True)
class PreemptionCandidate:
    """One resident sequence as the victim selector sees it."""

    seq_id: int
    priority: int
    arrival_time: float
    #: Pages the admission ledger would regain — the victim's reserved
    #: pages (``max(prompt floor, allocated)``), which for a
    #: mid-prefill victim exceeds its physical allocation so far.
    pages: int
    #: Livelock guard: preempted since it last committed work — never
    #: eligible for selection.
    protected: bool = False


@dataclass(frozen=True)
class PreemptionEvent:
    """One preemption, as logged by the engine (tests and reports)."""

    time: float
    request_id: int
    pages_freed: int
    #: Committed prompt tokens plus decode tokens discarded — the work
    #: the victim will recompute on readmission.
    work_tokens: int
    policy: str


@dataclass(frozen=True)
class PreemptionPolicy:
    """Deterministic victim selection over the resident sequences."""

    policy: str = "lowest_priority"

    def __post_init__(self) -> None:
        if self.policy not in PREEMPTION_POLICIES:
            raise ValueError(
                f"unknown preemption policy {self.policy!r}; choose from "
                f"{PREEMPTION_POLICIES}"
            )

    def select(
        self, candidates: Sequence[PreemptionCandidate]
    ) -> Optional[PreemptionCandidate]:
        """The victim, or ``None`` when every candidate is protected.

        Selection is deterministic: the policy's key, then arrival
        time, then sequence id — given the same resident set it always
        evicts the same sequence.
        """
        eligible = [c for c in candidates if not c.protected]
        if not eligible:
            return None
        if self.policy == "lowest_priority":
            key = lambda c: (c.priority, c.arrival_time, c.seq_id)
        elif self.policy == "most_pages":
            key = lambda c: (c.pages, c.arrival_time, c.seq_id)
        else:  # latest_arrival
            key = lambda c: (c.arrival_time, c.seq_id)
        return max(eligible, key=key)
