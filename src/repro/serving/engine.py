"""Continuous-batching serving engine over a pruning-aware KV pool.

Each engine iteration mirrors a production serving loop with a
three-phase scheduler:

1. **ingest** — requests whose simulated arrival time has passed move
   into the priority queue;
2. **reserve** — while the head-of-queue request's worst-case KV
   reservation fits the memory pool, admit it: reserve its pages and
   open a resumable prefill (:meth:`repro.nn.transformer.
   TransformerModel.prefill_begin`).  Admission is head-of-line within
   priority order, so a large request cannot be starved by smaller
   late arrivals;
3. **mixed step** — one engine step batches a prefill chunk
   (``prefill_chunk`` tokens) for *every* admitted-but-not-yet-live
   sequence together with one batched decode step across all live
   sequences.  The simulated clock advances once per mixed step
   (:meth:`repro.serving.stats.CostModel.mixed_step_time`), so a long
   prompt no longer freezes the live decode batch for its whole
   duration — the head-of-line prefill stall this scheduler exists to
   fix.  A sequence is **promoted** to the decode set (sampling its
   first token) only when its final chunk commits; pool pages grow
   chunk by chunk as the prompt's KV columns materialize.
4. **retire** — sequences that hit their decode budget release their
   pages immediately, and the freed space backfills from the queue on
   the next iteration.

With ``prefill_chunk=None`` the engine falls back to monolithic
admission-time prefill (the PR-1 behaviour, kept for comparison — the
TTFT/decode-latency benchmark in
``benchmarks/bench_serving_throughput.py`` quantifies the stall).

Chunked prefill is bit-exact: the chunked pass commits exactly the
same logits, caches, and therefore token streams as the monolithic
path, in both dense and SpAtten modes (see
:meth:`~repro.nn.transformer.TransformerModel.prefill_chunk_batch`).

After every step the pool is synced against each executor's real
per-layer cache lengths, so columns evicted by cascade token pruning
drain whole pages back to the free list mid-flight.

Admission modes and preemption
------------------------------

Admission is two-mode (``ServingEngine(admission=...)``):

* ``"reserve"`` (default) — the request is billed its schedule-bound
  *worst-case* page reservation from admission to retirement.  Safe by
  construction, but pages reclaimed by mid-generation pruning cannot
  admit new work already refused at reservation time, so under load
  the engine idles capacity the pruning schedule provably freed.
* ``"optimistic"`` — admission checks the request's post-prefill
  prompt footprint plus a configurable ``headroom_pages`` against the
  pool's *actual* usage; future decode growth is deliberately
  unbilled.  Safety moves to run time: before every step the engine
  projects each resident sequence's growth
  (:meth:`~repro.serving.memory_pool.KVMemoryPool.pressure_pages`)
  and, under pressure, **preempts** a victim — releases its pages,
  requeues it, and recomputes it from scratch on readmission
  (``recompute-on-preempt``).  Greedy decoding makes the replayed
  stream bit-identical, so preemption costs latency, never tokens —
  the same invariant cluster drains rely on.  Victim selection is
  policy-pluggable (:mod:`repro.serving.preemption`), a preempted
  request is protected from re-victimization until it commits new
  work (livelock guard), and a lone resident sequence is never
  preempted (its worst-case bound fits the whole pool, enforced at
  submit).  The pool audits itself after every preemption cycle.

Stepwise driving (cluster mode)
-------------------------------

:meth:`ServingEngine.run` is a thin loop over a stepwise API that an
external driver — :class:`repro.cluster.ClusterEngine` — uses to run
*several* engines on parallel simulated timelines:

* :meth:`~ServingEngine.start` opens a run (own clock per engine);
* :meth:`~ServingEngine.submit` delivers one request (the cluster
  router calls this at the request's arrival, or at a drain event's
  requeue time via ``available_time``);
* :meth:`~ServingEngine.step` executes exactly one scheduler
  iteration; an idle engine jumps its clock to the next pending
  arrival, capped at ``horizon`` so a cluster driver can interleave
  globally ordered events;
* :meth:`~ServingEngine.drain` pre-empts everything in flight —
  queued, prefilling, *and* live sequences — releasing their pool
  pages and handing the (reset) requests back for re-routing;
* :meth:`~ServingEngine.finish` builds the :class:`ServingStats`
  report over the requests this engine actually served.

Because ``run()`` itself is implemented on these hooks, a single-
replica cluster run is *identical* (same committed tokens, same
simulated-clock stats) to a plain ``engine.run(requests)``.

Requests may carry their own cascade schedule
(:attr:`repro.serving.request.Request.pruning`); the engine resolves
it per request — executors, pool reservations, and the cost model all
follow the request's schedule, which is what makes heterogeneous
traces and schedule-aware cluster routing possible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import PruningConfig, QuantConfig
from ..core import schedule as sched
from ..core.pipeline import SpAttenExecutor
from ..nn.batched_attention import ATTENTION_BACKENDS, PackedDecodeBackend
from ..nn.numerics import resolve_numerics
from ..nn.transformer import (
    AttentionExecutor,
    DenseExecutor,
    PrefillState,
    TransformerModel,
)
from ..telemetry import NULL_TELEMETRY, Telemetry
from .degradation import DegradationPolicy
from .memory_pool import KVMemoryPool, PoolExhausted, prefill_kv_lengths, \
    pruned_kv_bounds
from .preemption import (
    PreemptionCandidate,
    PreemptionEvent,
    PreemptionPolicy,
)
from .request import (
    INHERIT_PRUNING,
    Request,
    RequestQueue,
    RequestRecord,
    RequestStatus,
)
from .stats import CostModel, ServingStats, SimulatedClock

__all__ = [
    "ADMISSION_MODES",
    "LiveSequence",
    "PrefillingSequence",
    "ScheduledSequence",
    "ServingEngine",
    "greedy_sampler",
]

ADMISSION_MODES = ("reserve", "optimistic")

#: Histogram buckets for simulated step durations (seconds).
STEP_SECONDS_BUCKETS = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0,
)
#: Histogram buckets for per-step arithmetic (FLOPs).
STEP_FLOPS_BUCKETS = (
    1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 3e8, 1e9, 3e9, 1e10,
)


def greedy_sampler(logits: np.ndarray) -> int:
    return int(np.argmax(logits))


@dataclass
class ScheduledSequence:
    """Base for sequences the scheduler tracks by their request record."""

    record: RequestRecord

    @property
    def request(self) -> Request:
        return self.record.request

    @property
    def seq_id(self) -> int:
        return self.request.request_id


@dataclass
class LiveSequence(ScheduledSequence):
    """A request currently resident in the decode batch."""

    executor: AttentionExecutor
    next_token: int
    next_position: int
    #: Simulated time the sequence last committed a token (drives the
    #: inter-token decode-latency metric, which therefore *includes*
    #: any stall between this sequence's consecutive tokens).
    last_commit_time: float = 0.0
    #: Per-layer schedule bounds (:func:`pruned_kv_bounds`), filled
    #: lazily by the optimistic pressure projection — constant per
    #: request, so the schedule replays once, not every step.
    kv_bounds: Optional[List[int]] = None


@dataclass
class PrefillingSequence(ScheduledSequence):
    """An admitted request whose prompt is still committing in chunks."""

    state: PrefillState
    #: The request's resolved cascade schedule (``None`` = dense).
    pruning: Optional[PruningConfig] = None


@dataclass
class _PendingArrival:
    """A submitted request not yet visible to the priority queue.

    ``available`` is when the scheduler may first see it: the arrival
    time for fresh requests, or the requeue time for requests handed
    back by a drained replica (which must not restart in the simulated
    past).
    """

    available: float
    request: Request


class ServingEngine:
    """Continuous-batching scheduler + executor over a simulated clock.

    Args:
        model: causal transformer shared by every request.
        pool: the KV memory pool enforcing the global byte budget.
        pruning: SpAtten cascade schedule, or ``None`` for the dense
            path.  Also drives the pool's schedule-aware reservations
            and the cost model's schedule-aware prefill charge.
            Individual requests may override it
            (:attr:`~repro.serving.request.Request.pruning`).
        quant: optional progressive quantization for pruned serving.
        cost_model: simulated-clock step costs.
        sampler: logits -> token id (greedy by default, which keeps
            batched serving bit-comparable with ``model.generate``).
        prefill_chunk: prompt tokens committed per mixed step.  With a
            chunk size, prefill is batched across requests and
            interleaved with decode; ``None`` (default) runs the whole
            prompt monolithically at admission, stalling the live
            batch (kept for comparison benchmarks).
        attention_backend: ``"packed"`` (default) runs decode steps and
            chunked-prefill projections through
            :class:`~repro.nn.batched_attention.PackedDecodeBackend` —
            fused batch-level projection/output GEMMs over preallocated
            KV buffers; ``"looped"`` keeps the per-sequence
            ``run_layer`` hot path (the bit-identity oracle —
            both backends commit identical token streams and identical
            simulated-clock stats, the packed one in less wall time).
        numerics: numerics ladder tier (``"exact"``, ``"fp32"``, or
            ``"int8"`` — see :mod:`repro.nn.numerics`).  ``"exact"``
            (default) keeps every path bit-identical to the fp64
            oracle; the faster tiers store KV state at a narrower dtype
            and run the decode layer stack in the policy's compute
            dtype under a declared accuracy budget.  Non-exact tiers
            require the ``"packed"`` attention backend.
        admission: ``"reserve"`` (default) bills every request its
            worst-case schedule-bound reservation for its whole
            lifetime; ``"optimistic"`` admits against actual pool usage
            plus ``headroom_pages`` and relies on preemption under
            pressure (see the module docstring).
        preempt_policy: victim selection under pool pressure —
            ``"lowest_priority"``, ``"most_pages"``, or
            ``"latest_arrival"`` (:mod:`repro.serving.preemption`).
            Only consulted in optimistic mode.
        headroom_pages: pages that must stay unbilled for a request to
            be admitted optimistically — slack that absorbs resident
            sequences' decode growth before preemption has to step in
            (0 = fully optimistic).
        executor_factory: override the per-request executor (tests).
            When set, it wins over per-request pruning overrides.
        name: label for cluster replicas (defaults to ``"engine"``).
        telemetry: :class:`repro.telemetry.Telemetry` sinks this engine
            emits to — request lifecycle spans, pool ledger events, and
            per-step metric samples (see the package guide).  ``None``
            (the default) installs the inert
            :data:`~repro.telemetry.NULL_TELEMETRY`, whose ``active``
            flag short-circuits every emission site before any event is
            built, so a telemetry-off run is bit-identical to one built
            before telemetry existed.
        audit_every: run :meth:`KVMemoryPool.audit` every N engine
            steps (surfaced as the ``repro_pool_audits_total`` counter
            when metrics are on).  ``None`` (default) keeps the PR-5
            behaviour: audits only after preemption cycles.
        deadline_s: per-request time-to-first-admission deadline,
            relative to each request's arrival.  A request still
            queued past its deadline is failed cleanly (``FAILED``,
            reason ``"deadline"``) instead of waiting forever.
            ``None`` (default) disables deadlines.
        degradation: the graceful-degradation ladder
            (:class:`~repro.serving.degradation.DegradationPolicy`):
            under sustained pool pressure the engine sheds best-effort
            queued load and escalates waiting requests to a more
            aggressive cascade schedule before preemption has to step
            in.  ``None`` (default) disables the ladder.
    """

    def __init__(
        self,
        model: TransformerModel,
        pool: KVMemoryPool,
        pruning: Optional[PruningConfig] = None,
        quant: Optional[QuantConfig] = None,
        cost_model: Optional[CostModel] = None,
        sampler: Optional[Callable[[np.ndarray], int]] = None,
        prefill_chunk: Optional[int] = None,
        attention_backend: str = "packed",
        numerics: str = "exact",
        admission: str = "reserve",
        preempt_policy: str = "lowest_priority",
        headroom_pages: int = 0,
        executor_factory: Optional[Callable[[], AttentionExecutor]] = None,
        name: str = "engine",
        telemetry: Optional[Telemetry] = None,
        audit_every: Optional[int] = None,
        deadline_s: Optional[float] = None,
        degradation: Optional[DegradationPolicy] = None,
        slo: Optional[object] = None,
    ):
        if not model.config.causal:
            raise ValueError("serving requires a causal (GPT-style) model")
        if prefill_chunk is not None and prefill_chunk < 1:
            raise ValueError(
                "prefill_chunk must be >= 1, or None for monolithic prefill"
            )
        if attention_backend not in ATTENTION_BACKENDS:
            raise ValueError(
                f"unknown attention_backend {attention_backend!r}; "
                f"choose from {ATTENTION_BACKENDS}"
            )
        resolved_numerics = resolve_numerics(numerics)
        if not resolved_numerics.is_exact and attention_backend != "packed":
            raise ValueError(
                f"numerics tier {resolved_numerics.name!r} requires the "
                f"'packed' attention backend; the 'looped' path is the "
                f"bit-identity oracle and only serves 'exact'"
            )
        if admission not in ADMISSION_MODES:
            raise ValueError(
                f"unknown admission mode {admission!r}; choose from "
                f"{ADMISSION_MODES}"
            )
        if headroom_pages < 0:
            raise ValueError("headroom_pages must be >= 0")
        if audit_every is not None and audit_every < 1:
            raise ValueError("audit_every must be >= 1, or None to disable")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive, or None")
        self.model = model
        self.pool = pool
        self.pruning = pruning
        self.quant = quant
        self.cost = cost_model or CostModel()
        self.sampler = sampler or greedy_sampler
        self.prefill_chunk = prefill_chunk
        self.attention_backend = attention_backend
        #: Resolved :class:`~repro.nn.numerics.NumericsPolicy` governing
        #: decode-step compute and KV storage across every executor this
        #: engine creates (see the "Numerics ladder" guide section).
        self.numerics = resolved_numerics
        self.admission = admission
        self.preemption = PreemptionPolicy(preempt_policy)
        self.headroom_pages = int(headroom_pages)
        self.name = name
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.audit_every = audit_every
        self.deadline_s = deadline_s
        self.degradation = degradation
        #: Optional SLO policy (:class:`repro.insight.SLOPolicy`).  Held
        #: by duck type so the simulated engine takes no import edge on
        #: the analysis layer; evaluated read-only in :meth:`finish`, so
        #: core stats fields are bit-identical with and without it.
        self.slo = slo
        #: Transient straggler factor: every cost-model duration is
        #: multiplied by this before the clock advances.  1.0 (healthy)
        #: is exact in IEEE arithmetic, so a never-slowed run is
        #: bit-identical to one built before the knob existed.  The
        #: chaos engine toggles it over bounded fault windows.
        self.slowdown = 1.0
        self._backend = (
            PackedDecodeBackend(model, numerics=resolved_numerics)
            if attention_backend == "packed"
            else None
        )
        self._executor_factory = executor_factory
        self.queue = RequestQueue()
        self.live: List[LiveSequence] = []
        self.prefilling: List[PrefillingSequence] = []
        # Stepwise-run state (populated by start()).
        self._clock: Optional[SimulatedClock] = None
        self._pending: List[_PendingArrival] = []
        self._records: Dict[int, RequestRecord] = {}
        self._batch_sizes: List[int] = []
        self._occupancy_samples: List[float] = []
        #: Every preemption this run, in order (tests assert the
        #: livelock guard on it; reports aggregate from the records).
        self.preemption_log: List[PreemptionEvent] = []
        # Telemetry bookkeeping (only populated when telemetry.active).
        self._steps = 0
        #: When each waiting request last entered the queue (drives the
        #: ``queued`` lifecycle span; reset on preempt-requeue).
        self._queue_entered: Dict[int, float] = {}
        #: Worst-case schedule-bound pages of every resident sequence —
        #: the minuend of the pruning-savings gauge (bound minus pages
        #: actually allocated).
        self._bound_pages: Dict[int, int] = {}
        #: Pool corruption events already handled by quarantine; the
        #: cheap per-step guard that keeps the checksum scan off the
        #: fault-free hot path.
        self._corrupt_seen = 0
        #: Consecutive pressured steps (degradation ladder trigger).
        self._pressure_streak = 0

    @property
    def mode(self) -> str:
        return "dense" if self.pruning is None else "spatten"

    # ------------------------------------------------------------------
    # Per-request schedule resolution
    # ------------------------------------------------------------------
    def pruning_of(self, request: Request) -> Optional[PruningConfig]:
        """The cascade schedule this request runs under (None = dense).

        A degradation-ladder override on the request's record (set
        while the request waited under pressure, and carried across
        cluster requeues) wins over the request's own schedule.
        """
        record = self._records.get(request.request_id)
        if record is not None and record.pruning_override is not None:
            return record.pruning_override
        if request.pruning is INHERIT_PRUNING:
            return self.pruning
        return request.pruning

    def set_slowdown(self, factor: float) -> None:
        """Set the straggler factor (>= 1) scaling every step duration."""
        if not math.isfinite(factor) or factor < 1.0:
            raise ValueError("slowdown factor must be finite and >= 1")
        self.slowdown = float(factor)

    def _make_executor(
        self, pruning: Optional[PruningConfig]
    ) -> AttentionExecutor:
        if self._executor_factory is not None:
            return self._executor_factory()
        if pruning is not None or self.quant is not None:
            # Thread the pool's page size into the caches so buffer
            # growth and pool-page accounting share one unit.
            return SpAttenExecutor(
                pruning, self.quant, kv_page_tokens=self.pool.page_tokens,
                numerics=self.numerics,
            )
        return DenseExecutor(
            kv_page_tokens=self.pool.page_tokens, numerics=self.numerics
        )

    # ------------------------------------------------------------------
    # Stepwise run API (the cluster driver's hooks)
    # ------------------------------------------------------------------
    @property
    def clock(self) -> SimulatedClock:
        if self._clock is None:
            raise RuntimeError("engine not started: call start() first")
        return self._clock

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def has_work(self) -> bool:
        """True while any request is pending, queued, or in flight."""
        return bool(
            self._pending or self.queue or self.prefilling or self.live
        )

    @property
    def n_inflight(self) -> int:
        """Requests currently owned by the scheduler (not yet finished)."""
        return (
            len(self._pending) + len(self.queue)
            + len(self.prefilling) + len(self.live)
        )

    def validate_request(self, request: Request) -> None:
        """Reject a request this engine could never serve.

        Raises ``ValueError`` for context overflow and
        :class:`PoolExhausted` for reservations larger than the whole
        pool.  Called by :meth:`submit`, and by :meth:`run` for every
        request *before* any state mutates, so a bad trace fails fast
        and leaves the engine reusable.
        """
        max_seq_len = self.model.config.max_seq_len
        if request.total_len > max_seq_len:
            raise ValueError(
                f"request {request.request_id} spans {request.total_len} "
                f"tokens (prompt + max_new), model max_seq_len is "
                f"{max_seq_len}"
            )
        pruning = self.pruning_of(request)
        need = self.pool.reservation_pages(
            request.prompt_len, request.max_new_tokens, pruning,
        )
        # Even optimistic mode needs the worst-case bound to fit the
        # whole pool: preemption can evict every *other* sequence, but
        # a lone resident sequence must be able to run to completion.
        if need > self.pool.n_pages:
            raise PoolExhausted(
                f"request {request.request_id} needs {need} pages, pool "
                f"holds {self.pool.n_pages}: it can never be admitted"
            )
        if self.admission == "optimistic":
            floor = self.pool.optimistic_floor_pages(
                request.prompt_len, pruning
            )
            if floor + self.headroom_pages > self.pool.n_pages:
                raise PoolExhausted(
                    f"request {request.request_id} needs {floor} prompt "
                    f"pages plus {self.headroom_pages} headroom, pool "
                    f"holds {self.pool.n_pages}: it can never be admitted "
                    f"optimistically"
                )

    def can_ever_admit(self, request: Request) -> bool:
        """Whether this engine could ever serve the request (routing)."""
        return self.placement_pages_estimate(request) is not None

    def start(self, clock: Optional[SimulatedClock] = None) -> None:
        """Open a stepwise run (fresh clock, empty pending/record state)."""
        if self._clock is not None and self.has_work:
            raise RuntimeError("engine already running with work in flight")
        self._clock = clock or SimulatedClock()
        self._pending = []
        self._records = {}
        self._batch_sizes = []
        self._occupancy_samples = []
        self.preemption_log = []
        self._steps = 0
        self._queue_entered = {}
        self._bound_pages = {}
        self._corrupt_seen = self.pool.n_corrupt_events
        self._pressure_streak = 0
        self.slowdown = 1.0
        if self.telemetry.active:
            self.pool.observer = self
        if self._backend is not None:
            self._backend.profiler = self.telemetry.profiler

    def submit(
        self,
        request: Request,
        record: Optional[RequestRecord] = None,
        available_time: Optional[float] = None,
    ) -> RequestRecord:
        """Deliver one request to this engine's scheduler.

        Validates that the request can ever be served here (context
        length, worst-case reservation vs. this pool).  ``record``
        carries lifecycle state across replicas when the cluster
        requeues a drained request; ``available_time`` delays queue
        visibility past the arrival time (a requeue must not restart
        in the simulated past).
        """
        if request.request_id in self._records:
            raise ValueError(
                f"request {request.request_id} already submitted; "
                f"request_ids must be unique"
            )
        self.validate_request(request)
        record = record if record is not None else RequestRecord(request)
        self._records[request.request_id] = record
        available = (
            request.arrival_time
            if available_time is None
            else max(float(available_time), request.arrival_time)
        )
        self._pending.append(_PendingArrival(available, request))
        tel = self.telemetry
        if tel.active:
            self._queue_entered[request.request_id] = available
            if tel.tracer is not None:
                tel.tracer.instant(
                    "submitted", available, self.name,
                    f"req {request.request_id}",
                    prompt_len=request.prompt_len,
                    max_new_tokens=request.max_new_tokens,
                    priority=request.priority,
                    arrival_time=request.arrival_time,
                )
            if tel.metrics is not None:
                tel.metrics.counter(
                    "repro_requests_submitted_total", engine=self.name
                ).inc()
        return record

    def step(self, horizon: Optional[float] = None) -> float:
        """Run exactly one scheduler iteration; returns the clock delta.

        Ingests every pending request whose availability has passed,
        backfills admissions from the queue, then executes one mixed
        (or monolithic-era decode) step.  An engine with nothing
        admitted jumps its clock to the next pending arrival — capped
        at ``horizon``, so a cluster driver can stop the jump at the
        next globally ordered event (an arrival it has not routed yet,
        or a drain).
        """
        clock = self.clock
        before = clock.now
        self._ingest(clock.now)
        # Fault handling before admission: quarantined sequences free
        # pages the queue can use, expired requests must not admit, and
        # the degradation ladder reprunes the head *before* its pages
        # are billed.
        self._quarantine_corrupted(clock)
        self._expire_deadlines(clock)
        self._apply_degradation(clock)
        self._admit_ready(clock)
        if self.admission == "optimistic" and (self.live or self.prefilling):
            self._relieve_pressure(clock)
        if not self.live and not self.prefilling:
            if self._pending:
                target = min(entry.available for entry in self._pending)
                if horizon is not None:
                    target = min(target, float(horizon))
                clock.advance_to(target)
                return clock.now - before
            if self.queue:  # pragma: no cover - submit() pre-validation
                raise PoolExhausted("queued request can never be admitted")
            return 0.0
        if self.prefill_chunk is None:
            self._batch_sizes.append(len(self.live))
            self._decode_step(clock)
        else:
            self._batch_sizes.append(len(self.live) + len(self.prefilling))
            self._mixed_step(clock)
        self._occupancy_samples.append(self.pool.occupancy)
        return clock.now - before

    def drain(self) -> List[Tuple[Request, RequestRecord]]:
        """Pre-empt every request in flight; return them for re-routing.

        Pending, queued, prefilling, and live requests all come back
        (in that order).  Admitted sequences release their pool pages
        and their records reset to the pre-admission state — greedy
        decoding is deterministic, so a request restarted on another
        replica commits the same token stream it would have here.
        Requests already finished on this engine stay in its report.
        """
        requeued: List[Tuple[Request, RequestRecord]] = []
        for entry in self._pending:
            self._note_drained(self._records[entry.request.request_id])
            requeued.append((entry.request, self._records.pop(
                entry.request.request_id)))
        self._pending = []
        for request in self.queue.drain():
            self._note_drained(self._records[request.request_id])
            requeued.append((request, self._records.pop(request.request_id)))
        for seq in self.prefilling:
            self._note_drained(seq.record)
            self.pool.release(seq.seq_id)
            seq.record.reset_for_requeue()
            requeued.append((seq.request, self._records.pop(seq.seq_id)))
        self.prefilling = []
        for seq in self.live:
            self._note_drained(seq.record)
            self.pool.release(seq.seq_id)
            seq.record.reset_for_requeue()
            requeued.append((seq.request, self._records.pop(seq.seq_id)))
        self.live = []
        return requeued

    def finish(self) -> ServingStats:
        """Build the stats report over the requests this engine served."""
        records = [self._records[i] for i in sorted(self._records)]
        stats = ServingStats.from_run(
            mode=self.mode,
            admission=self.admission,
            numerics=self.numerics.name,
            records=records,
            makespan_s=self.clock.now,
            batch_sizes=self._batch_sizes,
            occupancy_samples=self._occupancy_samples,
            pool_pages=self.pool.n_pages,
            pool_page_tokens=self.pool.page_tokens,
            occupancy_peak=self.pool.peak_allocated_pages / self.pool.n_pages,
            reclaimed_pages=self.pool.reclaimed_pages,
            reclaimed_tokens=self.pool.reclaimed_tokens,
        )
        if self.slo is not None:
            stats.slo = self.slo.evaluate_records(
                records, makespan_s=self.clock.now
            ).to_dict()
        return stats

    # ------------------------------------------------------------------
    # Routing cost estimates (used by repro.cluster policies)
    # ------------------------------------------------------------------
    def placement_pages_estimate(self, request: Request) -> Optional[int]:
        """Pages a placement would charge this pool, or ``None`` if never.

        Feasibility defers entirely to :meth:`validate_request` — the
        same check :meth:`submit` will run — so the cluster router's
        filter can never accept a replica whose submit would then
        reject (the two cannot drift apart).  A non-``None`` result is
        the exact page bill admission will apply: the worst-case
        schedule-bound reservation in reserve mode, the optimistic
        prompt floor plus headroom in optimistic mode.  Note the bill
        is a per-request quantity: the *load sensitivity* of a routing
        score comes from the backlog terms
        (:meth:`outstanding_flops`, :meth:`outstanding_page_seconds`,
        the shard's free pages), which under optimistic admission read
        reservations that track actual usage.
        """
        try:
            self.validate_request(request)
        except (ValueError, PoolExhausted):
            return None
        pruning = self.pruning_of(request)
        if self.admission == "reserve":
            return self.pool.reservation_pages(
                request.prompt_len, request.max_new_tokens, pruning
            )
        return (
            self.pool.optimistic_floor_pages(request.prompt_len, pruning)
            + self.headroom_pages
        )

    def request_flops_estimate(self, request: Request) -> float:
        """Schedule-bound FLOPs to serve one request end to end.

        Prefill is charged exactly (:meth:`CostModel.prefill_flops` is
        schedule-aware); decode is bounded with the per-layer KV caps
        from :func:`pruned_kv_bounds` and the schedule's smallest
        surviving-head count — an upper estimate that preserves the
        *ordering* between dense and heavily pruned requests, which is
        all placement needs.
        """
        pruning = self.pruning_of(request)
        cfg = self.model.config
        prefill = self.cost.prefill_flops(cfg, request.prompt_len, pruning)
        return prefill + request.max_new_tokens * self._decode_tok_estimate(
            pruning, request.prompt_len, request.max_new_tokens
        )

    def _decode_tok_estimate(
        self,
        pruning: Optional[PruningConfig],
        prompt_len: int,
        max_new_tokens: int,
    ) -> float:
        cfg = self.model.config
        bounds = pruned_kv_bounds(
            pruning, cfg.n_layers, prompt_len, max_new_tokens
        )
        if pruning is None:
            heads = cfg.n_heads
        else:
            heads = int(min(
                sched.head_keep_counts(pruning, cfg.n_layers, cfg.n_heads)
            ))
        return self.cost.decode_seq_flops(cfg, bounds, heads)

    def outstanding_flops(self) -> float:
        """Estimated arithmetic still owed to every in-flight request.

        The cluster's ``pruning_aware`` policy reads this as the
        replica's backlog: pending and queued requests charge their
        full end-to-end estimate, prefilling sequences their remaining
        chunks plus decode budget, live sequences their remaining
        tokens at the executor's *actual* live KV lengths and heads.
        """
        cfg = self.model.config
        total = 0.0
        for entry in self._pending:
            total += self.request_flops_estimate(entry.request)
        for request in self.queue.as_ordered_list():
            total += self.request_flops_estimate(request)
        for seq in self.prefilling:
            state = seq.state
            if state.n_committed < state.prompt_len:
                total += self.cost.prefill_chunk_flops(
                    cfg, state.prompt_len, state.n_committed,
                    state.prompt_len, seq.pruning,
                )
            total += seq.request.max_new_tokens * self._decode_tok_estimate(
                seq.pruning, state.prompt_len, seq.request.max_new_tokens
            )
        for seq in self.live:
            remaining = seq.request.max_new_tokens - seq.record.n_generated
            total += remaining * self.cost.decode_seq_flops(
                cfg, seq.executor.kv_lengths(), seq.executor.n_live_heads
            )
        return total

    def outstanding_page_seconds(self) -> float:
        """Estimated page-holding backlog: pages x seconds still owed.

        Pages are the admission bottleneck, so the router needs more
        than a page *count* — a dense request holding 50 pages for a
        long generation is a different load than a pruned request
        holding 8 pages briefly.  Each in-flight request contributes
        its schedule-bound reservation multiplied by its remaining
        service-time estimate; queued requests charge their full
        estimate.  Divided by the shard's page count this is the
        replica's expected page-availability delay.
        """
        rate = self.cost.flops_per_second
        total = 0.0
        for entry in self._pending:
            total += self._request_page_seconds(entry.request)
        for request in self.queue.as_ordered_list():
            total += self._request_page_seconds(request)
        cfg = self.model.config
        for seq in self.prefilling:
            state = seq.state
            remaining = 0.0
            if state.n_committed < state.prompt_len:
                remaining += self.cost.prefill_chunk_flops(
                    cfg, state.prompt_len, state.n_committed,
                    state.prompt_len, seq.pruning,
                )
            remaining += (
                seq.request.max_new_tokens * self._decode_tok_estimate(
                    seq.pruning, state.prompt_len,
                    seq.request.max_new_tokens,
                )
            )
            total += (
                self.pool.reserved_pages_of(seq.seq_id) * remaining / rate
            )
        for seq in self.live:
            remaining_toks = (
                seq.request.max_new_tokens - seq.record.n_generated
            )
            remaining = remaining_toks * self.cost.decode_seq_flops(
                cfg, seq.executor.kv_lengths(), seq.executor.n_live_heads
            )
            total += (
                self.pool.reserved_pages_of(seq.seq_id) * remaining / rate
            )
        return total

    def _request_page_seconds(self, request: Request) -> float:
        pruning = self.pruning_of(request)
        need = self.pool.reservation_pages(
            request.prompt_len, request.max_new_tokens, pruning
        )
        service_s = (
            self.request_flops_estimate(request) / self.cost.flops_per_second
        )
        return need * service_s

    # ------------------------------------------------------------------
    # Scheduling phases
    # ------------------------------------------------------------------
    def _ingest(self, now: float) -> None:
        still_pending: List[_PendingArrival] = []
        for entry in self._pending:
            if entry.available <= now:
                self.queue.push(entry.request)
            else:
                still_pending.append(entry)
        self._pending = still_pending

    def _admit_ready(self, clock: SimulatedClock) -> None:
        """Backfill the live batch from the queue while the pool fits."""
        while self.queue:
            request = self.queue.peek()
            if not self._fits_now(request):
                break  # head-of-line blocking: keep admission order fair
            self.queue.pop()
            record = self._records[request.request_id]
            if self.prefill_chunk is None:
                self._admit(request, clock, record)
            else:
                self._reserve(request, clock, record)

    def _fits_now(self, request: Request) -> bool:
        """Admission check for the current mode.

        Reserve mode gates on the worst-case schedule bound; optimistic
        mode gates on the prompt footprint plus headroom against actual
        billed usage — which is what lets pages reclaimed by pruning
        admit new work mid-run instead of idling until a reservation
        retires.
        """
        pruning = self.pruning_of(request)
        if self.admission == "reserve":
            return self.pool.can_admit(
                request.prompt_len, request.max_new_tokens, pruning
            )
        return self.pool.can_admit_optimistic(
            request.prompt_len, pruning, self.headroom_pages
        )

    def _pool_admit(self, request: Request) -> None:
        pruning = self.pruning_of(request)
        if self.admission == "reserve":
            self.pool.admit(
                request.request_id, request.prompt_len,
                request.max_new_tokens, pruning,
            )
        else:
            self.pool.admit_optimistic(
                request.request_id, request.prompt_len, pruning,
                headroom_pages=self.headroom_pages,
            )

    def _reserve(
        self,
        request: Request,
        clock: SimulatedClock,
        record: RequestRecord,
    ) -> None:
        """Phase 1 of chunked admission: reserve pages, open the prefill.

        No prompt work runs here — the prompt commits chunk by chunk
        inside subsequent mixed steps, so reservation itself costs no
        simulated time and never stalls the live batch.
        """
        pruning = self.pruning_of(request)
        self._pool_admit(request)
        record.status = RequestStatus.RUNNING
        record.admit_time = clock.now
        self._note_admitted(request, clock.now)
        executor = self._make_executor(pruning)
        state = self.model.prefill_begin(request.prompt_ids, executor)
        self.prefilling.append(
            PrefillingSequence(record=record, state=state, pruning=pruning)
        )

    def _admit(
        self,
        request: Request,
        clock: SimulatedClock,
        record: RequestRecord,
    ) -> None:
        """Monolithic admission: run the whole prefill on the spot.

        This is the head-of-line stall the chunked scheduler removes —
        every live sequence waits out the full prompt duration.
        """
        pruning = self.pruning_of(request)
        self._pool_admit(request)
        record.status = RequestStatus.RUNNING
        record.admit_time = clock.now
        self._note_admitted(request, clock.now)
        executor = self._make_executor(pruning)
        logits = self.model.prefill(request.prompt_ids, executor)
        clock.advance(
            self.cost.prefill_time(
                self.model.config, request.prompt_len, pruning
            ) * self.slowdown
        )
        self._sync_pool(request.request_id, executor)
        self.pool.finish_prefill(request.request_id)
        first = self.sampler(logits)
        record.token_ids.append(first)
        record.preempt_protected = False
        record.first_token_time = clock.now
        self._note_promoted(record, clock.now)
        seq = LiveSequence(
            record=record,
            executor=executor,
            next_token=first,
            next_position=request.prompt_len,
            last_commit_time=clock.now,
        )
        if record.n_generated >= request.max_new_tokens:
            self._retire(seq, clock)
        else:
            self.live.append(seq)

    def _decode_step(self, clock: SimulatedClock) -> float:
        """One batched decode step over the live set; returns duration."""
        batch = list(self.live)
        logits = self.model.decode_step_batch(
            [seq.next_token for seq in batch],
            [seq.next_position for seq in batch],
            [seq.executor for seq in batch],
            backend=self._backend,
        )
        decode_flops = self._decode_flops(batch)
        dt = self.cost.step_time(decode_flops, len(batch)) * self.slowdown
        clock.advance(dt)
        self.live = self._commit_decode(batch, logits, clock)
        self._note_step(clock.now, dt, 0.0, decode_flops, 0, len(batch))
        return dt

    def _mixed_step(self, clock: SimulatedClock) -> float:
        """One mixed step: a prefill chunk per admitted-but-not-live
        sequence plus one batched decode step over the live set, all
        charged as a single engine step."""
        cfg = self.model.config
        prefills = list(self.prefilling)
        spans = [
            (seq,) + seq.state.next_span(self.prefill_chunk)
            for seq in prefills
        ]
        prefill_flops = sum(
            self.cost.prefill_chunk_flops(
                cfg, seq.state.prompt_len, start, end, seq.pruning
            )
            for seq, start, end in spans
        )
        decode_batch = list(self.live)
        decode_logits = (
            self.model.decode_step_batch(
                [seq.next_token for seq in decode_batch],
                [seq.next_position for seq in decode_batch],
                [seq.executor for seq in decode_batch],
                backend=self._backend,
            )
            if decode_batch
            else None
        )
        chunk_logits = (
            self.model.prefill_chunk_batch(
                [seq.state for seq in prefills], self.prefill_chunk,
                backend=self._backend,
            )
            if prefills
            else []
        )
        decode_flops = self._decode_flops(decode_batch)
        dt = self.cost.mixed_step_time(
            prefill_flops, decode_flops, len(prefills), len(decode_batch),
        ) * self.slowdown
        clock.advance(dt)

        # Commit prefill progress; promote sequences whose last chunk
        # just landed.  Promotions join the *next* step's decode batch.
        promoted: List[LiveSequence] = []
        still_prefilling: List[PrefillingSequence] = []
        for (seq, _, _), logits in zip(spans, chunk_logits):
            self._sync_prefill_pool(seq)
            # Committing a chunk is progress: the livelock guard lifts.
            seq.record.preempt_protected = False
            if not seq.state.done:
                still_prefilling.append(seq)
                continue
            self.pool.finish_prefill(seq.seq_id)
            first = self.sampler(logits)
            seq.record.token_ids.append(first)
            seq.record.first_token_time = clock.now
            self._note_promoted(seq.record, clock.now)
            live = LiveSequence(
                record=seq.record,
                executor=seq.state.executor,
                next_token=first,
                next_position=seq.state.prompt_len,
                last_commit_time=clock.now,
            )
            if seq.record.n_generated >= seq.request.max_new_tokens:
                self._retire(live, clock)
            else:
                promoted.append(live)
        self.prefilling = still_prefilling

        still_live = (
            self._commit_decode(decode_batch, decode_logits, clock)
            if decode_batch
            else []
        )
        self.live = still_live + promoted
        self._note_step(
            clock.now, dt, prefill_flops, decode_flops,
            len(prefills), len(decode_batch),
        )
        return dt

    def _decode_flops(self, batch: Sequence[LiveSequence]) -> float:
        return sum(
            self.cost.decode_seq_flops(
                self.model.config, seq.executor.kv_lengths(),
                seq.executor.n_live_heads,
            )
            for seq in batch
        )

    def _commit_decode(
        self,
        batch: Sequence[LiveSequence],
        logits: np.ndarray,
        clock: SimulatedClock,
    ) -> List[LiveSequence]:
        """Sample and record each live sequence's token; retire finishers."""
        still_live: List[LiveSequence] = []
        for row, seq in enumerate(batch):
            self._sync_pool(seq.seq_id, seq.executor)
            token = self.sampler(logits[row])
            seq.record.token_ids.append(token)
            self._count_token()
            seq.record.preempt_protected = False
            seq.record.token_latencies.append(
                clock.now - seq.last_commit_time
            )
            seq.last_commit_time = clock.now
            if seq.record.n_generated >= seq.request.max_new_tokens:
                self._retire(seq, clock)
            else:
                seq.next_token = token
                seq.next_position += 1
                still_live.append(seq)
        return still_live

    def _sync_pool(self, seq_id: int, executor: AttentionExecutor) -> None:
        lengths = executor.kv_lengths()
        if lengths:  # executors without a KV cache have nothing to page
            self._pool_sync(seq_id, lengths)

    def _pool_sync(self, seq_id: int, lengths: List[int]) -> None:
        """Commit real cache lengths to the pool.

        In optimistic mode the commit goes through
        :meth:`KVMemoryPool.try_grow`: the pre-step pressure relief
        projects a strict upper bound on this growth, so a refusal here
        means the projection (not the pool) is broken — surface it
        loudly rather than drop live KV state.
        """
        if self.admission == "optimistic":
            if not self.pool.try_grow(seq_id, lengths):
                raise PoolExhausted(
                    f"sequence {seq_id} outgrew the pool after pressure "
                    f"relief; the step projection under-counted its growth"
                )
        else:
            self.pool.sync(seq_id, lengths)

    def _sync_prefill_pool(self, seq: PrefillingSequence) -> None:
        """Grow the sequence's pool pages to match its committed chunks.

        Incremental executors report real per-layer cache lengths.
        Deferred executors (cascade pruning runs whole-sentence on the
        final chunk) are modeled via :func:`prefill_kv_lengths` until
        their real lengths exist — the two coincide at the final chunk.
        """
        state = seq.state
        if state.executor.supports_incremental_prefill or state.done:
            self._sync_pool(seq.seq_id, state.executor)
        else:
            self._pool_sync(
                seq.seq_id,
                prefill_kv_lengths(
                    seq.pruning, self.model.config.n_layers,
                    state.prompt_len, state.n_committed,
                ),
            )

    # ------------------------------------------------------------------
    # Fault handling: quarantine, deadlines, graceful degradation
    # ------------------------------------------------------------------
    def _quarantine_corrupted(self, clock: SimulatedClock) -> None:
        """Detect corrupted KV pages; quarantine and requeue victims.

        Guarded by the pool's corruption-event counter, so the
        checksum scan never runs on the fault-free hot path.  Every
        flagged sequence releases its pages
        (:meth:`KVMemoryPool.quarantine_release`) and requeues for
        recompute from scratch — greedy decoding replays the identical
        stream, so corruption costs latency, never tokens.
        """
        if self.pool.n_corrupt_events == self._corrupt_seen:
            return
        report = self.pool.verify_checksums()
        for seq in [s for s in self.live if s.seq_id in report]:
            self.live.remove(seq)
            work = seq.request.prompt_len + seq.record.n_generated
            self._quarantine(seq, work, report[seq.seq_id], clock)
        for seq in [s for s in self.prefilling if s.seq_id in report]:
            self.prefilling.remove(seq)
            self._quarantine(seq, seq.state.n_committed,
                             report[seq.seq_id], clock)
        self._corrupt_seen = self.pool.n_corrupt_events
        if report:
            self.pool.audit()

    def _quarantine(
        self,
        seq: ScheduledSequence,
        work: int,
        bad_pages: List[Tuple[int, int]],
        clock: SimulatedClock,
    ) -> None:
        pages = self.pool.quarantine_release(seq.seq_id)
        self._note_quarantined(seq.record, clock.now, pages, work,
                               bad_pages)
        seq.record.reset_for_corruption(recompute_tokens=work)
        self.queue.push(seq.request)

    def _expire_deadlines(self, clock: SimulatedClock) -> None:
        """Fail queued requests whose admission deadline has passed."""
        if self.deadline_s is None or not self.queue:
            return
        now = clock.now
        for request in list(self.queue.as_ordered_list()):
            if now > request.arrival_time + self.deadline_s:
                self.queue.remove(request)
                self._fail_request(
                    self._records[request.request_id], "deadline", now
                )

    def _apply_degradation(self, clock: SimulatedClock) -> None:
        """Run the shed -> reprune ladder under sustained pressure.

        One rung fires per pressured step: first shed the worst
        best-effort queued request, then (once nothing sheddable
        remains) escalate the head-of-line request's schedule.  The
        existing preemption machinery stays the final backstop.
        """
        policy = self.degradation
        if policy is None:
            return
        if not policy.pressured(
            self.pool.free_reservation_pages, self.pool.n_pages,
            len(self.queue),
        ):
            self._pressure_streak = 0
            return
        self._pressure_streak += 1
        if self._pressure_streak < policy.sustain_steps:
            return
        if self._shed_one(clock):
            return
        self._reprune_head(clock)

    def _shed_one(self, clock: SimulatedClock) -> bool:
        """Fail the worst queued best-effort request; False when none."""
        floor = self.degradation.shed_priority_floor
        candidates = [
            r for r in self.queue.as_ordered_list() if r.priority >= floor
        ]
        if not candidates:
            return False
        victim = candidates[-1]  # lowest priority, furthest from service
        self.queue.remove(victim)
        self._fail_request(self._records[victim.request_id], "shed",
                           clock.now)
        return True

    def _reprune_head(self, clock: SimulatedClock) -> None:
        """Escalate the head-of-line schedule when that frees pages."""
        escalated = self.degradation.reprune
        if escalated is None or not self.queue:
            return
        request = self.queue.peek()
        record = self._records[request.request_id]
        if record.pruning_override is not None:
            return
        pool = self.pool
        billed = pool.reservation_pages(
            request.prompt_len, request.max_new_tokens,
            self.pruning_of(request),
        )
        after = pool.reservation_pages(
            request.prompt_len, request.max_new_tokens, escalated
        )
        if after >= billed:
            return
        record.pruning_override = escalated
        record.degraded = True
        self._note_repruned(record, clock.now, billed, after)

    def _fail_request(
        self, record: RequestRecord, reason: str, now: float
    ) -> None:
        record.status = RequestStatus.FAILED
        record.failure = reason
        self._note_shed(record, now, reason)

    # ------------------------------------------------------------------
    # Preemption (optimistic admission's run-time safety)
    # ------------------------------------------------------------------
    def _step_projections(self) -> Dict[int, List[int]]:
        """Upper-bound per-layer KV lengths after the upcoming step.

        Live sequences append at most one column per layer (pruning can
        only shrink below that), capped at the per-layer schedule bound
        so a sequence at its decode cap never projects past its own
        worst case — which keeps a lone resident sequence's projection
        within the pool no matter how tight the budget.  Prefilling
        sequences commit their next chunk, modeled with the same
        :func:`prefill_kv_lengths` cap the pool is billed with.
        """
        n_layers = self.model.config.n_layers
        projections: Dict[int, List[int]] = {}
        for seq in self.live:
            if seq.kv_bounds is None:
                seq.kv_bounds = pruned_kv_bounds(
                    self.pruning_of(seq.request), n_layers,
                    seq.request.prompt_len, seq.request.max_new_tokens,
                )
            projections[seq.seq_id] = [
                min(length + 1, bound)
                for length, bound in zip(
                    seq.executor.kv_lengths(), seq.kv_bounds
                )
            ]
        for seq in self.prefilling:
            state = seq.state
            end = (
                state.next_span(self.prefill_chunk)[1]
                if self.prefill_chunk is not None
                else state.prompt_len
            )
            if state.executor.supports_incremental_prefill:
                projections[seq.seq_id] = [end] * n_layers
            else:
                projections[seq.seq_id] = prefill_kv_lengths(
                    seq.pruning, n_layers, state.prompt_len, end
                )
        return projections

    def _relieve_pressure(self, clock: SimulatedClock) -> int:
        """Preempt victims until the next step's projected growth fits.

        Optimistic admission means reservations no longer bound
        allocations, so before any model work runs the engine projects
        every resident sequence's post-step KV lengths and, while the
        projection overflows the pool, releases a victim's pages and
        requeues it for recompute-on-preempt.  Greedy decoding replays
        an identical stream, so preemption costs latency, never tokens.
        Victims are protected from re-selection until they commit new
        work (livelock guard), and a lone resident sequence is never
        preempted — its worst-case bound fits the whole pool
        (:meth:`validate_request`).  Returns the number of victims;
        the pool audits itself after any preemption.
        """
        projections = self._step_projections()
        n_preempted = 0
        while self.pool.pressure_pages(projections) > 0:
            victim = self._select_victim()
            if victim is None:
                raise PoolExhausted(
                    "pool pressure with no preemptable sequence: every "
                    "resident sequence is protected by the livelock "
                    "guard or running alone"
                )
            self._preempt(victim, clock)
            projections.pop(victim.seq_id, None)
            n_preempted += 1
        if n_preempted:
            self.pool.audit()
        return n_preempted

    def _select_victim(self) -> Optional[ScheduledSequence]:
        residents: List[ScheduledSequence] = list(self.live)
        residents.extend(self.prefilling)
        if len(residents) <= 1:
            return None
        chosen = self.preemption.select([
            PreemptionCandidate(
                seq_id=seq.seq_id,
                priority=seq.request.priority,
                arrival_time=seq.request.arrival_time,
                # Reserved, not allocated: what the ledger regains —
                # a mid-prefill victim frees its whole promised floor.
                pages=self.pool.reserved_pages_of(seq.seq_id),
                protected=seq.record.preempt_protected,
            )
            for seq in residents
        ])
        if chosen is None:
            return None
        return next(s for s in residents if s.seq_id == chosen.seq_id)

    def _preempt(self, seq: ScheduledSequence, clock: SimulatedClock) -> None:
        """Evict one resident sequence and requeue it for recompute."""
        if isinstance(seq, LiveSequence):
            self.live.remove(seq)
            work = seq.request.prompt_len + seq.record.n_generated
        else:
            self.prefilling.remove(seq)
            work = seq.state.n_committed
        pages = self.pool.preempt_release(seq.seq_id)
        self._note_preempted(seq.record, clock.now, pages, work)
        seq.record.reset_for_preempt(recompute_tokens=work)
        self.queue.push(seq.request)
        self.preemption_log.append(PreemptionEvent(
            time=clock.now,
            request_id=seq.seq_id,
            pages_freed=pages,
            work_tokens=work,
            policy=self.preemption.policy,
        ))

    def _retire(self, seq: LiveSequence, clock: SimulatedClock) -> None:
        seq.record.status = RequestStatus.FINISHED
        seq.record.finish_time = clock.now
        self.pool.note_reclaimed_tokens(seq.executor.evicted_kv_tokens)
        self.pool.release(seq.seq_id)
        self._note_retired(seq.record, clock.now)

    # ------------------------------------------------------------------
    # Telemetry emission (every site guards on the null sink first)
    # ------------------------------------------------------------------
    def _track(self, request_id: int) -> str:
        return f"req {request_id}"

    def pool_event(self, kind: str, seq_id: int, **info) -> None:
        """Observer hook the pool calls on ledger mutations.

        Installed by :meth:`start` only when telemetry is active, so an
        inert engine never pays for it (the pool's own guard is a
        single ``is None`` check).
        """
        tel = self.telemetry
        if tel.tracer is not None:
            tel.tracer.instant(
                f"pool_{kind}", self.now, self.name, "pool",
                seq_id=seq_id, **info,
            )
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_pool_events_total", engine=self.name, kind=kind
            ).inc()

    def _note_admitted(self, request: Request, now: float) -> None:
        tel = self.telemetry
        if not tel.active:
            return
        rid = request.request_id
        bound = self.pool.reservation_pages(
            request.prompt_len, request.max_new_tokens,
            self.pruning_of(request),
        )
        self._bound_pages[rid] = bound
        entered = self._queue_entered.pop(rid, now)
        if tel.tracer is not None:
            track = self._track(rid)
            tel.tracer.span(
                "queued", entered, now, self.name, track,
                outcome="admitted",
            )
            tel.tracer.instant(
                "admitted", now, self.name, track,
                bound_pages=bound, admission=self.admission,
                billed_pages=self.pool.reserved_pages_of(rid),
            )
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_requests_admitted_total", engine=self.name
            ).inc()

    def _note_promoted(self, record: RequestRecord, now: float) -> None:
        """The sequence's final prefill chunk committed its first token."""
        self._count_token()
        tel = self.telemetry
        if tel.tracer is not None:
            track = self._track(record.request.request_id)
            tel.tracer.span(
                "prefill", record.admit_time, now, self.name, track,
                outcome="promoted",
            )
            tel.tracer.instant("promoted", now, self.name, track)

    def _count_token(self) -> None:
        tel = self.telemetry
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_tokens_total", engine=self.name
            ).inc()

    def _note_retired(self, record: RequestRecord, now: float) -> None:
        tel = self.telemetry
        if not tel.active:
            return
        rid = record.request.request_id
        self._bound_pages.pop(rid, None)
        self._queue_entered.pop(rid, None)
        if tel.tracer is not None:
            track = self._track(rid)
            tel.tracer.span(
                "decode", record.first_token_time, now, self.name, track,
                outcome="finished",
            )
            tel.tracer.instant(
                "finished", now, self.name, track,
                n_tokens=record.n_generated,
                n_preemptions=record.n_preemptions,
            )
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_requests_finished_total", engine=self.name
            ).inc()

    def _note_preempted(
        self, record: RequestRecord, now: float, pages: int, work: int
    ) -> None:
        """Called *before* the record resets (the span needs its times)."""
        tel = self.telemetry
        if not tel.active:
            return
        rid = record.request.request_id
        self._bound_pages.pop(rid, None)
        self._queue_entered[rid] = now  # back to the queue from here
        if tel.tracer is not None:
            track = self._track(rid)
            if record.first_token_time is not None:
                tel.tracer.span(
                    "decode", record.first_token_time, now, self.name,
                    track, outcome="preempted",
                )
            elif record.admit_time is not None:
                tel.tracer.span(
                    "prefill", record.admit_time, now, self.name, track,
                    outcome="preempted",
                )
            tel.tracer.instant(
                "preempted", now, self.name, track, pages_freed=pages,
                work_tokens=work, policy=self.preemption.policy,
            )
            tel.tracer.instant("requeued", now, self.name, track)
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_preemptions_total", engine=self.name
            ).inc()

    def _note_quarantined(
        self,
        record: RequestRecord,
        now: float,
        pages: int,
        work: int,
        bad_pages: List[Tuple[int, int]],
    ) -> None:
        """Called *before* the record resets for its recompute."""
        tel = self.telemetry
        if not tel.active:
            return
        rid = record.request.request_id
        self._bound_pages.pop(rid, None)
        self._queue_entered[rid] = now  # back to the queue from here
        if tel.tracer is not None:
            track = self._track(rid)
            if record.first_token_time is not None:
                tel.tracer.span(
                    "decode", record.first_token_time, now, self.name,
                    track, outcome="quarantined",
                )
            elif record.admit_time is not None:
                tel.tracer.span(
                    "prefill", record.admit_time, now, self.name, track,
                    outcome="quarantined",
                )
            tel.tracer.instant(
                "quarantined", now, self.name, track,
                pages_freed=pages, work_tokens=work,
                corrupted=[list(p) for p in bad_pages],
            )
            tel.tracer.instant("requeued", now, self.name, track)
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_corruptions_total", engine=self.name
            ).inc()

    def _note_shed(
        self, record: RequestRecord, now: float, reason: str
    ) -> None:
        tel = self.telemetry
        if not tel.active:
            return
        rid = record.request.request_id
        self._bound_pages.pop(rid, None)
        entered = self._queue_entered.pop(rid, now)
        if tel.tracer is not None:
            track = self._track(rid)
            tel.tracer.span(
                "queued", entered, now, self.name, track, outcome="failed",
            )
            tel.tracer.instant(
                "shed", now, self.name, track, reason=reason,
                priority=record.request.priority,
            )
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_requests_shed_total", engine=self.name,
                reason=reason,
            ).inc()
            tel.metrics.counter(
                "repro_requests_failed_total", engine=self.name
            ).inc()

    def _note_repruned(
        self, record: RequestRecord, now: float, billed: int, after: int
    ) -> None:
        tel = self.telemetry
        if not tel.active:
            return
        if tel.tracer is not None:
            tel.tracer.instant(
                "repruned", now, self.name,
                self._track(record.request.request_id),
                pages_before=billed, pages_after=after,
            )
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_requests_repruned_total", engine=self.name
            ).inc()

    def _note_drained(self, record: RequestRecord) -> None:
        """Called *before* the record resets for its requeue."""
        tel = self.telemetry
        if not tel.active:
            return
        rid = record.request.request_id
        self._bound_pages.pop(rid, None)
        entered = self._queue_entered.pop(rid, None)
        if tel.tracer is None:
            return
        now = self.now
        track = self._track(rid)
        if record.first_token_time is not None:
            tel.tracer.span(
                "decode", record.first_token_time, now, self.name, track,
                outcome="drained",
            )
        elif record.admit_time is not None:
            tel.tracer.span(
                "prefill", record.admit_time, now, self.name, track,
                outcome="drained",
            )
        elif entered is not None and entered <= now:
            # Queued (or already-visible pending) request swept up by a
            # drain: close its queue wait so the lifecycle tiles the
            # timeline for latency attribution.  A pending request whose
            # availability lies in the simulated future never entered
            # the queue, so it gets no span.
            tel.tracer.span(
                "queued", entered, now, self.name, track,
                outcome="drained",
            )

    def _pruning_savings(self) -> int:
        """Pages the cascade schedules have freed vs. their worst case.

        The schedule-bound reservation of every resident sequence minus
        the pages actually backing live columns — the capacity pruning
        is provably saving right now.
        """
        return max(
            0, sum(self._bound_pages.values()) - self.pool.allocated_pages
        )

    def _note_step(
        self,
        now: float,
        dt: float,
        prefill_flops: float,
        decode_flops: float,
        n_prefill: int,
        n_decode: int,
    ) -> None:
        """Per-step bookkeeping: periodic audits plus one metrics/trace
        sample.  Runs after the step's commits, so pool gauges reflect
        the post-step ledger."""
        self._steps += 1
        tel = self.telemetry
        if self.audit_every and self._steps % self.audit_every == 0:
            self.pool.audit()
            if tel.metrics is not None:
                tel.metrics.counter(
                    "repro_pool_audits_total", engine=self.name
                ).inc()
        if not tel.active:
            return
        pool = self.pool
        savings = self._pruning_savings()
        queued = len(self.queue) + len(self._pending)
        step_flops = prefill_flops + decode_flops
        if tel.metrics is not None:
            m = tel.metrics
            m.counter("repro_steps_total", engine=self.name).inc()
            m.counter(
                "repro_numerics_steps_total",
                engine=self.name, numerics=self.numerics.name,
            ).inc()
            m.histogram(
                "repro_step_seconds", STEP_SECONDS_BUCKETS,
                engine=self.name,
            ).observe(dt)
            m.histogram(
                "repro_step_flops", STEP_FLOPS_BUCKETS, engine=self.name,
            ).observe(step_flops)
            m.gauge("repro_live_sequences", engine=self.name).set(n_decode)
            m.gauge(
                "repro_prefilling_sequences", engine=self.name
            ).set(n_prefill)
            m.gauge("repro_queued_requests", engine=self.name).set(queued)
            m.gauge(
                "repro_pool_allocated_pages", engine=self.name
            ).set(pool.allocated_pages)
            m.gauge(
                "repro_pool_reserved_pages", engine=self.name
            ).set(pool.reserved_pages)
            m.gauge(
                "repro_pruning_saved_pages", engine=self.name
            ).set(savings)
            m.record_sample({
                "t": now,
                "engine": self.name,
                "step_seconds": dt,
                "step_flops": step_flops,
                "prefill_flops": prefill_flops,
                "decode_flops": decode_flops,
                "live": n_decode,
                "prefilling": n_prefill,
                "queued": queued,
                "allocated_pages": pool.allocated_pages,
                "reserved_pages": pool.reserved_pages,
                "reclaimed_pages": pool.reclaimed_pages,
                "saved_pages": savings,
                "backlog_flops": self.outstanding_flops(),
            })
        if tel.tracer is not None:
            t = tel.tracer
            t.counter(
                "batch", now, self.name,
                live=n_decode, prefilling=n_prefill, queued=queued,
            )
            t.counter(
                "kv_pool", now, self.name,
                allocated_pages=pool.allocated_pages,
                reserved_pages=pool.reserved_pages,
                reclaimed_pages=pool.reclaimed_pages,
                saved_pages=savings,
            )
            t.counter(
                "step_flops", now, self.name,
                prefill=prefill_flops, decode=decode_flops,
            )

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ServingStats:
        """Serve a whole arrival trace to completion; returns the stats."""
        ids = [r.request_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ValueError("request_ids must be unique")
        for request in requests:
            self.validate_request(request)
        self.start()
        for request in sorted(
            requests, key=lambda r: (r.arrival_time, r.request_id)
        ):
            self.submit(request)
        while self.has_work:
            self.step()
        return self.finish()
