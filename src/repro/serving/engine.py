"""Continuous-batching serving engine over a pruning-aware KV pool.

Each engine iteration mirrors a production serving loop:

1. **ingest** — requests whose simulated arrival time has passed move
   into the priority queue;
2. **admit / backfill** — while the head-of-queue request's worst-case
   KV reservation fits the memory pool, admit it: reserve pages, run
   its prefill (advancing the simulated clock), and sample its first
   token.  Admission is head-of-line within priority order, so a large
   request cannot be starved by smaller late arrivals;
3. **batched decode** — one decode step runs across *all* live
   sequences at once (:meth:`repro.nn.transformer.TransformerModel.
   decode_step_batch`): batch-level embedding/FFN/LM-head matmuls with
   per-sequence ragged attention;
4. **retire** — sequences that hit their decode budget release their
   pages immediately, and the freed space backfills from the queue on
   the next iteration.

After every step the pool is synced against each executor's real
per-layer cache lengths, so columns evicted by cascade token pruning
drain whole pages back to the free list mid-flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..config import PruningConfig, QuantConfig
from ..core.pipeline import SpAttenExecutor
from ..nn.transformer import AttentionExecutor, DenseExecutor, TransformerModel
from .memory_pool import KVMemoryPool, PoolExhausted
from .request import Request, RequestQueue, RequestRecord, RequestStatus
from .stats import CostModel, ServingStats, SimulatedClock

__all__ = ["LiveSequence", "ServingEngine", "greedy_sampler"]


def greedy_sampler(logits: np.ndarray) -> int:
    return int(np.argmax(logits))


@dataclass
class LiveSequence:
    """A request currently resident in the decode batch."""

    record: RequestRecord
    executor: AttentionExecutor
    next_token: int
    next_position: int

    @property
    def request(self) -> Request:
        return self.record.request

    @property
    def seq_id(self) -> int:
        return self.request.request_id


class ServingEngine:
    """Continuous-batching scheduler + executor over a simulated clock.

    Args:
        model: causal transformer shared by every request.
        pool: the KV memory pool enforcing the global byte budget.
        pruning: SpAtten cascade schedule, or ``None`` for the dense
            path.  Also drives the pool's schedule-aware reservations.
        quant: optional progressive quantization for pruned serving.
        cost_model: simulated-clock step costs.
        sampler: logits -> token id (greedy by default, which keeps
            batched serving bit-comparable with ``model.generate``).
        executor_factory: override the per-request executor (tests).
    """

    def __init__(
        self,
        model: TransformerModel,
        pool: KVMemoryPool,
        pruning: Optional[PruningConfig] = None,
        quant: Optional[QuantConfig] = None,
        cost_model: Optional[CostModel] = None,
        sampler: Optional[Callable[[np.ndarray], int]] = None,
        executor_factory: Optional[Callable[[], AttentionExecutor]] = None,
    ):
        if not model.config.causal:
            raise ValueError("serving requires a causal (GPT-style) model")
        self.model = model
        self.pool = pool
        self.pruning = pruning
        self.quant = quant
        self.cost = cost_model or CostModel()
        self.sampler = sampler or greedy_sampler
        if executor_factory is not None:
            self._executor_factory = executor_factory
        elif pruning is not None or quant is not None:
            self._executor_factory = lambda: SpAttenExecutor(pruning, quant)
        else:
            self._executor_factory = DenseExecutor
        self.queue = RequestQueue()
        self.live: List[LiveSequence] = []

    @property
    def mode(self) -> str:
        return "dense" if self.pruning is None else "spatten"

    # ------------------------------------------------------------------
    # Scheduling phases
    # ------------------------------------------------------------------
    def _ingest(self, pending: List[Request], now: float) -> None:
        while pending and pending[0].arrival_time <= now:
            self.queue.push(pending.pop(0))

    def _admit_ready(
        self,
        clock: SimulatedClock,
        records: Dict[int, RequestRecord],
    ) -> None:
        """Backfill the live batch from the queue while the pool fits."""
        while self.queue:
            request = self.queue.peek()
            if not self.pool.can_admit(
                request.prompt_len, request.max_new_tokens, self.pruning
            ):
                break  # head-of-line blocking: keep admission order fair
            self.queue.pop()
            self._admit(request, clock, records[request.request_id])

    def _admit(
        self,
        request: Request,
        clock: SimulatedClock,
        record: RequestRecord,
    ) -> None:
        self.pool.admit(
            request.request_id, request.prompt_len, request.max_new_tokens,
            self.pruning,
        )
        record.status = RequestStatus.RUNNING
        record.admit_time = clock.now
        executor = self._executor_factory()
        logits = self.model.prefill(request.prompt_ids, executor)
        clock.advance(self.cost.prefill_time(self.model.config, request.prompt_len))
        self._sync_pool(request.request_id, executor)
        first = self.sampler(logits)
        record.token_ids.append(first)
        record.first_token_time = clock.now
        seq = LiveSequence(
            record=record,
            executor=executor,
            next_token=first,
            next_position=request.prompt_len,
        )
        if record.n_generated >= request.max_new_tokens:
            self._retire(seq, clock)
        else:
            self.live.append(seq)

    def _decode_step(self, clock: SimulatedClock) -> float:
        """One batched decode step over the live set; returns duration."""
        token_ids = [seq.next_token for seq in self.live]
        positions = [seq.next_position for seq in self.live]
        executors = [seq.executor for seq in self.live]
        logits = self.model.decode_step_batch(token_ids, positions, executors)

        batch_flops = sum(
            self.cost.decode_seq_flops(
                self.model.config, ex.kv_lengths(), ex.n_live_heads
            )
            for ex in executors
        )
        dt = self.cost.step_time(batch_flops, len(self.live))
        clock.advance(dt)

        still_live: List[LiveSequence] = []
        for row, seq in enumerate(self.live):
            self._sync_pool(seq.seq_id, seq.executor)
            token = self.sampler(logits[row])
            seq.record.token_ids.append(token)
            seq.record.token_latencies.append(dt)
            if seq.record.n_generated >= seq.request.max_new_tokens:
                self._retire(seq, clock)
            else:
                seq.next_token = token
                seq.next_position += 1
                still_live.append(seq)
        self.live = still_live
        return dt

    def _sync_pool(self, seq_id: int, executor: AttentionExecutor) -> None:
        lengths = executor.kv_lengths()
        if lengths:  # executors without a KV cache have nothing to page
            self.pool.sync(seq_id, lengths)

    def _retire(self, seq: LiveSequence, clock: SimulatedClock) -> None:
        seq.record.status = RequestStatus.FINISHED
        seq.record.finish_time = clock.now
        self.pool.note_reclaimed_tokens(seq.executor.evicted_kv_tokens)
        self.pool.release(seq.seq_id)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ServingStats:
        """Serve a whole arrival trace to completion; returns the stats."""
        ids = [r.request_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ValueError("request_ids must be unique")
        max_seq_len = self.model.config.max_seq_len
        for request in requests:
            if request.total_len > max_seq_len:
                raise ValueError(
                    f"request {request.request_id} spans {request.total_len} "
                    f"tokens (prompt + max_new), model max_seq_len is "
                    f"{max_seq_len}"
                )
            need = self.pool.reservation_pages(
                request.prompt_len, request.max_new_tokens, self.pruning
            )
            if need > self.pool.n_pages:
                raise PoolExhausted(
                    f"request {request.request_id} needs {need} pages, pool "
                    f"holds {self.pool.n_pages}: it can never be admitted"
                )
        records = {r.request_id: RequestRecord(r) for r in requests}
        pending = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        clock = SimulatedClock()
        batch_sizes: List[int] = []
        occupancy: List[float] = []

        while pending or self.queue or self.live:
            self._ingest(pending, clock.now)
            self._admit_ready(clock, records)
            if not self.live:
                if pending:
                    # Idle: jump straight to the next arrival.
                    clock.advance_to(pending[0].arrival_time)
                    continue
                if self.queue:  # pragma: no cover - run() pre-validation
                    raise PoolExhausted("queued request can never be admitted")
                break
            batch_sizes.append(len(self.live))
            self._decode_step(clock)
            occupancy.append(self.pool.occupancy)

        return ServingStats.from_run(
            mode=self.mode,
            records=[records[i] for i in sorted(records)],
            makespan_s=clock.now,
            batch_sizes=batch_sizes,
            occupancy_samples=occupancy,
            pool_pages=self.pool.n_pages,
            pool_page_tokens=self.pool.page_tokens,
            occupancy_peak=self.pool.peak_allocated_pages / self.pool.n_pages,
            reclaimed_pages=self.pool.reclaimed_pages,
            reclaimed_tokens=self.pool.reclaimed_tokens,
        )
