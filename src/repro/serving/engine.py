"""Continuous-batching serving engine over a pruning-aware KV pool.

Each engine iteration mirrors a production serving loop with a
three-phase scheduler:

1. **ingest** — requests whose simulated arrival time has passed move
   into the priority queue;
2. **reserve** — while the head-of-queue request's worst-case KV
   reservation fits the memory pool, admit it: reserve its pages and
   open a resumable prefill (:meth:`repro.nn.transformer.
   TransformerModel.prefill_begin`).  Admission is head-of-line within
   priority order, so a large request cannot be starved by smaller
   late arrivals;
3. **mixed step** — one engine step batches a prefill chunk
   (``prefill_chunk`` tokens) for *every* admitted-but-not-yet-live
   sequence together with one batched decode step across all live
   sequences.  The simulated clock advances once per mixed step
   (:meth:`repro.serving.stats.CostModel.mixed_step_time`), so a long
   prompt no longer freezes the live decode batch for its whole
   duration — the head-of-line prefill stall this scheduler exists to
   fix.  A sequence is **promoted** to the decode set (sampling its
   first token) only when its final chunk commits; pool pages grow
   chunk by chunk as the prompt's KV columns materialize.
4. **retire** — sequences that hit their decode budget release their
   pages immediately, and the freed space backfills from the queue on
   the next iteration.

With ``prefill_chunk=None`` the engine falls back to monolithic
admission-time prefill (the PR-1 behaviour, kept for comparison — the
TTFT/decode-latency benchmark in
``benchmarks/bench_serving_throughput.py`` quantifies the stall).

Chunked prefill is bit-exact: the chunked pass commits exactly the
same logits, caches, and therefore token streams as the monolithic
path, in both dense and SpAtten modes (see
:meth:`~repro.nn.transformer.TransformerModel.prefill_chunk_batch`).

After every step the pool is synced against each executor's real
per-layer cache lengths, so columns evicted by cascade token pruning
drain whole pages back to the free list mid-flight.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence

import numpy as np

from ..config import PruningConfig, QuantConfig
from ..core.pipeline import SpAttenExecutor
from ..nn.batched_attention import ATTENTION_BACKENDS, PackedDecodeBackend
from ..nn.transformer import (
    AttentionExecutor,
    DenseExecutor,
    PrefillState,
    TransformerModel,
)
from .memory_pool import KVMemoryPool, PoolExhausted, prefill_kv_lengths
from .request import Request, RequestQueue, RequestRecord, RequestStatus
from .stats import CostModel, ServingStats, SimulatedClock

__all__ = [
    "LiveSequence",
    "PrefillingSequence",
    "ScheduledSequence",
    "ServingEngine",
    "greedy_sampler",
]


def greedy_sampler(logits: np.ndarray) -> int:
    return int(np.argmax(logits))


@dataclass
class ScheduledSequence:
    """Base for sequences the scheduler tracks by their request record."""

    record: RequestRecord

    @property
    def request(self) -> Request:
        return self.record.request

    @property
    def seq_id(self) -> int:
        return self.request.request_id


@dataclass
class LiveSequence(ScheduledSequence):
    """A request currently resident in the decode batch."""

    executor: AttentionExecutor
    next_token: int
    next_position: int
    #: Simulated time the sequence last committed a token (drives the
    #: inter-token decode-latency metric, which therefore *includes*
    #: any stall between this sequence's consecutive tokens).
    last_commit_time: float = 0.0


@dataclass
class PrefillingSequence(ScheduledSequence):
    """An admitted request whose prompt is still committing in chunks."""

    state: PrefillState


class ServingEngine:
    """Continuous-batching scheduler + executor over a simulated clock.

    Args:
        model: causal transformer shared by every request.
        pool: the KV memory pool enforcing the global byte budget.
        pruning: SpAtten cascade schedule, or ``None`` for the dense
            path.  Also drives the pool's schedule-aware reservations
            and the cost model's schedule-aware prefill charge.
        quant: optional progressive quantization for pruned serving.
        cost_model: simulated-clock step costs.
        sampler: logits -> token id (greedy by default, which keeps
            batched serving bit-comparable with ``model.generate``).
        prefill_chunk: prompt tokens committed per mixed step.  With a
            chunk size, prefill is batched across requests and
            interleaved with decode; ``None`` (default) runs the whole
            prompt monolithically at admission, stalling the live
            batch (kept for comparison benchmarks).
        attention_backend: ``"packed"`` (default) runs decode steps and
            chunked-prefill projections through
            :class:`~repro.nn.batched_attention.PackedDecodeBackend` —
            fused batch-level projection/output GEMMs over preallocated
            KV buffers; ``"looped"`` keeps the per-sequence
            ``run_layer`` hot path (the bit-identity oracle —
            both backends commit identical token streams and identical
            simulated-clock stats, the packed one in less wall time).
        executor_factory: override the per-request executor (tests).
    """

    def __init__(
        self,
        model: TransformerModel,
        pool: KVMemoryPool,
        pruning: Optional[PruningConfig] = None,
        quant: Optional[QuantConfig] = None,
        cost_model: Optional[CostModel] = None,
        sampler: Optional[Callable[[np.ndarray], int]] = None,
        prefill_chunk: Optional[int] = None,
        attention_backend: str = "packed",
        executor_factory: Optional[Callable[[], AttentionExecutor]] = None,
    ):
        if not model.config.causal:
            raise ValueError("serving requires a causal (GPT-style) model")
        if prefill_chunk is not None and prefill_chunk < 1:
            raise ValueError(
                "prefill_chunk must be >= 1, or None for monolithic prefill"
            )
        if attention_backend not in ATTENTION_BACKENDS:
            raise ValueError(
                f"unknown attention_backend {attention_backend!r}; "
                f"choose from {ATTENTION_BACKENDS}"
            )
        self.model = model
        self.pool = pool
        self.pruning = pruning
        self.quant = quant
        self.cost = cost_model or CostModel()
        self.sampler = sampler or greedy_sampler
        self.prefill_chunk = prefill_chunk
        self.attention_backend = attention_backend
        self._backend = (
            PackedDecodeBackend(model) if attention_backend == "packed" else None
        )
        if executor_factory is not None:
            self._executor_factory = executor_factory
        elif pruning is not None or quant is not None:
            # Thread the pool's page size into the caches so buffer
            # growth and pool-page accounting share one unit.
            self._executor_factory = lambda: SpAttenExecutor(
                pruning, quant, kv_page_tokens=pool.page_tokens
            )
        else:
            self._executor_factory = lambda: DenseExecutor(
                kv_page_tokens=pool.page_tokens
            )
        self.queue = RequestQueue()
        self.live: List[LiveSequence] = []
        self.prefilling: List[PrefillingSequence] = []

    @property
    def mode(self) -> str:
        return "dense" if self.pruning is None else "spatten"

    # ------------------------------------------------------------------
    # Scheduling phases
    # ------------------------------------------------------------------
    def _ingest(self, pending: Deque[Request], now: float) -> None:
        while pending and pending[0].arrival_time <= now:
            self.queue.push(pending.popleft())

    def _admit_ready(
        self,
        clock: SimulatedClock,
        records: Dict[int, RequestRecord],
    ) -> None:
        """Backfill the live batch from the queue while the pool fits."""
        while self.queue:
            request = self.queue.peek()
            if not self.pool.can_admit(
                request.prompt_len, request.max_new_tokens, self.pruning
            ):
                break  # head-of-line blocking: keep admission order fair
            self.queue.pop()
            if self.prefill_chunk is None:
                self._admit(request, clock, records[request.request_id])
            else:
                self._reserve(request, clock, records[request.request_id])

    def _reserve(
        self,
        request: Request,
        clock: SimulatedClock,
        record: RequestRecord,
    ) -> None:
        """Phase 1 of chunked admission: reserve pages, open the prefill.

        No prompt work runs here — the prompt commits chunk by chunk
        inside subsequent mixed steps, so reservation itself costs no
        simulated time and never stalls the live batch.
        """
        self.pool.admit(
            request.request_id, request.prompt_len, request.max_new_tokens,
            self.pruning,
        )
        record.status = RequestStatus.RUNNING
        record.admit_time = clock.now
        executor = self._executor_factory()
        state = self.model.prefill_begin(request.prompt_ids, executor)
        self.prefilling.append(PrefillingSequence(record=record, state=state))

    def _admit(
        self,
        request: Request,
        clock: SimulatedClock,
        record: RequestRecord,
    ) -> None:
        """Monolithic admission: run the whole prefill on the spot.

        This is the head-of-line stall the chunked scheduler removes —
        every live sequence waits out the full prompt duration.
        """
        self.pool.admit(
            request.request_id, request.prompt_len, request.max_new_tokens,
            self.pruning,
        )
        record.status = RequestStatus.RUNNING
        record.admit_time = clock.now
        executor = self._executor_factory()
        logits = self.model.prefill(request.prompt_ids, executor)
        clock.advance(
            self.cost.prefill_time(
                self.model.config, request.prompt_len, self.pruning
            )
        )
        self._sync_pool(request.request_id, executor)
        first = self.sampler(logits)
        record.token_ids.append(first)
        record.first_token_time = clock.now
        seq = LiveSequence(
            record=record,
            executor=executor,
            next_token=first,
            next_position=request.prompt_len,
            last_commit_time=clock.now,
        )
        if record.n_generated >= request.max_new_tokens:
            self._retire(seq, clock)
        else:
            self.live.append(seq)

    def _decode_step(self, clock: SimulatedClock) -> float:
        """One batched decode step over the live set; returns duration."""
        batch = list(self.live)
        logits = self.model.decode_step_batch(
            [seq.next_token for seq in batch],
            [seq.next_position for seq in batch],
            [seq.executor for seq in batch],
            backend=self._backend,
        )
        dt = self.cost.step_time(self._decode_flops(batch), len(batch))
        clock.advance(dt)
        self.live = self._commit_decode(batch, logits, clock)
        return dt

    def _mixed_step(self, clock: SimulatedClock) -> float:
        """One mixed step: a prefill chunk per admitted-but-not-live
        sequence plus one batched decode step over the live set, all
        charged as a single engine step."""
        cfg = self.model.config
        prefills = list(self.prefilling)
        spans = [
            (seq,) + seq.state.next_span(self.prefill_chunk)
            for seq in prefills
        ]
        prefill_flops = sum(
            self.cost.prefill_chunk_flops(
                cfg, seq.state.prompt_len, start, end, self.pruning
            )
            for seq, start, end in spans
        )
        decode_batch = list(self.live)
        decode_logits = (
            self.model.decode_step_batch(
                [seq.next_token for seq in decode_batch],
                [seq.next_position for seq in decode_batch],
                [seq.executor for seq in decode_batch],
                backend=self._backend,
            )
            if decode_batch
            else None
        )
        chunk_logits = (
            self.model.prefill_chunk_batch(
                [seq.state for seq in prefills], self.prefill_chunk,
                backend=self._backend,
            )
            if prefills
            else []
        )
        dt = self.cost.mixed_step_time(
            prefill_flops, self._decode_flops(decode_batch),
            len(prefills), len(decode_batch),
        )
        clock.advance(dt)

        # Commit prefill progress; promote sequences whose last chunk
        # just landed.  Promotions join the *next* step's decode batch.
        promoted: List[LiveSequence] = []
        still_prefilling: List[PrefillingSequence] = []
        for (seq, _, _), logits in zip(spans, chunk_logits):
            self._sync_prefill_pool(seq)
            if not seq.state.done:
                still_prefilling.append(seq)
                continue
            first = self.sampler(logits)
            seq.record.token_ids.append(first)
            seq.record.first_token_time = clock.now
            live = LiveSequence(
                record=seq.record,
                executor=seq.state.executor,
                next_token=first,
                next_position=seq.state.prompt_len,
                last_commit_time=clock.now,
            )
            if seq.record.n_generated >= seq.request.max_new_tokens:
                self._retire(live, clock)
            else:
                promoted.append(live)
        self.prefilling = still_prefilling

        still_live = (
            self._commit_decode(decode_batch, decode_logits, clock)
            if decode_batch
            else []
        )
        self.live = still_live + promoted
        return dt

    def _decode_flops(self, batch: Sequence[LiveSequence]) -> float:
        return sum(
            self.cost.decode_seq_flops(
                self.model.config, seq.executor.kv_lengths(),
                seq.executor.n_live_heads,
            )
            for seq in batch
        )

    def _commit_decode(
        self,
        batch: Sequence[LiveSequence],
        logits: np.ndarray,
        clock: SimulatedClock,
    ) -> List[LiveSequence]:
        """Sample and record each live sequence's token; retire finishers."""
        still_live: List[LiveSequence] = []
        for row, seq in enumerate(batch):
            self._sync_pool(seq.seq_id, seq.executor)
            token = self.sampler(logits[row])
            seq.record.token_ids.append(token)
            seq.record.token_latencies.append(
                clock.now - seq.last_commit_time
            )
            seq.last_commit_time = clock.now
            if seq.record.n_generated >= seq.request.max_new_tokens:
                self._retire(seq, clock)
            else:
                seq.next_token = token
                seq.next_position += 1
                still_live.append(seq)
        return still_live

    def _sync_pool(self, seq_id: int, executor: AttentionExecutor) -> None:
        lengths = executor.kv_lengths()
        if lengths:  # executors without a KV cache have nothing to page
            self.pool.sync(seq_id, lengths)

    def _sync_prefill_pool(self, seq: PrefillingSequence) -> None:
        """Grow the sequence's pool pages to match its committed chunks.

        Incremental executors report real per-layer cache lengths.
        Deferred executors (cascade pruning runs whole-sentence on the
        final chunk) are modeled via :func:`prefill_kv_lengths` until
        their real lengths exist — the two coincide at the final chunk.
        """
        state = seq.state
        if state.executor.supports_incremental_prefill or state.done:
            self._sync_pool(seq.seq_id, state.executor)
        else:
            self.pool.sync(
                seq.seq_id,
                prefill_kv_lengths(
                    self.pruning, self.model.config.n_layers,
                    state.prompt_len, state.n_committed,
                ),
            )

    def _retire(self, seq: LiveSequence, clock: SimulatedClock) -> None:
        seq.record.status = RequestStatus.FINISHED
        seq.record.finish_time = clock.now
        self.pool.note_reclaimed_tokens(seq.executor.evicted_kv_tokens)
        self.pool.release(seq.seq_id)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ServingStats:
        """Serve a whole arrival trace to completion; returns the stats."""
        ids = [r.request_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ValueError("request_ids must be unique")
        max_seq_len = self.model.config.max_seq_len
        for request in requests:
            if request.total_len > max_seq_len:
                raise ValueError(
                    f"request {request.request_id} spans {request.total_len} "
                    f"tokens (prompt + max_new), model max_seq_len is "
                    f"{max_seq_len}"
                )
            need = self.pool.reservation_pages(
                request.prompt_len, request.max_new_tokens, self.pruning
            )
            if need > self.pool.n_pages:
                raise PoolExhausted(
                    f"request {request.request_id} needs {need} pages, pool "
                    f"holds {self.pool.n_pages}: it can never be admitted"
                )
        records = {r.request_id: RequestRecord(r) for r in requests}
        pending: Deque[Request] = deque(
            sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        )
        clock = SimulatedClock()
        batch_sizes: List[int] = []
        occupancy: List[float] = []

        while pending or self.queue or self.prefilling or self.live:
            self._ingest(pending, clock.now)
            self._admit_ready(clock, records)
            if not self.live and not self.prefilling:
                if pending:
                    # Idle: jump straight to the next arrival.
                    clock.advance_to(pending[0].arrival_time)
                    continue
                if self.queue:  # pragma: no cover - run() pre-validation
                    raise PoolExhausted("queued request can never be admitted")
                break
            if self.prefill_chunk is None:
                batch_sizes.append(len(self.live))
                self._decode_step(clock)
            else:
                batch_sizes.append(len(self.live) + len(self.prefilling))
                self._mixed_step(clock)
            occupancy.append(self.pool.occupancy)

        return ServingStats.from_run(
            mode=self.mode,
            records=[records[i] for i in sorted(records)],
            makespan_s=clock.now,
            batch_sizes=batch_sizes,
            occupancy_samples=occupancy,
            pool_pages=self.pool.n_pages,
            pool_page_tokens=self.pool.page_tokens,
            occupancy_peak=self.pool.peak_allocated_pages / self.pool.n_pages,
            reclaimed_pages=self.pool.reclaimed_pages,
            reclaimed_tokens=self.pool.reclaimed_tokens,
        )
