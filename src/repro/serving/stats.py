"""Serving cost model, simulated clock, and the ServingStats report.

The engine runs against a *simulated* clock: every prefill and every
batched decode step advances time by a modeled duration, so queueing
and latency statistics are deterministic and hardware-independent (the
same philosophy as the repo's analytic traces).  The cost model charges

* a fixed per-step overhead (kernel launch / scheduling) — this is the
  term continuous batching amortises across the live batch;
* a small per-sequence bookkeeping overhead;
* the arithmetic work at a modeled FLOP rate.  Attention work scales
  with each sequence's *live* KV columns and heads, so cascade pruning
  directly shortens pruned decode steps.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields
from typing import List, Optional, Sequence

import numpy as np

from ..config import ModelConfig, PruningConfig
from ..core import schedule as sched
from ..eval.reporting import Table
from .request import RequestRecord, RequestStatus

__all__ = [
    "SimulatedClock",
    "CostModel",
    "ServingStats",
    "STATS_SCHEMA_VERSION",
    "format_quantiles",
]


class SimulatedClock:
    """Monotone simulated time in seconds."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError("cannot advance the clock backwards")
        self.now += dt
        return self.now

    def advance_to(self, t: float) -> float:
        self.now = max(self.now, float(t))
        return self.now


@dataclass(frozen=True)
class CostModel:
    """Step-time model for the simulated serving clock.

    Attributes:
        flops_per_second: modeled sustained arithmetic throughput.
        step_overhead_s: fixed cost per engine step, amortised over the
            whole live batch (the continuous-batching win).
        seq_overhead_s: per-live-sequence bookkeeping cost per step.
    """

    flops_per_second: float = 50e9
    step_overhead_s: float = 2e-4
    seq_overhead_s: float = 1e-5

    def decode_seq_flops(
        self,
        model: ModelConfig,
        kv_lengths: Sequence[int],
        n_live_heads: int,
    ) -> float:
        """FLOPs to decode one token of one sequence.

        Projections scale with live heads (pruned heads project
        nothing), attention with live KV columns, and the FFN with the
        full width (token pruning saves FFN work only for *evicted*
        positions, which never reach decode).
        """
        d = model.head_dim
        head_frac = n_live_heads / model.n_heads
        proj = 2 * model.d_model * model.d_model * (3 * head_frac + 1)
        ffn = 4 * model.d_model * model.d_ff
        flops = 0.0
        for length in kv_lengths:
            attn = 4 * n_live_heads * length * d
            flops += proj + ffn + attn
        return flops

    def prefill_flops(
        self,
        model: ModelConfig,
        prompt_len: int,
        pruning: Optional[PruningConfig] = None,
    ) -> float:
        """FLOPs to summarize a whole prompt.

        Without ``pruning`` this is the dense upper bound.  With a
        cascade schedule it is *schedule-aware*: layer ``l`` charges
        only its surviving tokens and heads, replayed from the same
        keep targets (:mod:`repro.core.schedule`) the executor runs —
        so pruned prefill is genuinely cheaper on the serving clock.
        """
        return self.prefill_chunk_flops(model, prompt_len, 0, prompt_len,
                                        pruning)

    def prefill_chunk_flops(
        self,
        model: ModelConfig,
        prompt_len: int,
        chunk_start: int,
        chunk_end: int,
        pruning: Optional[PruningConfig] = None,
    ) -> float:
        """FLOPs to commit prompt tokens ``[chunk_start, chunk_end)``.

        A chunk's queries attend only to the prefix cached so far
        (``chunk_end`` columns), so chunked prefill charges the causal
        ``chunk x prefix`` rectangle instead of the monolithic
        ``prompt x prompt`` square — summing chunks therefore costs
        *less* total attention arithmetic than one monolithic pass,
        exactly the Sarathi-style chunked-prefill win.  With a pruning
        schedule, layer ``l`` additionally scales queries and keys by
        its token keep fraction and charges only live heads.
        """
        if not 0 <= chunk_start < chunk_end <= prompt_len:
            raise ValueError(
                f"invalid chunk [{chunk_start}, {chunk_end}) for prompt of "
                f"{prompt_len} tokens"
            )
        d, d_ff, n_heads = model.d_model, model.d_ff, model.n_heads
        if pruning is None:
            token_fracs = [1.0] * model.n_layers
            head_counts = [n_heads] * model.n_layers
        else:
            counts = sched.token_keep_counts(
                pruning, model.n_layers, prompt_len
            )
            token_fracs = [int(c) / prompt_len for c in counts]
            head_counts = [
                int(h) for h in
                sched.head_keep_counts(pruning, model.n_layers, n_heads)
            ]
        flops = 0.0
        for frac, heads in zip(token_fracs, head_counts):
            queries = frac * (chunk_end - chunk_start)
            keys = frac * chunk_end
            proj = 2 * d * d * (3 * heads / n_heads + 1)
            ffn = 4 * d * d_ff
            attn = 4 * heads * queries * keys * model.head_dim
            flops += queries * (proj + ffn) + attn
        return flops

    def prefill_time(
        self,
        model: ModelConfig,
        prompt_len: int,
        pruning: Optional[PruningConfig] = None,
    ) -> float:
        return (
            self.step_overhead_s
            + self.prefill_flops(model, prompt_len, pruning)
            / self.flops_per_second
        )

    def step_time(self, batch_flops: float, batch_size: int) -> float:
        return (
            self.step_overhead_s
            + self.seq_overhead_s * batch_size
            + batch_flops / self.flops_per_second
        )

    def mixed_step_time(
        self,
        prefill_flops: float,
        decode_flops: float,
        n_prefill_seqs: int,
        n_decode_seqs: int,
    ) -> float:
        """Duration of one mixed step: prefill chunks + batched decode.

        A single fixed step overhead covers the whole mixed batch —
        this is what lets chunked prefill hide prompt summarization
        behind decode steps instead of stalling them.  Degenerates to
        :meth:`step_time` for a decode-only step.
        """
        return (
            self.step_overhead_s
            + self.seq_overhead_s * (n_prefill_seqs + n_decode_seqs)
            + (prefill_flops + decode_flops) / self.flops_per_second
        )


def _percentile(samples: Sequence[float], q: float) -> float:
    # No samples means the quantile is *unknown*, not zero: a run where
    # nothing completed must not report perfect p50/p95/p99 latency.
    # NaN propagates honestly; to_dict()/to_json() render it as null
    # and table() as "n/a".
    if not samples:
        return float("nan")
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def format_quantiles(
    values: Sequence[float], scale: float = 1e3, fmt: str = ".1f"
) -> str:
    """Render a p50/p95/p99 triple, showing NaN (no samples) as n/a."""
    return " / ".join(
        "n/a" if math.isnan(v) else f"{v * scale:{fmt}}" for v in values
    )


def _null_if_nan(value):
    return None if isinstance(value, float) and math.isnan(value) else value


#: Version of the JSON document :meth:`ServingStats.to_dict` (and the
#: cluster aggregate built on it) emits.  Bump when a field is renamed,
#: removed, or changes meaning — *adding* fields is backward-compatible
#: and does not bump.  Consumers parsing ``--stats-json`` output should
#: check this before anything else.
STATS_SCHEMA_VERSION = 2


@dataclass
class ServingStats:
    """Aggregate report of one serving run (simulated-clock units)."""

    mode: str
    n_requests: int
    n_tokens: int
    makespan_s: float
    throughput_tps: float
    queue_wait_p50: float
    queue_wait_p95: float
    queue_wait_p99: float
    ttft_p50: float
    ttft_p95: float
    ttft_p99: float
    decode_latency_p50: float
    decode_latency_p95: float
    decode_latency_p99: float
    mean_batch_size: float
    pool_pages: int
    pool_page_tokens: int
    occupancy_mean: float
    occupancy_peak: float
    reclaimed_pages: int
    reclaimed_tokens: int
    #: Records that never reached admission (partial / truncated runs).
    #: They are skipped — not crashed on — when aggregating latencies.
    #: Terminal failures are *not* lumped in here: they get their own
    #: counter below.
    n_unadmitted: int = 0
    #: Requests that ended ``FAILED`` (unplaceable, retry budget or
    #: deadline exhausted, or shed by the degradation ladder).  Failed
    #: requests contribute no latency samples, so a run where nothing
    #: survived reports its quantiles as NaN ("n/a"), never as zeros.
    n_failed_requests: int = 0
    #: Best-effort requests dropped by the degradation ladder plus
    #: deadline expiries (both also counted in ``n_failed_requests``).
    n_shed: int = 0
    #: Requests escalated to a more aggressive cascade schedule under
    #: pressure (rung 2 of the ladder); their streams are served in
    #: full but marked degraded.
    n_repruned: int = 0
    #: KV-corruption strikes survived via quarantine-and-recompute.
    n_corruptions: int = 0
    #: Per-priority-tier breakdown (one dict per priority present in
    #: the trace): request/finish/failure counts and TTFT percentiles,
    #: NaN-aware exactly like the top-level quantiles.
    tiers: List[dict] = field(default_factory=list)
    #: Admission mode the engine ran under (``reserve``/``optimistic``).
    admission: str = "reserve"
    #: Numerics-ladder tier the engine ran under
    #: (``exact``/``fp32``/``int8`` — see :mod:`repro.nn.numerics`).
    numerics: str = "exact"
    #: Preemptions across the run (optimistic admission under pool
    #: pressure) and the tokens recomputed after them — latency paid,
    #: never tokens lost (greedy replay is bit-identical).
    n_preemptions: int = 0
    recompute_tokens: int = 0
    #: SLO attainment report (:meth:`repro.insight.SLOReport.to_dict`)
    #: when the engine ran under an SLO policy, else ``None``.  Filled
    #: in *after* :meth:`from_run` by the engine's ``finish()`` — the
    #: evaluation is read-only over the records, so every other field
    #: is bit-identical with and without it.
    slo: Optional[dict] = None
    records: List[RequestRecord] = field(default_factory=list)

    @staticmethod
    def from_run(
        mode: str,
        records: List[RequestRecord],
        makespan_s: float,
        batch_sizes: List[int],
        occupancy_samples: List[float],
        pool_pages: int,
        pool_page_tokens: int,
        occupancy_peak: float,
        reclaimed_pages: int,
        reclaimed_tokens: int,
        admission: str = "reserve",
        numerics: str = "exact",
    ) -> "ServingStats":
        # A record that never reached admission (a partial run cut short
        # by an error or an interrupted trace) has no queue_wait/TTFT;
        # skip it from the latency aggregates and count it instead of
        # crashing the whole report.  Terminal failures are counted
        # separately: with no survivors the quantiles come out NaN
        # ("n/a"), so a run that failed everything can never masquerade
        # as one with perfect latency.
        failed = [r for r in records if r.status is RequestStatus.FAILED]
        admitted = [r for r in records if r.admit_time is not None]
        queue_waits = [r.queue_wait for r in admitted]
        ttfts = [
            r.time_to_first_token for r in admitted
            if r.first_token_time is not None
        ]
        decode_lat = [lat for r in records for lat in r.token_latencies]
        n_tokens = sum(r.n_generated for r in records)
        tiers = []
        for priority in sorted({r.request.priority for r in records}):
            tier = [r for r in records if r.request.priority == priority]
            tier_ttfts = [
                r.time_to_first_token for r in tier
                if r.first_token_time is not None
            ]
            tiers.append({
                "priority": priority,
                "n_requests": len(tier),
                "n_finished": sum(
                    r.status is RequestStatus.FINISHED for r in tier
                ),
                "n_failed_requests": sum(
                    r.status is RequestStatus.FAILED for r in tier
                ),
                "ttft_p50": _percentile(tier_ttfts, 50),
                "ttft_p95": _percentile(tier_ttfts, 95),
            })
        return ServingStats(
            mode=mode,
            n_requests=len(records),
            n_tokens=n_tokens,
            makespan_s=makespan_s,
            throughput_tps=n_tokens / makespan_s if makespan_s > 0 else 0.0,
            queue_wait_p50=_percentile(queue_waits, 50),
            queue_wait_p95=_percentile(queue_waits, 95),
            queue_wait_p99=_percentile(queue_waits, 99),
            ttft_p50=_percentile(ttfts, 50),
            ttft_p95=_percentile(ttfts, 95),
            ttft_p99=_percentile(ttfts, 99),
            decode_latency_p50=_percentile(decode_lat, 50),
            decode_latency_p95=_percentile(decode_lat, 95),
            decode_latency_p99=_percentile(decode_lat, 99),
            mean_batch_size=float(np.mean(batch_sizes)) if batch_sizes else 0.0,
            pool_pages=pool_pages,
            pool_page_tokens=pool_page_tokens,
            occupancy_mean=(
                float(np.mean(occupancy_samples)) if occupancy_samples else 0.0
            ),
            occupancy_peak=occupancy_peak,
            reclaimed_pages=reclaimed_pages,
            reclaimed_tokens=reclaimed_tokens,
            n_unadmitted=len(records) - len(admitted) - sum(
                1 for r in failed if r.admit_time is None
            ),
            admission=admission,
            numerics=numerics,
            n_preemptions=sum(r.n_preemptions for r in records),
            recompute_tokens=sum(r.recompute_tokens for r in records),
            n_failed_requests=len(failed),
            n_shed=sum(
                1 for r in records if r.failure in ("shed", "deadline")
            ),
            n_repruned=sum(1 for r in records if r.degraded),
            n_corruptions=sum(r.n_corruptions for r in records),
            tiers=tiers,
            records=records,
        )

    def to_dict(self) -> dict:
        """All scalar metrics as a plain dict (no per-request records).

        Benchmarks and the cluster aggregator consume this instead of
        re-deriving percentiles from :attr:`records` by hand.  Unknown
        percentiles (NaN: no samples) become ``None`` so the dict
        serializes to strict JSON (``null``), never a bare ``NaN``.
        The dict carries ``schema_version``
        (:data:`STATS_SCHEMA_VERSION`) so downstream dashboards can
        detect incompatible changes instead of silently misreading.
        """
        out = {
            f.name: _null_if_nan(getattr(self, f.name))
            for f in fields(self)
            if f.name != "records"
        }
        out["tiers"] = [
            {key: _null_if_nan(value) for key, value in tier.items()}
            for tier in self.tiers
        ]
        out["schema_version"] = STATS_SCHEMA_VERSION
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The scalar metrics as a JSON document (see :meth:`to_dict`)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def table(self) -> Table:
        t = Table(
            title=f"serving report — {self.mode}",
            headers=["metric", "value"],
        )
        ms = 1e3
        t.add_row("requests served", str(self.n_requests))
        if self.n_unadmitted:
            t.add_row("requests never admitted (partial run)",
                      str(self.n_unadmitted))
        if self.n_failed_requests:
            t.add_row("requests failed", str(self.n_failed_requests))
        if self.n_shed:
            t.add_row("requests shed (deadline / load shedding)",
                      str(self.n_shed))
        if self.n_repruned:
            t.add_row("requests repruned under pressure",
                      str(self.n_repruned))
        if self.n_corruptions:
            t.add_row("KV corruptions quarantined", str(self.n_corruptions))
        t.add_row("tokens generated", str(self.n_tokens))
        t.add_row("makespan (s)", f"{self.makespan_s:.3f}")
        t.add_row("throughput (tok/s)", f"{self.throughput_tps:.1f}")
        t.add_row("queue wait p50/p95/p99 (ms)",
                  format_quantiles((self.queue_wait_p50,
                                    self.queue_wait_p95,
                                    self.queue_wait_p99), ms, ".1f"))
        t.add_row("time-to-first-token p50/p95/p99 (ms)",
                  format_quantiles((self.ttft_p50, self.ttft_p95,
                                    self.ttft_p99), ms, ".1f"))
        t.add_row("decode latency p50/p95/p99 (ms/tok)",
                  format_quantiles((self.decode_latency_p50,
                                    self.decode_latency_p95,
                                    self.decode_latency_p99), ms, ".2f"))
        t.add_row("mean live batch", f"{self.mean_batch_size:.2f}")
        if len(self.tiers) > 1:
            for tier in self.tiers:
                t.add_row(
                    f"tier p{tier['priority']} finished/failed/total",
                    f"{tier['n_finished']}/{tier['n_failed_requests']}/"
                    f"{tier['n_requests']}, ttft p95 "
                    + format_quantiles((tier["ttft_p95"],), ms, ".1f")
                    + " ms",
                )
        if self.admission != "reserve":
            t.add_row("admission mode", self.admission)
        if self.numerics != "exact":
            t.add_row("numerics tier", self.numerics)
        if self.n_preemptions:
            t.add_row("preemptions (recompute-on-preempt)",
                      str(self.n_preemptions))
            t.add_row("tokens recomputed after preemption",
                      str(self.recompute_tokens))
        t.add_row("pool pages (x tokens/page)",
                  f"{self.pool_pages} x {self.pool_page_tokens}")
        t.add_row("pool occupancy mean/peak",
                  f"{self.occupancy_mean:.1%} / {self.occupancy_peak:.1%}")
        t.add_row("pages reclaimed by pruning", str(self.reclaimed_pages))
        t.add_row("KV columns evicted by pruning", str(self.reclaimed_tokens))
        t.add_note("simulated clock; see repro.serving.stats.CostModel")
        return t
