"""Continuous-batching inference serving with a pruning-aware KV pool.

SpAtten's cascade token pruning frees KV-cache columns *mid-generation*
("once a token is pruned, the QKV of it will never be used in all the
following heads and layers").  This package turns that property into a
serving-level win: a paged KV memory pool whose admission control knows
the pruning schedule, so SpAtten-pruned sequences reserve — and hold —
a fraction of the dense KV footprint, letting more concurrent requests
share the same memory budget.

Layers of the subsystem
-----------------------

* :mod:`~repro.serving.request` — :class:`Request` (prompt, decode
  budget, arrival time, priority), per-request lifecycle
  :class:`RequestRecord`, and the priority/FIFO :class:`RequestQueue`.
* :mod:`~repro.serving.memory_pool` — :class:`KVMemoryPool`: fixed-size
  pages per layer, schedule-aware worst-case reservations for admission
  control, chunk-by-chunk page growth while a prompt prefills, and page
  reclamation as cascade pruning evicts columns.  A second, *optimistic*
  admission plane bills actual usage instead of the worst case (see
  "Admission modes & preemption" below).
* :mod:`~repro.serving.preemption` — deterministic victim selection
  (:class:`~repro.serving.preemption.PreemptionPolicy`) for
  optimistic-admission pool pressure: ``lowest_priority``,
  ``most_pages``, or ``latest_arrival``, all skipping victims the
  livelock guard protects.
* :mod:`~repro.serving.engine` — :class:`ServingEngine`: a three-phase
  mixed-step scheduler.  Each iteration ingests arrivals, **reserves**
  pool pages for every queue-head request that fits (no prompt work
  yet), then runs one **mixed step**: a prefill chunk
  (``prefill_chunk`` tokens, batched across every admitted-but-not-live
  sequence via :meth:`repro.nn.transformer.TransformerModel.
  prefill_chunk_batch`) together with one batched decode step over all
  live sequences (:meth:`~repro.nn.transformer.TransformerModel.
  decode_step_batch`).  A sequence is **promoted** to the decode set
  when its final chunk commits; finished sequences retire and their
  pages free immediately.  Chunking removes the head-of-line prefill
  stall — a long prompt no longer freezes the live decode batch — while
  committing bit-identical token streams to the monolithic path (which
  remains available as ``prefill_chunk=None`` for comparison).
* :mod:`~repro.serving.stats` — the simulated clock, the step-time
  :class:`CostModel` (schedule-aware prefill FLOPs, per-chunk charges,
  and the single-overhead mixed step), and the :class:`ServingStats`
  report (throughput, p50/p95 queue wait, TTFT and inter-token decode
  latency, pool occupancy, reclamation).
* :mod:`repro.nn.batched_attention` — the **packed decode backend**
  behind ``ServingEngine(attention_backend="packed")`` (the default).
  Every mixed step's decode attention runs with fused batch-level
  Q/K/V and output-FC matmuls plus a central attention core over
  zero-copy views of preallocated KV buffers, instead of ``B ×
  n_layers`` single-row ``run_layer`` calls.  ``"looped"`` keeps the
  per-sequence path as the bit-identity oracle: both backends commit
  identical token streams and identical simulated-clock stats — the
  packed one in less wall time (``benchmarks/bench_decode_step.py``).

KV storage model
----------------

:class:`~repro.nn.kv_cache.LayerKVCache` separates *live length* from
*capacity*: K/V buffers are preallocated and grown by amortized
doubling at page granularity (``page_tokens`` columns, the same unit
:class:`KVMemoryPool` budgets in), so one appended decode token is an
O(1) in-place write instead of an O(L) ``np.concatenate`` — O(L²) copy
traffic over a generation.  The pool accounts *live* columns: each
engine step syncs a sequence's real per-layer cache lengths and the
pool allocates exactly ``ceil(live / page_tokens)`` pages, while
cascade eviction compacts the buffer in place and drains whole pages
back to the free list.  Buffer *capacity* may run ahead of the
allocated pages (the doubling policy preallocates up to ~2× the live
columns to amortize growth copies;
:attr:`~repro.nn.kv_cache.LayerKVCache.capacity_nbytes` vs
:attr:`~repro.nn.kv_cache.LayerKVCache.nbytes` reports the
difference) — the byte budget the pool enforces is a bound on live KV
state, not on the preallocated headroom.
Chunked dense prefill reserves the full prompt width up front and pads
K/V with zero-copy views (:meth:`~repro.nn.kv_cache.LayerKVCache.
padded_to`) rather than per-chunk concatenations.

Admission modes & preemption
----------------------------

``ServingEngine(admission=...)`` selects how requests are billed
against the pool:

* ``"reserve"`` (default) — the PR-1 contract: a request reserves its
  schedule-bound *worst-case* pages at admission and holds that
  reservation until it retires.  Nothing can ever be forced out of
  memory, but pages reclaimed by mid-generation pruning cannot admit
  new work that was refused at reservation time — under load the
  engine idles capacity the cascade schedule provably freed.
* ``"optimistic"`` — admission bills only the request's post-prefill
  prompt footprint plus a configurable ``headroom_pages`` against the
  pool's *actual* usage (optimistic accounts track
  ``max(prompt floor, allocated)`` and shrink as pruning evicts, so
  reclaimed pages become admissible capacity immediately).  Future
  decode growth is deliberately unbilled; when it materializes and the
  next step's projected growth would overflow the pool, the engine
  **preempts**: a victim chosen by the ``preempt_policy``
  (``lowest_priority`` / ``most_pages`` / ``latest_arrival``,
  :mod:`repro.serving.preemption`) releases its pages and requeues for
  **recompute-on-preempt**.  Greedy decoding replays a bit-identical
  stream, so preemption costs latency, never tokens — the same
  invariant cluster drains established.  Safety properties:

  - a preempted request is *protected* until it commits new work (a
    prefill chunk or decode token), so no request is preempted twice
    without progress — the livelock guard;
  - a lone resident sequence is never preempted: ``submit`` still
    validates that the worst-case bound fits the whole pool, so the
    last sequence standing always runs to completion;
  - the pool audits its ledger (``KVMemoryPool.audit``) after every
    preemption cycle, and preemption counters
    (``ServingStats.n_preemptions`` / ``recompute_tokens``,
    per-request on :class:`RequestRecord`) keep the recompute cost
    visible in the report.

``benchmarks/bench_preemption.py`` sweeps both admission modes at a
fixed pool budget on a pruning-heavy trace: optimistic admission +
preemption strictly improves throughput and TTFT p95 over
reservation-only admission, with bit-identical per-request outputs.
The CLI surfaces all of it: ``repro serve --admission optimistic
--preempt-policy most_pages --headroom-pages 8``.

Quick start
-----------

Run a synthetic arrival trace from the command line (defaults: 16
requests at 200 req/s, chunked prefill of 32 tokens; ``--prefill-chunk
0`` restores the stalling monolithic behaviour)::

    PYTHONPATH=src python -m repro.cli serve --requests 16 --rate 200 \\
        --pool-kib 768 --mode both

or drive the engine directly::

    from repro.config import GPT2_SMALL, PruningConfig
    from repro.serving import KVMemoryPool, ServingEngine
    from repro.workloads import (
        accuracy_scale_config, build_task_model, build_vocabulary,
        make_lm_corpus, synthetic_request_trace,
    )

    vocab = build_vocabulary(size=512, n_classes=4, seed=0)
    config = accuracy_scale_config(GPT2_SMALL, len(vocab), n_layers=6,
                                   d_model=128, n_heads=8, max_seq_len=256)
    model, _ = build_task_model(config, vocab, "lm", seed=0)
    corpus = make_lm_corpus(vocab, n_tokens=2048, seed=2)
    requests = synthetic_request_trace(corpus, n_requests=8, rate_per_s=4.0)

    pool = KVMemoryPool(config, budget_bytes=768 * 1024)
    engine = ServingEngine(model, pool,
                           pruning=PruningConfig(token_keep_final=0.4),
                           prefill_chunk=16)
    print(engine.run(requests).table())

The benchmark ``benchmarks/bench_serving_throughput.py`` compares dense
and SpAtten-pruned serving across arrival rates at a matched budget,
and sweeps chunked against monolithic prefill to quantify the TTFT and
decode-latency-p95 win under load.

Numerics ladder
---------------

The repo's founding contract is *bit identity*: every serving path
reproduces the per-sequence fp64 looped oracle to the last ulp.  That
contract caps the packed decode backend near ~2× — OpenBLAS reductions
are padding-variant, so a bit-identical batched core must keep
exact-length per-sequence matmuls and softmax denominators.  SpAtten's
own progressive quantization (paper Section III-D) spends an *accuracy
budget* instead of a bit budget; :mod:`repro.nn.numerics` ports that
philosophy to the hot path as an explicit, operator-visible axis:

========  ==========================================================
tier      decode hot path
========  ==========================================================
`exact`   the default — fp64 compute, fp64 KV, every pre-existing
          code path verbatim, still bit-identical to the oracle
`fp32`    fp32 KV planes + one padded ``[B, h, 1, max_len]``
          masked-softmax attention over a shared scratch arena and a
          vectorized fp32 FFN
`int8`    same batched core over int8 KV codes with per-(head ×
          column) fp32 scales (:func:`repro.core.quantization.
          quantize_rows`) — 4× less KV DRAM than fp32
========  ==========================================================

Select a tier with ``ServingEngine(numerics=...)`` /
``ClusterEngine(numerics=...)`` or CLI ``--numerics
{exact,fp32,int8}`` (packed backend only — the looped oracle *is* the
bit-identity reference and serves only ``exact``).  The tier lands in
the stats report's ``numerics`` field and the
``repro_numerics_steps_total`` telemetry counter.  Every non-exact
tier declares its quality budget (max mean KL from the oracle's
next-token distribution, min argmax-match rate);
``benchmarks/bench_numerics.py`` sweeps the ladder, measures
decode-step speedup and distribution drift against the fp64 oracle,
and exits non-zero when a tier exceeds its declared budget — the
ladder is only allowed to be fast where it is provably accurate
enough.

Cluster mode
------------

:mod:`repro.cluster` layers multi-replica serving on top of this
package; the engine exposes the hooks it drives:

* **Stepwise API** — ``run()`` is a thin loop over
  :meth:`~repro.serving.engine.ServingEngine.start` /
  :meth:`~repro.serving.engine.ServingEngine.submit` /
  :meth:`~repro.serving.engine.ServingEngine.step` /
  :meth:`~repro.serving.engine.ServingEngine.finish`.  A cluster
  driver steps N engines on *parallel simulated timelines*, delivering
  each request at its arrival through a routing policy
  (``round_robin``, ``least_loaded``, or the schedule-aware
  ``pruning_aware``) and capping idle clock jumps at the next global
  event.  Because both paths share the same hooks, a single-replica
  cluster is bit-identical to plain ``run()`` — same tokens, same
  stats.
* **Per-request schedules** — :attr:`~repro.serving.request.Request.
  pruning` lets every request carry its own cascade schedule (the
  default inherits the engine's; ``None`` forces dense).  Executors,
  pool reservations, and cost-model charges all resolve per request,
  which is what heterogeneous traces
  (:func:`repro.workloads.heterogeneous_request_trace`) and
  schedule-bound routing cost estimates
  (:meth:`~repro.serving.engine.ServingEngine.request_flops_estimate`,
  :meth:`~repro.serving.engine.ServingEngine.outstanding_flops`,
  :meth:`~repro.serving.engine.ServingEngine.outstanding_page_seconds`)
  are built on.
* **Sharded ledger accounting** — each replica owns a private
  :class:`KVMemoryPool` shard; :class:`repro.cluster.ShardedKVPool`
  aggregates them under a global page ledger whose ``audit()``
  guarantees every live sequence is billed by exactly one shard and
  retired shards hold nothing.
* **Drain semantics** — :meth:`~repro.serving.engine.ServingEngine.
  drain` pre-empts everything in flight (queued, prefilling, live):
  pool pages release immediately, records reset to pre-admission
  state, and the cluster re-routes the requests with their *original*
  arrival times, so the drain penalty stays visible in queue-wait and
  TTFT percentiles while greedy decoding guarantees the requeued
  requests commit identical token streams (no token loss).

``benchmarks/bench_cluster_scaling.py`` sweeps replica count × routing
policy at a fixed total budget; ``repro serve-cluster`` is the CLI
surface (``--drain-at TIME:REPLICA`` exercises mid-run drains).

Fault tolerance & chaos testing
-------------------------------

:mod:`repro.faults` turns the drain machinery into a full chaos
engine: every fault is an event on the *simulated* clock, generated
from a seeded Generator, so a ``(seed, profile)`` pair replays to
byte-identical fleet behaviour — chaos runs are as deterministic as
fault-free ones.

**Fault taxonomy** (:class:`repro.faults.FaultEvent`):

* ``fail`` / ``drain`` — replica crash or graceful retirement.  The
  shard leaves the ledger's active set; in-flight work requeues
  through the router with original arrival times (latency penalty,
  never token loss).
* ``recover`` — the crashed replica rejoins: its empty shard
  re-registers with the :class:`~repro.cluster.ShardedKVPool` ledger
  under the same audit that governed its departure, and the router
  places new work on it again.  Event sequences are validated up
  front (:func:`repro.faults.validate_fault_events`): drain ->
  recover -> fail on one replica is legal; overlapping retire events
  are rejected before anything runs.
* ``slow_start`` / ``slow_end`` — a transient straggler: the
  replica's :class:`CostModel` step times stretch by the window's
  factor (``ServingEngine.set_slowdown``).  Clock-only — token
  streams are untouched, and the never-slowed run multiplies by
  exactly 1.0, which is bitwise-exact in IEEE arithmetic.
* ``corrupt`` — one stored KV-page checksum flips on the target
  shard.  :class:`KVMemoryPool` keeps a per-page checksum plane in
  lockstep with its allocations; the owning engine detects the
  mismatch on its next step, **quarantines** the victim sequence
  (pages released under audit), and requeues it for recompute —
  greedy decoding replays the identical stream.

**Hardening**, layered on :class:`repro.cluster.ClusterEngine`:

* heartbeat failure detection (:class:`repro.faults.
  HeartbeatMonitor`) on the simulated clock — a replica whose last
  observed step activity lags routing time (the straggler-inside-a-
  stretched-step signature) opens a **circuit breaker** in the
  router, steering new placements away until it is seen alive, while
  never blocking placement when every candidate is suspected;
* per-request **deadlines** (``--deadline-ms``) and placement
  **retry with exponential backoff** under a bounded retry budget
  (``--retry-budget``) — a request displaced by a fleet-wide crash
  backs off, lands on a replica that recovered in the interim, or
  fails cleanly when the budget or deadline is exhausted (a FAILED
  record in the report, never a dead loop);
* a **graceful-degradation ladder**
  (:class:`~repro.serving.degradation.DegradationPolicy`) under
  sustained pool pressure: *shed* the worst best-effort queued
  request, then *reprune* the queued head-of-line request to a more
  aggressive cascade schedule (strictly fewer pages, applied only
  before admission so delivered tokens are never invalidated), with
  optimistic-admission *preemption* as the backstop — shed ->
  reprune -> preempt, each rung observable in telemetry.

**Writing a FaultPlan**: script events by hand
(``FaultPlan(n_replicas=2, events=(FaultEvent(0.02, 0, "fail"),
FaultEvent(0.05, 0, "recover")))``) or generate one
(``FaultPlan.generate(seed, n_replicas, horizon_s,
profile="moderate")`` — crash/recover cycles and straggler windows
laid out on a forward time walk per replica, so generated plans are
always legal).  The CLI surface is ``repro serve-cluster
--chaos-seed N --chaos-profile moderate`` (plus scripted
``--recover-at TIME:REPLICA``); fleet health lands in
:class:`~repro.cluster.stats.ClusterStats` as availability, goodput,
MTTR, recovery/retry/breaker counters.  ``benchmarks/bench_chaos.py``
is the soak harness: fault-plan seeds × intensity, per-run ledger
audits, zero token loss for non-failed requests, and bit-identical
surviving streams vs the fault-free run.

Observability
-------------

:mod:`repro.telemetry` instruments every layer above without changing
any of it.  ``ServingEngine(telemetry=Telemetry())`` (and the same
keyword on :class:`repro.cluster.ClusterEngine`) turns on three
independent sinks:

* **Tracing** — a :class:`~repro.telemetry.Tracer` records the full
  request lifecycle on the *simulated* clock: a ``queued`` span from
  submission to admission, a ``prefill`` span per chunked prefill, a
  ``decode`` span to retirement, with ``preempted`` / ``requeued`` /
  ``drained`` outcomes when those paths fire.  Pool transactions
  (admit / sync / release / preempt-release), router decisions with
  per-replica scores, and sharded-ledger drain/fail transitions land
  on their own tracks.  :func:`~repro.telemetry.chrome_trace_json`
  exports Chrome trace-event JSON for ``chrome://tracing`` /
  Perfetto; ``repro trace-report PATH`` renders a terminal report
  (per-phase time breakdown, pruning-savings timeline,
  preemption/requeue storms) from the same file.
* **Metrics** — a :class:`~repro.telemetry.MetricsRegistry` samples
  every engine step (live batch, pool occupancy, step FLOPs, backlog,
  and the *pruning savings* series: schedule-bound worst-case pages
  minus live usage — the capacity the cascade schedule freed) and
  keeps Prometheus-style counters/gauges/histograms.  Export as JSONL
  time-series (:func:`~repro.telemetry.metrics_jsonl`) or Prometheus
  text exposition (:func:`~repro.telemetry.prometheus_text`).
* **Profiling** — :class:`~repro.telemetry.HotPathProfiler` times the
  packed decode backend's stages in *wall-clock* seconds (QKV
  projection, attention core, output FC).  Deliberately separate from
  the simulated clock and excluded from the deterministic artifacts.

Two invariants the test suite enforces (``tests/test_telemetry.py``):
telemetry is **inert** — on or off, token streams and stats are
bit-identical (the default ``NULL_TELEMETRY`` sink costs nothing on
the hot path) — and trace/metrics exports are **byte-deterministic**
across identical runs, because every timestamp comes from the
simulated clock.  ``audit_every=N`` (CLI ``--audit-every``)
additionally runs the pool's ledger audit every N steps, counted as
``repro_pool_audits_total``.

SLOs, latency attribution & regression tracking
-----------------------------------------------

:mod:`repro.insight` is the analysis layer on top of the telemetry
above: it turns traces, request records, and bench results into
verdicts, without perturbing anything (engines never import it, and
the same inertness contract applies — insight on vs off leaves token
streams and core stats bit-identical).

**Critical-path latency attribution.**  Every request's end-to-end
latency decomposes into an *exact* blame vector — the lifecycle spans
and instants in a trace tile its arrival-to-terminal interval with no
slack, and :class:`repro.insight.TraceAttribution` does the
arithmetic in :class:`fractions.Fraction` so the per-cause and
per-phase totals sum bit-exactly to the recorded e2e latency (any
trace that cannot be tiled raises instead of guessing).  The cause
taxonomy:

===================  ========  ==============================================
cause                phase     books the time a request spent...
===================  ========  ==============================================
queue_wait           queued    waiting for admission, no disruption pending
prefill              prefill   committing prompt chunks
decode               decode    generating tokens (inter-token gaps included)
preempt_discard      varies    in work discarded by a preemption
preempt_requeue      queued    re-waiting (and recomputing) after preemption
quarantine_discard   varies    in work discarded by a KV-corruption strike
quarantine_requeue   queued    re-waiting after quarantine recompute
drain_discard        varies    in work discarded by a replica drain/fail
drain_requeue        queued    re-waiting after a drain requeued it
retry_backoff        offline   in placement retry backoff (cluster router)
===================  ========  ==============================================

(*varies*: a discard keeps the phase of the span it voided — a
preempted decode books its discarded time under the decode phase.)

**Declarative SLOs.**  :class:`repro.insight.SLOPolicy` holds
objectives written ``CLASS:METRIC:pPCT:TARGET_MS`` — traffic class
(a priority tier or ``all``), metric (``ttft`` / ``tpot`` / ``e2e``),
percentile, and a simulated-millisecond target, e.g. ``0:ttft:p95:150``
or ``all:e2e:p99:2000``.  Evaluation reports the measured percentile
(NaN-honest: no samples renders ``n/a`` / JSON ``null``), attainment,
and error-budget burn rate per tumbling simulated-clock window (burn
> 1 means the window spent violation budget, ``1 - pct/100``, faster
than the objective allows; failed requests violate every objective on
their tier).  Wire it in with ``ServingEngine(slo=policy)`` /
``ClusterEngine(slo=policy)`` or CLI ``--slo SPEC`` (repeatable,
window via ``--slo-window-ms``) — attainment lands in the stats
report's ``slo`` section — or evaluate a saved trace offline:
``repro slo-report TRACE --slo SPEC`` prints attainment plus the full
attribution breakdown and exits 1 on a missed objective.

**Continuous perf tracking.**  The bench smoke suite appends each
run's headline numbers to ``benchmarks/results/history/*.jsonl`` via
:func:`repro.insight.append_history` — normalized, timestamp-free
records (a re-run with identical numbers appends nothing, so history
only grows when the numbers move).  ``repro bench-compare`` judges
each bench's newest record against the *median* of its earlier ones
with noise-aware thresholds (``max(rel_tol, 3 * MAD / |median|)`` per
metric, failing only in the metric's bad direction) and exits 1 on
regression; ``--history DIR`` selects the directory, and tier-1/CI
run it after the smoke benches as a hard gate.

Static analysis
---------------

Both contracts above — byte-determinism and ledger conservation — are
also enforced *before* anything runs, by the :mod:`repro.analysis` lint
pass.  ``repro lint`` (or ``python -m repro.cli lint``) scans
``src/repro`` with AST-based rules and exits non-zero on any
unsuppressed violation; ``scripts/run_tier1.sh`` and CI run it as a
hard gate ahead of the test suite, archiving the JSON report (CLI
``--out PATH``, console ``--format json``) under
``benchmarks/results/lint_report.json``.  Rule catalog:

* **determinism** — ``det-wallclock`` (``time.time`` /
  ``perf_counter`` / ``datetime.now`` and friends outside the
  sanctioned wall-clock module, :mod:`repro.telemetry.profiler`);
  ``det-global-rng`` (bare ``random`` or legacy ``numpy.random.*``
  global state instead of a seeded ``default_rng`` Generator);
  ``det-env-read`` (``os.environ`` / ``os.getenv`` feeding behavior
  that should come from explicit config); ``det-set-order``
  (iterating a set into ordered output — list/tuple/enumerate/join/
  for — without ``sorted``); ``det-dtype-literal`` (hard-coded
  ``np.float64`` / ``dtype=float`` in the numerics-ladder-governed
  hot-path modules — the decode path's dtype is
  :class:`repro.nn.numerics.NumericsPolicy` state, and the deliberate
  fp64 oracle paths carry reasoned suppressions).
* **clock-domain** — ``clock-domain-import``: the manifest in
  :mod:`repro.analysis.manifest` assigns each module a ``simulated``,
  ``wall``, or ``neutral`` clock domain by dotted prefix; an import
  edge directly between the ``simulated`` and ``wall`` domains is a
  violation (bridge through a ``neutral`` module instead).
* **accounting** — ``acct-observer-notify``: every public mutating
  method of ``KVMemoryPool`` / ``ShardedKVPool`` must reach the
  ``observer`` hook (directly or via a same-class call);
  ``acct-audit-test``: each such method must be exercised by at least
  one test that also asserts ``audit()``.
* **drift** — ``drift-cli-doc``: ``--<name>`` flag tokens in the CLI/guide
  docstrings must match ``argparse`` definitions in ``repro.cli``,
  both directions; ``drift-stats-schema``: ``ServingStats`` /
  ``ClusterStats.to_dict`` keys and ``STATS_SCHEMA_VERSION`` must
  match the checked-in golden ``benchmarks/results/
  stats_schema_v2.json`` (``tests/test_analysis.py`` round-trips the
  same contract at runtime).
* **observability** — ``obs-span-balance``: any serving/cluster code
  path that ends a request's lifecycle phase (requeues a record or
  marks it FINISHED/FAILED) must emit a lifecycle span, directly or
  via a same-class helper — otherwise the request's timeline has an
  untiled hole latency attribution cannot explain.

Suppressions are explicit and always carry a reason::

    start = time.time()  # repro: allow[det-wallclock] -- console-only

A standalone ``# repro: allow[rule-id] -- reason`` comment covers the
next code line; ``# repro: allow-file[rule-id] -- reason`` covers the
whole module.  A suppression without a reason (or a malformed
``# repro:`` directive) is itself a violation via the self-policing
``lint-suppression`` rule.  To add a rule: subclass
:class:`repro.analysis.Rule` in a ``rules_*`` module, decorate with
``@register``, implement ``check_module(module)`` for per-file checks
or ``check_repo(index)`` + ``anchors`` for cross-file checks, list the
module in :func:`repro.analysis.all_rule_classes`, and add a
fire/stay-silent fixture pair to ``tests/test_analysis.py``.
"""

from .degradation import DegradationPolicy
from .engine import (
    ADMISSION_MODES,
    LiveSequence,
    PrefillingSequence,
    ServingEngine,
    greedy_sampler,
)
from .memory_pool import (
    KVMemoryPool,
    PoolExhausted,
    prefill_kv_lengths,
    pruned_kv_bounds,
)
from .preemption import (
    PREEMPTION_POLICIES,
    PreemptionCandidate,
    PreemptionEvent,
    PreemptionPolicy,
)
from .request import (
    INHERIT_PRUNING,
    Request,
    RequestQueue,
    RequestRecord,
    RequestStatus,
)
from .stats import CostModel, ServingStats, SimulatedClock

__all__ = [
    "ADMISSION_MODES",
    "DegradationPolicy",
    "INHERIT_PRUNING",
    "LiveSequence",
    "PREEMPTION_POLICIES",
    "PrefillingSequence",
    "PreemptionCandidate",
    "PreemptionEvent",
    "PreemptionPolicy",
    "ServingEngine",
    "greedy_sampler",
    "KVMemoryPool",
    "PoolExhausted",
    "prefill_kv_lengths",
    "pruned_kv_bounds",
    "Request",
    "RequestQueue",
    "RequestRecord",
    "RequestStatus",
    "CostModel",
    "ServingStats",
    "SimulatedClock",
]
