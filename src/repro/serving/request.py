"""Requests, per-request lifecycle records, and the arrival queue.

A :class:`Request` is a prompt plus a generation budget, stamped with a
simulated arrival time and a priority.  The :class:`RequestQueue` orders
waiting requests by ``(priority, arrival_time, request_id)`` — lower
priority values are served first, ties break FIFO — and only surfaces
requests whose arrival time has passed the simulated clock.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["RequestStatus", "Request", "RequestRecord", "RequestQueue"]


class RequestStatus(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass
class Request:
    """One generation request entering the serving system.

    Attributes:
        request_id: unique id (also the tiebreaker for queue ordering).
        prompt_ids: prompt token ids.
        max_new_tokens: decode budget (>= 1).
        arrival_time: simulated-clock arrival timestamp in seconds.
        priority: scheduling class; *lower* values are admitted first.
    """

    request_id: int
    prompt_ids: np.ndarray
    max_new_tokens: int
    arrival_time: float = 0.0
    priority: int = 0

    def __post_init__(self) -> None:
        self.prompt_ids = np.asarray(self.prompt_ids, dtype=np.int64)
        if self.prompt_ids.ndim != 1 or len(self.prompt_ids) == 0:
            raise ValueError("prompt_ids must be a non-empty 1-D sequence")
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")

    @property
    def prompt_len(self) -> int:
        return len(self.prompt_ids)

    @property
    def total_len(self) -> int:
        """Worst-case sequence length (prompt + full decode budget)."""
        return self.prompt_len + self.max_new_tokens


@dataclass
class RequestRecord:
    """Lifecycle timestamps and output of one served request."""

    request: Request
    status: RequestStatus = RequestStatus.QUEUED
    admit_time: Optional[float] = None
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None
    token_ids: List[int] = field(default_factory=list)
    #: Simulated inter-token gap of each decode token: clock delta from
    #: the previous committed token of *this* request to this one.  The
    #: gap includes any stall the scheduler imposed between the two
    #: steps (e.g. another request's monolithic prefill), which is what
    #: makes decode-latency percentiles sensitive to head-of-line
    #: blocking.  The first token's latency is ``time_to_first_token``.
    token_latencies: List[float] = field(default_factory=list)

    @property
    def queue_wait(self) -> float:
        """Seconds spent waiting for admission (pool + batch pressure)."""
        if self.admit_time is None:
            raise ValueError("request was never admitted")
        return self.admit_time - self.request.arrival_time

    @property
    def time_to_first_token(self) -> float:
        if self.first_token_time is None:
            raise ValueError("request produced no tokens")
        return self.first_token_time - self.request.arrival_time

    @property
    def n_generated(self) -> int:
        return len(self.token_ids)


class RequestQueue:
    """Priority + FIFO queue over not-yet-admitted requests."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, request: Request) -> None:
        heapq.heappush(
            self._heap,
            (request.priority, request.arrival_time, request.request_id, request),
        )

    def peek(self) -> Request:
        if not self._heap:
            raise IndexError("queue is empty")
        return self._heap[0][3]

    def pop(self) -> Request:
        if not self._heap:
            raise IndexError("queue is empty")
        return heapq.heappop(self._heap)[3]

    def as_ordered_list(self) -> Sequence[Request]:
        """Waiting requests in admission order (non-destructive)."""
        return [entry[3] for entry in sorted(self._heap)]
