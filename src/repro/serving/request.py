"""Requests, per-request lifecycle records, and the arrival queue.

A :class:`Request` is a prompt plus a generation budget, stamped with a
simulated arrival time and a priority.  The :class:`RequestQueue` orders
waiting requests by ``(priority, arrival_time, push order)`` — lower
priority values are served first, ties break FIFO on arrival time, and
requests that are equal on both pop in the order they were pushed
(a monotonic per-queue counter, so pop order never depends on request
ids or payload comparison).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "INHERIT_PRUNING",
    "RequestStatus",
    "Request",
    "RequestRecord",
    "RequestQueue",
]


class _InheritPruning:
    """Sentinel: the request follows the engine's pruning schedule.

    Distinct from ``None``, which *forces* the dense path for one
    request even on an engine whose default schedule prunes.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "INHERIT_PRUNING"


#: Default for :attr:`Request.pruning`: inherit the engine's schedule.
INHERIT_PRUNING = _InheritPruning()


class RequestStatus(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"
    #: The request can never be placed again (e.g. every replica whose
    #: shard could hold its reservation was drained mid-run).  Failed
    #: requests keep their record — with no admission timestamps — so
    #: the run's report counts them instead of crashing or dead-looping.
    FAILED = "failed"


@dataclass
class Request:
    """One generation request entering the serving system.

    Attributes:
        request_id: unique id (also the tiebreaker for queue ordering).
        prompt_ids: prompt token ids.
        max_new_tokens: decode budget (>= 1).
        arrival_time: simulated-clock arrival timestamp in seconds.
        priority: scheduling class; *lower* values are admitted first.
        pruning: per-request cascade schedule.  The default
            :data:`INHERIT_PRUNING` follows whatever the serving engine
            was configured with; a :class:`~repro.config.PruningConfig`
            overrides it for this request only, and ``None`` forces the
            dense path.  Heterogeneous traces (requests with different
            schedules in one trace) are what make the cluster router's
            schedule-bound cost estimates meaningful.
    """

    request_id: int
    prompt_ids: np.ndarray
    max_new_tokens: int
    arrival_time: float = 0.0
    priority: int = 0
    pruning: object = INHERIT_PRUNING

    def __post_init__(self) -> None:
        self.prompt_ids = np.asarray(self.prompt_ids, dtype=np.int64)
        if self.prompt_ids.ndim != 1 or len(self.prompt_ids) == 0:
            raise ValueError("prompt_ids must be a non-empty 1-D sequence")
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")

    @property
    def prompt_len(self) -> int:
        return len(self.prompt_ids)

    @property
    def total_len(self) -> int:
        """Worst-case sequence length (prompt + full decode budget)."""
        return self.prompt_len + self.max_new_tokens


@dataclass
class RequestRecord:
    """Lifecycle timestamps and output of one served request."""

    request: Request
    status: RequestStatus = RequestStatus.QUEUED
    admit_time: Optional[float] = None
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None
    token_ids: List[int] = field(default_factory=list)
    #: Simulated inter-token gap of each decode token: clock delta from
    #: the previous committed token of *this* request to this one.  The
    #: gap includes any stall the scheduler imposed between the two
    #: steps (e.g. another request's monolithic prefill), which is what
    #: makes decode-latency percentiles sensitive to head-of-line
    #: blocking.  The first token's latency is ``time_to_first_token``.
    token_latencies: List[float] = field(default_factory=list)
    #: Times this request was preempted (optimistic admission releasing
    #: its pages under pool pressure).  Cumulative across preempt /
    #: requeue cycles — :meth:`reset_for_requeue` does *not* clear it.
    n_preemptions: int = 0
    #: Prompt and decode tokens discarded by preemptions and recomputed
    #: from scratch on readmission.  Greedy decoding replays the exact
    #: same stream, so this is pure latency cost, never token loss.
    recompute_tokens: int = 0
    #: Livelock guard: set when the request is preempted, cleared the
    #: next time it commits any work (a prefill chunk or a decode
    #: token).  A protected request is never selected as a preemption
    #: victim, so no request can be preempted twice without progress.
    preempt_protected: bool = False
    #: Routing attempts consumed by retry-with-backoff after a failed
    #: placement (cluster mode).  Bounded by the cluster's retry
    #: budget; exhaustion fails the request cleanly.
    n_retries: int = 0
    #: KV-page corruption strikes survived: each one quarantined the
    #: sequence's pages and recomputed it from scratch (greedy decoding
    #: replays the identical stream, so corruption costs latency, never
    #: tokens).
    n_corruptions: int = 0
    #: Set when the degradation ladder escalated this request to a more
    #: aggressive cascade-pruning schedule under pool pressure.  A
    #: degraded request still receives its full decode budget, but its
    #: token stream is not comparable to a fault-free run's.
    degraded: bool = False
    #: The escalated schedule applied by the degradation ladder; when
    #: set, :meth:`ServingEngine.pruning_of` returns it instead of the
    #: request's own schedule.  Lives on the record (not the request)
    #: so it survives cross-replica requeues.
    pruning_override: Optional[object] = None
    #: Terminal failure reason for ``FAILED`` records: ``"unplaceable"``
    #: (no surviving replica can ever hold the reservation),
    #: ``"retry_budget"`` (placement retries exhausted), ``"deadline"``
    #: (per-request deadline expired before admission), or ``"shed"``
    #: (best-effort load dropped by the degradation ladder).
    failure: Optional[str] = None

    @property
    def queue_wait(self) -> float:
        """Seconds spent waiting for admission (pool + batch pressure)."""
        if self.admit_time is None:
            raise ValueError("request was never admitted")
        return self.admit_time - self.request.arrival_time

    @property
    def time_to_first_token(self) -> float:
        if self.first_token_time is None:
            raise ValueError("request produced no tokens")
        return self.first_token_time - self.request.arrival_time

    @property
    def n_generated(self) -> int:
        return len(self.token_ids)

    def reset_for_requeue(self) -> None:
        """Return the record to its pre-admission state (replica drain).

        A drained or failed replica's in-flight requests restart from
        scratch on another replica.  Greedy decoding is deterministic,
        so the regenerated token stream is identical; the original
        ``arrival_time`` is kept, so the drain penalty stays visible in
        the queue-wait and TTFT percentiles.
        """
        self.status = RequestStatus.QUEUED
        self.admit_time = None
        self.first_token_time = None
        self.finish_time = None
        self.token_ids.clear()
        self.token_latencies.clear()

    def reset_for_preempt(self, recompute_tokens: int) -> None:
        """Return to the queue after a preemption, keeping the tally.

        Lifecycle state resets exactly like a drain requeue (greedy
        decoding guarantees the replayed stream is bit-identical), but
        the preemption counters accumulate: ``recompute_tokens`` is the
        work discarded this time (committed prompt tokens plus decode
        tokens), and the livelock-guard flag protects the request from
        being victimized again before it makes progress.
        """
        self.n_preemptions += 1
        self.recompute_tokens += int(recompute_tokens)
        self.preempt_protected = True
        self.reset_for_requeue()

    def reset_for_corruption(self, recompute_tokens: int) -> None:
        """Return to the queue after a KV-corruption quarantine.

        The sequence's poisoned pages were released; the request
        recomputes from scratch exactly like a preemption (and is
        protected from immediate preemption the same way), but the
        strike is tallied separately in ``n_corruptions``.
        """
        self.n_corruptions += 1
        self.recompute_tokens += int(recompute_tokens)
        self.preempt_protected = True
        self.reset_for_requeue()


class RequestQueue:
    """Priority + FIFO queue over not-yet-admitted requests.

    Pop order is ``(priority, arrival_time, push order)``.  The third
    key is a monotonic per-queue counter stamped at :meth:`push`, so
    requests that tie on priority *and* arrival time pop exactly in the
    order they entered the queue — never by request id and never by
    comparing request payloads (which are not orderable).  Requeued
    requests (a drained cluster replica pushing its in-flight work back
    through the router) therefore line up behind equal-priority
    originals instead of jumping the line.
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._push_counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, request: Request) -> None:
        heapq.heappush(
            self._heap,
            (
                request.priority,
                request.arrival_time,
                next(self._push_counter),
                request,
            ),
        )

    def peek(self) -> Request:
        if not self._heap:
            raise IndexError("queue is empty")
        return self._heap[0][3]

    def pop(self) -> Request:
        if not self._heap:
            raise IndexError("queue is empty")
        return heapq.heappop(self._heap)[3]

    def as_ordered_list(self) -> Sequence[Request]:
        """Waiting requests in admission order (non-destructive)."""
        return [entry[3] for entry in sorted(self._heap)]

    def remove(self, request: Request) -> bool:
        """Drop one waiting request (deadline expiry / load shedding).

        Returns False if the request is not in the queue.  The
        remaining entries keep their original push counters, so
        relative pop order is untouched.
        """
        for i, entry in enumerate(self._heap):
            if entry[3] is request:
                last = self._heap.pop()
                if i < len(self._heap):
                    self._heap[i] = last
                    heapq.heapify(self._heap)
                return True
        return False

    def drain(self) -> List[Request]:
        """Pop every waiting request, in admission order."""
        drained = [entry[3] for entry in sorted(self._heap)]
        self._heap.clear()
        return drained
