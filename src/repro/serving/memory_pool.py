"""Paged, pruning-aware KV-cache memory pool with admission control.

The pool divides a global byte budget into fixed-size pages.  One page
holds the K and V vectors of ``page_tokens`` cache columns of one layer
(all heads), at the model's storage width — the same dtype-aware byte
arithmetic as :attr:`repro.nn.kv_cache.LayerKVCache.nbytes`.

Two accounting planes:

* **reservations** gate admission.  A request reserves, per layer, the
  worst-case number of pages its KV cache can ever hold.  For a dense
  sequence that is ``prompt + max_new_tokens`` columns in every layer;
  for a SpAtten sequence the bound is *schedule-aware*: cascade token
  pruning caps layer ``l``'s cache at the per-layer keep target
  (:mod:`repro.core.schedule`), so deep layers reserve only a fraction
  of the dense footprint.  This is what lets pruned serving admit more
  concurrent sequences into the same budget.
* **allocations** track the pages actually backing live cache columns.
  Each engine step syncs them against the executor's real per-layer
  lengths; when cascade pruning evicts columns, whole pages drain back
  to the free list and are counted as *reclaimed*.

Admission control blocks (the request waits in the queue) whenever the
reservation would overflow the budget, so the pool can never be forced
to drop live KV state mid-decode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import ModelConfig, PruningConfig
from ..core import schedule as sched

__all__ = [
    "PoolExhausted",
    "KVMemoryPool",
    "pruned_kv_bounds",
    "prefill_kv_lengths",
]


class PoolExhausted(RuntimeError):
    """Raised when an allocation cannot fit the configured budget."""


def pruned_kv_bounds(
    pruning: Optional[PruningConfig],
    n_layers: int,
    prompt_len: int,
    max_new_tokens: int,
) -> List[int]:
    """Per-layer worst-case KV column counts for one sequence.

    Without pruning every layer can hold the full ``prompt + max_new``
    columns.  With cascade token pruning, layer ``l`` holds at most
    ``token_keep_counts[l]`` columns during summarization and at most
    ``decode_token_target(l, prompt + max_new)`` during generation —
    both replayed from the exact schedule the executor runs, so the
    bound is tight, not heuristic.
    """
    total = prompt_len + max_new_tokens
    if pruning is None:
        return [total] * n_layers
    counts = sched.token_keep_counts(pruning, n_layers, prompt_len)
    fracs = sched.token_keep_fractions(pruning, n_layers, prompt_len)
    return [
        max(
            int(counts[layer]),
            sched.decode_token_target(pruning, float(fracs[layer]), total),
        )
        for layer in range(n_layers)
    ]


def prefill_kv_lengths(
    pruning: Optional[PruningConfig],
    n_layers: int,
    prompt_len: int,
    n_committed: int,
) -> List[int]:
    """Modeled per-layer KV columns after committing a prompt prefix.

    Under chunked prefill the engine grows a sequence's pool pages
    chunk by chunk instead of all at once at admission.  Incremental
    (dense) executors report real cache lengths — the committed prefix
    in every layer.  Executors that defer execution to the final chunk
    (cascade token pruning is a whole-sentence decision) are modeled
    the same way, capped at each layer's summarize keep target from
    :mod:`repro.core.schedule`; at the final chunk the model and the
    executor's real post-pruning lengths coincide exactly.
    """
    n_committed = min(int(n_committed), prompt_len)
    if pruning is None:
        return [n_committed] * n_layers
    counts = sched.token_keep_counts(pruning, n_layers, prompt_len)
    return [min(n_committed, int(c)) for c in counts]


@dataclass
class _SequenceAccount:
    reserved_pages: int
    allocated_per_layer: List[int] = field(default_factory=list)

    @property
    def allocated_pages(self) -> int:
        return sum(self.allocated_per_layer)


class KVMemoryPool:
    """Fixed-budget page allocator for per-sequence, per-layer KV state.

    Args:
        model: geometry (layer/head/dim and storage width) the pages
            are sized for.
        budget_bytes: global KV memory budget shared by all sequences.
        page_tokens: cache columns per page (per layer, all heads).
    """

    def __init__(
        self,
        model: ModelConfig,
        budget_bytes: int,
        page_tokens: int = 16,
    ):
        if page_tokens < 1:
            raise ValueError("page_tokens must be >= 1")
        self.model = model
        self.page_tokens = page_tokens
        # One column stores K and V across all heads at the model's
        # storage width — identical arithmetic to LayerKVCache.nbytes.
        self.bytes_per_token = model.kv_bytes_per_token
        self.page_bytes = self.bytes_per_token * page_tokens
        self.n_pages = int(budget_bytes) // self.page_bytes
        if self.n_pages < 1:
            raise ValueError(
                f"budget_bytes={budget_bytes} holds no page "
                f"(page_bytes={self.page_bytes})"
            )
        self._accounts: Dict[int, _SequenceAccount] = {}
        # Cumulative statistics.
        self.reclaimed_pages = 0
        self.reclaimed_tokens = 0
        self.peak_allocated_pages = 0

    # ------------------------------------------------------------------
    # Page arithmetic
    # ------------------------------------------------------------------
    def pages_for_tokens(self, n_tokens: int) -> int:
        return math.ceil(n_tokens / self.page_tokens)

    def reservation_pages(
        self,
        prompt_len: int,
        max_new_tokens: int,
        pruning: Optional[PruningConfig] = None,
    ) -> int:
        """Worst-case pages one request needs over its whole lifetime."""
        bounds = pruned_kv_bounds(
            pruning, self.model.n_layers, prompt_len, max_new_tokens
        )
        return sum(self.pages_for_tokens(b) for b in bounds)

    # ------------------------------------------------------------------
    # Occupancy views
    # ------------------------------------------------------------------
    @property
    def reserved_pages(self) -> int:
        return sum(acc.reserved_pages for acc in self._accounts.values())

    @property
    def allocated_pages(self) -> int:
        return sum(acc.allocated_pages for acc in self._accounts.values())

    @property
    def free_reservation_pages(self) -> int:
        return self.n_pages - self.reserved_pages

    @property
    def occupancy(self) -> float:
        """Fraction of the budget backing live cache columns right now."""
        return self.allocated_pages / self.n_pages

    @property
    def n_sequences(self) -> int:
        return len(self._accounts)

    @property
    def tracked_sequences(self) -> frozenset:
        """Ids of every sequence currently holding a reservation.

        The sharded cluster ledger audits these across shards: a
        sequence id appearing in more than one shard means its pages
        are double-billed against the global budget.
        """
        return frozenset(self._accounts)

    def reserved_pages_of(self, seq_id: int) -> int:
        """Pages reserved by one live sequence (ledger audits)."""
        return self._account(seq_id).reserved_pages

    # ------------------------------------------------------------------
    # Admission / lifecycle
    # ------------------------------------------------------------------
    def can_admit(
        self,
        prompt_len: int,
        max_new_tokens: int,
        pruning: Optional[PruningConfig] = None,
    ) -> bool:
        need = self.reservation_pages(prompt_len, max_new_tokens, pruning)
        return need <= self.free_reservation_pages

    def admit(
        self,
        seq_id: int,
        prompt_len: int,
        max_new_tokens: int,
        pruning: Optional[PruningConfig] = None,
    ) -> int:
        """Reserve worst-case pages for a sequence; returns the count.

        Raises :class:`PoolExhausted` if the reservation does not fit —
        callers use :meth:`can_admit` first and keep the request queued.
        """
        if seq_id in self._accounts:
            raise ValueError(f"sequence {seq_id} already admitted")
        need = self.reservation_pages(prompt_len, max_new_tokens, pruning)
        if need > self.n_pages:
            raise PoolExhausted(
                f"request needs {need} pages but the pool only has "
                f"{self.n_pages}; raise the budget or lower max_new_tokens"
            )
        if need > self.free_reservation_pages:
            raise PoolExhausted(
                f"request needs {need} pages, only "
                f"{self.free_reservation_pages} unreserved"
            )
        self._accounts[seq_id] = _SequenceAccount(
            reserved_pages=need,
            allocated_per_layer=[0] * self.model.n_layers,
        )
        return need

    def sync(self, seq_id: int, kv_lengths: List[int]) -> int:
        """Match a sequence's pages to its executor's real cache lengths.

        Growth allocates pages; shrinkage (cascade token pruning
        evicting columns) returns whole pages to the pool and counts
        toward :attr:`reclaimed_pages`.  Returns pages freed this call.
        """
        account = self._account(seq_id)
        if len(kv_lengths) != self.model.n_layers:
            raise ValueError("kv_lengths must cover every layer")
        freed = 0
        for layer, length in enumerate(kv_lengths):
            pages = self.pages_for_tokens(length)
            delta = pages - account.allocated_per_layer[layer]
            if delta < 0:
                freed -= delta
            account.allocated_per_layer[layer] = pages
        if freed:
            self.reclaimed_pages += freed
        if self.allocated_pages > self.n_pages:
            raise PoolExhausted(
                f"allocations ({self.allocated_pages} pages) overflow the "
                f"pool ({self.n_pages}); reservation accounting is broken"
            )
        self.peak_allocated_pages = max(
            self.peak_allocated_pages, self.allocated_pages
        )
        return freed

    def note_reclaimed_tokens(self, n_tokens: int) -> None:
        """Record columns evicted by pruning (for the serving report)."""
        self.reclaimed_tokens += int(n_tokens)

    def release(self, seq_id: int) -> None:
        """Drop a finished sequence's reservation and allocations."""
        self._account(seq_id)
        self._accounts.pop(seq_id)

    def _account(self, seq_id: int) -> _SequenceAccount:
        account = self._accounts.get(seq_id)
        if account is None:
            raise ValueError(
                f"unknown sequence {seq_id}: never admitted or already "
                f"released"
            )
        return account
