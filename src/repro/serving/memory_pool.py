"""Paged, pruning-aware KV-cache memory pool with admission control.

The pool divides a global byte budget into fixed-size pages.  One page
holds the K and V vectors of ``page_tokens`` cache columns of one layer
(all heads), at the model's storage width — the same dtype-aware byte
arithmetic as :attr:`repro.nn.kv_cache.LayerKVCache.nbytes`.

Two accounting planes:

* **reservations** gate admission.  A request reserves, per layer, the
  worst-case number of pages its KV cache can ever hold.  For a dense
  sequence that is ``prompt + max_new_tokens`` columns in every layer;
  for a SpAtten sequence the bound is *schedule-aware*: cascade token
  pruning caps layer ``l``'s cache at the per-layer keep target
  (:mod:`repro.core.schedule`), so deep layers reserve only a fraction
  of the dense footprint.  This is what lets pruned serving admit more
  concurrent sequences into the same budget.
* **allocations** track the pages actually backing live cache columns.
  Each engine step syncs them against the executor's real per-layer
  lengths; when cascade pruning evicts columns, whole pages drain back
  to the free list and are counted as *reclaimed*.

Admission control blocks (the request waits in the queue) whenever the
reservation would overflow the budget, so the pool can never be forced
to drop live KV state mid-decode.

Optimistic admission
--------------------

Worst-case reservations are safe but pessimistic: cascade pruning
shrinks the *actual* KV footprint well below the schedule bound, and
pages reclaimed mid-generation drain back to the free list yet cannot
admit work already refused at reservation time.  The optimistic plane
(:meth:`KVMemoryPool.admit_optimistic`) bills a sequence only for its
post-prefill prompt footprint (a floor that covers the in-flight
prefill's committed growth) and thereafter for the pages it *actually*
holds — the account's ``reserved_pages`` tracks
``max(floor, allocated)`` and shrinks as pruning evicts columns, so
reclaimed pages become admissible capacity immediately.  Safety moves
from admission time to run time: the serving engine projects each
step's growth (:meth:`KVMemoryPool.pressure_pages`), preempts victims
under pressure (:meth:`KVMemoryPool.preempt_release`), and uses
:meth:`KVMemoryPool.try_grow` as the commit-time backstop.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import ModelConfig, PruningConfig
from ..core import schedule as sched

__all__ = [
    "PoolExhausted",
    "KVMemoryPool",
    "pruned_kv_bounds",
    "prefill_kv_lengths",
]


class PoolExhausted(RuntimeError):
    """Raised when an allocation cannot fit the configured budget."""


def pruned_kv_bounds(
    pruning: Optional[PruningConfig],
    n_layers: int,
    prompt_len: int,
    max_new_tokens: int,
) -> List[int]:
    """Per-layer worst-case KV column counts for one sequence.

    Without pruning every layer can hold the full ``prompt + max_new``
    columns.  With cascade token pruning, layer ``l`` holds at most
    ``token_keep_counts[l]`` columns during summarization and at most
    ``decode_token_target(l, prompt + max_new)`` during generation —
    both replayed from the exact schedule the executor runs, so the
    bound is tight, not heuristic.
    """
    total = prompt_len + max_new_tokens
    if pruning is None:
        return [total] * n_layers
    counts = sched.token_keep_counts(pruning, n_layers, prompt_len)
    fracs = sched.token_keep_fractions(pruning, n_layers, prompt_len)
    return [
        max(
            int(counts[layer]),
            sched.decode_token_target(pruning, float(fracs[layer]), total),
        )
        for layer in range(n_layers)
    ]


def prefill_kv_lengths(
    pruning: Optional[PruningConfig],
    n_layers: int,
    prompt_len: int,
    n_committed: int,
) -> List[int]:
    """Modeled per-layer KV columns after committing a prompt prefix.

    Under chunked prefill the engine grows a sequence's pool pages
    chunk by chunk instead of all at once at admission.  Incremental
    (dense) executors report real cache lengths — the committed prefix
    in every layer.  Executors that defer execution to the final chunk
    (cascade token pruning is a whole-sentence decision) are modeled
    the same way, capped at each layer's summarize keep target from
    :mod:`repro.core.schedule`; at the final chunk the model and the
    executor's real post-pruning lengths coincide exactly.
    """
    n_committed = min(int(n_committed), prompt_len)
    if pruning is None:
        return [n_committed] * n_layers
    counts = sched.token_keep_counts(pruning, n_layers, prompt_len)
    return [min(n_committed, int(c)) for c in counts]


@dataclass
class _SequenceAccount:
    #: Pages billed against admission.  Reserve-mode accounts fix this
    #: at the schedule-bound worst case for the sequence's lifetime;
    #: optimistic accounts keep it at ``max(floor_pages, allocated)``,
    #: updated on every :meth:`KVMemoryPool.sync`.
    reserved_pages: int
    allocated_per_layer: List[int] = field(default_factory=list)
    optimistic: bool = False
    #: Optimistic accounts only: the post-prefill prompt footprint,
    #: held while the prompt is still committing (its growth is already
    #: promised) and cleared by :meth:`KVMemoryPool.finish_prefill` so
    #: decode-time billing follows actual usage.
    floor_pages: int = 0

    @property
    def allocated_pages(self) -> int:
        return sum(self.allocated_per_layer)


class KVMemoryPool:
    """Fixed-budget page allocator for per-sequence, per-layer KV state.

    Args:
        model: geometry (layer/head/dim and storage width) the pages
            are sized for.
        budget_bytes: global KV memory budget shared by all sequences.
        page_tokens: cache columns per page (per layer, all heads).
    """

    def __init__(
        self,
        model: ModelConfig,
        budget_bytes: int,
        page_tokens: int = 16,
    ):
        if page_tokens < 1:
            raise ValueError("page_tokens must be >= 1")
        self.model = model
        self.page_tokens = page_tokens
        # One column stores K and V across all heads at the model's
        # storage width — identical arithmetic to LayerKVCache.nbytes.
        self.bytes_per_token = model.kv_bytes_per_token
        self.page_bytes = self.bytes_per_token * page_tokens
        self.n_pages = int(budget_bytes) // self.page_bytes
        if self.n_pages < 1:
            raise ValueError(
                f"budget_bytes={budget_bytes} holds no page "
                f"(page_bytes={self.page_bytes})"
            )
        self._accounts: Dict[int, _SequenceAccount] = {}
        #: Integrity plane: per-sequence, per-layer checksum of every
        #: allocated page, maintained in lockstep with the allocation
        #: plane by :meth:`sync`.  The modeled stand-in for hashing
        #: real KV bytes — a page's checksum is a pure function of
        #: ``(seq_id, layer, page)``, so any deviation (a chaos-engine
        #: :meth:`corrupt_page` strike) is detectable by recomputation.
        self._checksums: Dict[int, List[List[int]]] = {}
        # Cumulative statistics.
        self.reclaimed_pages = 0
        self.reclaimed_tokens = 0
        self.peak_allocated_pages = 0
        self.n_preempted = 0
        self.preempted_pages = 0
        self.n_corrupt_events = 0
        self.n_quarantined = 0
        self.quarantined_pages = 0
        #: Duck-typed observability hook: anything with a
        #: ``pool_event(kind, seq_id, **info)`` method (the serving
        #: engine, when telemetry is on).  Kept as an attribute rather
        #: than an import so the pool has no dependency on
        #: :mod:`repro.telemetry`; ``None`` (the default) costs one
        #: ``is None`` check per ledger mutation.
        self.observer = None

    def _notify(self, kind: str, seq_id: int, **info) -> None:
        if self.observer is not None:
            self.observer.pool_event(kind, seq_id, **info)

    # ------------------------------------------------------------------
    # Page arithmetic
    # ------------------------------------------------------------------
    def pages_for_tokens(self, n_tokens: int) -> int:
        return math.ceil(n_tokens / self.page_tokens)

    @staticmethod
    def _page_checksum(seq_id: int, layer: int, page: int) -> int:
        """Expected integrity tag of one allocated page (pure function)."""
        return zlib.crc32(f"{seq_id}:{layer}:{page}".encode())

    def reservation_pages(
        self,
        prompt_len: int,
        max_new_tokens: int,
        pruning: Optional[PruningConfig] = None,
    ) -> int:
        """Worst-case pages one request needs over its whole lifetime."""
        bounds = pruned_kv_bounds(
            pruning, self.model.n_layers, prompt_len, max_new_tokens
        )
        return sum(self.pages_for_tokens(b) for b in bounds)

    def optimistic_floor_pages(
        self,
        prompt_len: int,
        pruning: Optional[PruningConfig] = None,
    ) -> int:
        """Post-prefill prompt footprint: the optimistic admission bill.

        Unlike :meth:`reservation_pages` this excludes the decode
        budget entirely — future generation growth is covered by the
        headroom the caller admits with, and by preemption when the
        optimism turns out wrong.
        """
        lengths = prefill_kv_lengths(
            pruning, self.model.n_layers, prompt_len, prompt_len
        )
        return sum(self.pages_for_tokens(length) for length in lengths)

    # ------------------------------------------------------------------
    # Occupancy views
    # ------------------------------------------------------------------
    @property
    def reserved_pages(self) -> int:
        return sum(acc.reserved_pages for acc in self._accounts.values())

    @property
    def allocated_pages(self) -> int:
        return sum(acc.allocated_pages for acc in self._accounts.values())

    @property
    def free_reservation_pages(self) -> int:
        return self.n_pages - self.reserved_pages

    @property
    def occupancy(self) -> float:
        """Fraction of the budget backing live cache columns right now."""
        return self.allocated_pages / self.n_pages

    @property
    def n_sequences(self) -> int:
        return len(self._accounts)

    @property
    def tracked_sequences(self) -> frozenset:
        """Ids of every sequence currently holding a reservation.

        The sharded cluster ledger audits these across shards: a
        sequence id appearing in more than one shard means its pages
        are double-billed against the global budget.
        """
        return frozenset(self._accounts)

    def reserved_pages_of(self, seq_id: int) -> int:
        """Pages reserved by one live sequence (ledger audits)."""
        return self._account(seq_id).reserved_pages

    def allocated_pages_of(self, seq_id: int) -> int:
        """Pages actually backing one live sequence's cache columns."""
        return self._account(seq_id).allocated_pages

    def allocated_pages_per_layer(self, seq_id: int) -> List[int]:
        """Per-layer allocated page counts (copy) of one live sequence.

        The chaos engine's corruption injector uses this to pick a
        deterministic victim page among the pages that exist right now.
        """
        return list(self._account(seq_id).allocated_per_layer)

    # ------------------------------------------------------------------
    # Admission / lifecycle
    # ------------------------------------------------------------------
    def can_admit(
        self,
        prompt_len: int,
        max_new_tokens: int,
        pruning: Optional[PruningConfig] = None,
    ) -> bool:
        need = self.reservation_pages(prompt_len, max_new_tokens, pruning)
        return need <= self.free_reservation_pages

    def admit(
        self,
        seq_id: int,
        prompt_len: int,
        max_new_tokens: int,
        pruning: Optional[PruningConfig] = None,
    ) -> int:
        """Reserve worst-case pages for a sequence; returns the count.

        Raises :class:`PoolExhausted` if the reservation does not fit —
        callers use :meth:`can_admit` first and keep the request queued.
        """
        if seq_id in self._accounts:
            raise ValueError(f"sequence {seq_id} already admitted")
        need = self.reservation_pages(prompt_len, max_new_tokens, pruning)
        if need > self.n_pages:
            raise PoolExhausted(
                f"request needs {need} pages but the pool only has "
                f"{self.n_pages}; raise the budget or lower max_new_tokens"
            )
        if need > self.free_reservation_pages:
            raise PoolExhausted(
                f"request needs {need} pages, only "
                f"{self.free_reservation_pages} unreserved"
            )
        self._accounts[seq_id] = _SequenceAccount(
            reserved_pages=need,
            allocated_per_layer=[0] * self.model.n_layers,
        )
        self._checksums[seq_id] = [[] for _ in range(self.model.n_layers)]
        self._notify("admit", seq_id, pages=need, optimistic=False)
        return need

    def can_admit_optimistic(
        self,
        prompt_len: int,
        pruning: Optional[PruningConfig] = None,
        headroom_pages: int = 0,
    ) -> bool:
        need = self.optimistic_floor_pages(prompt_len, pruning)
        return need + headroom_pages <= self.free_reservation_pages

    def admit_optimistic(
        self,
        seq_id: int,
        prompt_len: int,
        pruning: Optional[PruningConfig] = None,
        headroom_pages: int = 0,
    ) -> int:
        """Admit against actual usage: bill only the prompt footprint.

        The sequence's account reserves its post-prefill prompt pages
        as a floor while the prompt commits; afterwards (once the
        caller signals :meth:`finish_prefill`) the reservation tracks
        the pages actually allocated, shrinking as cascade pruning
        evicts columns.  ``headroom_pages`` must also be free at
        admission — slack that absorbs the decode growth of the
        sequences already resident before preemption has to step in.
        Returns the floor; raises :class:`PoolExhausted` when it does
        not fit (callers use :meth:`can_admit_optimistic` first).
        """
        if seq_id in self._accounts:
            raise ValueError(f"sequence {seq_id} already admitted")
        if headroom_pages < 0:
            raise ValueError("headroom_pages must be >= 0")
        need = self.optimistic_floor_pages(prompt_len, pruning)
        if need + headroom_pages > self.n_pages:
            raise PoolExhausted(
                f"request needs {need} prompt pages plus {headroom_pages} "
                f"headroom but the pool only has {self.n_pages}"
            )
        if need + headroom_pages > self.free_reservation_pages:
            raise PoolExhausted(
                f"request needs {need} prompt pages plus {headroom_pages} "
                f"headroom, only {self.free_reservation_pages} unreserved"
            )
        self._accounts[seq_id] = _SequenceAccount(
            reserved_pages=need,
            allocated_per_layer=[0] * self.model.n_layers,
            optimistic=True,
            floor_pages=need,
        )
        self._checksums[seq_id] = [[] for _ in range(self.model.n_layers)]
        self._notify("admit", seq_id, pages=need, optimistic=True)
        return need

    def finish_prefill(self, seq_id: int) -> None:
        """Drop a sequence's prompt floor once its prefill committed.

        From here an optimistic account is billed for its *actual*
        pages only, so columns evicted by cascade pruning immediately
        become admissible capacity.  No-op for reserve-mode accounts
        (their worst-case reservation is immutable by design).
        """
        account = self._account(seq_id)
        freed = account.reserved_pages
        account.floor_pages = 0
        if account.optimistic:
            account.reserved_pages = account.allocated_pages
        freed -= account.reserved_pages
        if freed:  # floor drops below allocation: billing actually shrank
            self._notify("finish_prefill", seq_id, pages=freed)

    def sync(self, seq_id: int, kv_lengths: List[int]) -> int:
        """Match a sequence's pages to its executor's real cache lengths.

        Growth allocates pages; shrinkage (cascade token pruning
        evicting columns) returns whole pages to the pool and counts
        toward :attr:`reclaimed_pages`.  Returns pages freed this call.
        """
        account = self._account(seq_id)
        if len(kv_lengths) != self.model.n_layers:
            raise ValueError("kv_lengths must cover every layer")
        freed = 0
        grown = 0
        checksums = self._checksums[seq_id]
        for layer, length in enumerate(kv_lengths):
            pages = self.pages_for_tokens(length)
            delta = pages - account.allocated_per_layer[layer]
            if delta < 0:
                freed -= delta
            else:
                grown += delta
            account.allocated_per_layer[layer] = pages
            # Keep the integrity plane in lockstep: freed pages drop
            # their tags, new pages are stamped with the expected tag.
            row = checksums[layer]
            if pages < len(row):
                del row[pages:]
            else:
                row.extend(
                    self._page_checksum(seq_id, layer, page)
                    for page in range(len(row), pages)
                )
        if account.optimistic:
            account.reserved_pages = max(
                account.floor_pages, account.allocated_pages
            )
        if freed:
            self.reclaimed_pages += freed
        if self.allocated_pages > self.n_pages:
            raise PoolExhausted(
                f"allocations ({self.allocated_pages} pages) overflow the "
                f"pool ({self.n_pages}); reservation accounting is broken"
            )
        self.peak_allocated_pages = max(
            self.peak_allocated_pages, self.allocated_pages
        )
        if grown or freed:  # quiet syncs stay out of the trace
            self._notify("sync", seq_id, grown=grown, freed=freed)
        return freed

    def _projected_reserved(
        self, account: _SequenceAccount, projected_pages: int
    ) -> int:
        """What the account would reserve at the projected allocation.

        Optimistic accounts bill ``max(floor, allocated)``, so a
        mid-prefill sequence's *promised* prompt pages count even while
        its allocation is still catching up — growth that only checked
        allocations could eat pages the floor has already promised,
        pushing total reservations past the pool (the invariant
        :meth:`audit` enforces).  Reserve-mode reservations are
        immutable regardless of allocation.
        """
        if account.optimistic:
            return max(account.floor_pages, projected_pages)
        return account.reserved_pages

    def try_grow(self, seq_id: int, kv_lengths: List[int]) -> bool:
        """Attempt to sync a sequence's pages; ``False`` means pressure.

        The commit-time counterpart of :meth:`pressure_pages`: when the
        requested lengths would push total *reservations* — other
        accounts' ``max(floor, allocated)`` plus this sequence's
        projected bill — past the pool, nothing mutates and the caller
        gets a pressure signal to act on (preempt a victim, then retry)
        instead of the hard :class:`PoolExhausted` that :meth:`sync`
        raises — which, under optimistic admission, would mean dropping
        live KV state.  Gating on the reserved plane (not just
        allocations) keeps mid-prefill floors inviolate: every
        account's allocation is bounded by its reservation, so
        reservations fitting the pool implies allocations do too.
        """
        account = self._account(seq_id)
        if len(kv_lengths) != self.model.n_layers:
            raise ValueError("kv_lengths must cover every layer")
        new_pages = sum(self.pages_for_tokens(length) for length in kv_lengths)
        others = self.reserved_pages - account.reserved_pages
        if others + self._projected_reserved(account, new_pages) \
                > self.n_pages:
            return False
        self.sync(seq_id, kv_lengths)
        return True

    def pressure_pages(
        self, projections: Mapping[int, Sequence[int]]
    ) -> int:
        """Pages the given growth projections would overflow the pool by.

        ``projections`` maps sequence ids to projected per-layer KV
        lengths (sequences not mentioned are assumed to stay at their
        current reservation).  Pressure is measured on the *reserved*
        plane — each account contributes ``max(floor, projected
        allocation)`` — so pages promised to a mid-prefill sequence are
        never counted as free for someone else's decode growth.
        Returns ``0`` when everything fits — the serving engine
        preempts victims while this is positive, *before* running the
        step, so optimistic admission never has to drop state it
        already computed.
        """
        total = 0
        for seq_id, account in self._accounts.items():
            lengths = projections.get(seq_id)
            if lengths is None:
                total += account.reserved_pages
            else:
                total += self._projected_reserved(
                    account,
                    sum(self.pages_for_tokens(length) for length in lengths),
                )
        return max(0, total - self.n_pages)

    def note_reclaimed_tokens(self, n_tokens: int) -> None:
        """Record columns evicted by pruning (for the serving report)."""
        self.reclaimed_tokens += int(n_tokens)

    def release(self, seq_id: int) -> None:
        """Drop a finished sequence's reservation and allocations."""
        account = self._account(seq_id)
        self._accounts.pop(seq_id)
        self._checksums.pop(seq_id, None)
        self._notify("release", seq_id, pages=account.reserved_pages)

    def preempt_release(self, seq_id: int) -> int:
        """Release a preemption victim's account; returns pages regained.

        Identical ledger effect to :meth:`release` — the account
        disappears whole, so a requeued sequence can never be
        double-billed — plus the cumulative preemption counters the
        serving report and the sharded ledger surface.  The count is
        the account's *reserved* pages (``max(floor, allocated)`` for
        optimistic accounts): that is what the admission plane regains,
        and for a mid-prefill victim it exceeds the pages physically
        allocated so far.
        """
        account = self._account(seq_id)
        freed = account.reserved_pages
        self.n_preempted += 1
        self.preempted_pages += freed
        self._accounts.pop(seq_id)
        self._checksums.pop(seq_id, None)
        self._notify("preempt_release", seq_id, pages=freed)
        return freed

    # ------------------------------------------------------------------
    # Integrity plane: corruption, detection, quarantine
    # ------------------------------------------------------------------
    def corrupt_page(self, seq_id: int, layer: int, page: int) -> None:
        """Poison one allocated page's integrity tag (fault injection).

        The chaos engine's stand-in for a bit-flip in real KV storage:
        the stored tag no longer matches the recomputed
        :meth:`_page_checksum`, so the next :meth:`corrupted_pages` /
        :meth:`verify_checksums` scan flags the page.  Raises
        ``ValueError`` when the page is not currently allocated —
        corruption can only strike pages that exist.
        """
        self._account(seq_id)
        rows = self._checksums[seq_id]
        if not 0 <= layer < len(rows):
            raise ValueError(f"sequence {seq_id} has no layer {layer}")
        if not 0 <= page < len(rows[layer]):
            raise ValueError(
                f"sequence {seq_id} layer {layer} has no allocated "
                f"page {page}"
            )
        self._checksums[seq_id][layer][page] ^= 0x5A5A5A5A
        self.n_corrupt_events += 1
        self._notify("corrupt", seq_id, layer=layer, page=page)

    def corrupted_pages(self, seq_id: int) -> List[Tuple[int, int]]:
        """``(layer, page)`` pairs whose stored tag fails verification."""
        return [
            (layer, page)
            for layer, row in enumerate(self._checksums[seq_id])
            for page, tag in enumerate(row)
            if tag != self._page_checksum(seq_id, layer, page)
        ]

    def verify_checksums(self) -> Dict[int, List[Tuple[int, int]]]:
        """Scan every resident sequence; maps seq_id -> corrupted pages.

        Sequences with a clean bill of health are omitted, so a truthy
        return value means quarantine work exists.  Deterministic
        iteration (sorted ids) keeps detection order reproducible.
        """
        report = {}
        for seq_id in sorted(self._accounts):
            bad = self.corrupted_pages(seq_id)
            if bad:
                report[seq_id] = bad
        return report

    def quarantine_release(self, seq_id: int) -> int:
        """Release a corrupted sequence's account; returns pages freed.

        Same ledger effect as :meth:`preempt_release` — the account
        (and its poisoned integrity tags) disappear whole, so the
        recomputed sequence re-admits against a clean slate — but
        tallied under the quarantine counters the fault report
        surfaces.
        """
        account = self._account(seq_id)
        freed = account.reserved_pages
        self.n_quarantined += 1
        self.quarantined_pages += freed
        self._accounts.pop(seq_id)
        self._checksums.pop(seq_id, None)
        self._notify("quarantine_release", seq_id, pages=freed)
        return freed

    def audit(self) -> None:
        """Enforce the pool invariants; raises :class:`PoolExhausted`.

        * total allocations and total reservations fit the pool;
        * reserve-mode accounts never allocate beyond their immutable
          worst-case reservation;
        * optimistic accounts bill exactly ``max(floor, allocated)``;
        * the integrity plane tracks the allocation plane: every
          account carries exactly one checksum tag per allocated page
          (tag *values* are the corruption detector's business — a
          poisoned page is a data fault, not a ledger fault).

        The serving engine runs this after every preemption cycle, and
        the sharded cluster ledger audits every shard through it.
        """
        if self.allocated_pages > self.n_pages:
            raise PoolExhausted(
                f"audit: allocations ({self.allocated_pages} pages) "
                f"overflow the pool ({self.n_pages})"
            )
        if self.reserved_pages > self.n_pages:
            raise PoolExhausted(
                f"audit: reservations ({self.reserved_pages} pages) "
                f"overflow the pool ({self.n_pages})"
            )
        for seq_id, account in self._accounts.items():
            if account.optimistic:
                expected = max(account.floor_pages, account.allocated_pages)
                if account.reserved_pages != expected:
                    raise PoolExhausted(
                        f"audit: optimistic sequence {seq_id} reserves "
                        f"{account.reserved_pages} pages, expected "
                        f"{expected} (floor {account.floor_pages}, "
                        f"allocated {account.allocated_pages})"
                    )
            elif account.allocated_pages > account.reserved_pages:
                raise PoolExhausted(
                    f"audit: sequence {seq_id} allocates "
                    f"{account.allocated_pages} pages beyond its "
                    f"reservation of {account.reserved_pages}"
                )
        if set(self._checksums) != set(self._accounts):
            raise PoolExhausted(
                "audit: integrity plane out of step with the accounts "
                f"({sorted(set(self._checksums) ^ set(self._accounts))})"
            )
        for seq_id, account in self._accounts.items():
            tagged = [len(row) for row in self._checksums[seq_id]]
            if tagged != account.allocated_per_layer:
                raise PoolExhausted(
                    f"audit: sequence {seq_id} tags {tagged} pages but "
                    f"allocates {account.allocated_per_layer}"
                )

    def _account(self, seq_id: int) -> _SequenceAccount:
        account = self._accounts.get(seq_id)
        if account is None:
            raise ValueError(
                f"unknown sequence {seq_id}: never admitted or already "
                f"released"
            )
        return account
