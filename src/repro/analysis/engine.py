"""AST visitor engine for the :mod:`repro.analysis` lint pass.

The engine owns everything rule implementations share:

* :class:`ModuleInfo` — one parsed source file: AST, raw lines, the
  dotted module name (``src/repro/serving/engine.py`` →
  ``repro.serving.engine``), import-alias resolution, and the file's
  suppression comments;
* :class:`RepoIndex` — the scanned module set plus on-demand loading of
  reference files repo rules cross-reference (``tests/``, docs, golden
  schemas) whether or not they are part of the lint path set;
* :class:`LintEngine` — collects files, runs per-file and repo rules,
  applies suppressions, and returns a deterministic
  :class:`LintResult` (findings sorted by path/line/rule, repo-relative
  paths only — the JSON reporter's byte stability rests on this).

Suppression syntax
------------------

``# repro: allow[rule-id] -- reason`` suppresses the named rule(s,
comma-separated) on its own line; written on a standalone line it also
covers the next line of code.  ``# repro: allow-file[rule-id] --
reason`` anywhere in a file suppresses the rule for the whole module.
The reason is mandatory: a suppression without one is itself a finding
(rule ``lint-suppression``), so every silenced violation carries its
justification in the source.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .registry import Rule, resolve_rules

__all__ = [
    "Finding",
    "Suppression",
    "ModuleInfo",
    "RepoIndex",
    "LintEngine",
    "LintResult",
    "find_repo_root",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    family: str
    path: str  # repo-relative posix path
    line: int
    message: str
    suppressed: bool = False
    reason: str = ""

    @property
    def sort_key(self) -> Tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)


_SUPPRESS_RE = re.compile(
    r"^#\s*repro:\s*(?P<kind>allow|allow-file)"
    r"\[(?P<rules>[^\]]*)\]"
    r"\s*(?:--\s*(?P<reason>\S.*?)\s*)?$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    rules: Tuple[str, ...]
    line: int
    #: Next code line after a standalone comment (skipping blank and
    #: comment continuation lines); equals ``line`` for trailing
    #: comments.  The line the suppression covers besides its own.
    target_line: int
    file_level: bool
    reason: str

    def covers(self, rule_id: str, line: int) -> bool:
        if rule_id not in self.rules:
            return False
        if self.file_level:
            return True
        return line in (self.line, self.target_line)


class ModuleInfo:
    """One parsed source file plus the derived views rules consume."""

    def __init__(self, root: Path, path: Path):
        self.abspath = path
        self.relpath = path.resolve().relative_to(root.resolve()).as_posix()
        self.source = path.read_text()
        self.tree = ast.parse(self.source, filename=self.relpath)
        self.lines = self.source.splitlines()
        self.is_package = path.name == "__init__.py"
        self.module_name = _module_name(self.relpath)
        self._suppressions: Optional[List[Suppression]] = None
        self._suppression_problems: Optional[List[Tuple[int, str]]] = None
        self._aliases: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------
    # Suppressions
    # ------------------------------------------------------------------
    def _parse_suppressions(self) -> None:
        suppressions: List[Suppression] = []
        problems: List[Tuple[int, str]] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                text = tok.string.strip()
                if not re.match(r"^#\s*repro:", text):
                    continue
                match = _SUPPRESS_RE.match(text)
                if match is None:
                    problems.append((
                        tok.start[0],
                        f"malformed suppression comment {text!r}: expected "
                        f"'# repro: allow[rule-id, ...] -- reason'",
                    ))
                    continue
                rules = tuple(
                    r.strip() for r in match.group("rules").split(",")
                    if r.strip()
                )
                if not rules:
                    problems.append((
                        tok.start[0],
                        "suppression names no rule ids",
                    ))
                    continue
                reason = match.group("reason") or ""
                if not reason:
                    problems.append((
                        tok.start[0],
                        f"suppression for [{', '.join(rules)}] carries no "
                        f"reason: append ' -- <why this is sanctioned>'",
                    ))
                    # Reason-less suppressions are recorded anyway so the
                    # lint reports exactly one problem (the missing
                    # reason), not that plus the finding it meant to
                    # silence.
                lineno = tok.start[0]
                standalone = self.lines[lineno - 1].strip() == text
                suppressions.append(Suppression(
                    rules=rules,
                    line=lineno,
                    target_line=(
                        self._next_code_line(lineno) if standalone
                        else lineno
                    ),
                    file_level=match.group("kind") == "allow-file",
                    reason=reason,
                ))
        except tokenize.TokenError:
            # ast.parse succeeded, so this cannot normally happen; if it
            # does, the file simply has no recognised suppressions.
            pass
        self._suppressions = suppressions
        self._suppression_problems = problems

    def _next_code_line(self, after: int) -> int:
        """First line past ``after`` that is neither blank nor comment."""
        for lineno in range(after + 1, len(self.lines) + 1):
            stripped = self.lines[lineno - 1].strip()
            if stripped and not stripped.startswith("#"):
                return lineno
        return after

    @property
    def suppressions(self) -> List[Suppression]:
        if self._suppressions is None:
            self._parse_suppressions()
        return self._suppressions

    @property
    def suppression_problems(self) -> List[Tuple[int, str]]:
        """(line, message) pairs for malformed/reason-less suppressions."""
        if self._suppression_problems is None:
            self._parse_suppressions()
        return self._suppression_problems

    def suppression_for(self, rule_id: str, line: int) -> Optional[Suppression]:
        for sup in self.suppressions:
            if sup.covers(rule_id, line):
                return sup
        return None

    # ------------------------------------------------------------------
    # Import-name resolution (shared by determinism + domain rules)
    # ------------------------------------------------------------------
    @property
    def import_aliases(self) -> Dict[str, str]:
        """Local name → canonical dotted origin, from the import table.

        ``import numpy as np`` maps ``np`` → ``numpy``; ``from time
        import perf_counter as pc`` maps ``pc`` → ``time.perf_counter``;
        relative imports resolve against this module's package.
        """
        if self._aliases is None:
            aliases: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.asname:
                            aliases[alias.asname] = alias.name
                        else:
                            root = alias.name.split(".")[0]
                            aliases[root] = root
                elif isinstance(node, ast.ImportFrom):
                    base = self.resolve_import_base(node)
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        target = f"{base}.{alias.name}" if base else alias.name
                        aliases[alias.asname or alias.name] = target
            self._aliases = aliases
        return self._aliases

    def resolve_import_base(self, node: ast.ImportFrom) -> str:
        """Absolute dotted module a ``from X import ...`` refers to."""
        if node.level == 0:
            return node.module or ""
        parts = self.module_name.split(".")
        # A package's __init__ resolves `.` to itself; a plain module
        # resolves `.` to its parent package.
        drop = node.level - 1 if self.is_package else node.level
        anchor = parts[: len(parts) - drop] if drop else parts
        if node.module:
            anchor = anchor + node.module.split(".")
        return ".".join(anchor)

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or None.

        ``np.random.default_rng`` (with ``import numpy as np``) resolves
        to ``numpy.random.default_rng``.
        """
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.append(node.id)
        chain.reverse()
        base = self.import_aliases.get(chain[0], chain[0])
        return ".".join([base] + chain[1:])


def _module_name(relpath: str) -> str:
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    elif parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    return ".".join(parts)


def find_repo_root(start: Optional[Path] = None) -> Path:
    """Locate the repo root (the directory holding ``src/repro``)."""
    candidates = []
    if start is not None:
        candidates.append(Path(start))
    # Prefer the tree the operator is standing in (so `repro lint` works
    # on any checkout, not just the one the package was imported from),
    # then fall back to the installed package's own checkout:
    # src/repro/analysis/engine.py → parents[3] is the checkout root.
    cwd = Path.cwd()
    candidates.extend([cwd, *cwd.parents])
    candidates.append(Path(__file__).resolve().parents[3])
    for cand in candidates:
        if (cand / "src" / "repro").is_dir():
            return cand
    raise ValueError(
        "cannot locate the repo root (no src/repro directory found); "
        "pass LintEngine(root=...)"
    )


class RepoIndex:
    """Scanned modules plus on-demand access to reference files.

    Repo rules cross-reference files that may sit outside the lint
    path set (``tests/`` for the accounting rules, the golden schema
    for the drift rules).  :meth:`module` loads and caches those on
    demand; :meth:`scanned` answers whether a file was part of the
    scan, which gates whether a repo rule runs at all.
    """

    def __init__(self, root: Path, modules: Sequence[ModuleInfo]):
        self.root = Path(root)
        self.modules = list(modules)
        self._cache: Dict[str, Optional[ModuleInfo]] = {
            m.relpath: m for m in self.modules
        }
        self._scanned = frozenset(m.relpath for m in self.modules)

    def scanned(self, relpath: str) -> bool:
        return relpath in self._scanned

    def module(self, relpath: str) -> Optional[ModuleInfo]:
        """The parsed module at a repo-relative path, or None."""
        if relpath not in self._cache:
            path = self.root / relpath
            try:
                self._cache[relpath] = ModuleInfo(self.root, path)
            except (OSError, SyntaxError):
                self._cache[relpath] = None
        return self._cache[relpath]

    def dir_modules(self, reldir: str) -> List[ModuleInfo]:
        """Every parseable ``.py`` file under a repo-relative dir."""
        base = self.root / reldir
        if not base.is_dir():
            return []
        out = []
        for path in sorted(base.rglob("*.py")):
            mod = self.module(path.relative_to(self.root).as_posix())
            if mod is not None:
                out.append(mod)
        return out

    def read_text(self, relpath: str) -> Optional[str]:
        try:
            return (self.root / relpath).read_text()
        except OSError:
            return None


@dataclass
class LintResult:
    """Outcome of one lint run (findings sorted, paths repo-relative)."""

    findings: List[Finding]
    n_files: int
    rules: List[str]
    parse_errors: List[Finding]

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if (self.unsuppressed or self.parse_errors) else 0


class LintEngine:
    """Run the registered rules over a path set and collect findings."""

    #: Default scan set: the library source tree.
    DEFAULT_PATHS = ("src/repro",)

    def __init__(
        self,
        root: Optional[Path] = None,
        rules: Optional[Iterable[str]] = None,
    ):
        self.root = find_repo_root(root)
        self.rules: List[Rule] = resolve_rules(rules)

    def run(self, paths: Optional[Sequence[str]] = None) -> LintResult:
        files = self._collect_files(paths)
        modules: List[ModuleInfo] = []
        parse_errors: List[Finding] = []
        for path in files:
            try:
                modules.append(ModuleInfo(self.root, path))
            except SyntaxError as exc:
                parse_errors.append(Finding(
                    rule="lint-parse",
                    family="lint",
                    path=path.resolve().relative_to(
                        self.root.resolve()).as_posix(),
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                ))
        index = RepoIndex(self.root, modules)
        findings: List[Finding] = []
        for rule in self.rules:
            if rule.anchors:
                if any(index.scanned(anchor) for anchor in rule.anchors):
                    findings.extend(rule.check_repo(index))
            else:
                for module in modules:
                    findings.extend(rule.check_module(module, index))
        findings = [self._apply_suppression(f, index) for f in findings]
        findings.sort(key=lambda f: f.sort_key)
        parse_errors.sort(key=lambda f: f.sort_key)
        return LintResult(
            findings=findings,
            n_files=len(modules),
            rules=[rule.rule_id for rule in self.rules],
            parse_errors=parse_errors,
        )

    def _apply_suppression(self, finding: Finding, index: RepoIndex) -> Finding:
        module = index.module(finding.path)
        if module is None:
            return finding
        sup = module.suppression_for(finding.rule, finding.line)
        # A reason-less suppression still silences its target finding —
        # the missing reason is reported by lint-suppression instead,
        # so the operator sees one actionable problem, not two.
        if sup is None:
            return finding
        return Finding(
            rule=finding.rule,
            family=finding.family,
            path=finding.path,
            line=finding.line,
            message=finding.message,
            suppressed=True,
            reason=sup.reason,
        )

    def _collect_files(self, paths: Optional[Sequence[str]]) -> List[Path]:
        raw = list(paths) if paths else list(self.DEFAULT_PATHS)
        files: List[Path] = []
        for entry in raw:
            path = Path(entry)
            if not path.is_absolute():
                path = self.root / path
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py" and path.is_file():
                files.append(path)
            else:
                raise ValueError(f"lint path {entry!r} is not a python "
                                 f"file or directory")
        # De-duplicate while preserving sorted order per entry.
        seen = set()
        unique = []
        for path in files:
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                unique.append(path)
        return unique
