"""Rule registry for the :mod:`repro.analysis` lint pass.

A rule is a class with a unique ``rule_id``, a ``family`` (one of the
families the pass ships: ``determinism``, ``clock-domain``,
``accounting``, ``drift``, ``observability`` — plus the engine's own
``lint`` hygiene family), and one of two check hooks:

* per-file rules implement ``check_module(module, index)`` and run on
  every scanned module;
* repo rules implement ``check_repo(index)``, declare the repo-relative
  ``anchors`` files they reason about, and run once per lint — but only
  when at least one anchor is inside the scanned path set, so linting a
  fixture tree never drags in findings about the real repo.

Rules register themselves with :func:`register` at import time; the
rule modules themselves are imported lazily by :func:`all_rule_classes`
so importing :mod:`repro.analysis` stays cheap until a lint actually
runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Type

__all__ = ["Rule", "register", "all_rule_classes", "resolve_rules"]


class Rule:
    """Base class: metadata plus the two (optional) check hooks."""

    #: Unique kebab-case identifier, e.g. ``det-wallclock``.  This is
    #: the name suppression comments reference.
    rule_id: str = ""
    #: Rule family, e.g. ``determinism``.
    family: str = ""
    #: One-line human description for ``repro lint --list-rules``.
    description: str = ""
    #: Repo rules only: repo-relative files whose presence in the scan
    #: set activates :meth:`check_repo`.
    anchors: tuple = ()

    def check_module(self, module, index) -> Iterable:
        """Yield findings for one scanned module (per-file rules)."""
        return ()

    def check_repo(self, index) -> Iterable:
        """Yield repo-level findings (cross-file rules)."""
        return ()


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the registry (unique ids only)."""
    if not cls.rule_id or not cls.family:
        raise ValueError(f"{cls.__name__} must set rule_id and family")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rule_classes() -> Dict[str, Type[Rule]]:
    """Every registered rule class, keyed and ordered by rule id."""
    # Import the rule modules lazily; each @register call populates the
    # registry as a side effect of the import.
    from . import (  # noqa: F401  (imported for registration side effect)
        rules_accounting,
        rules_determinism,
        rules_domains,
        rules_drift,
        rules_lint,
        rules_observability,
    )

    return {rule_id: _REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)}


def resolve_rules(rule_ids: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate the selected rules (all of them by default).

    Raises :class:`ValueError` on unknown ids so a typo in
    ``repro lint --rules`` fails loudly instead of silently linting
    nothing.
    """
    classes = all_rule_classes()
    if rule_ids is None:
        return [cls() for cls in classes.values()]
    selected = []
    unknown = []
    for rule_id in rule_ids:
        rule_id = rule_id.strip()
        if not rule_id:
            continue
        if rule_id not in classes:
            unknown.append(rule_id)
        else:
            selected.append(classes[rule_id]())
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(unknown)} "
            f"(known: {', '.join(classes)})"
        )
    if not selected:
        raise ValueError("no rules selected")
    return selected
