"""Observability-contract rule for the serving/cluster trace plane.

Latency attribution (:mod:`repro.insight`) tiles each request's
end-to-end interval with the ``queued`` / ``prefill`` / ``decode``
spans the engines emit, and fails loudly on any gap it cannot explain.
That exactness only holds if every code path that *ends* a request's
current lifecycle phase also closes the phase's span — including the
disruptive paths (preempt, quarantine, drain, terminal failure) where
forgetting the span is easiest.

``obs-span-balance`` enforces this statically over the serving and
cluster sources: any method that performs a **terminal lifecycle
transition** — requeueing a record (``reset_for_requeue`` /
``reset_for_preempt`` / ``reset_for_corruption``) or marking it
``FINISHED`` / ``FAILED`` — must emit a lifecycle span itself or via
a same-class helper it (transitively) calls.  The record's own
``reset_for_*`` methods are exempt: they are the state transition, not
the scheduler path that observed it.

A genuinely span-free transition (e.g. failing a request that never
reached any replica queue, so no span is open) is sanctioned with a
standard suppression on the mutating line::

    # repro: allow[obs-span-balance] -- <why no span is open here>
    record.status = RequestStatus.FAILED
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .engine import Finding, ModuleInfo
from .registry import Rule, register

__all__ = ["SpanBalanceRule"]

#: Repo-relative path prefixes the rule patrols.
_SCOPES = ("src/repro/serving/", "src/repro/cluster/")

#: RequestRecord lifecycle-transition methods: calling one of these
#: tears down the record's current phase (requeue after preemption /
#: corruption / drain), so the caller owes a closed span.
_REQUEUE_METHODS = frozenset({
    "reset_for_requeue", "reset_for_preempt", "reset_for_corruption",
})

#: Terminal RequestStatus values whose assignment ends the lifecycle.
_TERMINAL_STATUSES = frozenset({"FINISHED", "FAILED"})


def _is_terminal_status_value(node: ast.AST) -> bool:
    """``RequestStatus.FINISHED`` / ``RequestStatus.FAILED`` reference."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr in _TERMINAL_STATUSES
        and isinstance(node.value, ast.Name)
        and node.value.id == "RequestStatus"
    )


def _transition_lines(fn: ast.FunctionDef) -> List[int]:
    """Line numbers of terminal lifecycle transitions in one function."""
    lines: List[int] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _REQUEUE_METHODS:
            lines.append(node.lineno)
        elif isinstance(node, ast.Assign):
            if _is_terminal_status_value(node.value) and any(
                isinstance(t, ast.Attribute) and t.attr == "status"
                for t in node.targets
            ):
                lines.append(node.lineno)
    return sorted(lines)


def _emits_span_directly(fn: ast.FunctionDef) -> bool:
    """Body calls ``<anything>.span(...)`` — a tracer span emission."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "span":
            return True
    return False


def _self_calls(fn: ast.FunctionDef) -> Set[str]:
    calls: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id == "self":
            calls.add(node.func.attr)
    return calls


def _span_reachability(
    methods: Dict[str, ast.FunctionDef],
) -> Dict[str, bool]:
    """Fixed point: a method emits a span if it, or any same-class
    method it calls on ``self`` (transitively), does."""
    emits = {name: _emits_span_directly(fn) for name, fn in methods.items()}
    changed = True
    while changed:
        changed = False
        for name, fn in methods.items():
            if emits[name]:
                continue
            if any(emits.get(callee, False) for callee in _self_calls(fn)):
                emits[name] = True
                changed = True
    return emits


def _functions_with_context(
    tree: ast.Module,
) -> Iterator[Tuple[Optional[str], str, ast.FunctionDef,
                    Dict[str, ast.FunctionDef]]]:
    """Yield (class-name, fn-name, fn, same-class method map) pairs."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            methods = {
                item.name: item for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
            for name, fn in sorted(methods.items()):
                yield node.name, name, fn, methods
        elif isinstance(node, ast.FunctionDef):
            yield None, node.name, node, {node.name: node}


@register
class SpanBalanceRule(Rule):
    rule_id = "obs-span-balance"
    family = "observability"
    description = (
        "serving/cluster code path ends a request lifecycle phase "
        "(requeue or terminal status) without emitting a lifecycle span"
    )

    def check_module(self, module: ModuleInfo, index) -> Iterator[Finding]:
        if not module.relpath.startswith(_SCOPES):
            return
        for class_name, name, fn, methods in \
                _functions_with_context(module.tree):
            if name.startswith("reset_for_"):
                # The record's own transition methods *are* the state
                # change; the scheduler path invoking them owes the span.
                continue
            lines = _transition_lines(fn)
            if not lines:
                continue
            emits = _span_reachability(methods)
            if emits.get(name, False):
                continue
            where = f"{class_name}.{name}()" if class_name else f"{name}()"
            yield Finding(
                rule=self.rule_id,
                family=self.family,
                path=module.relpath,
                line=lines[0],
                message=(
                    f"{where} ends a request lifecycle phase (requeue or "
                    f"terminal status) but never emits a span, directly "
                    f"or via a same-class helper: the request's timeline "
                    f"has an untiled hole latency attribution cannot "
                    f"explain"
                ),
            )
