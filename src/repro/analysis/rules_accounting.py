"""Accounting-contract rule family for the KV page ledgers.

The serving stack's second hand-enforced contract is conservation of
pages in the :class:`~repro.serving.memory_pool.KVMemoryPool` and
:class:`~repro.cluster.sharded_pool.ShardedKVPool` ledgers.  Two
properties keep that contract auditable, and these rules enforce both
statically by cross-referencing the AST of ``src/`` against ``tests/``:

* ``acct-observer-notify`` — every *public* method that mutates page
  accounts (the ``_accounts`` map, an account's ``reserved_pages`` /
  ``floor_pages`` / ``allocated_per_layer`` fields, or the sharded
  ledger's ``_active`` / ``_failed`` state) must notify the
  observability hook (``self._notify`` / ``self.observer``), directly
  or through another method of the same class.  A silent mutation is a
  ledger transition telemetry cannot see — exactly the class of bug the
  PR-6 pool-event tracks exist to catch.
* ``acct-audit-test`` — every such mutating method must be exercised by
  at least one test file that also calls ``.audit()``, so each ledger
  transition runs under the invariant checker somewhere in the suite.
  The check is name-level: a test file counts if it calls both the
  method and ``audit`` anywhere (the pools' audits are cheap enough
  that audit-adjacent coverage is the repo's testing idiom).

Both rules are deliberately repo-specific: the classes and their
account fields are configured below, not discovered, so the rules stay
precise as the serving stack grows — add new ledger classes to
``POOL_CLASSES`` when they appear.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .engine import Finding, RepoIndex
from .registry import Rule, register

__all__ = ["ObserverNotifyRule", "AuditTestRule", "POOL_CLASSES"]

#: Ledger classes under contract: repo-relative file → class name.
POOL_CLASSES: Dict[str, str] = {
    "src/repro/serving/memory_pool.py": "KVMemoryPool",
    "src/repro/cluster/sharded_pool.py": "ShardedKVPool",
}

#: Attributes whose element/field stores constitute a page-account
#: mutation.  ``_accounts`` / ``_active`` / ``_failed`` are the ledger
#: containers, ``_checksums`` is the page-integrity plane kept in
#: lockstep with them; the rest are per-sequence account fields.
_LEDGER_CONTAINERS = frozenset(
    {"_accounts", "_active", "_failed", "_checksums"}
)
_ACCOUNT_FIELDS = frozenset({
    "reserved_pages", "floor_pages", "allocated_per_layer",
})

#: Directory whose test files the audit cross-reference scans.
_TESTS_DIR = "tests"


def _attr_name(node: ast.AST) -> Optional[str]:
    return node.attr if isinstance(node, ast.Attribute) else None


def _is_account_store(target: ast.AST) -> bool:
    """Store target that mutates ledger state.

    ``self._accounts[i] = ...`` / ``self._active[i] = ...`` (subscript
    into a ledger container), ``account.reserved_pages = ...``
    (account-field attribute), or ``account.allocated_per_layer[l] =
    ...`` (subscript into an account field).
    """
    if isinstance(target, ast.Subscript):
        inner = _attr_name(target.value)
        return inner in _LEDGER_CONTAINERS or inner in _ACCOUNT_FIELDS
    if isinstance(target, ast.Attribute):
        return target.attr in _ACCOUNT_FIELDS
    if isinstance(target, (ast.Tuple, ast.List)):
        return any(_is_account_store(elt) for elt in target.elts)
    return False


def _mutates_accounts(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            if any(_is_account_store(t) for t in targets):
                return True
        elif isinstance(node, ast.Delete):
            if any(_is_account_store(t) for t in node.targets):
                return True
        elif isinstance(node, ast.Call):
            # self._accounts.pop(...) / del-style container mutation.
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "pop", "clear", "setdefault", "update",
            ):
                if _attr_name(func.value) in _LEDGER_CONTAINERS:
                    return True
    return False


def _notifies_directly(fn: ast.FunctionDef) -> bool:
    """Method body touches the observability hook itself."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and node.attr in (
            "_notify", "observer",
        ):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return True
    return False


def _self_calls(fn: ast.FunctionDef) -> Set[str]:
    """Names of same-class methods the body calls via ``self.x(...)``."""
    calls: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id == "self":
            calls.add(node.func.attr)
    return calls


def _is_property(fn: ast.FunctionDef) -> bool:
    for dec in fn.decorator_list:
        name = dec.id if isinstance(dec, ast.Name) else _attr_name(dec)
        if name in ("property", "cached_property", "setter"):
            return True
    return False


def _class_methods(
    tree: ast.Module, class_name: str
) -> Dict[str, ast.FunctionDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {
                item.name: item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
    return {}


def _mutating_public_methods(
    index: RepoIndex,
) -> Iterator[Tuple[str, str, str, ast.FunctionDef, bool]]:
    """Yield (relpath, class, method, fn-node, notifies) per contract
    method across the configured ledger classes.

    ``notifies`` is transitive over same-class calls: ``try_grow``
    counts because it delegates to ``sync``, which notifies.
    """
    for relpath, class_name in sorted(POOL_CLASSES.items()):
        module = index.module(relpath)
        if module is None:
            continue
        methods = _class_methods(module.tree, class_name)
        direct = {name: _notifies_directly(fn) for name, fn in methods.items()}
        # Fixed point: a method notifies if it, or anything it calls on
        # self (transitively), notifies.
        notifies = dict(direct)
        changed = True
        while changed:
            changed = False
            for name, fn in methods.items():
                if notifies[name]:
                    continue
                if any(notifies.get(callee, False)
                       for callee in _self_calls(fn)):
                    notifies[name] = True
                    changed = True
        for name, fn in sorted(methods.items()):
            if name.startswith("_") or _is_property(fn):
                continue
            if _mutates_accounts(fn) or any(
                _mutates_accounts(methods[callee])
                for callee in _self_calls(fn) if callee in methods
            ):
                yield relpath, class_name, name, fn, notifies[name]


@register
class ObserverNotifyRule(Rule):
    rule_id = "acct-observer-notify"
    family = "accounting"
    description = (
        "public ledger method mutates page accounts without notifying "
        "the observer hook"
    )
    anchors = tuple(sorted(POOL_CLASSES))

    def check_repo(self, index: RepoIndex) -> Iterator[Finding]:
        for relpath, class_name, name, fn, notifies in \
                _mutating_public_methods(index):
            if not index.scanned(relpath):
                continue
            if not notifies:
                yield Finding(
                    rule=self.rule_id,
                    family=self.family,
                    path=relpath,
                    line=fn.lineno,
                    message=(
                        f"{class_name}.{name}() mutates page accounts but "
                        f"never notifies the observer hook "
                        f"(self._notify/self.observer): this ledger "
                        f"transition is invisible to telemetry"
                    ),
                )


@register
class AuditTestRule(Rule):
    rule_id = "acct-audit-test"
    family = "accounting"
    description = (
        "public ledger-mutating method not exercised by any test file "
        "that also asserts audit()"
    )
    anchors = tuple(sorted(POOL_CLASSES))

    def check_repo(self, index: RepoIndex) -> Iterator[Finding]:
        covered = self._audit_covered_methods(index)
        for relpath, class_name, name, fn, _ in \
                _mutating_public_methods(index):
            if not index.scanned(relpath):
                continue
            if name not in covered:
                yield Finding(
                    rule=self.rule_id,
                    family=self.family,
                    path=relpath,
                    line=fn.lineno,
                    message=(
                        f"{class_name}.{name}() mutates page accounts but "
                        f"no audit()-asserting test under {_TESTS_DIR}/ "
                        f"calls it: its ledger transition never runs "
                        f"under the invariant checker"
                    ),
                )

    @staticmethod
    def _audit_covered_methods(index: RepoIndex) -> Set[str]:
        """Attribute-call names appearing in audit-asserting test files."""
        covered: Set[str] = set()
        for test in index.dir_modules(_TESTS_DIR):
            calls: Set[str] = set()
            for node in ast.walk(test.tree):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute):
                    calls.add(node.func.attr)
            if "audit" in calls:
                covered |= calls
        return covered
