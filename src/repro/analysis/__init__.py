"""Determinism & accounting lint pass for the serving stack.

Every layer grown on top of the SpAtten reproduction stakes its
correctness on two contracts that runtime tests can only police *after*
a violation ships: bit-identical token streams / byte-identical
artifacts across identical runs, and conservation of pages in the KV
ledgers.  This package checks both at lint time, before a single
simulation runs, with an AST-based framework tailored to this codebase:

* :mod:`~repro.analysis.engine` — the visitor engine:
  :class:`LintEngine` scans a path set (default ``src/repro``), runs
  every registered rule, applies ``# repro: allow[rule-id] -- reason``
  suppressions (per-line, or per-module via ``allow-file``), and
  returns a deterministic :class:`LintResult`;
* :mod:`~repro.analysis.registry` — the rule registry: subclass
  :class:`~repro.analysis.registry.Rule`, decorate with ``@register``,
  implement ``check_module`` (per-file) or ``check_repo`` +
  ``anchors`` (cross-file);
* :mod:`~repro.analysis.manifest` — the clock-domain manifest: every
  module declares (by dotted prefix) whether it lives on the
  ``simulated`` clock, the sanctioned ``wall`` clock, or neither;
* four rule families: **determinism** (``det-wallclock``,
  ``det-global-rng``, ``det-env-read``, ``det-set-order``),
  **clock-domain** (``clock-domain-import``), **accounting**
  (``acct-observer-notify``, ``acct-audit-test``) and **drift**
  (``drift-cli-doc``, ``drift-stats-schema``), plus the
  self-policing ``lint-suppression`` hygiene rule;
* :mod:`~repro.analysis.reporters` — text and byte-deterministic JSON
  renderings.

CI and ``scripts/run_tier1.sh`` run ``repro lint`` as a hard gate: the
tree must carry zero unsuppressed violations, and every suppression
must state its reason.  See the "Static analysis" section of the
serving guide (:mod:`repro.serving`) for the rule catalog and the
how-to-add-a-rule walkthrough.
"""

from .engine import (
    Finding,
    LintEngine,
    LintResult,
    ModuleInfo,
    RepoIndex,
    Suppression,
    find_repo_root,
)
from .manifest import CLOCK_DOMAINS, DEFAULT_DOMAIN, DOMAINS, domain_of
from .registry import Rule, all_rule_classes, register, resolve_rules
from .reporters import REPORT_FORMAT_VERSION, render_json, render_text

__all__ = [
    "CLOCK_DOMAINS",
    "DEFAULT_DOMAIN",
    "DOMAINS",
    "Finding",
    "LintEngine",
    "LintResult",
    "ModuleInfo",
    "REPORT_FORMAT_VERSION",
    "RepoIndex",
    "Rule",
    "Suppression",
    "all_rule_classes",
    "domain_of",
    "find_repo_root",
    "register",
    "render_json",
    "render_text",
    "resolve_rules",
]
