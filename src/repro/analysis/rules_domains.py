"""Clock-domain separation rule family.

Backed by the manifest in :mod:`repro.analysis.manifest`: every module
resolves to a ``simulated`` / ``wall`` / ``neutral`` clock domain by
longest dotted prefix, and an import edge directly connecting the
``simulated`` and ``wall`` domains — in either direction — is a
violation.  This is what keeps serving code from ever importing the
profiler's wall clock (nondeterminism leaking into artifacts) and the
profiler from reaching back into simulated-clock state (wall timings
contaminating deterministic accounting).  Neutral modules (configs,
reporting, the CLI, package ``__init__`` aggregators) may import either
side, which is how the :class:`repro.telemetry.Telemetry` bundle can
construct both a simulated-clock tracer and a wall-clock profiler
without either importing the other.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from .engine import Finding, ModuleInfo
from .manifest import domain_match, domain_of
from .registry import Rule, register

__all__ = ["ClockDomainImportRule"]


@register
class ClockDomainImportRule(Rule):
    rule_id = "clock-domain-import"
    family = "clock-domain"
    description = (
        "import edge directly connecting the 'simulated' and 'wall' "
        "clock domains (see repro.analysis.manifest)"
    )

    def check_module(self, module: ModuleInfo, index) -> Iterator[Finding]:
        my_domain = domain_of(module.module_name)
        if my_domain == "neutral":
            return
        for target, line in self._import_targets(module):
            target_domain = domain_of(target)
            if {my_domain, target_domain} == {"simulated", "wall"}:
                yield Finding(
                    rule=self.rule_id,
                    family=self.family,
                    path=module.relpath,
                    line=line,
                    message=(
                        f"'{module.module_name}' ({my_domain} clock domain) "
                        f"imports '{target}' ({target_domain} domain): "
                        f"simulated-clock and wall-clock code must not "
                        f"touch — route through a neutral module or a "
                        f"duck-typed hook (see repro.analysis.manifest)"
                    ),
                )

    def _import_targets(
        self, module: ModuleInfo
    ) -> List[Tuple[str, int]]:
        """(dotted module, line) per import edge, most specific first.

        For ``from pkg import name`` the imported name may itself be a
        submodule; when ``pkg.name`` has a more specific manifest entry
        than ``pkg`` (e.g. ``repro.telemetry.profiler`` inside
        ``repro.telemetry``), the edge binds to the submodule.
        """
        targets: List[Tuple[str, int]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    targets.append((alias.name, node.lineno))
            elif isinstance(node, ast.ImportFrom):
                base = module.resolve_import_base(node)
                if not base:
                    continue
                _, base_len = domain_match(base)
                for alias in node.names:
                    if alias.name == "*":
                        targets.append((base, node.lineno))
                        continue
                    candidate = f"{base}.{alias.name}"
                    _, cand_len = domain_match(candidate)
                    targets.append(
                        (candidate if cand_len > base_len else base,
                         node.lineno)
                    )
        return targets
