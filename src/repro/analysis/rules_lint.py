"""Lint-hygiene rules: the suppression syntax polices itself.

``lint-suppression`` fires on any ``# repro:`` comment that does not
parse as ``# repro: allow[rule-id, ...] -- reason`` — including a
well-formed suppression with the reason missing.  This is what backs
the repo contract that *every* suppression carries a justification: a
reason-less ``allow`` still silences its target rule (so the operator
sees one problem, not two), but the lint stays red until the reason is
written down.
"""

from __future__ import annotations

from typing import Iterator

from .engine import Finding, ModuleInfo
from .registry import Rule, register

__all__ = ["SuppressionHygieneRule"]


@register
class SuppressionHygieneRule(Rule):
    rule_id = "lint-suppression"
    family = "lint"
    description = (
        "malformed '# repro:' comment or suppression without a reason"
    )

    def check_module(self, module: ModuleInfo, index) -> Iterator[Finding]:
        for line, message in module.suppression_problems:
            yield Finding(
                rule=self.rule_id,
                family=self.family,
                path=module.relpath,
                line=line,
                message=message,
            )
