"""Determinism rule family.

The serving stack's headline contract is bit-identical token streams
and byte-identical artifacts across identical runs.  Everything that
can break that contract without failing a unit test falls into a small
set of syntactic shapes, which these rules flag at lint time:

* ``det-wallclock`` — wall-clock reads (``time.time``,
  ``time.perf_counter``, ``datetime.now``, ...) outside the modules the
  clock-domain manifest sanctions as ``wall``;
* ``det-global-rng`` — the stdlib ``random`` module and numpy's
  module-level legacy RNG (``np.random.rand`` / ``np.random.seed`` /
  ...), both of which draw from hidden global state instead of an
  explicitly seeded ``np.random.Generator``;
* ``det-env-read`` — ``os.environ`` / ``os.getenv`` reads, which make
  behaviour depend on ambient shell state no artifact records;
* ``det-set-order`` — iteration over ``set``-typed expressions feeding
  ordered output (a ``for`` body, a list comprehension, ``list()`` /
  ``tuple()`` / ``enumerate()`` / ``str.join``): set order varies with
  ``PYTHONHASHSEED``, so anything serialized from it is
  run-dependent.  Wrap the set in ``sorted(...)``.
* ``det-dtype-literal`` — hard-coded ``np.float64`` (or ``dtype=float``)
  in a module the numerics ladder governs
  (:data:`NUMERICS_GOVERNED_PATHS`): the decode hot path's dtype is
  policy state (:class:`repro.nn.numerics.NumericsPolicy`), so a
  literal fp64 silently pins one tier and breaks the others.  The
  deliberate fp64 *oracle* paths carry reasoned suppressions.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from .engine import Finding, ModuleInfo
from .manifest import wall_clock_allowed
from .registry import Rule, register

__all__ = [
    "WallClockRule",
    "GlobalRngRule",
    "EnvReadRule",
    "SetOrderRule",
    "DtypeLiteralRule",
    "NUMERICS_GOVERNED_PATHS",
]

#: Canonical dotted names of wall-clock reads.
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: numpy.random members that are explicitly-seeded constructors (fine),
#: as opposed to the hidden-global-state legacy functions (flagged).
_NP_RANDOM_SEEDED = frozenset({
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",  # explicit instance; seeded at construction
})


def _call_name(module: ModuleInfo, node: ast.Call) -> Optional[str]:
    return module.dotted_name(node.func)


@register
class WallClockRule(Rule):
    rule_id = "det-wallclock"
    family = "determinism"
    description = (
        "wall-clock reads (time.time / perf_counter / datetime.now) "
        "outside manifest-sanctioned 'wall' modules"
    )

    def check_module(self, module: ModuleInfo, index) -> Iterator[Finding]:
        if wall_clock_allowed(module.module_name):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(module, node)
            if name in WALL_CLOCK_CALLS:
                yield Finding(
                    rule=self.rule_id,
                    family=self.family,
                    path=module.relpath,
                    line=node.lineno,
                    message=(
                        f"wall-clock read {name}() in module "
                        f"'{module.module_name}' — serving artifacts must "
                        f"be timestamped by the simulated clock; if this "
                        f"module is a sanctioned profiler, declare it "
                        f"'wall' in repro.analysis.manifest"
                    ),
                )


@register
class GlobalRngRule(Rule):
    rule_id = "det-global-rng"
    family = "determinism"
    description = (
        "stdlib random or numpy legacy module-level RNG instead of an "
        "explicitly seeded np.random.Generator"
    )

    def check_module(self, module: ModuleInfo, index) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or \
                            alias.name.startswith("random."):
                        yield self._finding(
                            module, node.lineno,
                            "stdlib 'random' draws from hidden global "
                            "state; use a seeded np.random.Generator",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module and (
                    node.module == "random"
                    or node.module.startswith("random.")
                ):
                    yield self._finding(
                        module, node.lineno,
                        "stdlib 'random' draws from hidden global state; "
                        "use a seeded np.random.Generator",
                    )
            elif isinstance(node, ast.Call):
                name = _call_name(module, node)
                if name is None:
                    continue
                if name.startswith("numpy.random."):
                    member = name.split(".")[2]
                    if member not in _NP_RANDOM_SEEDED:
                        yield self._finding(
                            module, node.lineno,
                            f"{name}() uses numpy's module-level global "
                            f"RNG; draw from a seeded "
                            f"np.random.default_rng(seed) instead",
                        )
                elif name.startswith("random.") and \
                        module.import_aliases.get("random") == "random":
                    yield self._finding(
                        module, node.lineno,
                        f"{name}() draws from stdlib global RNG state; "
                        f"use a seeded np.random.Generator",
                    )

    def _finding(self, module: ModuleInfo, line: int, msg: str) -> Finding:
        return Finding(
            rule=self.rule_id, family=self.family,
            path=module.relpath, line=line, message=msg,
        )


@register
class EnvReadRule(Rule):
    rule_id = "det-env-read"
    family = "determinism"
    description = (
        "os.environ / os.getenv reads: behaviour must come from explicit "
        "configuration, not ambient shell state"
    )

    def check_module(self, module: ModuleInfo, index) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            name: Optional[str] = None
            if isinstance(node, ast.Call):
                name = _call_name(module, node)
                if name != "os.getenv":
                    continue
            elif isinstance(node, ast.Attribute) and \
                    isinstance(node.ctx, ast.Load):
                name = module.dotted_name(node)
                if name != "os.environ":
                    continue
            else:
                continue
            yield Finding(
                rule=self.rule_id,
                family=self.family,
                path=module.relpath,
                line=node.lineno,
                message=(
                    f"{name} read makes behaviour depend on ambient shell "
                    f"state no artifact records; thread the value through "
                    f"explicit configuration (a flag or constructor "
                    f"argument) instead"
                ),
            )


def _is_set_expr(node: ast.AST) -> bool:
    """Syntactically set-typed: literal, comprehension, set()/frozenset(),
    or a set-algebra BinOp with a set-typed operand."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class SetOrderRule(Rule):
    rule_id = "det-set-order"
    family = "determinism"
    description = (
        "iteration over a set feeding ordered output (loop body, list "
        "comprehension, list()/tuple()/enumerate()/join) — set order "
        "varies with PYTHONHASHSEED; wrap in sorted(...)"
    )

    _MSG = (
        "iteration order of a set varies with PYTHONHASHSEED, so this "
        "feeds run-dependent order into downstream output; iterate "
        "sorted(...) instead"
    )

    def check_module(self, module: ModuleInfo, index) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            line: Optional[int] = None
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                line = node.iter.lineno
            elif isinstance(node, ast.ListComp):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        line = gen.iter.lineno
                        break
            elif isinstance(node, ast.Call):
                args: List[ast.AST] = []
                if isinstance(node.func, ast.Name) and \
                        node.func.id in ("list", "tuple", "enumerate"):
                    args = node.args[:1]
                elif isinstance(node.func, ast.Attribute) and \
                        node.func.attr == "join":
                    args = node.args[:1]
                if any(_is_set_expr(a) for a in args):
                    line = node.lineno
            if line is not None:
                yield Finding(
                    rule=self.rule_id,
                    family=self.family,
                    path=module.relpath,
                    line=line,
                    message=self._MSG,
                )


#: Modules whose decode-path dtypes are owned by the numerics ladder
#: (:class:`repro.nn.numerics.NumericsPolicy`).  A hard-coded fp64
#: literal here pins the ``exact`` tier's representation into code the
#: ``fp32``/``int8`` tiers also run — the exact class of bug the policy
#: refactor exists to prevent.
NUMERICS_GOVERNED_PATHS = frozenset({
    "src/repro/nn/kv_cache.py",
    "src/repro/nn/batched_attention.py",
    "src/repro/nn/transformer.py",
    "src/repro/nn/functional.py",
    "src/repro/core/pipeline.py",
})


@register
class DtypeLiteralRule(Rule):
    rule_id = "det-dtype-literal"
    family = "determinism"
    description = (
        "hard-coded np.float64 / dtype=float in a numerics-policy-"
        "governed hot-path module; dtype must come from the "
        "NumericsPolicy (suppress with a reason on oracle paths)"
    )

    _MSG = (
        "hard-coded {what} in a module the numerics ladder governs; the "
        "decode path's dtype is policy state — thread "
        "NumericsPolicy.compute_dtype / kv_dtype instead, or suppress "
        "with a reason if this is a deliberate fp64 oracle path"
    )

    def check_module(self, module: ModuleInfo, index) -> Iterator[Finding]:
        if module.relpath not in NUMERICS_GOVERNED_PATHS:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.ctx, ast.Load):
                if module.dotted_name(node) == "numpy.float64":
                    yield self._finding(module, node.lineno, "np.float64")
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "dtype" and \
                            isinstance(kw.value, ast.Name) and \
                            kw.value.id == "float":
                        yield self._finding(
                            module, kw.value.lineno, "dtype=float"
                        )

    def _finding(self, module: ModuleInfo, line: int, what: str) -> Finding:
        return Finding(
            rule=self.rule_id, family=self.family,
            path=module.relpath, line=line,
            message=self._MSG.format(what=what),
        )
