"""Clock-domain manifest for the serving stack.

The repo runs on two clocks.  The *simulated* clock
(:class:`repro.serving.stats.SimulatedClock`) drives every serving and
cluster artifact — stats, traces, metrics — and is what makes identical
runs byte-identical.  The *wall* clock exists in exactly one sanctioned
place: :mod:`repro.telemetry.profiler`, whose job is to measure real
Python/BLAS time and whose output is deliberately kept out of the
deterministic artifacts.

Every module therefore lives in one of three clock domains:

* ``simulated`` — produces or consumes simulated-clock state; must
  never read the wall clock (rule ``det-wallclock``) nor import a
  ``wall`` module (rule ``clock-domain-import``);
* ``wall`` — the sanctioned wall-clock modules; exempt from
  ``det-wallclock``, but barred from importing ``simulated`` modules so
  nondeterministic timings can never leak into deterministic state;
* ``neutral`` — everything else (pure math, configs, reporting, the
  CLI operator surface, package aggregation ``__init__``\\ s).  Neutral
  modules may import either side; wall-clock *calls* in neutral
  modules still need a per-line ``# repro: allow[det-wallclock]``.

The mapping uses longest-dotted-prefix matching, so one entry can
cover a package and a deeper entry can carve out an exception —
``repro.telemetry`` is neutral (the bundle ``__init__`` aggregates both
sides) while ``repro.telemetry.tracer`` is simulated and
``repro.telemetry.profiler`` is wall.

Adding a module to the serving stack?  If it touches the simulated
clock or its artifacts, list it (or its package) here as ``simulated``;
new wall-clock users need an explicit ``wall`` entry, which is the
manifest's whole point — wall time is opt-in, reviewed, and fenced.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = [
    "CLOCK_DOMAINS",
    "DEFAULT_DOMAIN",
    "DOMAINS",
    "domain_of",
    "domain_match",
    "wall_clock_allowed",
]

DOMAINS = ("simulated", "wall", "neutral")

DEFAULT_DOMAIN = "neutral"

#: Longest-prefix map of dotted module names to clock domains.
CLOCK_DOMAINS: Dict[str, str] = {
    # The serving stack runs entirely on the simulated clock.
    "repro.serving": "simulated",
    "repro.cluster": "simulated",
    # Fault plans, heartbeat detection, and injection all run on the
    # simulated clock (chaos runs replay byte-identically).
    "repro.faults": "simulated",
    # Arrival traces are simulated-clock timestamps.
    "repro.workloads.traffic": "simulated",
    # The telemetry bundle __init__ aggregates both sides (it builds
    # the profiler only when asked); the deterministic sinks are
    # simulated, the profiler is the one sanctioned wall-clock module.
    "repro.telemetry": "neutral",
    "repro.telemetry.tracer": "simulated",
    "repro.telemetry.metrics": "simulated",
    "repro.telemetry.profiler": "wall",
    "repro.telemetry.export": "neutral",
    "repro.telemetry.report": "neutral",
    # Post-hoc analysis over traces, records, and bench results; reads
    # simulated timestamps out of artifacts but never a live clock.
    "repro.insight": "neutral",
    # Operator surface: prints wall-clock progress (per-line allowed),
    # imports both serving and telemetry.
    "repro.cli": "neutral",
}


def domain_match(module_name: str) -> Tuple[str, int]:
    """(domain, matched-prefix length) for a dotted module name.

    The length lets callers prefer a more specific resolution — e.g.
    ``from repro.telemetry import profiler`` should bind to the
    ``repro.telemetry.profiler`` entry, not the package's.
    """
    best_domain, best_len = DEFAULT_DOMAIN, 0
    parts = module_name.split(".")
    for i in range(len(parts), 0, -1):
        prefix = ".".join(parts[:i])
        domain = CLOCK_DOMAINS.get(prefix)
        if domain is not None:
            best_domain, best_len = domain, i
            break
    return best_domain, best_len


def domain_of(module_name: Optional[str]) -> str:
    """Clock domain of a dotted module name (``neutral`` by default)."""
    if not module_name:
        return DEFAULT_DOMAIN
    return domain_match(module_name)[0]


def wall_clock_allowed(module_name: Optional[str]) -> bool:
    """Whether a module is sanctioned to read the wall clock."""
    return domain_of(module_name) == "wall"
