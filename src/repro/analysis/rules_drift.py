"""Drift rule family: docs and golden schemas vs. the code they mirror.

Two artifacts in this repo are hand-maintained mirrors of code and rot
silently when the code moves:

* ``drift-cli-doc`` — the CLI flag surface.  The module docstrings of
  ``repro.cli`` and the serving/cluster guides narrate flags by name;
  this rule extracts every ``--flag`` token from those docstrings and
  every ``add_argument("--flag", ...)`` definition from ``cli.py`` and
  flags both directions of drift: a documented flag that no parser
  defines (stale doc), and a defined flag no guide mentions
  (undocumented surface).
* ``drift-stats-schema`` — the ``--stats-json`` document shape.
  ``benchmarks/results/stats_schema_v2.json`` is the checked-in golden
  schema for ``STATS_SCHEMA_VERSION``; this rule statically derives the
  key set of :meth:`ServingStats.to_dict` (dataclass fields minus
  ``records`` plus ``schema_version``) and :meth:`ClusterStats.to_dict`
  (literal dict keys) and compares both against the golden file, so a
  renamed or removed stats field fails lint until either the schema
  version is bumped and the golden regenerated, or the field comes
  back.  A runtime round-trip test asserts the same equality on live
  objects.
"""

from __future__ import annotations

import ast
import json
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .engine import Finding, ModuleInfo, RepoIndex
from .registry import Rule, register

__all__ = ["CliDocDriftRule", "StatsSchemaDriftRule", "GOLDEN_SCHEMA_PATH"]

_CLI_PATH = "src/repro/cli.py"

#: Module docstrings that narrate the CLI flag surface.
_DOC_SOURCES = (
    "src/repro/cli.py",
    "src/repro/serving/__init__.py",
    "src/repro/cluster/__init__.py",
)

#: ``--flag`` tokens: require a leading letter so reST underlines
#: (----) and em-dash art never match.
_FLAG_TOKEN_RE = re.compile(r"--[a-z][a-z0-9-]*")

GOLDEN_SCHEMA_PATH = "benchmarks/results/stats_schema_v2.json"
_SERVING_STATS_PATH = "src/repro/serving/stats.py"
_CLUSTER_STATS_PATH = "src/repro/cluster/stats.py"


def _docstring_span(module: ModuleInfo) -> Optional[Tuple[int, int]]:
    """(first, last) 1-based line numbers of the module docstring."""
    body = module.tree.body
    if body and isinstance(body[0], ast.Expr) and \
            isinstance(body[0].value, ast.Constant) and \
            isinstance(body[0].value.value, str):
        return body[0].lineno, body[0].end_lineno or body[0].lineno
    return None


def _doc_flag_tokens(module: ModuleInfo) -> List[Tuple[str, int]]:
    """(flag, line) for every --flag token in the module docstring."""
    span = _docstring_span(module)
    if span is None:
        return []
    out = []
    for lineno in range(span[0], span[1] + 1):
        for match in _FLAG_TOKEN_RE.finditer(module.lines[lineno - 1]):
            out.append((match.group(0), lineno))
    return out


def _defined_flags(cli: ModuleInfo) -> Dict[str, int]:
    """flag → first definition line, from add_argument calls."""
    flags: Dict[str, int] = {}
    for node in ast.walk(cli.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"):
            continue
        for arg in node.args:
            if isinstance(arg, ast.Constant) and \
                    isinstance(arg.value, str) and \
                    arg.value.startswith("--"):
                flags.setdefault(arg.value, node.lineno)
    return flags


@register
class CliDocDriftRule(Rule):
    rule_id = "drift-cli-doc"
    family = "drift"
    description = (
        "CLI flags vs the cli.py / serving-guide docstrings: stale "
        "documented flags and undocumented defined flags"
    )
    anchors = (_CLI_PATH,)

    def check_repo(self, index: RepoIndex) -> Iterator[Finding]:
        cli = index.module(_CLI_PATH)
        if cli is None:
            yield Finding(
                rule=self.rule_id, family=self.family, path=_CLI_PATH,
                line=1, message="cannot parse src/repro/cli.py",
            )
            return
        defined = _defined_flags(cli)
        documented: Set[str] = set()
        for relpath in _DOC_SOURCES:
            doc = index.module(relpath)
            if doc is None:
                continue
            for flag, lineno in _doc_flag_tokens(doc):
                documented.add(flag)
                if flag not in defined:
                    yield Finding(
                        rule=self.rule_id,
                        family=self.family,
                        path=relpath,
                        line=lineno,
                        message=(
                            f"docstring mentions {flag}, but no parser in "
                            f"cli.py defines that flag (stale doc?)"
                        ),
                    )
        for flag, lineno in sorted(defined.items()):
            if flag not in documented:
                yield Finding(
                    rule=self.rule_id,
                    family=self.family,
                    path=_CLI_PATH,
                    line=lineno,
                    message=(
                        f"flag {flag} is defined but appears in neither "
                        f"the cli.py docstring nor the serving/cluster "
                        f"guides — document it where operators look"
                    ),
                )


def _dataclass_field_names(
    module: ModuleInfo, class_name: str
) -> Optional[List[str]]:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return [
                item.target.id
                for item in node.body
                if isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
            ]
    return None


def _to_dict_literal_keys(
    module: ModuleInfo, class_name: str
) -> Optional[List[str]]:
    """String keys of the dict literal ``to_dict`` returns."""
    for node in module.tree.body:
        if not (isinstance(node, ast.ClassDef) and node.name == class_name):
            continue
        for item in node.body:
            if isinstance(item, ast.FunctionDef) and item.name == "to_dict":
                for ret in ast.walk(item):
                    if isinstance(ret, ast.Return) and \
                            isinstance(ret.value, ast.Dict):
                        return [
                            k.value for k in ret.value.keys
                            if isinstance(k, ast.Constant)
                            and isinstance(k.value, str)
                        ]
    return None


def _schema_version_literal(module: ModuleInfo) -> Optional[int]:
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "STATS_SCHEMA_VERSION" and \
                        isinstance(node.value, ast.Constant):
                    return node.value.value
    return None


@register
class StatsSchemaDriftRule(Rule):
    rule_id = "drift-stats-schema"
    family = "drift"
    description = (
        "ServingStats/ClusterStats.to_dict() keys vs the checked-in "
        "golden schema for STATS_SCHEMA_VERSION"
    )
    anchors = (_SERVING_STATS_PATH, _CLUSTER_STATS_PATH)

    def check_repo(self, index: RepoIndex) -> Iterator[Finding]:
        serving = index.module(_SERVING_STATS_PATH)
        cluster = index.module(_CLUSTER_STATS_PATH)
        if serving is None or cluster is None:
            return
        golden_text = index.read_text(GOLDEN_SCHEMA_PATH)
        if golden_text is None:
            yield self._finding(
                _SERVING_STATS_PATH, 1,
                f"golden stats schema {GOLDEN_SCHEMA_PATH} is missing; "
                f"check it in so --stats-json consumers have a contract",
            )
            return
        try:
            golden = json.loads(golden_text)
        except ValueError as exc:
            yield self._finding(
                _SERVING_STATS_PATH, 1,
                f"golden stats schema {GOLDEN_SCHEMA_PATH} is not valid "
                f"JSON: {exc}",
            )
            return

        version = _schema_version_literal(serving)
        if golden.get("schema_version") != version:
            yield self._finding(
                _SERVING_STATS_PATH, 1,
                f"STATS_SCHEMA_VERSION is {version} but the golden schema "
                f"records schema_version={golden.get('schema_version')}: "
                f"regenerate {GOLDEN_SCHEMA_PATH} when bumping",
            )

        fields = _dataclass_field_names(serving, "ServingStats")
        if fields is not None:
            expected = sorted(
                (set(fields) - {"records"}) | {"schema_version"}
            )
            yield from self._compare(
                "ServingStats.to_dict()", expected,
                golden.get("serving_stats"), _SERVING_STATS_PATH, serving,
            )
        cluster_keys = _to_dict_literal_keys(cluster, "ClusterStats")
        if cluster_keys is not None:
            yield from self._compare(
                "ClusterStats.to_dict()", sorted(set(cluster_keys)),
                golden.get("cluster_stats"), _CLUSTER_STATS_PATH, cluster,
            )

    def _compare(self, what, expected, golden_keys, path, module):
        if golden_keys is None:
            yield self._finding(
                path, 1,
                f"golden schema lacks the key list for {what}",
            )
            return
        missing = sorted(set(expected) - set(golden_keys))
        stale = sorted(set(golden_keys) - set(expected))
        if missing or stale:
            detail = []
            if missing:
                detail.append(
                    f"keys in code but not golden: {', '.join(missing)}"
                )
            if stale:
                detail.append(
                    f"keys in golden but not code: {', '.join(stale)}"
                )
            yield self._finding(
                path, 1,
                f"{what} drifted from {GOLDEN_SCHEMA_PATH} "
                f"({'; '.join(detail)}): renaming/removing fields needs a "
                f"STATS_SCHEMA_VERSION bump plus a regenerated golden; "
                f"added fields just need the golden refreshed",
            )

    def _finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(
            rule=self.rule_id, family=self.family,
            path=path, line=line, message=message,
        )
