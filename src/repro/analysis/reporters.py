"""Text and JSON reporters for lint results.

Both renderings are fully deterministic: findings arrive sorted by
(path, line, rule, message) from the engine, paths are repo-relative,
and nothing timestamps the report — so the JSON document is
byte-identical across identical runs, which CI relies on when it
archives ``lint_report.json`` as a build artifact.
"""

from __future__ import annotations

import json

from .engine import LintResult

__all__ = ["render_text", "render_json", "REPORT_FORMAT_VERSION"]

#: Bump when the JSON report's shape changes incompatibly.
REPORT_FORMAT_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per unsuppressed finding."""
    lines = []
    for finding in result.parse_errors:
        lines.append(
            f"{finding.path}:{finding.line}: [{finding.rule}] "
            f"{finding.message}"
        )
    for finding in result.unsuppressed:
        lines.append(
            f"{finding.path}:{finding.line}: [{finding.rule}] "
            f"{finding.message}"
        )
    n_bad = len(result.unsuppressed) + len(result.parse_errors)
    n_sup = len(result.suppressed)
    summary = (
        f"repro lint: {n_bad} finding(s) in {result.n_files} file(s) "
        f"scanned ({n_sup} suppressed, {len(result.rules)} rules)"
    )
    if lines:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order, repo-relative paths)."""
    def finding_row(finding, with_reason=False):
        row = {
            "family": finding.family,
            "line": finding.line,
            "message": finding.message,
            "path": finding.path,
            "rule": finding.rule,
        }
        if with_reason:
            row["reason"] = finding.reason
        return row

    doc = {
        "tool": "repro.analysis",
        "format_version": REPORT_FORMAT_VERSION,
        "rules": list(result.rules),
        "summary": {
            "files_scanned": result.n_files,
            "findings": len(result.unsuppressed),
            "parse_errors": len(result.parse_errors),
            "suppressed": len(result.suppressed),
        },
        "findings": [
            finding_row(f)
            for f in result.parse_errors + result.unsuppressed
        ],
        "suppressed": [
            finding_row(f, with_reason=True) for f in result.suppressed
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
