"""Pluggable request-to-replica routing policies.

Three policies, in increasing awareness of what a request will cost:

* ``round_robin`` — cycle over the active replicas, blind to load.
  The baseline every serious policy must beat.
* ``least_loaded`` — place on the replica with the most free
  reservation pages (ties break on the lowest replica index).  Page
  pressure is the admission bottleneck, so this is the natural
  memory-greedy policy.
* ``pruning_aware`` — score replicas by the request's *schedule-bound*
  cost estimate: worst-case KV pages from :func:`repro.serving.
  memory_pool.pruned_kv_bounds` (via the shard's page arithmetic) and
  end-to-end FLOPs from the serving :class:`~repro.serving.stats.
  CostModel` (:meth:`~repro.serving.engine.ServingEngine.
  request_flops_estimate`).  Each replica's score is the projected
  delay of the placement's *bottleneck resource*: the compute backlog
  ``(outstanding + request FLOPs) / flops_per_second`` versus the
  page-availability delay ``(outstanding page-seconds + reservation x
  service time) / shard pages`` — whichever is larger.  A heavily
  pruned request adds little to either term, so it lands wherever
  total backlog is lightest, packing onto replicas whose pages are
  busy; a dense request inflates the page term steeply and is steered
  to shards with free capacity.  Momentary fullness is deliberately
  *not* a hard disqualifier: a page-full replica about to free a
  large reservation can still beat a free-but-backlogged one (the
  delay projection, not an admit-now bit, decides — empirically this
  wins the TTFT tail; see ``benchmarks/bench_cluster_scaling.py``).

This is the ProxyAttn-style observation applied to placement instead
of kernels: sparsity estimates are cheap enough to drive scheduling
decisions — here, per-request cascade schedules bound KV and FLOP
cost tightly enough to route on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Set, Tuple

from ..serving.engine import ServingEngine
from ..serving.memory_pool import KVMemoryPool, PoolExhausted
from ..serving.request import Request

__all__ = ["ROUTING_POLICIES", "Replica", "ClusterRouter"]

ROUTING_POLICIES = ("round_robin", "least_loaded", "pruning_aware")


@dataclass
class Replica:
    """One serving replica: an engine bound to its KV pool shard."""

    index: int
    engine: ServingEngine
    shard: KVMemoryPool


@dataclass
class ClusterRouter:
    """Stateful request router over a set of replicas.

    The router is policy-pluggable (:data:`ROUTING_POLICIES`) and
    deterministic: given the same replica states and request stream it
    always makes the same placements.  It also keeps the fleet routing
    tally (``routed_counts``) for the cluster report.
    """

    policy: str = "round_robin"
    routed_counts: dict = field(default_factory=dict)
    _rr_cursor: int = 0
    #: Circuit breaker: replica indices whose heartbeat is currently
    #: suspected stale (see :class:`repro.faults.HeartbeatMonitor`).
    #: :meth:`choose` avoids open-breaker replicas while any healthy
    #: candidate exists, but falls back to the full candidate set when
    #: every candidate is suspected — the breaker degrades placement
    #: quality, never liveness.
    breaker_open: Set[int] = field(default_factory=set)
    #: Open transitions (closed -> open) since construction, for the
    #: fleet report.
    n_breaker_trips: int = 0
    #: Duck-typed observability hook: anything with a
    #: ``route_decision(request, scored, chosen)`` method (the cluster
    #: engine, when telemetry is on).  ``scored`` is the candidate list
    #: as ``(replica, pages_estimate, score)`` triples — the score is
    #: the policy's sort key (``None`` for round-robin, which does not
    #: score).
    observer: object = None

    def __post_init__(self) -> None:
        if self.policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.policy!r}; choose from "
                f"{ROUTING_POLICIES}"
            )

    def update_breaker(self, suspected: Iterable[int]) -> Tuple[list, list]:
        """Reconcile the breaker set with the current suspicion verdict.

        ``suspected`` is the set of replica indices whose heartbeat the
        failure detector currently distrusts.  Returns the transitions
        as ``(opened, closed)`` index lists (sorted), so the caller can
        emit one telemetry event per state change instead of one per
        poll.  Trips (closed -> open) are tallied in
        :attr:`n_breaker_trips`.
        """
        suspected = set(suspected)
        opened = sorted(suspected - self.breaker_open)
        closed = sorted(self.breaker_open - suspected)
        self.n_breaker_trips += len(opened)
        self.breaker_open = suspected
        return opened, closed

    def choose(self, request: Request, replicas: Sequence[Replica]) -> Replica:
        """Pick the replica this request is placed on.

        ``replicas`` must be the *active* set.  One
        :meth:`~repro.serving.engine.ServingEngine.
        placement_pages_estimate` call per replica both filters
        (``None``: that engine can never admit the request — worst-case
        reservation beyond the shard, or an optimistic floor plus
        headroom that can never fit) and prices the placement (the
        exact per-request page bill admission will charge in the
        replica's mode).  Load sensitivity under optimistic admission
        comes from the backlog terms the pruning-aware key adds —
        outstanding page-seconds and free reservation pages read
        per-sequence reservations that track *actual* usage there.
        Raises :class:`PoolExhausted` when no active replica can ever
        serve the request.
        """
        candidates = [
            (r, est)
            for r, est in (
                (r, r.engine.placement_pages_estimate(request))
                for r in replicas
            )
            if est is not None
        ]
        if not candidates:
            raise PoolExhausted(
                f"request {request.request_id} fits no active replica "
                f"(needs more pages than any remaining shard holds)"
            )
        if self.breaker_open:
            healthy = [
                cn for cn in candidates
                if cn[0].index not in self.breaker_open
            ]
            if healthy:
                candidates = healthy
        if self.policy == "round_robin":
            scored = [(r, est, None) for r, est in candidates]
            chosen = candidates[self._rr_cursor % len(candidates)][0]
            self._rr_cursor += 1
        elif self.policy == "least_loaded":
            # Score = pages free on the shard (higher is better; the
            # policy minimizes its negation, ties on replica index).
            scored = [
                (r, est, float(r.shard.free_reservation_pages))
                for r, est in candidates
            ]
            chosen = min(
                scored, key=lambda cn: (-cn[2], cn[0].index)
            )[0]
        else:  # pruning_aware
            # Score = projected bottleneck delay in seconds (lower is
            # better); computed once per candidate and reused for both
            # the choice and the observer record.
            scored = [
                (r, est, self._pruning_aware_key(request, r, est)[0])
                for r, est in candidates
            ]
            chosen = min(scored, key=lambda cn: (cn[2], cn[0].index))[0]
        self.routed_counts[chosen.index] = (
            self.routed_counts.get(chosen.index, 0) + 1
        )
        if self.observer is not None:
            self.observer.route_decision(request, scored, chosen)
        return chosen

    @staticmethod
    def _pruning_aware_key(
        request: Request, replica: Replica, need: int
    ) -> Tuple[float, int]:
        """Sort key: (projected bottleneck delay, index).

        Both resources a placement consumes are projected in seconds:
        the replica's compute backlog (outstanding + this request's
        schedule-bound FLOPs at the cost model's rate) and its
        page-availability delay (outstanding page-seconds plus this
        request's ``reservation x service time``, normalized by shard
        capacity).  The max of the two is the resource that would
        actually delay this request there.  Cheap pruned requests add
        little to either term, so they land wherever total backlog is
        lightest — including page-busy replicas; dense requests
        inflate the page term steeply and get steered to shards with
        free capacity.
        """
        engine = replica.engine
        rate = engine.cost.flops_per_second
        req_flops = engine.request_flops_estimate(request)
        compute_s = (engine.outstanding_flops() + req_flops) / rate
        page_s = (
            engine.outstanding_page_seconds()
            + need * req_flops / rate
        ) / replica.shard.n_pages
        return (max(compute_s, page_s), replica.index)
