"""Multi-replica serving: pruning-aware routing over a sharded KV pool.

SpAtten's cascade token/head pruning bounds every sequence's KV
footprint and arithmetic by its schedule — a signal the single-engine
:mod:`repro.serving` stack already uses for admission control.  This
package uses the same signal *across* engines: a cluster of serving
replicas behind a router whose ``pruning_aware`` policy places each
request by its schedule-bound KV-page and FLOP cost estimate, so cheap
heavily-pruned requests pack onto replicas whose pages are busy while
dense requests go where pages are free.

Layers of the subsystem
-----------------------

* :mod:`~repro.cluster.sharded_pool` — :class:`ShardedKVPool`:
  per-replica :class:`~repro.serving.memory_pool.KVMemoryPool` shards
  under one global page ledger, with per-replica budgets, replica
  ``drain()``/``fail()``, global occupancy views, and an ``audit()``
  that proves no sequence's pages are ever double-billed.
* :mod:`~repro.cluster.router` — :class:`ClusterRouter` with pluggable
  policies: ``round_robin``, ``least_loaded`` (free reservation
  pages), and ``pruning_aware`` (schedule-bound cost scoring from
  :func:`~repro.serving.memory_pool.pruned_kv_bounds` and the serving
  :class:`~repro.serving.stats.CostModel`).
* :mod:`~repro.cluster.engine` — :class:`ClusterEngine`: the
  event-driven driver merging arrivals, per-replica scheduler steps on
  parallel simulated timelines, and drain/fail events whose in-flight
  requests requeue through the router.
* :mod:`~repro.cluster.stats` — :class:`ClusterStats`: per-replica
  :class:`~repro.serving.stats.ServingStats` plus a fleet-level
  aggregate whose percentiles are recomputed from the pooled records.

Quick start
-----------

Run a heterogeneous trace over three replicas from the command line::

    PYTHONPATH=src python -m repro.cli serve-cluster --replicas 3 \\
        --policy pruning_aware --requests 24 --rate 600

or drive the cluster directly::

    from repro.cluster import ClusterEngine, ShardedKVPool
    from repro.workloads import heterogeneous_request_trace, TrafficClass

    pool = ShardedKVPool(config, total_budget_bytes=3 * 512 * 1024,
                         n_replicas=3)
    cluster = ClusterEngine(model, pool, policy="pruning_aware",
                            prefill_chunk=32,
                            drain_events=[(0.05, 1)])
    print(cluster.run(requests).table())

``benchmarks/bench_cluster_scaling.py`` sweeps replica count × routing
policy at a fixed *total* pool budget and archives the fleet scaling
and the pruning-aware-vs-round-robin TTFT comparison under
``benchmarks/results/``.
"""

from .engine import ClusterEngine
from .router import ROUTING_POLICIES, ClusterRouter, Replica
from .sharded_pool import ShardedKVPool
from .stats import ClusterStats

__all__ = [
    "ClusterEngine",
    "ClusterRouter",
    "ClusterStats",
    "Replica",
    "ROUTING_POLICIES",
    "ShardedKVPool",
]
