"""Sharded KV memory: per-replica pools under one global page ledger.

Every cluster replica owns a private :class:`~repro.serving.
memory_pool.KVMemoryPool` shard — admission control, page growth, and
pruning reclamation stay replica-local, exactly as in single-engine
serving.  The :class:`ShardedKVPool` layers a *global ledger* on top:

* the fleet's total page budget is split across shards (evenly by
  default, or per-replica via ``replica_budgets_bytes`` — heterogeneous
  replica sizes are a first-class configuration);
* global occupancy/reservation views aggregate the shards, and the
  cluster driver samples a *true* global allocation peak (simultaneous
  across shards, not a sum of per-shard peaks);
* :meth:`drain` / :meth:`fail` retire a shard from the active set so
  the router stops placing work on it; its in-flight sequences requeue
  through the router (see :class:`repro.cluster.engine.ClusterEngine`);
  :meth:`recover` re-activates an *empty* retired shard — a crashed
  replica rejoining the fleet re-registers with the ledger under the
  same audit that governed its departure;
* :meth:`audit` enforces the ledger invariants — every live sequence
  is billed by **exactly one** shard, per-shard reservation totals
  equal the sum of their per-sequence accounts, and retired shards
  hold nothing.  A drain/requeue bug that double-billed pages (freed
  on the drained shard *and* still reserved there, or reserved on two
  shards at once) fails the audit immediately.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import ModelConfig
from ..serving.memory_pool import KVMemoryPool, PoolExhausted

__all__ = ["ShardedKVPool"]


class ShardedKVPool:
    """Per-replica KV pools under one global page ledger.

    Args:
        model: geometry the pages are sized for (shared by all shards).
        total_budget_bytes: fleet-wide KV budget, split evenly across
            ``n_replicas`` shards.  Ignored when
            ``replica_budgets_bytes`` is given.
        n_replicas: number of shards (one per serving replica).
        page_tokens: cache columns per page, identical on every shard.
        replica_budgets_bytes: explicit per-replica budgets; overrides
            the even split (heterogeneous replica sizes).
    """

    def __init__(
        self,
        model: ModelConfig,
        total_budget_bytes: Optional[int] = None,
        n_replicas: Optional[int] = None,
        page_tokens: int = 16,
        replica_budgets_bytes: Optional[Sequence[int]] = None,
    ):
        if replica_budgets_bytes is not None:
            budgets = [int(b) for b in replica_budgets_bytes]
            if n_replicas is not None and n_replicas != len(budgets):
                raise ValueError(
                    f"n_replicas={n_replicas} disagrees with "
                    f"{len(budgets)} replica budgets"
                )
        else:
            if total_budget_bytes is None or n_replicas is None:
                raise ValueError(
                    "provide total_budget_bytes + n_replicas, or explicit "
                    "replica_budgets_bytes"
                )
            if n_replicas < 1:
                raise ValueError("n_replicas must be >= 1")
            budgets = [int(total_budget_bytes) // n_replicas] * n_replicas
        self.model = model
        self.page_tokens = page_tokens
        self.shards: List[KVMemoryPool] = [
            KVMemoryPool(model, budget, page_tokens) for budget in budgets
        ]
        self._active = [True] * len(self.shards)
        self._failed = [False] * len(self.shards)
        #: Duck-typed observability hook: anything with a
        #: ``ledger_transition(replica, kind)`` method (the cluster
        #: engine, when telemetry is on).  Same no-import pattern as
        #: :attr:`KVMemoryPool.observer`.
        self.observer = None

    # ------------------------------------------------------------------
    # Shard access / lifecycle
    # ------------------------------------------------------------------
    @property
    def n_replicas(self) -> int:
        return len(self.shards)

    def shard(self, replica: int) -> KVMemoryPool:
        return self.shards[self._check_index(replica)]

    def __getitem__(self, replica: int) -> KVMemoryPool:
        return self.shard(replica)

    def is_active(self, replica: int) -> bool:
        return self._active[self._check_index(replica)]

    def is_failed(self, replica: int) -> bool:
        return self._failed[self._check_index(replica)]

    @property
    def active_indices(self) -> List[int]:
        return [i for i, a in enumerate(self._active) if a]

    @property
    def n_active(self) -> int:
        return sum(self._active)

    def drain(self, replica: int) -> None:
        """Gracefully retire a shard: no new placements land on it.

        The caller (the cluster engine) is responsible for requeueing
        the replica's in-flight sequences *before* expecting the audit
        to see the shard empty.
        """
        replica = self._check_index(replica)
        if not self._active[replica]:
            raise ValueError(f"replica {replica} already drained or failed")
        self._active[replica] = False
        if self.observer is not None:
            self.observer.ledger_transition(replica, "drain")

    def fail(self, replica: int) -> None:
        """Abruptly retire a shard (simulated replica failure).

        Ledger-wise identical to :meth:`drain` — the failed shard's
        pages must still return to the ledger via requeue — but the
        shard is flagged failed for the fleet report.
        """
        self.drain(replica)
        self._failed[replica] = True
        if self.observer is not None:
            self.observer.ledger_transition(replica, "fail")

    def recover(self, replica: int) -> None:
        """Re-activate a retired shard (replica rejoin after a crash).

        The shard must be empty — a failed replica's in-flight
        sequences were requeued (and re-billed elsewhere) when it went
        down, so a rejoining shard starts from a clean ledger.  The
        rejoin clears the failed flag: the replica is a full member of
        the active set again and the router may place new work on it.
        """
        replica = self._check_index(replica)
        if self._active[replica]:
            raise ValueError(f"replica {replica} is already active")
        shard = self.shards[replica]
        if shard.reserved_pages or shard.allocated_pages:
            raise ValueError(
                f"replica {replica} cannot rejoin: its shard still holds "
                f"{shard.reserved_pages} reserved / "
                f"{shard.allocated_pages} allocated pages"
            )
        self._active[replica] = True
        self._failed[replica] = False
        if self.observer is not None:
            self.observer.ledger_transition(replica, "recover")

    def _check_index(self, replica: int) -> int:
        if not 0 <= replica < len(self.shards):
            raise IndexError(
                f"replica {replica} out of range (cluster has "
                f"{len(self.shards)} replicas)"
            )
        return replica

    # ------------------------------------------------------------------
    # Global ledger views
    # ------------------------------------------------------------------
    @property
    def total_pages(self) -> int:
        return sum(shard.n_pages for shard in self.shards)

    @property
    def reserved_pages(self) -> int:
        return sum(shard.reserved_pages for shard in self.shards)

    @property
    def allocated_pages(self) -> int:
        return sum(shard.allocated_pages for shard in self.shards)

    @property
    def free_reservation_pages(self) -> int:
        """Unreserved pages across *active* shards only.

        Retired shards' pages are stranded capacity: still in the
        budget, no longer placeable.
        """
        return sum(
            shard.free_reservation_pages
            for i, shard in enumerate(self.shards)
            if self._active[i]
        )

    @property
    def global_occupancy(self) -> float:
        """Fraction of the fleet budget backing live cache columns."""
        return self.allocated_pages / self.total_pages

    @property
    def reclaimed_pages(self) -> int:
        return sum(shard.reclaimed_pages for shard in self.shards)

    @property
    def reclaimed_tokens(self) -> int:
        return sum(shard.reclaimed_tokens for shard in self.shards)

    @property
    def n_preempted(self) -> int:
        """Fleet-wide preemptions (optimistic admission pool pressure)."""
        return sum(shard.n_preempted for shard in self.shards)

    @property
    def preempted_pages(self) -> int:
        """Pages returned to the ledger by preemption victims."""
        return sum(shard.preempted_pages for shard in self.shards)

    @property
    def n_sequences(self) -> int:
        return sum(shard.n_sequences for shard in self.shards)

    def ledger(self) -> Dict[str, object]:
        """Per-shard and fleet-total page accounting, as plain data."""
        rows = [
            {
                "replica": i,
                "active": self._active[i],
                "failed": self._failed[i],
                "pages": shard.n_pages,
                "reserved": shard.reserved_pages,
                "allocated": shard.allocated_pages,
                "reclaimed": shard.reclaimed_pages,
                "preempted": shard.n_preempted,
                "sequences": sorted(shard.tracked_sequences),
            }
            for i, shard in enumerate(self.shards)
        ]
        return {
            "shards": rows,
            "total_pages": self.total_pages,
            "reserved_pages": self.reserved_pages,
            "allocated_pages": self.allocated_pages,
        }

    def audit(self) -> None:
        """Enforce the global-ledger invariants; raises on violation.

        * every shard passes its own internal audit
          (:meth:`~repro.serving.memory_pool.KVMemoryPool.audit` —
          allocations and reservations fit, reserve-mode accounts never
          outgrow their bound, optimistic accounts bill exactly
          ``max(floor, allocated)``);
        * a sequence id is billed by at most one shard (no
          double-billed pages after a drain requeue or a preemption);
        * each shard's reservation total equals the sum of its
          per-sequence accounts;
        * retired (drained/failed) shards hold zero reservations and
          zero allocations once their requeue has landed.
        """
        owners: Dict[int, int] = {}
        for i, shard in enumerate(self.shards):
            shard.audit()
            for seq_id in shard.tracked_sequences:
                if seq_id in owners:
                    raise PoolExhausted(
                        f"ledger violation: sequence {seq_id} billed by "
                        f"replica {owners[seq_id]} and replica {i}"
                    )
                owners[seq_id] = i
            per_seq = sum(
                shard.reserved_pages_of(s) for s in shard.tracked_sequences
            )
            if per_seq != shard.reserved_pages:
                raise PoolExhausted(
                    f"ledger violation: replica {i} reserves "
                    f"{shard.reserved_pages} pages but its accounts sum to "
                    f"{per_seq}"
                )
            if not self._active[i] and (
                shard.reserved_pages or shard.allocated_pages
            ):
                raise PoolExhausted(
                    f"ledger violation: retired replica {i} still holds "
                    f"{shard.reserved_pages} reserved / "
                    f"{shard.allocated_pages} allocated pages"
                )
