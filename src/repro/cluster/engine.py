"""Multi-replica serving: N engines on parallel simulated timelines.

The :class:`ClusterEngine` runs one :class:`~repro.serving.engine.
ServingEngine` per replica, each over its own simulated clock (replicas
execute in parallel wall-time, so their timelines advance
independently), and merges three globally ordered event streams:

* **arrivals** — each request is routed at its arrival time by the
  :class:`~repro.cluster.router.ClusterRouter` policy, observing every
  replica's pool and backlog state at that moment;
* **replica steps** — the replica whose local clock is furthest behind
  executes its next scheduler iteration; idle replicas jump forward,
  capped at the next global event so no replica leapfrogs an arrival
  or drain it should have witnessed;
* **faults** — a validated, time-ordered schedule of
  :class:`~repro.faults.FaultEvent` records (scripted ``drain`` /
  ``fail`` / ``recover`` events plus an optional seeded
  :class:`~repro.faults.FaultPlan`).  At a drain/fail the replica's
  shard leaves the active set and everything it had in flight (queued,
  prefilling, *and* live sequences) releases its pages and re-routes
  through the router.  Records reset to their pre-admission state;
  greedy decoding is deterministic, so requeued requests commit the
  same token streams on their new replica, and the drain penalty lands
  where it belongs — in the queue-wait and TTFT tails.  A ``recover``
  re-registers the (empty) shard with the ledger and the replica takes
  traffic again; ``slow_start``/``slow_end`` bracket a transient
  straggler window (the replica's step times stretch by the event's
  factor); ``corrupt`` flips a stored KV-page checksum on the target
  shard — the owning engine detects the mismatch on its next step and
  quarantines + recomputes the sequence.  A requeued (or
  late-arriving) request that fits *no surviving replica* —
  admission-time validation only saw the replicas alive at start — is
  retried with exponential backoff while retry budget and deadline
  remain, then failed cleanly: its record is marked
  :attr:`~repro.serving.request.RequestStatus.FAILED`, its pages are
  already back in the ledger (the drain released them), and the run
  completes with the failure counted instead of dead-looping or
  crashing mid-flight;
* **retries** — placements deferred by the bounded
  retry-with-backoff path above fire at their scheduled time, re-route
  through the router, and observe any replicas that recovered in the
  interim (the self-healing path: crash -> requeue -> backoff ->
  rejoin -> placement succeeds).

When a heartbeat timeout is configured, a
:class:`~repro.faults.HeartbeatMonitor` watches per-replica step
activity on the simulated clock and the router's circuit breaker
(:attr:`~repro.cluster.router.ClusterRouter.breaker_open`) steers new
placements away from suspected-stale replicas — e.g. a straggler deep
inside a stretched step — while they lag, without ever blocking
placement when every candidate is suspected.

Replicas forward the engine's admission mode: with
``admission="optimistic"`` every replica admits against its shard's
*actual* usage plus headroom and preempts under pressure
(recompute-on-preempt; see :mod:`repro.serving.preemption`).  The
router prices each placement with the per-request bill that mode will
actually charge (:meth:`~repro.serving.engine.ServingEngine.
placement_pages_estimate`), while its load terms — free reservation
pages, outstanding page-seconds — read per-sequence reservations that
under optimistic admission track actual usage.

With one replica and no drains, the event loop degenerates to exactly
the plain engine's ``run()`` (which is itself built on the same
stepwise hooks): same admissions, same clock advances, same tokens,
same stats.  ``tests/test_cluster.py`` asserts this field by field.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import PruningConfig, QuantConfig
from ..faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    HeartbeatMonitor,
    validate_fault_events,
)
from ..nn.transformer import TransformerModel
from ..serving.degradation import DegradationPolicy
from ..serving.engine import ServingEngine
from ..serving.memory_pool import PoolExhausted
from ..serving.request import Request, RequestRecord, RequestStatus
from ..serving.stats import CostModel
from ..telemetry import NULL_TELEMETRY, Telemetry
from .router import Replica, ClusterRouter
from .sharded_pool import ShardedKVPool
from .stats import ClusterStats

__all__ = ["ClusterEngine"]


class ClusterEngine:
    """Route a shared arrival trace across N serving-engine replicas.

    Args:
        model: causal transformer shared by every replica.
        pool: the sharded KV pool (one shard per replica).
        policy: routing policy name, or pass a ready
            :class:`ClusterRouter` via ``router``.
        pruning: fleet-default cascade schedule (requests may override
            per-request via :attr:`~repro.serving.request.Request.
            pruning`).
        quant / cost_model / prefill_chunk / attention_backend /
        admission / numerics / preempt_policy / headroom_pages /
        sampler:
            forwarded to every replica's engine, identical semantics
            to :class:`~repro.serving.engine.ServingEngine`.  The
            ``numerics`` tier is fleet-wide: every replica runs the
            same rung of the ladder, and the fleet report carries it.
        drain_events: ``(time, replica_index)`` pairs — the replica is
            gracefully drained at that simulated time.
        fail_events: like ``drain_events`` but flags the replica as
            failed in the fleet report (ledger semantics identical:
            pages must return via requeue either way).
        recover_events: ``(time, replica_index)`` pairs — a previously
            drained/failed replica rejoins the fleet at that time.
            The combined schedule is validated as one event sequence
            (:func:`repro.faults.validate_fault_events`): drain ->
            recover -> fail on one replica is legal, overlapping
            retire events without an intervening recover are not.
        fault_plan: a seeded :class:`~repro.faults.FaultPlan` merged
            into the scripted events (crashes, recoveries, straggler
            windows, KV-page corruption strikes).
        heartbeat_timeout_s: enable heartbeat failure detection — a
            replica whose last observed step activity lags the routing
            clock by more than this opens its circuit breaker in the
            router until it is seen alive again.  ``None`` (default)
            disables the detector.
        deadline_s: per-request deadline, measured from arrival on the
            simulated clock.  Forwarded to every replica engine (a
            queued request past its deadline fails cleanly instead of
            admitting) and enforced on the cluster retry path (a retry
            that would fire past the deadline fails the request).
        retry_budget: placement retries granted to a request that
            momentarily fits no active replica (fleet-wide crash,
            every shard full).  Each retry backs off exponentially
            from ``retry_backoff_s``; exhaustion fails the request
            cleanly — never a dead loop.  0 (default) preserves
            fail-immediately semantics.
        retry_backoff_s: base backoff delay; retry ``k`` fires
            ``retry_backoff_s * 2**(k-1)`` after the failed attempt.
        degradation: graceful-degradation ladder forwarded to every
            replica engine (shed best-effort load, then escalate
            queued head-of-line requests to a more aggressive cascade
            schedule, before the preemption backstop).
        telemetry: shared :class:`repro.telemetry.Telemetry` sinks.
            Every replica engine emits into the same tracer/registry
            under its own ``replicaN`` process name; the cluster adds
            fleet-level events — scored router decisions, ledger
            drain/fail transitions, global occupancy counters — under
            the ``fleet`` process.  ``None`` (default) is fully inert.
        audit_every: run the *global* ledger audit
            (:meth:`ShardedKVPool.audit`) every N replica step events,
            surfaced as ``repro_pool_audits_total{engine="fleet"}``.
            Replica engines keep their default audit behaviour.
    """

    def __init__(
        self,
        model: TransformerModel,
        pool: ShardedKVPool,
        policy: str = "round_robin",
        pruning: Optional[PruningConfig] = None,
        quant: Optional[QuantConfig] = None,
        cost_model: Optional[CostModel] = None,
        prefill_chunk: Optional[int] = None,
        attention_backend: str = "packed",
        admission: str = "reserve",
        numerics: str = "exact",
        preempt_policy: str = "lowest_priority",
        headroom_pages: int = 0,
        sampler=None,
        router: Optional[ClusterRouter] = None,
        drain_events: Sequence[Tuple[float, int]] = (),
        fail_events: Sequence[Tuple[float, int]] = (),
        recover_events: Sequence[Tuple[float, int]] = (),
        fault_plan: Optional[FaultPlan] = None,
        heartbeat_timeout_s: Optional[float] = None,
        deadline_s: Optional[float] = None,
        retry_budget: int = 0,
        retry_backoff_s: float = 0.05,
        degradation: Optional[DegradationPolicy] = None,
        telemetry: Optional[Telemetry] = None,
        audit_every: Optional[int] = None,
        slo: Optional[object] = None,
    ):
        if audit_every is not None and audit_every < 1:
            raise ValueError("audit_every must be >= 1, or None to disable")
        if retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if retry_backoff_s <= 0:
            raise ValueError("retry_backoff_s must be positive")
        self.model = model
        self.pool = pool
        self.admission = admission
        self.numerics = numerics
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.audit_every = audit_every
        #: Optional SLO policy (:class:`repro.insight.SLOPolicy`), held
        #: by duck type (no import edge on the analysis layer) and
        #: evaluated read-only over the fleet's pooled records at the
        #: end of :meth:`run` — per-replica stats deliberately carry no
        #: SLO verdicts, a partial fleet view would misattribute them.
        self.slo = slo
        self.router = router if router is not None else ClusterRouter(policy)
        if self.telemetry.active:
            self.router.observer = self
            self.pool.observer = self
        self.replicas: List[Replica] = [
            Replica(
                index=i,
                engine=ServingEngine(
                    model,
                    pool.shard(i),
                    pruning=pruning,
                    quant=quant,
                    cost_model=cost_model,
                    sampler=sampler,
                    prefill_chunk=prefill_chunk,
                    attention_backend=attention_backend,
                    admission=admission,
                    numerics=numerics,
                    preempt_policy=preempt_policy,
                    headroom_pages=headroom_pages,
                    deadline_s=deadline_s,
                    degradation=degradation,
                    name=f"replica{i}",
                    telemetry=telemetry,
                ),
                shard=pool.shard(i),
            )
            for i in range(pool.n_replicas)
        ]
        events = [
            FaultEvent(float(t), int(idx), "drain")
            for t, idx in drain_events
        ]
        events += [
            FaultEvent(float(t), int(idx), "fail") for t, idx in fail_events
        ]
        events += [
            FaultEvent(float(t), int(idx), "recover")
            for t, idx in recover_events
        ]
        if fault_plan is not None:
            if fault_plan.n_replicas != pool.n_replicas:
                raise ValueError(
                    f"fault plan spans {fault_plan.n_replicas} replicas, "
                    f"fleet has {pool.n_replicas}"
                )
            events += list(fault_plan.events)
        self._fault_events = validate_fault_events(events, pool.n_replicas)
        self.deadline_s = deadline_s
        self.retry_budget = retry_budget
        self.retry_backoff_s = retry_backoff_s
        self._monitor = (
            HeartbeatMonitor(heartbeat_timeout_s)
            if heartbeat_timeout_s is not None else None
        )
        self.n_requeued = 0
        self.n_recovered = 0
        #: Crash-to-rejoin repair times (``recover`` minus the matching
        #: retire), for the fleet MTTR report.
        self._mttr_samples: List[float] = []
        self._down_since: Dict[int, float] = {}
        #: ``(time, n_active)`` change points of the active-replica
        #: count, integrated into the availability metric at the end
        #: of the run (segments past the makespan are clamped off).
        self._activity_timeline: List[Tuple[float, int]] = []
        #: Pending placement retries as a ``(retry_at, request_id,
        #: request, record)`` min-heap (ids are unique, so ordering
        #: never compares payloads).
        self._retries: List[tuple] = []
        # Fleet telemetry bookkeeping: the simulated time of the event
        # being processed (router/ledger observer callbacks have no
        # time argument of their own) and the replica-step counter the
        # periodic global audit runs on.
        self._event_time = 0.0
        self._steps = 0
        #: Request ids failed cleanly because no surviving replica
        #: could ever hold their reservation (mid-run drains strand
        #: work that admission-time validation accepted).
        self.failed_requests: List[int] = []

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ClusterStats:
        """Serve a whole arrival trace across the fleet; returns stats."""
        ids = [r.request_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ValueError("request_ids must be unique")
        max_seq_len = self.model.config.max_seq_len
        for request in requests:
            if request.total_len > max_seq_len:
                raise ValueError(
                    f"request {request.request_id} spans "
                    f"{request.total_len} tokens (prompt + max_new), model "
                    f"max_seq_len is {max_seq_len}"
                )
            if not any(
                replica.engine.can_ever_admit(request)
                for replica in self.replicas
                if self.pool.is_active(replica.index)
            ):
                raise PoolExhausted(
                    f"request {request.request_id} fits no replica shard: "
                    f"it can never be admitted anywhere"
                )
        records: Dict[int, RequestRecord] = {
            r.request_id: RequestRecord(r) for r in requests
        }
        for replica in self.replicas:
            replica.engine.start()
            if self._monitor is not None:
                self._monitor.note_alive(replica.index, 0.0)

        arrivals = deque(
            sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        )
        faults = FaultInjector(self._fault_events, self.pool.n_replicas)
        self._retries = []
        self._activity_timeline = [(0.0, self.pool.n_active)]
        occupancy_samples: List[float] = []
        occupancy_peak = 0.0
        last_event_time = 0.0
        inf = math.inf

        # Global event precedence on time ties: fault <= retry <=
        # arrival <= step.  Faults fire first so a retry or arrival at
        # the same instant already sees the new fleet shape; steps go
        # last so no replica leapfrogs an event it should witness.
        while True:
            busy = [r for r in self.replicas if r.engine.has_work]
            if (not arrivals and not faults and not self._retries
                    and not busy):
                break
            t_fault = faults.next_time
            t_retry = self._retries[0][0] if self._retries else inf
            t_arrival = arrivals[0].arrival_time if arrivals else inf
            t_step = min(r.engine.now for r in busy) if busy else inf

            if t_fault <= t_retry and t_fault <= t_arrival \
                    and t_fault <= t_step:
                # Fault events are administrative: they must not
                # advance any clock or stretch the makespan (requeued
                # work extends the *receiving* replicas' timelines
                # instead), so they fire even after all work finished.
                self._fire_fault(faults.pop())
            elif t_retry <= t_arrival and t_retry <= t_step:
                t, _rid, request, record = heapq.heappop(self._retries)
                self._event_time = t
                self._route(request, record, available=t)
                last_event_time = max(last_event_time, t)
            elif t_arrival <= t_step:
                request = arrivals.popleft()
                self._event_time = request.arrival_time
                self._route(
                    request, records[request.request_id],
                    available=request.arrival_time,
                )
                last_event_time = max(last_event_time, request.arrival_time)
            else:
                horizon = min(t_arrival, t_fault, t_retry)
                replica = min(busy, key=lambda r: (r.engine.now, r.index))
                step_start = replica.engine.now
                replica.engine.step(
                    horizon=None if horizon == inf else horizon
                )
                if self._monitor is not None:
                    self._monitor.note_step(
                        replica.index, step_start, replica.engine.now
                    )
                occ = self.pool.global_occupancy
                occupancy_samples.append(occ)
                occupancy_peak = max(occupancy_peak, occ)
                last_event_time = max(last_event_time, replica.engine.now)
                self._event_time = replica.engine.now
                self._note_fleet_step(replica.engine.now)

        self.pool.audit()
        replica_stats = [r.engine.finish() for r in self.replicas]
        makespan = max(
            [last_event_time] + [r.engine.now for r in self.replicas]
        )
        mttr = (
            sum(self._mttr_samples) / len(self._mttr_samples)
            if self._mttr_samples else float("nan")
        )
        stats = ClusterStats.from_run(
            policy=self.router.policy,
            admission=self.admission,
            numerics=self.numerics,
            records=[records[i] for i in sorted(records)],
            replica_stats=replica_stats,
            makespan_s=makespan,
            global_occupancy_samples=occupancy_samples,
            global_occupancy_peak=occupancy_peak,
            total_pages=self.pool.total_pages,
            page_tokens=self.pool.page_tokens,
            reclaimed_pages=self.pool.reclaimed_pages,
            reclaimed_tokens=self.pool.reclaimed_tokens,
            n_active_replicas=self.pool.n_active,
            n_drained=sum(
                not self.pool.is_active(i) and not self.pool.is_failed(i)
                for i in range(self.pool.n_replicas)
            ),
            n_failed=sum(
                self.pool.is_failed(i) for i in range(self.pool.n_replicas)
            ),
            n_requeued=self.n_requeued,
            # Count from the records, not self.failed_requests: deadline
            # expiries and degradation sheds fail requests *inside* a
            # replica engine, never passing through the router's failure
            # path.
            n_failed_requests=sum(
                r.status is RequestStatus.FAILED for r in records.values()
            ),
            routed_counts=[
                self.router.routed_counts.get(i, 0)
                for i in range(self.pool.n_replicas)
            ],
            n_recovered=self.n_recovered,
            n_retries=sum(r.n_retries for r in records.values()),
            n_breaker_trips=self.router.n_breaker_trips,
            availability=self._availability(makespan),
            mttr_s=mttr,
        )
        if self.slo is not None:
            stats.slo = self.slo.evaluate_records(
                [records[i] for i in sorted(records)], makespan_s=makespan
            ).to_dict()
        return stats

    # ------------------------------------------------------------------
    def _route(
        self,
        request: Request,
        record: RequestRecord,
        available: float,
    ) -> bool:
        """Place one request on an active replica, or retry/fail it.

        Returns ``False`` when no active replica can hold the request
        right now (every fitting shard was drained mid-run, or the
        whole fleet retired).  With retry budget left — and the
        deadline, if any, not yet blown — the placement is re-attempted
        after an exponential backoff, so work displaced by a crash can
        land on a replica that recovers in the meantime.  Exhaustion
        fails the request cleanly: its pages are already back in the
        ledger — a drain releases before requeueing — so the record is
        marked FAILED and kept for the report, the ledger audit stays
        clean, and the event loop moves on instead of raising with
        other requests still in flight.
        """
        active = [
            r for r in self.replicas if self.pool.is_active(r.index)
        ]
        replica = None
        self._event_time = available
        if self._monitor is not None:
            self._update_breaker(available)
        if active:
            try:
                replica = self.router.choose(request, active)
            except PoolExhausted:
                replica = None
        if replica is None:
            return self._handle_unplaced(request, record, available)
        replica.engine.submit(request, record, available_time=available)
        return True

    def _handle_unplaced(
        self, request: Request, record: RequestRecord, available: float
    ) -> bool:
        """Retry-with-backoff bookkeeping for a failed placement."""
        if record.n_retries < self.retry_budget:
            record.n_retries += 1
            retry_at = available + (
                self.retry_backoff_s * 2.0 ** (record.n_retries - 1)
            )
            deadline = (
                request.arrival_time + self.deadline_s
                if self.deadline_s is not None else math.inf
            )
            if retry_at <= deadline:
                heapq.heappush(
                    self._retries,
                    (retry_at, request.request_id, request, record),
                )
                tel = self.telemetry
                if tel.tracer is not None:
                    tel.tracer.instant(
                        "route_retry", available, "fleet", "router",
                        request_id=request.request_id,
                        attempt=record.n_retries, retry_at=retry_at,
                    )
                if tel.metrics is not None:
                    tel.metrics.counter(
                        "repro_route_retries_total", engine="fleet"
                    ).inc()
                return False
            reason = "deadline"
        elif self.retry_budget > 0:
            reason = "retry_budget"
        else:
            reason = "unplaceable"
        self._fail_request(request, record, available, reason)
        return False

    def _fail_request(
        self,
        request: Request,
        record: RequestRecord,
        t: float,
        reason: str,
    ) -> None:
        # repro: allow[obs-span-balance] -- an unplaced request holds no
        # open lifecycle span (it never reached a replica queue); its
        # terminal marker is the route_failed instant below, and latency
        # attribution books its whole life as retry backoff.
        record.status = RequestStatus.FAILED
        record.failure = reason
        self.failed_requests.append(request.request_id)
        tel = self.telemetry
        if tel.tracer is not None:
            tel.tracer.instant(
                "route_failed", t, "fleet", "router",
                request_id=request.request_id, reason=reason,
                arrival_time=request.arrival_time,
            )
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_requests_failed_total", engine="fleet"
            ).inc()

    def _update_breaker(self, t: float) -> None:
        """Reconcile the router's circuit breaker at routing time.

        A replica is suspected when it has work in flight but its last
        observed step activity lags ``t`` by more than the heartbeat
        timeout — the signature of a straggler deep inside one
        stretched step.  Idle replicas are never suspected (no work,
        no heartbeat to miss).
        """
        suspected = {
            r.index for r in self.replicas
            if self.pool.is_active(r.index) and r.engine.has_work
            and self._monitor.suspected(r.index, t)
        }
        opened, closed = self.router.update_breaker(suspected)
        tel = self.telemetry
        if tel.tracer is not None:
            for idx in opened:
                tel.tracer.instant(
                    "breaker_open", t, "fleet", "router", replica=idx,
                )
            for idx in closed:
                tel.tracer.instant(
                    "breaker_close", t, "fleet", "router", replica=idx,
                )
        if opened and tel.metrics is not None:
            tel.metrics.counter(
                "repro_breaker_trips_total", engine="fleet"
            ).inc(len(opened))

    # ------------------------------------------------------------------
    # Fault events
    # ------------------------------------------------------------------
    def _fire_fault(self, event: FaultEvent) -> None:
        """Dispatch one fault event at its simulated firing time."""
        self._event_time = event.time
        if event.kind in ("drain", "fail"):
            self._retire_replica(event.replica, event.time, event.kind)
        elif event.kind == "recover":
            self._recover_replica(event.replica, event.time)
        elif event.kind == "slow_start":
            self._set_straggler(event.replica, event.time, event.factor)
        elif event.kind == "slow_end":
            self._set_straggler(event.replica, event.time, 1.0)
        else:  # corrupt
            self._inject_corruption(event)

    def _recover_replica(self, idx: int, t: float) -> None:
        """Rejoin a retired replica at simulated time ``t``.

        The shard re-registers with the global ledger (it must be
        empty — the retire requeued everything it held) and the router
        may place new work on it immediately.  The engine is *not*
        restarted: its records, counters, and clock survive the
        downtime, so the replica's own report spans the whole run, and
        an idle rejoined clock does not stretch the makespan (new work
        jumps it forward exactly like any idle replica).
        """
        self.pool.recover(idx)
        self.n_recovered += 1
        down = self._down_since.pop(idx, None)
        if down is not None:
            self._mttr_samples.append(t - down)
        self._activity_timeline.append((t, self.pool.n_active))
        if self._monitor is not None:
            self._monitor.note_alive(idx, t)
        tel = self.telemetry
        if tel.tracer is not None:
            tel.tracer.instant(
                "replica_recover", t, "fleet", "scheduler", replica=idx,
                downtime_s=(None if down is None else round(t - down, 9)),
            )
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_replica_recoveries_total", engine="fleet"
            ).inc()

    def _set_straggler(self, idx: int, t: float, factor: float) -> None:
        """Open (factor > 1) or close (factor = 1) a straggler window."""
        self.replicas[idx].engine.set_slowdown(factor)
        tel = self.telemetry
        name = "straggler_start" if factor > 1.0 else "straggler_end"
        if tel.tracer is not None:
            tel.tracer.instant(
                name, t, "fleet", "faults", replica=idx, factor=factor,
            )
        if factor > 1.0 and tel.metrics is not None:
            tel.metrics.counter(
                "repro_straggler_windows_total", engine="fleet"
            ).inc()

    def _inject_corruption(self, event: FaultEvent) -> None:
        """Flip one stored KV-page checksum on the target shard.

        The victim is chosen deterministically from the event's
        ``u_seq``/``u_page`` coordinates over the sequences (sorted by
        id) and pages resident when the event fires; an empty or
        retired shard makes the strike a no-op.  Detection is the
        owning engine's job: its next step sees the pool's corruption
        counter move, verifies checksums, and quarantines + recomputes
        the victim (see ``ServingEngine._quarantine_corrupted``).
        """
        idx = event.replica
        shard = self.pool.shard(idx)
        victim = None
        if self.pool.is_active(idx):
            seqs = sorted(shard.tracked_sequences)
            if seqs:
                seq_id = seqs[int(event.u_seq * len(seqs))]
                pairs = [
                    (layer, page)
                    for layer, n_pages in enumerate(
                        shard.allocated_pages_per_layer(seq_id)
                    )
                    for page in range(n_pages)
                ]
                if pairs:
                    layer, page = pairs[int(event.u_page * len(pairs))]
                    shard.corrupt_page(seq_id, layer, page)
                    victim = (seq_id, layer, page)
        tel = self.telemetry
        if tel.tracer is not None:
            args = {"replica": idx}
            if victim is not None:
                args.update(
                    seq_id=victim[0], layer=victim[1], page=victim[2]
                )
            tel.tracer.instant(
                "corruption_injected" if victim else "corruption_noop",
                event.time, "fleet", "faults", **args,
            )
        if victim is not None and tel.metrics is not None:
            tel.metrics.counter(
                "repro_corruptions_injected_total", engine="fleet"
            ).inc()

    def _availability(self, makespan: float) -> float:
        """Time-averaged active-replica fraction over the makespan."""
        if makespan <= 0:
            return 1.0
        integral = 0.0
        last_t, last_n = self._activity_timeline[0]
        for t, n in self._activity_timeline[1:]:
            t = min(t, makespan)
            if t > last_t:
                integral += last_n * (t - last_t)
                last_t = t
            last_n = n
        if last_t < makespan:
            integral += last_n * (makespan - last_t)
        return integral / (self.pool.n_replicas * makespan)

    def _retire_replica(self, idx: int, t: float, kind: str) -> None:
        """Drain or fail a replica at simulated time ``t``; requeue.

        The shard leaves the active set *before* the requeue is routed,
        so none of the displaced requests can land back on it.  Requeue
        availability is ``max(t, replica clock)`` — a replica already
        mid-step past ``t`` hands its work over when that step would
        have been interrupted, never in the simulated past.  The
        drained replica's own clock is left untouched: a retire event
        landing after its work finished must not inflate its makespan
        (the event loop only fires a retire once every *busy* replica
        clock has reached ``t``, so a replica with work in flight is
        already at or past the drain time).
        """
        replica = self.replicas[idx]
        self._event_time = t
        if kind == "fail":
            self.pool.fail(idx)
        else:
            self.pool.drain(idx)
        self._down_since[idx] = t
        self._activity_timeline.append((t, self.pool.n_active))
        requeued = replica.engine.drain()
        self.n_requeued += len(requeued)
        available = max(t, replica.engine.now)
        tel = self.telemetry
        if tel.tracer is not None:
            tel.tracer.instant(
                f"replica_{kind}", available, "fleet", "scheduler",
                replica=idx, n_requeued=len(requeued),
            )
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_replica_retirements_total", engine="fleet", kind=kind
            ).inc()
            tel.metrics.counter(
                "repro_requests_requeued_total", engine="fleet"
            ).inc(len(requeued))
        for request, record in requeued:
            self._route(request, record, available=available)

    # ------------------------------------------------------------------
    # Fleet telemetry (router / ledger observer hooks + step samples)
    # ------------------------------------------------------------------
    def route_decision(self, request: Request, scored, chosen) -> None:
        """Observer hook the router calls with its scored candidates.

        ``scored`` is ``(replica, pages_estimate, score)`` per active
        candidate; the score is the policy's sort key (``None`` for
        round-robin).  Recorded under the ``fleet`` process so a trace
        shows *why* each request landed where it did.
        """
        tel = self.telemetry
        if tel.tracer is not None:
            args = {
                f"replica{r.index}": (
                    est if score is None else round(float(score), 9)
                )
                for r, est, score in scored
            }
            tel.tracer.instant(
                "routed", self._event_time, "fleet", "router",
                request_id=request.request_id, chosen=chosen.index,
                policy=self.router.policy, **args,
            )
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_requests_routed_total", engine="fleet",
                replica=str(chosen.index),
            ).inc()

    def ledger_transition(self, replica: int, kind: str) -> None:
        """Observer hook the sharded ledger calls on drain/fail."""
        tel = self.telemetry
        if tel.tracer is not None:
            tel.tracer.instant(
                f"ledger_{kind}", self._event_time, "fleet", "ledger",
                replica=replica,
            )
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_ledger_transitions_total", engine="fleet", kind=kind
            ).inc()

    def _note_fleet_step(self, now: float) -> None:
        """Per-replica-step fleet bookkeeping: periodic global audit
        plus a fleet-wide pool counter sample."""
        self._steps += 1
        tel = self.telemetry
        if self.audit_every and self._steps % self.audit_every == 0:
            self.pool.audit()
            if tel.metrics is not None:
                tel.metrics.counter(
                    "repro_pool_audits_total", engine="fleet"
                ).inc()
        if tel.tracer is not None:
            tel.tracer.counter(
                "fleet_pool", now, "fleet",
                allocated_pages=self.pool.allocated_pages,
                reserved_pages=self.pool.reserved_pages,
                reclaimed_pages=self.pool.reclaimed_pages,
                active_replicas=self.pool.n_active,
            )
        if tel.metrics is not None:
            tel.metrics.gauge(
                "repro_pool_allocated_pages", engine="fleet"
            ).set(self.pool.allocated_pages)
            tel.metrics.gauge(
                "repro_active_replicas", engine="fleet"
            ).set(self.pool.n_active)
