"""Multi-replica serving: N engines on parallel simulated timelines.

The :class:`ClusterEngine` runs one :class:`~repro.serving.engine.
ServingEngine` per replica, each over its own simulated clock (replicas
execute in parallel wall-time, so their timelines advance
independently), and merges three globally ordered event streams:

* **arrivals** — each request is routed at its arrival time by the
  :class:`~repro.cluster.router.ClusterRouter` policy, observing every
  replica's pool and backlog state at that moment;
* **replica steps** — the replica whose local clock is furthest behind
  executes its next scheduler iteration; idle replicas jump forward,
  capped at the next global event so no replica leapfrogs an arrival
  or drain it should have witnessed;
* **drains/fails** — at the scheduled time the replica's shard leaves
  the active set and everything it had in flight (queued, prefilling,
  *and* live sequences) releases its pages and re-routes through the
  router.  Records reset to their pre-admission state; greedy decoding
  is deterministic, so requeued requests commit the same token streams
  on their new replica, and the drain penalty lands where it belongs —
  in the queue-wait and TTFT tails.  A requeued (or late-arriving)
  request that fits *no surviving replica* — admission-time validation
  only saw the replicas alive at start — is failed cleanly: its record
  is marked :attr:`~repro.serving.request.RequestStatus.FAILED`, its
  pages are already back in the ledger (the drain released them), and
  the run completes with the failure counted instead of dead-looping
  or crashing mid-flight.

Replicas forward the engine's admission mode: with
``admission="optimistic"`` every replica admits against its shard's
*actual* usage plus headroom and preempts under pressure
(recompute-on-preempt; see :mod:`repro.serving.preemption`).  The
router prices each placement with the per-request bill that mode will
actually charge (:meth:`~repro.serving.engine.ServingEngine.
placement_pages_estimate`), while its load terms — free reservation
pages, outstanding page-seconds — read per-sequence reservations that
under optimistic admission track actual usage.

With one replica and no drains, the event loop degenerates to exactly
the plain engine's ``run()`` (which is itself built on the same
stepwise hooks): same admissions, same clock advances, same tokens,
same stats.  ``tests/test_cluster.py`` asserts this field by field.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import PruningConfig, QuantConfig
from ..nn.transformer import TransformerModel
from ..serving.engine import ServingEngine
from ..serving.memory_pool import PoolExhausted
from ..serving.request import Request, RequestRecord, RequestStatus
from ..serving.stats import CostModel
from ..telemetry import NULL_TELEMETRY, Telemetry
from .router import Replica, ClusterRouter
from .sharded_pool import ShardedKVPool
from .stats import ClusterStats

__all__ = ["ClusterEngine"]


class ClusterEngine:
    """Route a shared arrival trace across N serving-engine replicas.

    Args:
        model: causal transformer shared by every replica.
        pool: the sharded KV pool (one shard per replica).
        policy: routing policy name, or pass a ready
            :class:`ClusterRouter` via ``router``.
        pruning: fleet-default cascade schedule (requests may override
            per-request via :attr:`~repro.serving.request.Request.
            pruning`).
        quant / cost_model / prefill_chunk / attention_backend /
        admission / preempt_policy / headroom_pages / sampler:
            forwarded to every replica's engine, identical semantics
            to :class:`~repro.serving.engine.ServingEngine`.
        drain_events: ``(time, replica_index)`` pairs — the replica is
            gracefully drained at that simulated time.
        fail_events: like ``drain_events`` but flags the replica as
            failed in the fleet report (ledger semantics identical:
            pages must return via requeue either way).
        telemetry: shared :class:`repro.telemetry.Telemetry` sinks.
            Every replica engine emits into the same tracer/registry
            under its own ``replicaN`` process name; the cluster adds
            fleet-level events — scored router decisions, ledger
            drain/fail transitions, global occupancy counters — under
            the ``fleet`` process.  ``None`` (default) is fully inert.
        audit_every: run the *global* ledger audit
            (:meth:`ShardedKVPool.audit`) every N replica step events,
            surfaced as ``repro_pool_audits_total{engine="fleet"}``.
            Replica engines keep their default audit behaviour.
    """

    def __init__(
        self,
        model: TransformerModel,
        pool: ShardedKVPool,
        policy: str = "round_robin",
        pruning: Optional[PruningConfig] = None,
        quant: Optional[QuantConfig] = None,
        cost_model: Optional[CostModel] = None,
        prefill_chunk: Optional[int] = None,
        attention_backend: str = "packed",
        admission: str = "reserve",
        preempt_policy: str = "lowest_priority",
        headroom_pages: int = 0,
        sampler=None,
        router: Optional[ClusterRouter] = None,
        drain_events: Sequence[Tuple[float, int]] = (),
        fail_events: Sequence[Tuple[float, int]] = (),
        telemetry: Optional[Telemetry] = None,
        audit_every: Optional[int] = None,
    ):
        if audit_every is not None and audit_every < 1:
            raise ValueError("audit_every must be >= 1, or None to disable")
        self.model = model
        self.pool = pool
        self.admission = admission
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.audit_every = audit_every
        self.router = router if router is not None else ClusterRouter(policy)
        if self.telemetry.active:
            self.router.observer = self
            self.pool.observer = self
        self.replicas: List[Replica] = [
            Replica(
                index=i,
                engine=ServingEngine(
                    model,
                    pool.shard(i),
                    pruning=pruning,
                    quant=quant,
                    cost_model=cost_model,
                    sampler=sampler,
                    prefill_chunk=prefill_chunk,
                    attention_backend=attention_backend,
                    admission=admission,
                    preempt_policy=preempt_policy,
                    headroom_pages=headroom_pages,
                    name=f"replica{i}",
                    telemetry=telemetry,
                ),
                shard=pool.shard(i),
            )
            for i in range(pool.n_replicas)
        ]
        events = [(float(t), int(idx), "drain") for t, idx in drain_events]
        events += [(float(t), int(idx), "fail") for t, idx in fail_events]
        for t, idx, _kind in events:
            if not 0 <= idx < pool.n_replicas:
                raise ValueError(f"drain/fail targets unknown replica {idx}")
            if t < 0:
                raise ValueError("drain/fail times must be non-negative")
        if len({idx for _, idx, _ in events}) != len(events):
            raise ValueError("each replica can be drained/failed once")
        self._retire_events = sorted(events)
        self.n_requeued = 0
        # Fleet telemetry bookkeeping: the simulated time of the event
        # being processed (router/ledger observer callbacks have no
        # time argument of their own) and the replica-step counter the
        # periodic global audit runs on.
        self._event_time = 0.0
        self._steps = 0
        #: Request ids failed cleanly because no surviving replica
        #: could ever hold their reservation (mid-run drains strand
        #: work that admission-time validation accepted).
        self.failed_requests: List[int] = []

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ClusterStats:
        """Serve a whole arrival trace across the fleet; returns stats."""
        ids = [r.request_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ValueError("request_ids must be unique")
        max_seq_len = self.model.config.max_seq_len
        for request in requests:
            if request.total_len > max_seq_len:
                raise ValueError(
                    f"request {request.request_id} spans "
                    f"{request.total_len} tokens (prompt + max_new), model "
                    f"max_seq_len is {max_seq_len}"
                )
            if not any(
                replica.engine.can_ever_admit(request)
                for replica in self.replicas
                if self.pool.is_active(replica.index)
            ):
                raise PoolExhausted(
                    f"request {request.request_id} fits no replica shard: "
                    f"it can never be admitted anywhere"
                )
        records: Dict[int, RequestRecord] = {
            r.request_id: RequestRecord(r) for r in requests
        }
        for replica in self.replicas:
            replica.engine.start()

        arrivals = deque(
            sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        )
        retires = deque(self._retire_events)
        occupancy_samples: List[float] = []
        occupancy_peak = 0.0
        last_event_time = 0.0
        inf = math.inf

        while True:
            busy = [r for r in self.replicas if r.engine.has_work]
            if not arrivals and not retires and not busy:
                break
            t_arrival = arrivals[0].arrival_time if arrivals else inf
            t_retire = retires[0][0] if retires else inf
            t_step = min(r.engine.now for r in busy) if busy else inf

            if t_retire <= t_arrival and t_retire <= t_step:
                t, idx, kind = retires.popleft()
                # Retiring an already-idle replica is an administrative
                # event: it must not advance any clock or stretch the
                # makespan (requeued work extends the *receiving*
                # replicas' timelines instead).
                self._retire_replica(idx, t, kind)
            elif t_arrival <= t_step:
                request = arrivals.popleft()
                self._event_time = request.arrival_time
                self._route(
                    request, records[request.request_id],
                    available=request.arrival_time,
                )
                last_event_time = max(last_event_time, request.arrival_time)
            else:
                horizon = min(t_arrival, t_retire)
                replica = min(busy, key=lambda r: (r.engine.now, r.index))
                replica.engine.step(
                    horizon=None if horizon == inf else horizon
                )
                occ = self.pool.global_occupancy
                occupancy_samples.append(occ)
                occupancy_peak = max(occupancy_peak, occ)
                last_event_time = max(last_event_time, replica.engine.now)
                self._event_time = replica.engine.now
                self._note_fleet_step(replica.engine.now)

        self.pool.audit()
        replica_stats = [r.engine.finish() for r in self.replicas]
        makespan = max(
            [last_event_time] + [r.engine.now for r in self.replicas]
        )
        return ClusterStats.from_run(
            policy=self.router.policy,
            admission=self.admission,
            records=[records[i] for i in sorted(records)],
            replica_stats=replica_stats,
            makespan_s=makespan,
            global_occupancy_samples=occupancy_samples,
            global_occupancy_peak=occupancy_peak,
            total_pages=self.pool.total_pages,
            page_tokens=self.pool.page_tokens,
            reclaimed_pages=self.pool.reclaimed_pages,
            reclaimed_tokens=self.pool.reclaimed_tokens,
            n_active_replicas=self.pool.n_active,
            n_drained=sum(
                not self.pool.is_active(i) and not self.pool.is_failed(i)
                for i in range(self.pool.n_replicas)
            ),
            n_failed=sum(
                self.pool.is_failed(i) for i in range(self.pool.n_replicas)
            ),
            n_requeued=self.n_requeued,
            n_failed_requests=len(self.failed_requests),
            routed_counts=[
                self.router.routed_counts.get(i, 0)
                for i in range(self.pool.n_replicas)
            ],
        )

    # ------------------------------------------------------------------
    def _route(
        self,
        request: Request,
        record: RequestRecord,
        available: float,
    ) -> bool:
        """Place one request on an active replica, or fail it cleanly.

        Returns ``False`` when no surviving replica can ever hold the
        request (every fitting shard was drained mid-run, or the whole
        fleet retired).  The request's pages are already back in the
        ledger — a drain releases before requeueing — so the record is
        marked FAILED and kept for the report, the ledger audit stays
        clean, and the event loop moves on instead of raising with
        other requests still in flight.
        """
        active = [
            r for r in self.replicas if self.pool.is_active(r.index)
        ]
        replica = None
        self._event_time = available
        if active:
            try:
                replica = self.router.choose(request, active)
            except PoolExhausted:
                replica = None
        if replica is None:
            record.status = RequestStatus.FAILED
            self.failed_requests.append(request.request_id)
            tel = self.telemetry
            if tel.tracer is not None:
                tel.tracer.instant(
                    "route_failed", available, "fleet", "router",
                    request_id=request.request_id,
                )
            if tel.metrics is not None:
                tel.metrics.counter(
                    "repro_requests_failed_total", engine="fleet"
                ).inc()
            return False
        replica.engine.submit(request, record, available_time=available)
        return True

    def _retire_replica(self, idx: int, t: float, kind: str) -> None:
        """Drain or fail a replica at simulated time ``t``; requeue.

        The shard leaves the active set *before* the requeue is routed,
        so none of the displaced requests can land back on it.  Requeue
        availability is ``max(t, replica clock)`` — a replica already
        mid-step past ``t`` hands its work over when that step would
        have been interrupted, never in the simulated past.  The
        drained replica's own clock is left untouched: a retire event
        landing after its work finished must not inflate its makespan
        (the event loop only fires a retire once every *busy* replica
        clock has reached ``t``, so a replica with work in flight is
        already at or past the drain time).
        """
        replica = self.replicas[idx]
        self._event_time = t
        if kind == "fail":
            self.pool.fail(idx)
        else:
            self.pool.drain(idx)
        requeued = replica.engine.drain()
        self.n_requeued += len(requeued)
        available = max(t, replica.engine.now)
        tel = self.telemetry
        if tel.tracer is not None:
            tel.tracer.instant(
                f"replica_{kind}", available, "fleet", "scheduler",
                replica=idx, n_requeued=len(requeued),
            )
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_replica_retirements_total", engine="fleet", kind=kind
            ).inc()
            tel.metrics.counter(
                "repro_requests_requeued_total", engine="fleet"
            ).inc(len(requeued))
        for request, record in requeued:
            self._route(request, record, available=available)

    # ------------------------------------------------------------------
    # Fleet telemetry (router / ledger observer hooks + step samples)
    # ------------------------------------------------------------------
    def route_decision(self, request: Request, scored, chosen) -> None:
        """Observer hook the router calls with its scored candidates.

        ``scored`` is ``(replica, pages_estimate, score)`` per active
        candidate; the score is the policy's sort key (``None`` for
        round-robin).  Recorded under the ``fleet`` process so a trace
        shows *why* each request landed where it did.
        """
        tel = self.telemetry
        if tel.tracer is not None:
            args = {
                f"replica{r.index}": (
                    est if score is None else round(float(score), 9)
                )
                for r, est, score in scored
            }
            tel.tracer.instant(
                "routed", self._event_time, "fleet", "router",
                request_id=request.request_id, chosen=chosen.index,
                policy=self.router.policy, **args,
            )
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_requests_routed_total", engine="fleet",
                replica=str(chosen.index),
            ).inc()

    def ledger_transition(self, replica: int, kind: str) -> None:
        """Observer hook the sharded ledger calls on drain/fail."""
        tel = self.telemetry
        if tel.tracer is not None:
            tel.tracer.instant(
                f"ledger_{kind}", self._event_time, "fleet", "ledger",
                replica=replica,
            )
        if tel.metrics is not None:
            tel.metrics.counter(
                "repro_ledger_transitions_total", engine="fleet", kind=kind
            ).inc()

    def _note_fleet_step(self, now: float) -> None:
        """Per-replica-step fleet bookkeeping: periodic global audit
        plus a fleet-wide pool counter sample."""
        self._steps += 1
        tel = self.telemetry
        if self.audit_every and self._steps % self.audit_every == 0:
            self.pool.audit()
            if tel.metrics is not None:
                tel.metrics.counter(
                    "repro_pool_audits_total", engine="fleet"
                ).inc()
        if tel.tracer is not None:
            tel.tracer.counter(
                "fleet_pool", now, "fleet",
                allocated_pages=self.pool.allocated_pages,
                reserved_pages=self.pool.reserved_pages,
                reclaimed_pages=self.pool.reclaimed_pages,
                active_replicas=self.pool.n_active,
            )
        if tel.metrics is not None:
            tel.metrics.gauge(
                "repro_pool_allocated_pages", engine="fleet"
            ).set(self.pool.allocated_pages)
            tel.metrics.gauge(
                "repro_active_replicas", engine="fleet"
            ).set(self.pool.n_active)
