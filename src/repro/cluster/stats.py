"""Fleet-level aggregation of per-replica serving reports.

:class:`ClusterStats` carries one :class:`~repro.serving.stats.
ServingStats` per replica (exactly what that replica's engine would
have reported standalone — the single-replica cluster is bit-identical
to plain serving) plus a *fleet* ``ServingStats`` recomputed over every
request record in the run.  Percentiles are therefore derived once,
from the pooled samples, by the same code single-engine serving uses —
never by averaging per-replica percentiles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..eval.reporting import Table
from ..serving.request import RequestRecord, RequestStatus
from ..serving.stats import (
    STATS_SCHEMA_VERSION,
    ServingStats,
    _null_if_nan,
    format_quantiles,
)

__all__ = ["ClusterStats"]


@dataclass
class ClusterStats:
    """Aggregate report of one multi-replica cluster run."""

    policy: str
    n_replicas: int
    #: Replicas still in the active set when the run ended.
    n_active_replicas: int
    n_drained: int
    n_failed: int
    #: In-flight requests handed back by drained/failed replicas and
    #: re-routed (each requeue counts once).
    n_requeued: int
    #: Requests placed on each replica, including requeue placements.
    routed_counts: List[int]
    #: Fleet-level aggregate over every request record (percentiles
    #: recomputed from pooled samples, not averaged).
    fleet: ServingStats
    #: Requests failed cleanly: never placeable, retry budget
    #: exhausted, deadline expired, or shed by the degradation ladder.
    n_failed_requests: int = 0
    #: Numerics-ladder tier every replica ran under
    #: (``exact``/``fp32``/``int8`` — see :mod:`repro.nn.numerics`).
    numerics: str = "exact"
    #: Replicas that rejoined the fleet after a drain/fail (chaos runs).
    n_recovered: int = 0
    #: Placement retries consumed fleet-wide (retry-with-backoff).
    n_retries: int = 0
    #: Circuit-breaker open transitions (heartbeat failure detection).
    n_breaker_trips: int = 0
    #: Time-averaged fraction of replicas active over the makespan.
    availability: float = 1.0
    #: Tokens delivered to *finished* requests per makespan second —
    #: the chaos-facing throughput (failed requests contribute zero).
    goodput_tps: float = 0.0
    #: Mean crash-to-rejoin repair time; NaN when nothing recovered.
    mttr_s: float = float("nan")
    #: Fleet-level SLO attainment report
    #: (:meth:`repro.insight.SLOReport.to_dict`) when the cluster ran
    #: under an SLO policy, else ``None``.  Computed over the pooled
    #: records after :meth:`from_run`; read-only, so every other field
    #: is bit-identical with and without it.
    slo: Optional[dict] = None
    #: Each replica's own ServingStats, as reported by its engine.
    replicas: List[ServingStats] = field(default_factory=list)

    @staticmethod
    def from_run(
        policy: str,
        records: List[RequestRecord],
        replica_stats: List[ServingStats],
        makespan_s: float,
        global_occupancy_samples: List[float],
        global_occupancy_peak: float,
        total_pages: int,
        page_tokens: int,
        reclaimed_pages: int,
        reclaimed_tokens: int,
        n_active_replicas: int,
        n_drained: int,
        n_failed: int,
        n_requeued: int,
        routed_counts: List[int],
        n_failed_requests: int = 0,
        admission: str = "reserve",
        numerics: str = "exact",
        n_recovered: int = 0,
        n_retries: int = 0,
        n_breaker_trips: int = 0,
        availability: float = 1.0,
        mttr_s: float = float("nan"),
    ) -> "ClusterStats":
        modes = {s.mode for s in replica_stats}
        mode = modes.pop() if len(modes) == 1 else "mixed"
        fleet = ServingStats.from_run(
            mode=f"cluster/{mode}/{policy}",
            admission=admission,
            numerics=numerics,
            records=records,
            makespan_s=makespan_s,
            batch_sizes=[],
            occupancy_samples=global_occupancy_samples,
            pool_pages=total_pages,
            pool_page_tokens=page_tokens,
            occupancy_peak=global_occupancy_peak,
            reclaimed_pages=reclaimed_pages,
            reclaimed_tokens=reclaimed_tokens,
        )
        # Mean live batch across the fleet: per-replica means weighted
        # equally by replica would misweight idle replicas; sum of
        # means is the average number of concurrently resident
        # sequences fleet-wide, which is the quantity capacity planning
        # cares about.
        fleet.mean_batch_size = sum(s.mean_batch_size for s in replica_stats)
        finished_tokens = sum(
            r.n_generated for r in records
            if r.status is RequestStatus.FINISHED
        )
        goodput = finished_tokens / makespan_s if makespan_s > 0 else 0.0
        return ClusterStats(
            policy=policy,
            n_replicas=len(replica_stats),
            n_active_replicas=n_active_replicas,
            n_drained=n_drained,
            n_failed=n_failed,
            n_requeued=n_requeued,
            routed_counts=list(routed_counts),
            fleet=fleet,
            n_failed_requests=n_failed_requests,
            numerics=numerics,
            n_recovered=n_recovered,
            n_retries=n_retries,
            n_breaker_trips=n_breaker_trips,
            availability=availability,
            goodput_tps=goodput,
            mttr_s=mttr_s,
            replicas=list(replica_stats),
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "policy": self.policy,
            "n_replicas": self.n_replicas,
            "n_active_replicas": self.n_active_replicas,
            "n_drained": self.n_drained,
            "n_failed": self.n_failed,
            "n_requeued": self.n_requeued,
            "n_failed_requests": self.n_failed_requests,
            "numerics": self.numerics,
            "n_recovered": self.n_recovered,
            "n_retries": self.n_retries,
            "n_breaker_trips": self.n_breaker_trips,
            "availability": self.availability,
            "goodput_tps": self.goodput_tps,
            "mttr_s": _null_if_nan(self.mttr_s),
            "slo": self.slo,
            "routed_counts": list(self.routed_counts),
            "fleet": self.fleet.to_dict(),
            "replicas": [s.to_dict() for s in self.replicas],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def table(self) -> Table:
        ms = 1e3
        t = Table(
            title=(
                f"cluster report — {self.n_replicas} replicas, "
                f"{self.policy} routing"
            ),
            headers=["metric", "value"],
        )
        f = self.fleet
        t.add_row("requests served", str(f.n_requests))
        if f.n_unadmitted:
            t.add_row("requests never admitted (partial run)",
                      str(f.n_unadmitted))
        t.add_row("tokens generated", str(f.n_tokens))
        t.add_row("makespan (s)", f"{f.makespan_s:.3f}")
        t.add_row("fleet throughput (tok/s)", f"{f.throughput_tps:.1f}")
        t.add_row("queue wait p50/p95/p99 (ms)",
                  format_quantiles((f.queue_wait_p50, f.queue_wait_p95,
                                    f.queue_wait_p99), ms, ".1f"))
        t.add_row("time-to-first-token p50/p95/p99 (ms)",
                  format_quantiles((f.ttft_p50, f.ttft_p95, f.ttft_p99),
                                   ms, ".1f"))
        t.add_row("decode latency p50/p95/p99 (ms/tok)",
                  format_quantiles((f.decode_latency_p50,
                                    f.decode_latency_p95,
                                    f.decode_latency_p99), ms, ".2f"))
        t.add_row("fleet resident sequences (mean)",
                  f"{f.mean_batch_size:.2f}")
        if f.admission != "reserve":
            t.add_row("admission mode", f.admission)
        if self.numerics != "exact":
            t.add_row("numerics tier", self.numerics)
        if f.n_preemptions:
            t.add_row("preemptions across fleet (recomputed tokens)",
                      f"{f.n_preemptions} ({f.recompute_tokens})")
        t.add_row("global pool pages (x tokens/page)",
                  f"{f.pool_pages} x {f.pool_page_tokens}")
        t.add_row("global occupancy mean/peak",
                  f"{f.occupancy_mean:.1%} / {f.occupancy_peak:.1%}")
        t.add_row("pages reclaimed by pruning", str(f.reclaimed_pages))
        t.add_row("requests routed per replica",
                  " / ".join(str(c) for c in self.routed_counts))
        t.add_row("replicas active at end",
                  f"{self.n_active_replicas}/{self.n_replicas} "
                  f"({self.n_drained} drained, {self.n_failed} failed)")
        if self.n_requeued:
            t.add_row("requests requeued by drains", str(self.n_requeued))
        if self.n_failed_requests:
            t.add_row("requests failed", str(self.n_failed_requests))
        if self.n_recovered or self.n_retries or self.n_breaker_trips:
            t.add_row("availability (active-replica fraction)",
                      f"{self.availability:.1%}")
            t.add_row("goodput (finished tok/s)",
                      f"{self.goodput_tps:.1f}")
            t.add_row(
                "replicas recovered (MTTR)",
                f"{self.n_recovered} "
                f"({format_quantiles((self.mttr_s,), 1e3, '.1f')} ms)",
            )
            if self.n_retries:
                t.add_row("placement retries (backoff)",
                          str(self.n_retries))
            if self.n_breaker_trips:
                t.add_row("circuit-breaker trips", str(self.n_breaker_trips))
        for i, s in enumerate(self.replicas):
            ttft_p95 = format_quantiles((s.ttft_p95,), ms, ".1f")
            t.add_row(
                f"replica {i}",
                f"{s.n_requests} reqs, {s.throughput_tps:.0f} tok/s, "
                f"ttft p95 {ttft_p95} ms, "
                f"occ peak {s.occupancy_peak:.0%}",
            )
        t.add_note(
            "parallel simulated timelines, one per replica; fleet "
            "percentiles recomputed from pooled records "
            "(repro.cluster.stats.ClusterStats)"
        )
        return t
