"""repro — a from-scratch reproduction of SpAtten (HPCA 2021).

SpAtten: Efficient Sparse Attention Architecture with Cascade Token and
Head Pruning (Wang, Zhang, Han — arXiv:2012.09852).

Packages:

* :mod:`repro.nn` — NumPy transformer substrate (BERT/GPT-style).
* :mod:`repro.core` — the paper's algorithms: cascade token/head
  pruning, local value pruning, progressive quantization, top-k.
* :mod:`repro.hardware` — cycle-level SpAtten accelerator simulator
  with HBM, SRAM, crossbar, top-k engine, energy and area models.
* :mod:`repro.baselines` — GPU/CPU platform models plus the A3 and
  MNNFast prior-art accelerators.
* :mod:`repro.workloads` — synthetic corpora/tasks and the registry of
  the paper's 30 benchmarks.
* :mod:`repro.eval` — FLOPs/DRAM accounting, accuracy metrics, and the
  experiment runners that regenerate every table and figure.
* :mod:`repro.codesign` — hardware-aware transformer search (Fig. 16/17).
"""

from . import config
from .config import (
    BERT_BASE,
    BERT_LARGE,
    GPT2_MEDIUM,
    GPT2_SMALL,
    MODEL_ZOO,
    ModelConfig,
    PruningConfig,
    QuantConfig,
)

__version__ = "1.0.0"

__all__ = [
    "config",
    "ModelConfig",
    "PruningConfig",
    "QuantConfig",
    "BERT_BASE",
    "BERT_LARGE",
    "GPT2_SMALL",
    "GPT2_MEDIUM",
    "MODEL_ZOO",
    "__version__",
]
