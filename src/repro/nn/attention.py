"""Multi-head attention for the transformer substrate.

Implements the paper's Algorithm 1 exactly: Q/K/V are computed by one FC
each, split into heads, scores are ``Q @ K.T / sqrt(D)``, a row-wise
softmax produces attention probabilities, and ``probs @ V`` produces each
head's feature.  Everything is instrumented: every forward returns an
:class:`AttentionRecord` carrying the probabilities and per-head outputs
that cascade token/head pruning accumulate into importance scores
(Algorithm 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .functional import softmax

__all__ = [
    "AttentionWeights",
    "AttentionRecord",
    "split_heads",
    "merge_heads",
    "scaled_dot_attention",
    "MultiHeadAttention",
]


@dataclass
class AttentionWeights:
    """Projection weights of one attention layer.

    Shapes: ``wq/wk/wv/wo`` are ``[d_model, d_model]``; biases are
    ``[d_model]``.  The output projection ``wo`` is the FC applied to the
    concatenation of all heads (paper Fig. 3: "There will be an additional
    FC on attention_out if there is more than one head").
    """

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    bq: np.ndarray
    bk: np.ndarray
    bv: np.ndarray
    bo: np.ndarray

    def __post_init__(self) -> None:
        d = self.wq.shape[0]
        for name in ("wq", "wk", "wv", "wo"):
            w = getattr(self, name)
            if w.shape != (d, d):
                raise ValueError(f"{name} must be square [{d},{d}], got {w.shape}")
        for name in ("bq", "bk", "bv", "bo"):
            b = getattr(self, name)
            if b.shape != (d,):
                raise ValueError(f"{name} must be [{d}], got {b.shape}")

    @property
    def d_model(self) -> int:
        return self.wq.shape[0]

    @staticmethod
    def random(d_model: int, rng: np.random.Generator, scale: float = None) -> "AttentionWeights":
        """Gaussian-initialised weights (Xavier-style scale by default)."""
        if scale is None:
            scale = 1.0 / np.sqrt(d_model)
        make = lambda: rng.normal(0.0, scale, size=(d_model, d_model))
        zeros = lambda: np.zeros(d_model)
        return AttentionWeights(
            wq=make(), wk=make(), wv=make(), wo=make(),
            bq=zeros(), bk=zeros(), bv=zeros(), bo=zeros(),
        )


@dataclass
class AttentionRecord:
    """Instrumentation emitted by one attention layer forward.

    Attributes:
        probs: Attention probabilities ``[h, L0, L1]``.
        head_outputs: Per-head features ``E`` of Algorithm 2, ``[h, L0, D]``
            (before the output FC).
        key_token_ids: Original-sentence positions of the L1 key/value
            columns.  Under cascade token pruning the columns are a
            shrinking subset of the sentence, and importance-score
            accumulation must address scores by original position.
        query_token_ids: Original positions of the L0 query rows.
        head_ids: Original head indices of the ``h`` surviving heads.
        value_kept: Per-head count of V vectors that survived local value
            pruning (for DRAM-traffic accounting).  ``None`` when local V
            pruning is off.
        lsb_refetched: Whether progressive quantization required the LSB
            pass for this layer's rows (``None`` outside SpAtten runs).
    """

    probs: np.ndarray
    head_outputs: np.ndarray
    key_token_ids: np.ndarray
    query_token_ids: np.ndarray
    head_ids: np.ndarray
    value_kept: Optional[np.ndarray] = None
    lsb_refetched: Optional[bool] = None
    extras: dict = field(default_factory=dict)

    @property
    def n_heads(self) -> int:
        return self.probs.shape[0]

    @property
    def n_queries(self) -> int:
        return self.probs.shape[1]

    @property
    def n_keys(self) -> int:
        return self.probs.shape[2]


def split_heads(x: np.ndarray, n_heads: int) -> np.ndarray:
    """Reshape ``[L, d_model]`` to per-head chunks ``[h, L, D]``."""
    length, d_model = x.shape
    if d_model % n_heads != 0:
        raise ValueError(f"d_model={d_model} not divisible by n_heads={n_heads}")
    head_dim = d_model // n_heads
    return x.reshape(length, n_heads, head_dim).transpose(1, 0, 2)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_heads`: ``[h, L, D]`` back to ``[L, h*D]``."""
    n_heads, length, head_dim = x.shape
    return x.transpose(1, 0, 2).reshape(length, n_heads * head_dim)


def causal_mask(n_queries: int, n_keys: int, query_offset: int = 0) -> np.ndarray:
    """Boolean mask ``[L0, L1]``; True where attention is allowed.

    ``query_offset`` is the absolute position of the first query row,
    which in the generation stage is the current sequence length minus
    one (a single query attending to all cached keys).
    """
    q_pos = np.arange(n_queries)[:, None] + query_offset
    k_pos = np.arange(n_keys)[None, :]
    return k_pos <= q_pos


def scaled_dot_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Single- or multi-head scaled dot-product attention.

    Args:
        q: ``[h, L0, D]`` queries.
        k: ``[h, L1, D]`` keys.
        v: ``[h, L1, D]`` values.
        mask: optional boolean ``[L0, L1]``; False entries are excluded
            from the softmax (set to -inf score).

    Returns:
        ``(outputs [h, L0, D], probs [h, L0, L1])``.
    """
    head_dim = q.shape[-1]
    scores = q @ k.transpose(0, 2, 1) / np.sqrt(head_dim)
    if mask is not None and not mask.all():
        # An all-True mask excludes nothing; skipping it avoids an
        # [h, L0, L1]-sized np.where copy (values are unchanged either
        # way, so the fast path is bit-identical).
        scores = np.where(mask[None, :, :], scores, -1e30)
    probs = softmax(scores, axis=-1)
    return probs @ v, probs


class MultiHeadAttention:
    """Dense multi-head attention layer (the paper's Algorithm 1)."""

    def __init__(self, weights: AttentionWeights, n_heads: int):
        if weights.d_model % n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        self.weights = weights
        self.n_heads = n_heads

    @property
    def d_model(self) -> int:
        return self.weights.d_model

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    def project_q(self, x: np.ndarray) -> np.ndarray:
        """Queries ``[h, L, D]`` from hidden states ``[L, d_model]``."""
        return split_heads(x @ self.weights.wq + self.weights.bq, self.n_heads)

    def project_kv(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Keys and values ``[h, L, D]`` from hidden states."""
        k = split_heads(x @ self.weights.wk + self.weights.bk, self.n_heads)
        v = split_heads(x @ self.weights.wv + self.weights.bv, self.n_heads)
        return k, v

    def output_projection(self, head_outputs: np.ndarray) -> np.ndarray:
        """Concatenate heads and apply the output FC.

        ``head_outputs`` may contain fewer heads than ``n_heads`` (head
        pruning); callers must expand back to the full width first — see
        :func:`expand_pruned_heads`.
        """
        return self.project_merged(merge_heads(head_outputs))

    def project_merged(self, merged: np.ndarray) -> np.ndarray:
        """Output FC over already-merged head features ``[L, h*D]``.

        Split out of :meth:`output_projection` so the packed decode
        backend (:mod:`repro.nn.batched_attention`) can collect merged
        rows across a batch and run this FC as one batched matmul.
        """
        return merged @ self.weights.wo + self.weights.bo

    def forward(
        self,
        x: np.ndarray,
        causal: bool = False,
        kv: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        query_offset: int = 0,
        q: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, AttentionRecord]:
        """Full dense forward.

        Args:
            x: ``[L0, d_model]`` hidden states producing the queries (and,
                when ``kv`` is None, also the keys/values).
            causal: apply a causal mask (GPT summarization stage).
            kv: pre-computed ``(K, V)`` per-head tensors ``[h, L1, D]``
                (generation stage: the concatenated KV cache).
            query_offset: absolute position of ``x[0]`` for causal
                masking in the generation stage.
            q: pre-computed queries ``[h, L0, D]`` (the packed backend
                projects a whole batch's rows in one matmul and hands
                each sequence its slice); projected from ``x`` when
                omitted.

        Returns:
            ``(attention_out [L0, d_model], AttentionRecord)``.
        """
        if q is None:
            q = self.project_q(x)
        if kv is None:
            k, v = self.project_kv(x)
        else:
            k, v = kv
        n_queries, n_keys = q.shape[1], k.shape[1]
        mask = causal_mask(n_queries, n_keys, query_offset) if causal else None
        head_out, probs = scaled_dot_attention(q, k, v, mask)
        out = self.output_projection(head_out)
        record = AttentionRecord(
            probs=probs,
            head_outputs=head_out,
            key_token_ids=np.arange(n_keys),
            query_token_ids=np.arange(n_queries) + query_offset,
            head_ids=np.arange(self.n_heads),
        )
        return out, record


def expand_pruned_heads(
    head_outputs: np.ndarray,
    head_ids: np.ndarray,
    n_heads_total: int,
) -> np.ndarray:
    """Scatter surviving heads back into the full-width head tensor.

    After cascade head pruning only ``len(head_ids)`` heads are computed;
    the output FC still expects ``n_heads_total * D`` inputs, with pruned
    head chunks contributing zeros (their features are simply absent).
    """
    n_kept, length, head_dim = head_outputs.shape
    if n_kept != len(head_ids):
        raise ValueError("head_outputs and head_ids disagree on head count")
    full = np.zeros((n_heads_total, length, head_dim), dtype=head_outputs.dtype)
    full[np.asarray(head_ids)] = head_outputs
    return full
