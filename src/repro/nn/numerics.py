"""Numerics policies: the accuracy-for-speed ladder of the decode path.

The repo's original contract was *bit identity* — every serving path had
to reproduce the fp64 looped oracle to the last ulp.  PR 3 measured the
price of that contract: OpenBLAS reductions are padding-variant, so a
bit-identical packed decode core must keep exact-length per-sequence
matmuls and softmax denominators, and the fp64 gelu/tanh FFN tax is
backend-independent — together capping the packed path near ~2×.

SpAtten itself never pays that tax.  The paper's progressive
quantization (Section III-D) runs MSB-only attention first and fetches
LSBs only when the probability distribution is flat: its speed comes
from an *accuracy budget*, not a bit budget.  This module ports that
philosophy to the serving hot path as an explicit, operator-visible
axis:

``exact``
    The default.  fp64 compute, fp64 KV storage, every existing code
    path runs verbatim — still bit-identical to the looped oracle
    (asserted by the identity tests and ``benchmarks/bench_numerics``).
``fp32``
    fp32 KV planes and an fp32 batched decode core: one padded
    ``[B, h, 1, max_len]`` masked-softmax attention over a shared
    scratch arena plus a vectorized fp32 tanh/gelu FFN — the design
    PR 3 proved impossible bit-identically.
``int8``
    Same batched core, but the KV cache stores int8 codes with per-row
    (head × column) fp32 scales — :func:`repro.core.quantization
    .quantize_rows` — so the score GEMM reads fp32 Q against
    dequantized int8 K (fp32 accumulation), exactly what the cache can
    reproduce.  4× less KV storage than fp32 at a declared accuracy
    budget.

Every policy declares its quality budget (max mean KL divergence from
the fp64 oracle's next-token distribution and min argmax-match rate);
``benchmarks/bench_numerics.py`` measures the ladder against those
budgets and fails the build when a tier exceeds its declaration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

__all__ = [
    "NumericsPolicy",
    "EXACT",
    "FP32",
    "INT8",
    "NUMERICS_LADDER",
    "resolve_numerics",
]


@dataclass(frozen=True)
class NumericsPolicy:
    """One rung of the numerics ladder.

    Attributes:
        name: ladder tier name (``exact`` / ``fp32`` / ``int8``).
        compute_dtype: dtype of the decode-step hidden-state math.
        kv_dtype: storage dtype of KV cache planes (``np.int8`` stores
            codes plus per-row fp32 scales).
        kv_bytes_per_element: DRAM accounting width per cached scalar.
            ``None`` keeps the model config's declared width (the
            ``exact`` tier changes no accounting).
        quantized_gemm: whether decode-step score GEMMs read
            int8-rounded KV operands (per-row scales, fp32 accumulate).
        kl_budget: max mean KL(oracle ‖ tier) over next-token
            distributions tolerated by the quality gate.
        argmax_budget: min fraction of decode steps whose argmax token
            matches the fp64 oracle.
    """

    name: str
    compute_dtype: type
    kv_dtype: type
    kv_bytes_per_element: Optional[int]
    quantized_gemm: bool
    kl_budget: float
    argmax_budget: float

    @property
    def is_exact(self) -> bool:
        """Whether this tier promises bit identity with the oracle."""
        return self.name == "exact"

    def storage_bytes_per_element(self, default: int) -> int:
        """DRAM accounting width, falling back to the model's declared one."""
        if self.kv_bytes_per_element is None:
            return default
        return self.kv_bytes_per_element


#: Bit-identical fp64 — the contract every pre-existing test asserts.
EXACT = NumericsPolicy(
    name="exact",
    compute_dtype=np.float64,
    kv_dtype=np.float64,
    kv_bytes_per_element=None,
    quantized_gemm=False,
    kl_budget=0.0,
    argmax_budget=1.0,
)

#: fp32 KV + fp32 batched masked-softmax decode core.
FP32 = NumericsPolicy(
    name="fp32",
    compute_dtype=np.float32,
    kv_dtype=np.float32,
    kv_bytes_per_element=4,
    quantized_gemm=False,
    kl_budget=5e-4,
    argmax_budget=0.995,
)

#: int8 KV codes (per-row fp32 scales) + dequantized-int8 score GEMMs.
INT8 = NumericsPolicy(
    name="int8",
    compute_dtype=np.float32,
    kv_dtype=np.int8,
    kv_bytes_per_element=1,
    quantized_gemm=True,
    kl_budget=5e-2,
    argmax_budget=0.99,
)

#: Ladder order, fastest-last; also the CLI choices for ``--numerics``.
NUMERICS_LADDER = ("exact", "fp32", "int8")

_POLICIES = {"exact": EXACT, "fp32": FP32, "int8": INT8}


def resolve_numerics(
    numerics: Union[str, NumericsPolicy, None]
) -> NumericsPolicy:
    """Resolve a tier name (or policy, or None → exact) to a policy."""
    if numerics is None:
        return EXACT
    if isinstance(numerics, NumericsPolicy):
        return numerics
    try:
        return _POLICIES[numerics]
    except KeyError:
        raise ValueError(
            f"unknown numerics tier {numerics!r}; "
            f"expected one of {NUMERICS_LADDER}"
        ) from None
