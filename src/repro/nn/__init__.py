"""NumPy transformer substrate: the models SpAtten accelerates.

Public surface:

* functional ops (:func:`softmax`, :func:`layer_norm`, ...)
* :class:`MultiHeadAttention` and :class:`AttentionRecord`
* :class:`TransformerModel` with pluggable :class:`AttentionExecutor`
* :class:`KVCache` for the GPT generation stage
* :class:`NumericsPolicy` — the accuracy-for-speed decode ladder
  (``exact`` / ``fp32`` / ``int8``)
* weight constructors (:func:`random_model`, :func:`build_semantic_model`)
"""

from .beam import BeamHypothesis, beam_search
from .batched_attention import ATTENTION_BACKENDS, PackedDecodeBackend
from .attention import (
    AttentionRecord,
    AttentionWeights,
    MultiHeadAttention,
    causal_mask,
    expand_pruned_heads,
    merge_heads,
    scaled_dot_attention,
    split_heads,
)
from .functional import (
    cross_entropy,
    gelu,
    kl_divergence,
    layer_norm,
    linear,
    log_softmax,
    relu,
    softmax,
)
from .kv_cache import KVCache, LayerKVCache
from .numerics import (
    EXACT,
    FP32,
    INT8,
    NUMERICS_LADDER,
    NumericsPolicy,
    resolve_numerics,
)
from .transformer import (
    AttentionExecutor,
    BlockParams,
    DenseExecutor,
    EncodeResult,
    GenerationResult,
    LayerExecution,
    ModelParams,
    PrefillState,
    TransformerModel,
)
from .weights import (
    CONST_DIM,
    POSITION_DIMS,
    EVIDENCE_START,
    SALIENCE_DIM,
    SemanticModelInfo,
    SemanticSpec,
    build_semantic_model,
    random_model,
)

__all__ = [
    "BeamHypothesis",
    "beam_search",
    "ATTENTION_BACKENDS",
    "PackedDecodeBackend",
    "AttentionRecord",
    "AttentionWeights",
    "MultiHeadAttention",
    "causal_mask",
    "expand_pruned_heads",
    "merge_heads",
    "scaled_dot_attention",
    "split_heads",
    "cross_entropy",
    "gelu",
    "kl_divergence",
    "layer_norm",
    "linear",
    "log_softmax",
    "relu",
    "softmax",
    "KVCache",
    "LayerKVCache",
    "EXACT",
    "FP32",
    "INT8",
    "NUMERICS_LADDER",
    "NumericsPolicy",
    "resolve_numerics",
    "AttentionExecutor",
    "BlockParams",
    "DenseExecutor",
    "EncodeResult",
    "GenerationResult",
    "LayerExecution",
    "ModelParams",
    "PrefillState",
    "TransformerModel",
    "CONST_DIM",
    "POSITION_DIMS",
    "EVIDENCE_START",
    "SALIENCE_DIM",
    "SemanticModelInfo",
    "SemanticSpec",
    "build_semantic_model",
    "random_model",
]
